file(REMOVE_RECURSE
  "CMakeFiles/mode_soundness_test.dir/mode_soundness_test.cc.o"
  "CMakeFiles/mode_soundness_test.dir/mode_soundness_test.cc.o.d"
  "mode_soundness_test"
  "mode_soundness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
