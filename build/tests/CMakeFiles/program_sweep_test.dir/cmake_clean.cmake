file(REMOVE_RECURSE
  "CMakeFiles/program_sweep_test.dir/program_sweep_test.cc.o"
  "CMakeFiles/program_sweep_test.dir/program_sweep_test.cc.o.d"
  "program_sweep_test"
  "program_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
