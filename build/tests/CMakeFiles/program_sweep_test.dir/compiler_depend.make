# Empty compiler generated dependencies file for program_sweep_test.
# This may be replaced when dependencies are built.
