
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/programs_test.cc" "tests/CMakeFiles/programs_test.dir/programs_test.cc.o" "gcc" "tests/CMakeFiles/programs_test.dir/programs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/programs/CMakeFiles/prore_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/prore_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/prore_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/prore_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/prore_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/prore_term.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/prore_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
