file(REMOVE_RECURSE
  "CMakeFiles/goal_order_test.dir/goal_order_test.cc.o"
  "CMakeFiles/goal_order_test.dir/goal_order_test.cc.o.d"
  "goal_order_test"
  "goal_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
