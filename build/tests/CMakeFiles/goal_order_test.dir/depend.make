# Empty dependencies file for goal_order_test.
# This may be replaced when dependencies are built.
