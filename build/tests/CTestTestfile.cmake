# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(term_test "/root/repo/build/tests/term_test")
set_tests_properties(term_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(reader_test "/root/repo/build/tests/reader_test")
set_tests_properties(reader_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(markov_test "/root/repo/build/tests/markov_test")
set_tests_properties(markov_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(programs_test "/root/repo/build/tests/programs_test")
set_tests_properties(programs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cost_test "/root/repo/build/tests/cost_test")
set_tests_properties(cost_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuzz_test "/root/repo/build/tests/fuzz_test")
set_tests_properties(fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(unfold_test "/root/repo/build/tests/unfold_test")
set_tests_properties(unfold_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(disjunction_test "/root/repo/build/tests/disjunction_test")
set_tests_properties(disjunction_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(goal_order_test "/root/repo/build/tests/goal_order_test")
set_tests_properties(goal_order_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mode_soundness_test "/root/repo/build/tests/mode_soundness_test")
set_tests_properties(mode_soundness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;prore_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(program_sweep_test "/root/repo/build/tests/program_sweep_test")
set_tests_properties(program_sweep_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;prore_test;/root/repo/tests/CMakeLists.txt;0;")
