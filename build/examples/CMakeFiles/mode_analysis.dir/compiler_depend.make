# Empty compiler generated dependencies file for mode_analysis.
# This may be replaced when dependencies are built.
