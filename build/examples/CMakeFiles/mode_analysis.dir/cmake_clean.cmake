file(REMOVE_RECURSE
  "CMakeFiles/mode_analysis.dir/mode_analysis.cpp.o"
  "CMakeFiles/mode_analysis.dir/mode_analysis.cpp.o.d"
  "mode_analysis"
  "mode_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
