file(REMOVE_RECURSE
  "CMakeFiles/database_query.dir/database_query.cpp.o"
  "CMakeFiles/database_query.dir/database_query.cpp.o.d"
  "database_query"
  "database_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
