# Empty compiler generated dependencies file for database_query.
# This may be replaced when dependencies are built.
