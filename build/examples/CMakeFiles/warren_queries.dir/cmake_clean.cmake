file(REMOVE_RECURSE
  "CMakeFiles/warren_queries.dir/warren_queries.cpp.o"
  "CMakeFiles/warren_queries.dir/warren_queries.cpp.o.d"
  "warren_queries"
  "warren_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warren_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
