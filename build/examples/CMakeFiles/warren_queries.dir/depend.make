# Empty dependencies file for warren_queries.
# This may be replaced when dependencies are built.
