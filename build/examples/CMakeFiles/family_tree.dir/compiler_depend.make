# Empty compiler generated dependencies file for family_tree.
# This may be replaced when dependencies are built.
