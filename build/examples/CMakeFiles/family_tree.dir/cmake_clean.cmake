file(REMOVE_RECURSE
  "CMakeFiles/family_tree.dir/family_tree.cpp.o"
  "CMakeFiles/family_tree.dir/family_tree.cpp.o.d"
  "family_tree"
  "family_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
