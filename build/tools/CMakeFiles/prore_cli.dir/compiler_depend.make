# Empty compiler generated dependencies file for prore_cli.
# This may be replaced when dependencies are built.
