file(REMOVE_RECURSE
  "CMakeFiles/prore_cli.dir/prore_cli.cc.o"
  "CMakeFiles/prore_cli.dir/prore_cli.cc.o.d"
  "prore"
  "prore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
