# Empty compiler generated dependencies file for prolog_repl.
# This may be replaced when dependencies are built.
