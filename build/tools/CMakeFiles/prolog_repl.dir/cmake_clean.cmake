file(REMOVE_RECURSE
  "CMakeFiles/prolog_repl.dir/prolog_repl.cc.o"
  "CMakeFiles/prolog_repl.dir/prolog_repl.cc.o.d"
  "prolog"
  "prolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prolog_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
