# Empty compiler generated dependencies file for fig1_clauses.
# This may be replaced when dependencies are built.
