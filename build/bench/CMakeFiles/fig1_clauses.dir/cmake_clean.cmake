file(REMOVE_RECURSE
  "CMakeFiles/fig1_clauses.dir/fig1_clauses.cc.o"
  "CMakeFiles/fig1_clauses.dir/fig1_clauses.cc.o.d"
  "fig1_clauses"
  "fig1_clauses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_clauses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
