file(REMOVE_RECURSE
  "CMakeFiles/warren_geography.dir/warren_geography.cc.o"
  "CMakeFiles/warren_geography.dir/warren_geography.cc.o.d"
  "warren_geography"
  "warren_geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warren_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
