# Empty compiler generated dependencies file for warren_geography.
# This may be replaced when dependencies are built.
