file(REMOVE_RECURSE
  "CMakeFiles/markov_model.dir/markov_model.cc.o"
  "CMakeFiles/markov_model.dir/markov_model.cc.o.d"
  "markov_model"
  "markov_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
