# Empty dependencies file for markov_model.
# This may be replaced when dependencies are built.
