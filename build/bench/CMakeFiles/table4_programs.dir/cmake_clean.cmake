file(REMOVE_RECURSE
  "CMakeFiles/table4_programs.dir/table4_programs.cc.o"
  "CMakeFiles/table4_programs.dir/table4_programs.cc.o.d"
  "table4_programs"
  "table4_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
