# Empty compiler generated dependencies file for table4_programs.
# This may be replaced when dependencies are built.
