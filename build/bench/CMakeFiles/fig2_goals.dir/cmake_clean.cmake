file(REMOVE_RECURSE
  "CMakeFiles/fig2_goals.dir/fig2_goals.cc.o"
  "CMakeFiles/fig2_goals.dir/fig2_goals.cc.o.d"
  "fig2_goals"
  "fig2_goals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_goals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
