# Empty dependencies file for fig2_goals.
# This may be replaced when dependencies are built.
