# Empty dependencies file for table2_family.
# This may be replaced when dependencies are built.
