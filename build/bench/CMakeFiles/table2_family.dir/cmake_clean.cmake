file(REMOVE_RECURSE
  "CMakeFiles/table2_family.dir/table2_family.cc.o"
  "CMakeFiles/table2_family.dir/table2_family.cc.o.d"
  "table2_family"
  "table2_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
