# Empty compiler generated dependencies file for table3_corporate.
# This may be replaced when dependencies are built.
