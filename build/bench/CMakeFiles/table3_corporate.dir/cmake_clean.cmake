file(REMOVE_RECURSE
  "CMakeFiles/table3_corporate.dir/table3_corporate.cc.o"
  "CMakeFiles/table3_corporate.dir/table3_corporate.cc.o.d"
  "table3_corporate"
  "table3_corporate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_corporate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
