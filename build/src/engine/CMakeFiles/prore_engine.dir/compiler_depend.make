# Empty compiler generated dependencies file for prore_engine.
# This may be replaced when dependencies are built.
