file(REMOVE_RECURSE
  "CMakeFiles/prore_engine.dir/arith.cc.o"
  "CMakeFiles/prore_engine.dir/arith.cc.o.d"
  "CMakeFiles/prore_engine.dir/builtins.cc.o"
  "CMakeFiles/prore_engine.dir/builtins.cc.o.d"
  "CMakeFiles/prore_engine.dir/database.cc.o"
  "CMakeFiles/prore_engine.dir/database.cc.o.d"
  "CMakeFiles/prore_engine.dir/machine.cc.o"
  "CMakeFiles/prore_engine.dir/machine.cc.o.d"
  "libprore_engine.a"
  "libprore_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
