file(REMOVE_RECURSE
  "libprore_engine.a"
)
