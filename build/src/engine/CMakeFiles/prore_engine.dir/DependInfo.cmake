
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/arith.cc" "src/engine/CMakeFiles/prore_engine.dir/arith.cc.o" "gcc" "src/engine/CMakeFiles/prore_engine.dir/arith.cc.o.d"
  "/root/repo/src/engine/builtins.cc" "src/engine/CMakeFiles/prore_engine.dir/builtins.cc.o" "gcc" "src/engine/CMakeFiles/prore_engine.dir/builtins.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/prore_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/prore_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/machine.cc" "src/engine/CMakeFiles/prore_engine.dir/machine.cc.o" "gcc" "src/engine/CMakeFiles/prore_engine.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reader/CMakeFiles/prore_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/prore_term.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
