file(REMOVE_RECURSE
  "CMakeFiles/prore_term.dir/store.cc.o"
  "CMakeFiles/prore_term.dir/store.cc.o.d"
  "CMakeFiles/prore_term.dir/symbol.cc.o"
  "CMakeFiles/prore_term.dir/symbol.cc.o.d"
  "libprore_term.a"
  "libprore_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
