# Empty dependencies file for prore_term.
# This may be replaced when dependencies are built.
