file(REMOVE_RECURSE
  "libprore_term.a"
)
