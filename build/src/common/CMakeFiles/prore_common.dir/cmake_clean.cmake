file(REMOVE_RECURSE
  "CMakeFiles/prore_common.dir/status.cc.o"
  "CMakeFiles/prore_common.dir/status.cc.o.d"
  "CMakeFiles/prore_common.dir/str_util.cc.o"
  "CMakeFiles/prore_common.dir/str_util.cc.o.d"
  "libprore_common.a"
  "libprore_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
