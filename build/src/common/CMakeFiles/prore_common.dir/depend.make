# Empty dependencies file for prore_common.
# This may be replaced when dependencies are built.
