file(REMOVE_RECURSE
  "libprore_common.a"
)
