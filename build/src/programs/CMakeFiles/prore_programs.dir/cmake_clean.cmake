file(REMOVE_RECURSE
  "CMakeFiles/prore_programs.dir/corporate.cc.o"
  "CMakeFiles/prore_programs.dir/corporate.cc.o.d"
  "CMakeFiles/prore_programs.dir/family_tree.cc.o"
  "CMakeFiles/prore_programs.dir/family_tree.cc.o.d"
  "CMakeFiles/prore_programs.dir/geography.cc.o"
  "CMakeFiles/prore_programs.dir/geography.cc.o.d"
  "CMakeFiles/prore_programs.dir/small_programs.cc.o"
  "CMakeFiles/prore_programs.dir/small_programs.cc.o.d"
  "libprore_programs.a"
  "libprore_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
