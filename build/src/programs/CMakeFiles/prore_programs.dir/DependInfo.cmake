
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/programs/corporate.cc" "src/programs/CMakeFiles/prore_programs.dir/corporate.cc.o" "gcc" "src/programs/CMakeFiles/prore_programs.dir/corporate.cc.o.d"
  "/root/repo/src/programs/family_tree.cc" "src/programs/CMakeFiles/prore_programs.dir/family_tree.cc.o" "gcc" "src/programs/CMakeFiles/prore_programs.dir/family_tree.cc.o.d"
  "/root/repo/src/programs/geography.cc" "src/programs/CMakeFiles/prore_programs.dir/geography.cc.o" "gcc" "src/programs/CMakeFiles/prore_programs.dir/geography.cc.o.d"
  "/root/repo/src/programs/small_programs.cc" "src/programs/CMakeFiles/prore_programs.dir/small_programs.cc.o" "gcc" "src/programs/CMakeFiles/prore_programs.dir/small_programs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
