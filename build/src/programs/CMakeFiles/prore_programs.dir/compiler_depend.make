# Empty compiler generated dependencies file for prore_programs.
# This may be replaced when dependencies are built.
