file(REMOVE_RECURSE
  "libprore_programs.a"
)
