
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/body.cc" "src/analysis/CMakeFiles/prore_analysis.dir/body.cc.o" "gcc" "src/analysis/CMakeFiles/prore_analysis.dir/body.cc.o.d"
  "/root/repo/src/analysis/callgraph.cc" "src/analysis/CMakeFiles/prore_analysis.dir/callgraph.cc.o" "gcc" "src/analysis/CMakeFiles/prore_analysis.dir/callgraph.cc.o.d"
  "/root/repo/src/analysis/fixity.cc" "src/analysis/CMakeFiles/prore_analysis.dir/fixity.cc.o" "gcc" "src/analysis/CMakeFiles/prore_analysis.dir/fixity.cc.o.d"
  "/root/repo/src/analysis/mode_inference.cc" "src/analysis/CMakeFiles/prore_analysis.dir/mode_inference.cc.o" "gcc" "src/analysis/CMakeFiles/prore_analysis.dir/mode_inference.cc.o.d"
  "/root/repo/src/analysis/modes.cc" "src/analysis/CMakeFiles/prore_analysis.dir/modes.cc.o" "gcc" "src/analysis/CMakeFiles/prore_analysis.dir/modes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/prore_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/prore_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/prore_term.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
