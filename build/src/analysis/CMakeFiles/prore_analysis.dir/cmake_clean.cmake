file(REMOVE_RECURSE
  "CMakeFiles/prore_analysis.dir/body.cc.o"
  "CMakeFiles/prore_analysis.dir/body.cc.o.d"
  "CMakeFiles/prore_analysis.dir/callgraph.cc.o"
  "CMakeFiles/prore_analysis.dir/callgraph.cc.o.d"
  "CMakeFiles/prore_analysis.dir/fixity.cc.o"
  "CMakeFiles/prore_analysis.dir/fixity.cc.o.d"
  "CMakeFiles/prore_analysis.dir/mode_inference.cc.o"
  "CMakeFiles/prore_analysis.dir/mode_inference.cc.o.d"
  "CMakeFiles/prore_analysis.dir/modes.cc.o"
  "CMakeFiles/prore_analysis.dir/modes.cc.o.d"
  "libprore_analysis.a"
  "libprore_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
