file(REMOVE_RECURSE
  "libprore_analysis.a"
)
