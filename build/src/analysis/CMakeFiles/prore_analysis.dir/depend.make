# Empty dependencies file for prore_analysis.
# This may be replaced when dependencies are built.
