file(REMOVE_RECURSE
  "CMakeFiles/prore_reader.dir/lexer.cc.o"
  "CMakeFiles/prore_reader.dir/lexer.cc.o.d"
  "CMakeFiles/prore_reader.dir/ops.cc.o"
  "CMakeFiles/prore_reader.dir/ops.cc.o.d"
  "CMakeFiles/prore_reader.dir/parser.cc.o"
  "CMakeFiles/prore_reader.dir/parser.cc.o.d"
  "CMakeFiles/prore_reader.dir/program.cc.o"
  "CMakeFiles/prore_reader.dir/program.cc.o.d"
  "CMakeFiles/prore_reader.dir/writer.cc.o"
  "CMakeFiles/prore_reader.dir/writer.cc.o.d"
  "libprore_reader.a"
  "libprore_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
