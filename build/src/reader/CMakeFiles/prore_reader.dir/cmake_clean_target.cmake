file(REMOVE_RECURSE
  "libprore_reader.a"
)
