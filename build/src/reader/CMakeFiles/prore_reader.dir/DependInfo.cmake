
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reader/lexer.cc" "src/reader/CMakeFiles/prore_reader.dir/lexer.cc.o" "gcc" "src/reader/CMakeFiles/prore_reader.dir/lexer.cc.o.d"
  "/root/repo/src/reader/ops.cc" "src/reader/CMakeFiles/prore_reader.dir/ops.cc.o" "gcc" "src/reader/CMakeFiles/prore_reader.dir/ops.cc.o.d"
  "/root/repo/src/reader/parser.cc" "src/reader/CMakeFiles/prore_reader.dir/parser.cc.o" "gcc" "src/reader/CMakeFiles/prore_reader.dir/parser.cc.o.d"
  "/root/repo/src/reader/program.cc" "src/reader/CMakeFiles/prore_reader.dir/program.cc.o" "gcc" "src/reader/CMakeFiles/prore_reader.dir/program.cc.o.d"
  "/root/repo/src/reader/writer.cc" "src/reader/CMakeFiles/prore_reader.dir/writer.cc.o" "gcc" "src/reader/CMakeFiles/prore_reader.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/term/CMakeFiles/prore_term.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
