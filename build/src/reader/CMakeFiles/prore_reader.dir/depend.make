# Empty dependencies file for prore_reader.
# This may be replaced when dependencies are built.
