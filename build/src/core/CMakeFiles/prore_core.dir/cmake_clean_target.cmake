file(REMOVE_RECURSE
  "libprore_core.a"
)
