file(REMOVE_RECURSE
  "CMakeFiles/prore_core.dir/clause_order.cc.o"
  "CMakeFiles/prore_core.dir/clause_order.cc.o.d"
  "CMakeFiles/prore_core.dir/disjunction.cc.o"
  "CMakeFiles/prore_core.dir/disjunction.cc.o.d"
  "CMakeFiles/prore_core.dir/evaluation.cc.o"
  "CMakeFiles/prore_core.dir/evaluation.cc.o.d"
  "CMakeFiles/prore_core.dir/goal_order.cc.o"
  "CMakeFiles/prore_core.dir/goal_order.cc.o.d"
  "CMakeFiles/prore_core.dir/reorderer.cc.o"
  "CMakeFiles/prore_core.dir/reorderer.cc.o.d"
  "CMakeFiles/prore_core.dir/restrictions.cc.o"
  "CMakeFiles/prore_core.dir/restrictions.cc.o.d"
  "CMakeFiles/prore_core.dir/unfold.cc.o"
  "CMakeFiles/prore_core.dir/unfold.cc.o.d"
  "libprore_core.a"
  "libprore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
