# Empty compiler generated dependencies file for prore_core.
# This may be replaced when dependencies are built.
