file(REMOVE_RECURSE
  "libprore_markov.a"
)
