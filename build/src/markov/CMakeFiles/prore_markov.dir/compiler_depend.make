# Empty compiler generated dependencies file for prore_markov.
# This may be replaced when dependencies are built.
