file(REMOVE_RECURSE
  "CMakeFiles/prore_markov.dir/chain.cc.o"
  "CMakeFiles/prore_markov.dir/chain.cc.o.d"
  "CMakeFiles/prore_markov.dir/matrix.cc.o"
  "CMakeFiles/prore_markov.dir/matrix.cc.o.d"
  "libprore_markov.a"
  "libprore_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
