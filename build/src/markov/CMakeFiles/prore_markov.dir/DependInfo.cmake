
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/chain.cc" "src/markov/CMakeFiles/prore_markov.dir/chain.cc.o" "gcc" "src/markov/CMakeFiles/prore_markov.dir/chain.cc.o.d"
  "/root/repo/src/markov/matrix.cc" "src/markov/CMakeFiles/prore_markov.dir/matrix.cc.o" "gcc" "src/markov/CMakeFiles/prore_markov.dir/matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
