file(REMOVE_RECURSE
  "CMakeFiles/prore_cost.dir/cost_model.cc.o"
  "CMakeFiles/prore_cost.dir/cost_model.cc.o.d"
  "libprore_cost.a"
  "libprore_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prore_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
