# Empty compiler generated dependencies file for prore_cost.
# This may be replaced when dependencies are built.
