file(REMOVE_RECURSE
  "libprore_cost.a"
)
