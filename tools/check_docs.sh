#!/bin/sh
# check_docs.sh — documentation consistency checks, run by ctest and CI.
#
#   1. Every relative markdown link in the repo's *.md files resolves to
#      an existing file (dead links rot silently otherwise).
#   2. Every --flag a CLI prints in its --help output is mentioned in
#      docs/cli.md (the consolidated reference cannot drift behind the
#      tools).
#
# Usage: check_docs.sh REPO_ROOT [cli-binary...]
# Exit: 0 clean, 1 any check failed.

set -u

root="${1:?usage: check_docs.sh REPO_ROOT [cli-binary...]}"
shift

fail=0

# ---- 1. Dead relative links ------------------------------------------------

# Top-level *.md plus docs/*.md; build output is not documentation, and
# SNIPPETS.md is verbatim exemplar code whose casts/calls masquerade as
# markdown links.
md_files=$(find "$root" -maxdepth 1 -name '*.md' ! -name 'SNIPPETS.md'
           find "$root/docs" -name '*.md' 2>/dev/null)

for f in $md_files; do
  dir=$(dirname "$f")
  # Extract ](target) link targets; one per line.
  grep -oE '\]\([^)]+\)' "$f" 2>/dev/null | sed 's/^](\(.*\))$/\1/' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Drop a #fragment suffix and any "title" part.
    path=$(printf '%s' "$target" | sed 's/#.*$//; s/ .*$//')
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "check_docs: dead link in ${f#"$root"/}: $target" >&2
      echo deadlink >> "${TMPDIR:-/tmp}/check_docs_fail.$$"
    fi
  done
done
if [ -f "${TMPDIR:-/tmp}/check_docs_fail.$$" ]; then
  rm -f "${TMPDIR:-/tmp}/check_docs_fail.$$"
  fail=1
fi

# ---- 2. --help flags are documented in docs/cli.md -------------------------

cli_md="$root/docs/cli.md"
if [ ! -f "$cli_md" ]; then
  echo "check_docs: missing $cli_md" >&2
  exit 1
fi

for bin in "$@"; do
  if [ ! -x "$bin" ]; then
    echo "check_docs: not executable: $bin" >&2
    fail=1
    continue
  fi
  name=$(basename "$bin")
  flags=$("$bin" --help 2>/dev/null | grep -oE -- '--[a-z][a-z-]*' | sort -u)
  if [ -z "$flags" ]; then
    echo "check_docs: $name --help printed no flags" >&2
    fail=1
    continue
  fi
  for flag in $flags; do
    if ! grep -q -- "$flag" "$cli_md"; then
      echo "check_docs: $name flag $flag missing from docs/cli.md" >&2
      fail=1
    fi
  done
done

if [ "$fail" -eq 0 ]; then
  echo "check_docs: OK"
fi
exit "$fail"
