// prore — command-line reorderer: reads a Prolog program, writes the
// reordered program (per-mode specialized versions + dispatchers), and
// optionally reports the model's predictions and a measured comparison.
//
// The transforms run inside the guarded pipeline (core/pipeline.h): a
// predicate whose transform fails any fault boundary (exception, non-ok
// status, validator error, watchdog trip) is retried down the degradation
// ladder (full -> no-unfold -> clause-order-only -> identity) instead of
// failing the run, so the output is always a complete program.
//
// Usage:
//   prore [options] input.pl [output.pl]
//
// Options:
//   --unfold            unfold single-clause predicates first (SVIII)
//   --factor            factor shared goals out of disjunctions / merge
//                       clauses with shared prefixes (SIV-D.2)
//   --guards            emit (ground tests -> reordered ; original)
//                       run-time-guarded clauses (SV-D); implies
//                       --no-specialize unless specialization is kept
//   --no-specialize     one version per predicate, original names
//   --no-clauses        keep clause order (goals only)
//   --no-goals          keep goal order (clauses only)
//   --jobs=N            transform SCC dependency groups in parallel on N
//                       worker threads (0 = classic whole-program pipeline,
//                       the default). Output is bit-identical for every
//                       N >= 1; N only changes wall-clock time.
//                       --jobs=auto maps to hardware_concurrency() (with a
//                       documented fallback to 1 when it reports 0).
//   --retry-attempts=N  total attempts per predicate on a transient fault
//                       (watchdog trip, deadline brush, OOM) before it is
//                       demoted a ladder rung; 1 disables retries
//                       (default 2 — the first try plus one retry)
//   --warren            order by Warren's heuristic instead of the chains
//   --lint              run the lint passes over the input program and
//                       print their diagnostics to stderr
//   --report            print per-predicate predicted costs
//   --report=text       print the pipeline quarantine report to stderr
//   --report=json       same, as one line of JSON (stable field order)
//   --strict            exit 3 if any predicate was quarantined (default:
//                       graceful — ship the degraded program, exit 5).
//                       With --jobs=N, also cancels sibling shards as soon
//                       as one group degrades (the exit code is already
//                       decided, so their results cannot matter)
//   --compare QUERY     run QUERY on both programs and report call counts
//   --emit-original     also echo the parsed original (normalization check)
//   --cost-steps=N        cost-model watchdog step budget (0 = off)
//   --cost-timeout-ms=N   cost-model watchdog wall-clock budget
//   --infer-steps=N       mode-inference watchdog step budget
//   --infer-timeout-ms=N  mode-inference watchdog wall-clock budget
//   --absint / --no-absint  toggle the abstract interpretation (groundness
//                           + determinism; on by default). --report prints
//                           its summaries when it ran.
//   --absint-steps=N        absint watchdog step budget (0 = off); a trip
//   --absint-timeout-ms=N   disables the stage, not the pipeline
//   --deadline-ms=N     whole-run wall-clock deadline (0 = off). Covers
//                       the transform pipeline and every --compare query.
//                       Expiry mid-pipeline ships the remaining work as
//                       identity (degraded, never partial); expiry during
//                       a compare query raises resource_error(
//                       deadline_exceeded) and exits 4. Composes with the
//                       per-query --timeout-ms: each query gets the
//                       earlier of the two budgets.
//   --timeout-ms=N      wall-clock deadline per --compare query (0 = off)
//   --max-depth=N       resolution-depth budget per --compare query
//   --max-heap-cells=N  heap growth budget per --compare query
//   --max-calls=N       resolved-call budget per --compare query
//   --profile-in=FILE   load a recorded execution profile (written by
//                       prolog --profile-out, docs/profile-format.md) and
//                       let its measured frequencies replace the static
//                       probability estimates in the cost model. Stale
//                       (source changed since recording), under-sampled,
//                       and unknown predicates keep the static model; the
//                       per-predicate decision is printed to stderr.
//
// Output goes to stdout when no output file is given.
//
// Exit codes:
//   0  success: fully optimized output, every compare query answered
//   1  a compare query failed (no answers)
//   2  usage error
//   3  error (I/O, parse, or uncaught failure) — also any degradation
//      when --strict is given
//   4  a resource budget was exhausted during --compare
//   5  output degraded: the program was emitted, but at least one
//      predicate was quarantined below full optimization (or a transform
//      stage was disabled); see the pipeline report. Only reported when
//      the exit would otherwise be 0 — codes 1/3/4 take precedence.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/modes.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "lint/lint.h"
#include "profile/profile.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: prore [--unfold] [--factor] [--guards] [--jobs=N|auto]\n"
      "             [--retry-attempts=N]\n"
      "             [--no-specialize] [--no-clauses] [--no-goals]\n"
      "             [--warren] [--lint] [--report]\n"
      "             [--report=text|json] [--strict]\n"
      "             [--compare QUERY] [--emit-original]\n"
      "             [--profile-in=FILE]\n"
      "             [--cost-steps=N] [--cost-timeout-ms=N]\n"
      "             [--infer-steps=N] [--infer-timeout-ms=N]\n"
      "             [--absint] [--no-absint]\n"
      "             [--absint-steps=N] [--absint-timeout-ms=N]\n"
      "             [--deadline-ms=N] [--timeout-ms=N] [--max-depth=N]\n"
      "             [--max-heap-cells=N] [--max-calls=N] [--help]\n"
      "             input.pl [output.pl]\n"
      "\n"
      "  --profile-in=FILE  feed a recorded execution profile (written by\n"
      "                     prolog --profile-out) into the cost model;\n"
      "                     stale or under-sampled predicates fall back to\n"
      "                     the static model per predicate\n"
      "  --help             print this help and exit 0\n"
      "\n"
      "Full reference: docs/cli.md\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

constexpr int kExitFailed = 1;
constexpr int kExitError = 3;
constexpr int kExitResource = 4;
constexpr int kExitDegraded = 5;

/// Parses the numeric tail of --flag=N; false on malformed or
/// out-of-range input (never throws, unlike std::stoull).
bool ParseBudget(const std::string& arg, const char* prefix, uint64_t* out) {
  const size_t n = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(n);
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  uint64_t parsed = 0;
  for (char c : value) {
    if (parsed > (UINT64_MAX - (c - '0')) / 10) return false;  // overflow
    parsed = parsed * 10 + (c - '0');
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  prore::core::PipelineOptions pipeline_options;
  prore::core::ReorderOptions& options = pipeline_options.reorder;
  bool report = false;
  bool lint = false;
  bool emit_original = false;
  bool strict = false;
  std::string pipeline_report_format;  // "", "text", or "json"
  prore::engine::SolveOptions solve_options;
  std::vector<std::string> compare_queries;
  std::string input_path, output_path;
  std::string profile_path;
  uint64_t deadline_ms = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help") {
      PrintUsage(stdout);
      return 0;
    }
    if (arg.rfind("--profile-in=", 0) == 0) {
      profile_path = arg.substr(std::strlen("--profile-in="));
      if (profile_path.empty()) {
        std::fprintf(stderr, "prore: --profile-in needs a file name\n");
        return Usage();
      }
      continue;
    }
    if (arg == "--unfold") {
      pipeline_options.unfold = true;
    } else if (arg == "--factor") {
      pipeline_options.factor = true;
    } else if (arg == "--guards") {
      options.runtime_guards = true;
    } else if (arg == "--no-specialize") {
      options.specialize_modes = false;
    } else if (arg == "--no-clauses") {
      options.reorder_clauses = false;
    } else if (arg == "--no-goals") {
      options.reorder_goals = false;
    } else if (arg == "--warren") {
      options.goal_search.warren_heuristic = true;
    } else if (arg == "--absint") {
      options.absint = true;
    } else if (arg == "--no-absint") {
      options.absint = false;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--report=text" || arg == "--report=json") {
      pipeline_report_format = arg.substr(9);
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--emit-original") {
      emit_original = true;
    } else if (arg == "--compare") {
      if (++i >= argc) return Usage();
      compare_queries.push_back(argv[i]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (arg == "--jobs=auto") {
        // hardware_concurrency() with a floor of 1 (the standard allows 0
        // for "unknown"); the floor lives in HardwareConcurrency().
        pipeline_options.jobs = prore::ThreadPool::HardwareConcurrency();
      } else {
        uint64_t jobs = 0;
        if (!ParseBudget(arg, "--jobs=", &jobs) || jobs > 1024) {
          std::fprintf(stderr, "prore: malformed option %s\n", arg.c_str());
          return Usage();
        }
        pipeline_options.jobs = static_cast<size_t>(jobs);
      }
    } else if (arg.rfind("--retry-attempts=", 0) == 0) {
      uint64_t attempts = 0;
      if (!ParseBudget(arg, "--retry-attempts=", &attempts) ||
          attempts < 1 || attempts > 100) {
        std::fprintf(stderr, "prore: malformed option %s\n", arg.c_str());
        return Usage();
      }
      pipeline_options.retry.max_attempts = static_cast<int>(attempts);
    } else if (
        ParseBudget(arg, "--cost-steps=",
                    &pipeline_options.cost_watchdog.max_steps) ||
        ParseBudget(arg, "--cost-timeout-ms=",
                    &pipeline_options.cost_watchdog.timeout_ms) ||
        ParseBudget(arg, "--infer-steps=",
                    &pipeline_options.inference_watchdog.max_steps) ||
        ParseBudget(arg, "--infer-timeout-ms=",
                    &pipeline_options.inference_watchdog.timeout_ms) ||
        ParseBudget(arg, "--absint-steps=",
                    &pipeline_options.absint_watchdog.max_steps) ||
        ParseBudget(arg, "--absint-timeout-ms=",
                    &pipeline_options.absint_watchdog.timeout_ms)) {
      // value stored by ParseBudget
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseBudget(arg, "--deadline-ms=", &deadline_ms)) {
        std::fprintf(stderr, "prore: malformed option %s\n", arg.c_str());
        return Usage();
      }
    } else if (arg.rfind("--timeout-ms=", 0) == 0 ||
               arg.rfind("--max-depth=", 0) == 0 ||
               arg.rfind("--max-heap-cells=", 0) == 0 ||
               arg.rfind("--max-calls=", 0) == 0) {
      bool ok =
          ParseBudget(arg, "--timeout-ms=", &solve_options.timeout_ms) ||
          ParseBudget(arg, "--max-depth=", &solve_options.max_depth) ||
          ParseBudget(arg, "--max-heap-cells=",
                      &solve_options.max_heap_cells) ||
          ParseBudget(arg, "--max-calls=", &solve_options.max_calls);
      if (!ok) {
        std::fprintf(stderr, "prore: malformed option %s\n", arg.c_str());
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage();
    } else if (input_path.empty()) {
      input_path = arg;
    } else if (output_path.empty()) {
      output_path = arg;
    } else {
      return Usage();
    }
  }
  if (input_path.empty()) return Usage();

  // The whole-run deadline starts ticking here, before I/O and parsing, so
  // --deadline-ms bounds the entire invocation — not just the pipeline.
  if (deadline_ms != 0) {
    const prore::Deadline run_deadline = prore::Deadline::AfterMs(deadline_ms);
    pipeline_options.exec = pipeline_options.exec.WithDeadline(run_deadline);
    solve_options.exec = solve_options.exec.WithDeadline(run_deadline);
  }
  pipeline_options.stop_on_degrade = strict;

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "prore: cannot open %s\n", input_path.c_str());
    return kExitError;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string source = buffer.str();

  prore::term::TermStore store;
  auto program = prore::reader::ParseProgramText(&store, source);
  if (!program.ok()) {
    std::fprintf(stderr, "prore: %s: %s\n", input_path.c_str(),
                 program.status().ToString().c_str());
    return kExitError;
  }
  if (emit_original) {
    std::fprintf(stderr, "%% --- parsed original ---\n%s%% --- end ---\n",
                 prore::reader::WriteProgram(store, *program).c_str());
  }

  if (lint) {
    prore::lint::Linter linter;
    auto diags = linter.Run(store, *program);
    if (!diags.ok()) {
      std::fprintf(stderr, "prore: lint failed: %s\n",
                   diags.status().ToString().c_str());
      return kExitError;
    }
    std::fputs(
        prore::lint::RenderText(*diags, input_path).c_str(), stderr);
  }

  // Outlives the pipeline: the cost model keeps a pointer to it.
  prore::cost::EmpiricalProfile empirical;
  if (!profile_path.empty()) {
    std::ifstream pin(profile_path);
    if (!pin) {
      std::fprintf(stderr, "prore: cannot open %s\n", profile_path.c_str());
      return kExitError;
    }
    std::ostringstream pbuf;
    pbuf << pin.rdbuf();
    auto data = prore::profile::FromJson(pbuf.str());
    if (!data.ok()) {
      std::fprintf(stderr, "prore: %s: %s\n", profile_path.c_str(),
                   data.status().ToString().c_str());
      return kExitError;
    }
    auto applied = prore::profile::BuildEmpirical(
        &store, *program, *data, prore::profile::ApplyOptions(), &empirical);
    if (!applied.ok()) {
      std::fprintf(stderr, "prore: %s: %s\n", profile_path.c_str(),
                   applied.status().ToString().c_str());
      return kExitError;
    }
    std::fprintf(stderr, "prore: profile %s: %s", profile_path.c_str(),
                 applied->ToText().c_str());
    options.profile = &empirical;
  }

  prore::core::GuardedPipeline pipeline(&store, pipeline_options);
  auto result = pipeline.Run(*program);
  if (!result.ok()) {
    std::fprintf(stderr, "prore: pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return kExitError;
  }
  for (const prore::lint::Diagnostic& d : result->diagnostics) {
    std::fprintf(stderr, "prore: %s\n", d.ToString().c_str());
  }

  const prore::core::PipelineReport& pipeline_report = result->report;
  if (pipeline_report_format == "json") {
    std::fprintf(stderr, "%s\n", pipeline_report.ToJson().c_str());
  } else if (pipeline_report_format == "text" ||
             pipeline_report.degraded()) {
    // Degradation is always reported, even unasked: shipping a partially
    // optimized program silently would defeat the report's purpose.
    std::fputs(pipeline_report.ToText().c_str(), stderr);
  }
  if (strict && pipeline_report.degraded()) {
    std::fprintf(stderr,
                 "prore: --strict: %zu predicate(s) quarantined\n",
                 pipeline_report.quarantined());
    return kExitError;
  }

  std::string text =
      prore::reader::WriteProgram(store, result->program);
  if (output_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "prore: cannot write %s\n", output_path.c_str());
      return kExitError;
    }
    out << "% reordered by prore (Gooley & Wah, ICDE 1988)\n" << text;
  }

  if (report) {
    if (!result->absint_report.empty()) {
      std::fputs(result->absint_report.c_str(), stderr);
    }
    std::fprintf(stderr, "%-28s %-8s %14s %14s %s\n", "predicate", "mode",
                 "predicted-orig", "predicted-new", "changed");
    for (const auto& r : result->reports) {
      std::string changed;
      if (r.clauses_changed) changed += "clauses ";
      if (r.goals_changed) changed += "goals";
      if (changed.empty()) changed = "-";
      std::fprintf(stderr, "%-28s %-8s %14.1f %14.1f %s\n",
                   prore::reader::PredName(store, r.pred).c_str(),
                   prore::analysis::ModeString(r.mode).c_str(),
                   r.predicted_original_cost, r.predicted_new_cost,
                   changed.c_str());
    }
  }

  int worst = 0;
  if (!compare_queries.empty()) {
    prore::core::Evaluator eval(&store, *program, result->program,
                                solve_options);
    for (const std::string& query : compare_queries) {
      auto c = eval.CompareQuery(query);
      if (!c.ok()) {
        std::fprintf(stderr, "prore: compare %s: %s\n", query.c_str(),
                     c.status().ToString().c_str());
        worst = std::max(
            worst, c.status().code() == prore::StatusCode::kResourceExhausted
                       ? kExitResource
                       : kExitError);
        continue;
      }
      std::fprintf(stderr,
                   "compare %s: %llu -> %llu calls (%.2fx), %zu answers, "
                   "set-equivalent: %s\n",
                   query.c_str(),
                   static_cast<unsigned long long>(c->original_calls),
                   static_cast<unsigned long long>(c->reordered_calls),
                   c->Ratio(), c->original_answers,
                   c->set_equivalent ? "yes" : "NO");
      if (c->original_answers == 0) worst = std::max(worst, kExitFailed);
    }
  }
  if (worst == 0 && pipeline_report.degraded()) return kExitDegraded;
  return worst;
}
