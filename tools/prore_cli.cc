// prore — command-line reorderer: reads a Prolog program, writes the
// reordered program (per-mode specialized versions + dispatchers), and
// optionally reports the model's predictions and a measured comparison.
//
// Usage:
//   prore [options] input.pl [output.pl]
//
// Options:
//   --unfold            unfold single-clause predicates first (SVIII)
//   --factor            factor shared goals out of disjunctions / merge
//                       clauses with shared prefixes (SIV-D.2)
//   --guards            emit (ground tests -> reordered ; original)
//                       run-time-guarded clauses (SV-D); implies
//                       --no-specialize unless specialization is kept
//   --no-specialize     one version per predicate, original names
//   --no-clauses        keep clause order (goals only)
//   --no-goals          keep goal order (clauses only)
//   --warren            order by Warren's heuristic instead of the chains
//   --lint              run the lint passes over the input program and
//                       print their diagnostics to stderr
//   --report            print per-predicate predicted costs
//   --compare QUERY     run QUERY on both programs and report call counts
//   --emit-original     also echo the parsed original (normalization check)
//   --timeout-ms=N      wall-clock deadline per --compare query (0 = off)
//   --max-depth=N       resolution-depth budget per --compare query
//   --max-heap-cells=N  heap growth budget per --compare query
//   --max-calls=N       resolved-call budget per --compare query
//
// Output goes to stdout when no output file is given.
//
// Exit codes (worst across --compare queries):
//   0  success (every compare query produced at least one answer)
//   1  a compare query failed (no answers)
//   2  usage error
//   3  error (I/O, parse, reorder failure, or uncaught Prolog exception)
//   4  a resource budget was exhausted

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/modes.h"
#include "core/evaluation.h"
#include "lint/lint.h"
#include "core/reorderer.h"
#include "core/disjunction.h"
#include "core/unfold.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: prore [--unfold] [--factor] [--guards]\n"
               "             [--no-specialize] [--no-clauses] [--no-goals]\n"
               "             [--warren] [--lint] [--report]\n"
               "             [--compare QUERY] [--emit-original]\n"
               "             [--timeout-ms=N] [--max-depth=N]\n"
               "             [--max-heap-cells=N] [--max-calls=N]\n"
               "             input.pl [output.pl]\n");
  return 2;
}

constexpr int kExitFailed = 1;
constexpr int kExitError = 3;
constexpr int kExitResource = 4;

/// Parses the numeric tail of --flag=N; returns false on malformed input.
bool ParseBudget(const std::string& arg, const char* prefix, uint64_t* out) {
  const size_t n = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(n);
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *out = std::stoull(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  prore::core::ReorderOptions options;
  bool report = false;
  bool lint = false;
  bool emit_original = false;
  bool unfold = false;
  bool factor = false;
  prore::engine::SolveOptions solve_options;
  std::vector<std::string> compare_queries;
  std::string input_path, output_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--unfold") {
      unfold = true;
    } else if (arg == "--factor") {
      factor = true;
    } else if (arg == "--guards") {
      options.runtime_guards = true;
    } else if (arg == "--no-specialize") {
      options.specialize_modes = false;
    } else if (arg == "--no-clauses") {
      options.reorder_clauses = false;
    } else if (arg == "--no-goals") {
      options.reorder_goals = false;
    } else if (arg == "--warren") {
      options.goal_search.warren_heuristic = true;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--emit-original") {
      emit_original = true;
    } else if (arg == "--compare") {
      if (++i >= argc) return Usage();
      compare_queries.push_back(argv[i]);
    } else if (arg.rfind("--timeout-ms=", 0) == 0 ||
               arg.rfind("--max-depth=", 0) == 0 ||
               arg.rfind("--max-heap-cells=", 0) == 0 ||
               arg.rfind("--max-calls=", 0) == 0) {
      bool ok =
          ParseBudget(arg, "--timeout-ms=", &solve_options.timeout_ms) ||
          ParseBudget(arg, "--max-depth=", &solve_options.max_depth) ||
          ParseBudget(arg, "--max-heap-cells=",
                      &solve_options.max_heap_cells) ||
          ParseBudget(arg, "--max-calls=", &solve_options.max_calls);
      if (!ok) {
        std::fprintf(stderr, "prore: malformed option %s\n", arg.c_str());
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage();
    } else if (input_path.empty()) {
      input_path = arg;
    } else if (output_path.empty()) {
      output_path = arg;
    } else {
      return Usage();
    }
  }
  if (input_path.empty()) return Usage();

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "prore: cannot open %s\n", input_path.c_str());
    return kExitError;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string source = buffer.str();

  prore::term::TermStore store;
  auto program = prore::reader::ParseProgramText(&store, source);
  if (!program.ok()) {
    std::fprintf(stderr, "prore: %s: %s\n", input_path.c_str(),
                 program.status().ToString().c_str());
    return kExitError;
  }
  if (emit_original) {
    std::fprintf(stderr, "%% --- parsed original ---\n%s%% --- end ---\n",
                 prore::reader::WriteProgram(store, *program).c_str());
  }

  if (lint) {
    prore::lint::Linter linter;
    auto diags = linter.Run(store, *program);
    if (!diags.ok()) {
      std::fprintf(stderr, "prore: lint failed: %s\n",
                   diags.status().ToString().c_str());
      return kExitError;
    }
    std::fputs(
        prore::lint::RenderText(*diags, input_path).c_str(), stderr);
  }

  if (unfold) {
    auto unfolded = prore::core::UnfoldProgram(&store, *program);
    if (!unfolded.ok()) {
      std::fprintf(stderr, "prore: unfolding failed: %s\n",
                   unfolded.status().ToString().c_str());
      return kExitError;
    }
    *program = std::move(unfolded).value();
  }

  if (factor) {
    prore::core::FactorStats stats;
    auto factored = prore::core::FactorDisjunctions(&store, *program, &stats);
    if (!factored.ok()) {
      std::fprintf(stderr, "prore: factoring failed: %s\n",
                   factored.status().ToString().c_str());
      return kExitError;
    }
    *program = std::move(factored).value();
    std::fprintf(stderr,
                 "prore: factoring hoisted %zu prefix / %zu suffix goals, "
                 "merged %zu clause pairs\n",
                 stats.hoisted_prefix, stats.hoisted_suffix,
                 stats.merged_clauses);
  }

  prore::core::Reorderer reorderer(&store, options);
  auto reordered = reorderer.Run(*program);
  if (!reordered.ok()) {
    std::fprintf(stderr, "prore: reordering failed: %s\n",
                 reordered.status().ToString().c_str());
    return kExitError;
  }
  for (const prore::lint::Diagnostic& d : reordered->diagnostics) {
    std::fprintf(stderr, "prore: %s\n", d.ToString().c_str());
  }

  std::string text =
      prore::reader::WriteProgram(store, reordered->program);
  if (output_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "prore: cannot write %s\n", output_path.c_str());
      return kExitError;
    }
    out << "% reordered by prore (Gooley & Wah, ICDE 1988)\n" << text;
  }

  if (report) {
    std::fprintf(stderr, "%-28s %-8s %14s %14s %s\n", "predicate", "mode",
                 "predicted-orig", "predicted-new", "changed");
    for (const auto& r : reordered->reports) {
      std::string changed;
      if (r.clauses_changed) changed += "clauses ";
      if (r.goals_changed) changed += "goals";
      if (changed.empty()) changed = "-";
      std::fprintf(stderr, "%-28s %-8s %14.1f %14.1f %s\n",
                   prore::reader::PredName(store, r.pred).c_str(),
                   prore::analysis::ModeString(r.mode).c_str(),
                   r.predicted_original_cost, r.predicted_new_cost,
                   changed.c_str());
    }
  }

  int worst = 0;
  if (!compare_queries.empty()) {
    prore::core::Evaluator eval(&store, *program, reordered->program,
                                solve_options);
    for (const std::string& query : compare_queries) {
      auto c = eval.CompareQuery(query);
      if (!c.ok()) {
        std::fprintf(stderr, "prore: compare %s: %s\n", query.c_str(),
                     c.status().ToString().c_str());
        worst = std::max(
            worst, c.status().code() == prore::StatusCode::kResourceExhausted
                       ? kExitResource
                       : kExitError);
        continue;
      }
      std::fprintf(stderr,
                   "compare %s: %llu -> %llu calls (%.2fx), %zu answers, "
                   "set-equivalent: %s\n",
                   query.c_str(),
                   static_cast<unsigned long long>(c->original_calls),
                   static_cast<unsigned long long>(c->reordered_calls),
                   c->Ratio(), c->original_answers,
                   c->set_equivalent ? "yes" : "NO");
      if (c->original_answers == 0) worst = std::max(worst, kExitFailed);
    }
  }
  return worst;
}
