// prolog — a tiny driver for the engine substrate: consult files, run
// queries from the command line or stdin, print answers and the
// instrumentation counters (the paper's cost metric).
//
// Usage:
//   prolog file1.pl [file2.pl ...] [-q 'goal'] ...
//   echo 'goal.' | prolog file.pl
//
// Each -q GOAL (no trailing dot) is solved to exhaustion; without -q,
// queries are read from stdin, one clause-terminated goal per line.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/machine.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

namespace {

int RunQuery(prore::engine::Machine* machine, prore::term::TermStore* store,
             const std::string& text) {
  auto query = prore::reader::ParseQueryText(store, text);
  if (!query.ok()) {
    std::fprintf(stderr, "?- %s\n   %s\n", text.c_str(),
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("?- %s\n", text.c_str());
  size_t count = 0;
  auto on_solution = [&]() {
    ++count;
    if (query->var_names.empty()) {
      std::printf("true");
    } else {
      bool first = true;
      for (const auto& [name, var] : query->var_names) {
        std::printf("%s%s = %s", first ? "" : ", ", name.c_str(),
                    prore::reader::WriteTerm(*store, var).c_str());
        first = false;
      }
    }
    std::printf(" ;\n");
    return true;
  };
  machine->ClearOutput();
  auto metrics = machine->Solve(query->term, on_solution);
  if (!metrics.ok()) {
    std::fprintf(stderr, "   error: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }
  if (!machine->output().empty()) {
    std::printf("%s", machine->output().c_str());
  }
  if (count == 0) std::printf("false.\n");
  std::printf("%% %llu solutions, %llu calls, %llu unification attempts, "
              "%llu backtracks\n\n",
              static_cast<unsigned long long>(metrics->solutions),
              static_cast<unsigned long long>(metrics->TotalCalls()),
              static_cast<unsigned long long>(metrics->head_unifications),
              static_cast<unsigned long long>(metrics->backtracks));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-q") == 0) {
      if (++i >= argc) {
        std::fprintf(stderr, "usage: prolog files... [-q 'goal']...\n");
        return 2;
      }
      queries.push_back(argv[i]);
      continue;
    }
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "prolog: cannot open %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source += buffer.str();
    source += "\n";
  }

  prore::term::TermStore store;
  auto program = prore::reader::ParseProgramText(&store, source);
  if (!program.ok()) {
    std::fprintf(stderr, "prolog: %s\n", program.status().ToString().c_str());
    return 1;
  }
  auto db = prore::engine::Database::Build(&store, *program);
  if (!db.ok()) {
    std::fprintf(stderr, "prolog: %s\n", db.status().ToString().c_str());
    return 1;
  }
  prore::engine::Machine machine(&store, &db.value());

  int failures = 0;
  if (!queries.empty()) {
    for (const std::string& q : queries) {
      failures += RunQuery(&machine, &store, q + ".");
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '%') continue;
      failures += RunQuery(&machine, &store, line);
    }
  }
  return failures == 0 ? 0 : 1;
}
