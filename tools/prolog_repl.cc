// prolog — a tiny driver for the engine substrate: consult files, run
// queries from the command line or stdin, print answers and the
// instrumentation counters (the paper's cost metric).
//
// Usage:
//   prolog [options] file1.pl [file2.pl ...] [-q 'goal'] ...
//   echo 'goal.' | prolog file.pl
//
// Each -q GOAL (no trailing dot) is solved to exhaustion; without -q,
// queries are read from stdin, one clause-terminated goal per line.
//
// Options (resource budgets; 0 = unlimited):
//   --deadline-ms=N      wall-clock deadline for the whole session, shared
//                        by every query. Composes with --timeout-ms: each
//                        query is bounded by the earlier of the remaining
//                        session deadline and its own per-query budget.
//                        Expiry raises a catchable
//                        error(resource_error(deadline_exceeded), deadline)
//                        (vs resource_error(time) for --timeout-ms), and
//                        uncaught maps to exit code 4 like any budget.
//   --timeout-ms=N       wall-clock deadline per query
//   --max-depth=N        maximum resolution depth (pending goal nodes)
//   --max-heap-cells=N   heap growth budget per query, in term cells
//   --max-calls=N        maximum resolved calls per query
//
// Exhausting a budget raises a catchable error(resource_error(...), ...)
// exception; uncaught, it is reported and mapped to the exit code below.
//
// Exit codes (worst across all queries):
//   0  every query solved (at least one solution)
//   1  some query failed (no solutions)
//   2  usage error
//   3  error (syntax error or uncaught Prolog exception)
//   4  resource budget exhausted

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/machine.h"
#include "engine/profile.h"
#include "profile/profile.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

namespace {

constexpr int kExitSolved = 0;
constexpr int kExitFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;
constexpr int kExitResource = 4;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: prolog [--deadline-ms=N] [--timeout-ms=N] [--max-depth=N]\n"
      "              [--max-heap-cells=N] [--max-calls=N]\n"
      "              [--profile-out=FILE] [--profile-merge] [--help]\n"
      "              files... [-q 'goal']...\n"
      "\n"
      "  --profile-out=FILE  record an execution profile of every query\n"
      "                      and write it to FILE (docs/profile-format.md)\n"
      "  --profile-merge     merge the recorded counts into an existing\n"
      "                      FILE instead of overwriting it\n"
      "  --help              print this help and exit 0\n"
      "\n"
      "Full reference: docs/cli.md\n");
}

int Usage() {
  PrintUsage(stderr);
  return kExitUsage;
}

/// Parses the numeric tail of --flag=N; returns false on malformed input.
bool ParseBudget(const std::string& arg, const char* prefix, uint64_t* out) {
  const size_t n = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(n);
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *out = std::stoull(value);
  return true;
}

int RunQuery(prore::engine::Machine* machine, prore::term::TermStore* store,
             const std::string& text) {
  auto query = prore::reader::ParseQueryText(store, text);
  if (!query.ok()) {
    std::fprintf(stderr, "?- %s\n   %s\n", text.c_str(),
                 query.status().ToString().c_str());
    return kExitError;
  }
  std::printf("?- %s\n", text.c_str());
  size_t count = 0;
  auto on_solution = [&]() {
    ++count;
    if (query->var_names.empty()) {
      std::printf("true");
    } else {
      bool first = true;
      for (const auto& [name, var] : query->var_names) {
        std::printf("%s%s = %s", first ? "" : ", ", name.c_str(),
                    prore::reader::WriteTerm(*store, var).c_str());
        first = false;
      }
    }
    std::printf(" ;\n");
    return true;
  };
  machine->ClearOutput();
  auto metrics = machine->Solve(query->term, on_solution);
  if (!machine->output().empty()) {
    std::printf("%s", machine->output().c_str());
  }
  if (!metrics.ok()) {
    auto error = prore::engine::PrologErrorFromStatus(metrics.status());
    if (error.has_value()) {
      std::fprintf(stderr, "   uncaught exception: %s\n",
                   error->ball.c_str());
    } else {
      std::fprintf(stderr, "   error: %s\n",
                   metrics.status().ToString().c_str());
    }
    return metrics.status().code() == prore::StatusCode::kResourceExhausted
               ? kExitResource
               : kExitError;
  }
  if (count == 0) std::printf("false.\n");
  std::printf("%% %llu solutions, %llu calls, %llu unification attempts, "
              "%llu backtracks\n\n",
              static_cast<unsigned long long>(metrics->solutions),
              static_cast<unsigned long long>(metrics->TotalCalls()),
              static_cast<unsigned long long>(metrics->head_unifications),
              static_cast<unsigned long long>(metrics->backtracks));
  return count == 0 ? kExitFailed : kExitSolved;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  std::vector<std::string> queries;
  prore::engine::SolveOptions solve_options;
  uint64_t deadline_ms = 0;
  std::string profile_out;
  bool profile_merge = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help") {
      PrintUsage(stdout);
      return kExitSolved;
    }
    if (arg == "-q") {
      if (++i >= argc) return Usage();
      queries.push_back(argv[i]);
      continue;
    }
    if (arg.rfind("--profile-out=", 0) == 0) {
      profile_out = arg.substr(std::strlen("--profile-out="));
      if (profile_out.empty()) {
        std::fprintf(stderr, "prolog: --profile-out needs a file name\n");
        return Usage();
      }
      continue;
    }
    if (arg == "--profile-merge") {
      profile_merge = true;
      continue;
    }
    if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseBudget(arg, "--deadline-ms=", &deadline_ms)) {
        std::fprintf(stderr, "prolog: malformed option %s\n", arg.c_str());
        return Usage();
      }
      continue;
    }
    if (arg.rfind("--timeout-ms=", 0) == 0 ||
        arg.rfind("--max-depth=", 0) == 0 ||
        arg.rfind("--max-heap-cells=", 0) == 0 ||
        arg.rfind("--max-calls=", 0) == 0) {
      bool ok = ParseBudget(arg, "--timeout-ms=", &solve_options.timeout_ms) ||
                ParseBudget(arg, "--max-depth=", &solve_options.max_depth) ||
                ParseBudget(arg, "--max-heap-cells=",
                            &solve_options.max_heap_cells) ||
                ParseBudget(arg, "--max-calls=", &solve_options.max_calls);
      if (!ok) {
        std::fprintf(stderr, "prolog: malformed option %s\n", arg.c_str());
        return Usage();
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "prolog: unknown option %s\n", arg.c_str());
      return Usage();
    }
    std::ifstream in(arg);
    if (!in) {
      std::fprintf(stderr, "prolog: cannot open %s\n", arg.c_str());
      return kExitError;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source += buffer.str();
    source += "\n";
  }

  // The session deadline is one fixed point in time shared by every query
  // (unlike --timeout-ms, which restarts per query); the engine takes the
  // earlier of the two for each solve.
  if (deadline_ms != 0) {
    solve_options.exec = solve_options.exec.WithDeadline(
        prore::Deadline::AfterMs(deadline_ms));
  }

  prore::term::TermStore store;
  auto program = prore::reader::ParseProgramText(&store, source);
  if (!program.ok()) {
    std::fprintf(stderr, "prolog: %s\n", program.status().ToString().c_str());
    return kExitError;
  }
  auto db = prore::engine::Database::Build(&store, *program);
  if (!db.ok()) {
    std::fprintf(stderr, "prolog: %s\n", db.status().ToString().c_str());
    return kExitError;
  }
  prore::engine::ProfileCollector collector;
  if (!profile_out.empty()) solve_options.profile = &collector;
  prore::engine::Machine machine(&store, &db.value(), solve_options);

  int worst = kExitSolved;
  if (!queries.empty()) {
    for (const std::string& q : queries) {
      worst = std::max(worst, RunQuery(&machine, &store, q + "."));
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '%') continue;
      worst = std::max(worst, RunQuery(&machine, &store, line));
    }
  }

  if (!profile_out.empty()) {
    auto hashes = prore::profile::ComputeProfileHashes(store, *program);
    if (!hashes.ok()) {
      std::fprintf(stderr, "prolog: profile: %s\n",
                   hashes.status().ToString().c_str());
      return kExitError;
    }
    prore::profile::ProfileData data =
        prore::profile::FromCollector(store, *program, collector, *hashes);
    if (profile_merge) {
      if (std::ifstream existing(profile_out); existing) {
        std::ostringstream buffer;
        buffer << existing.rdbuf();
        auto prior = prore::profile::FromJson(buffer.str());
        if (!prior.ok()) {
          std::fprintf(stderr, "prolog: cannot merge into %s: %s\n",
                       profile_out.c_str(),
                       prior.status().ToString().c_str());
          return kExitError;
        }
        auto merged = prore::profile::Merge(*prior, data);
        if (!merged.ok()) {
          std::fprintf(stderr, "prolog: %s\n",
                       merged.status().ToString().c_str());
          return kExitError;
        }
        data = std::move(*merged);
      }
    }
    std::ofstream out(profile_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "prolog: cannot write %s\n", profile_out.c_str());
      return kExitError;
    }
    out << prore::profile::ToJson(data) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "prolog: write to %s failed\n",
                   profile_out.c_str());
      return kExitError;
    }
  }
  return worst;
}
