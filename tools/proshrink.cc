// proshrink — automatic repro shrinker: given a Prolog program that makes
// the reordering pipeline fail, delta-debugs it down to a (1-minimal at
// clause granularity) reproducer that still trips the same failure oracle.
//
// Usage:
//   proshrink --oracle=KIND [options] input.pl
//
// Oracles (--oracle=...):
//   validator     reordering emits an error-severity validator diagnostic
//   crash         a transform stage throws or returns a non-ok status
//   differential  original and reordered programs disagree on a query
//                 (answer multisets or error outcomes)
//   watchdog      a transform watchdog / resource budget trips
//
// Options:
//   --query Q             differential workload query (repeatable; without
//                         any, one open query per predicate is generated)
//   --unfold              include the unfolding pre-pass in the transform
//   --factor              include disjunction factoring
//   --out=FILE            write the minimized program here (default stdout)
//   --dump                also write a repro_<oracle>_<hash>.pl artifact to
//                         $PRORE_ARTIFACT_DIR (default ./repro_artifacts)
//   --max-oracle-calls=N  probe budget (default 2000)
//   --deadline-ms=N       wall-clock deadline for the whole minimization
//                         (0 = off). Expiry is graceful: the best
//                         still-failing candidate found so far is written
//                         and the exit code stays 0, with 1-minimal
//                         reported as "no" — same contract as running out
//                         of --max-oracle-calls. Per-probe solve budgets
//                         (OracleOptions' timeout_ms) still apply inside
//                         each oracle call; the earlier budget wins.
//   --cost-steps=N        cost-model watchdog step budget (watchdog oracle)
//   --cost-timeout-ms=N   cost-model watchdog wall-clock budget
//   --infer-steps=N       mode-inference watchdog step budget
//   --infer-timeout-ms=N  mode-inference watchdog wall-clock budget
//
// Exit codes:
//   0  shrunk; minimized program written
//   1  the input does not fail the oracle (nothing to shrink)
//   2  usage error
//   3  I/O error (cannot read input / write output)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/shrinker.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: proshrink --oracle=validator|crash|differential|watchdog\n"
      "                 [--query Q]... [--unfold] [--factor] [--out=FILE]\n"
      "                 [--dump] [--max-oracle-calls=N] [--deadline-ms=N]\n"
      "                 [--cost-steps=N] [--cost-timeout-ms=N]\n"
      "                 [--infer-steps=N] [--infer-timeout-ms=N]\n"
      "                 [--help] input.pl\n"
      "\n"
      "Full reference: docs/cli.md\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

/// Parses the numeric tail of --flag=N; false on malformed or
/// out-of-range input (no exceptions leak to the caller).
bool ParseBudget(const std::string& arg, const char* prefix, uint64_t* out) {
  const size_t n = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(n);
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  uint64_t parsed = 0;
  for (char c : value) {
    if (parsed > (UINT64_MAX - (c - '0')) / 10) return false;  // overflow
    parsed = parsed * 10 + (c - '0');
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string oracle_kind, input_path, output_path;
  bool dump = false;
  prore::testing::OracleOptions oracle_options;
  prore::testing::ShrinkOptions shrink_options;
  uint64_t max_probes = 0;
  uint64_t deadline_ms = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (arg.rfind("--oracle=", 0) == 0) {
      oracle_kind = arg.substr(9);
    } else if (arg == "--query") {
      if (++i >= argc) return Usage();
      oracle_options.queries.push_back(argv[i]);
    } else if (arg == "--unfold") {
      oracle_options.unfold = true;
    } else if (arg == "--factor") {
      oracle_options.factor = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      output_path = arg.substr(6);
    } else if (ParseBudget(arg, "--max-oracle-calls=", &max_probes)) {
      shrink_options.max_oracle_calls = static_cast<size_t>(max_probes);
    } else if (ParseBudget(arg, "--deadline-ms=", &deadline_ms)) {
      // deadline armed after argument parsing, below
    } else if (ParseBudget(arg, "--cost-steps=",
                           &oracle_options.reorder.cost_watchdog.max_steps) ||
               ParseBudget(arg, "--cost-timeout-ms=",
                           &oracle_options.reorder.cost_watchdog.timeout_ms) ||
               ParseBudget(
                   arg, "--infer-steps=",
                   &oracle_options.reorder.inference.watchdog.max_steps) ||
               ParseBudget(
                   arg, "--infer-timeout-ms=",
                   &oracle_options.reorder.inference.watchdog.timeout_ms)) {
      // value stored by ParseBudget
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "proshrink: unknown option %s\n", arg.c_str());
      return Usage();
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return Usage();
    }
  }
  if (input_path.empty() || oracle_kind.empty()) return Usage();
  if (deadline_ms != 0) {
    shrink_options.exec = shrink_options.exec.WithDeadline(
        prore::Deadline::AfterMs(deadline_ms));
  }

  prore::testing::Oracle oracle;
  if (oracle_kind == "validator") {
    oracle = prore::testing::ValidatorErrorOracle(oracle_options);
  } else if (oracle_kind == "crash") {
    oracle = prore::testing::CrashOracle(oracle_options);
  } else if (oracle_kind == "differential") {
    oracle = prore::testing::DifferentialOracle(oracle_options);
  } else if (oracle_kind == "watchdog") {
    oracle = prore::testing::WatchdogOracle(oracle_options);
  } else {
    std::fprintf(stderr, "proshrink: unknown oracle %s\n",
                 oracle_kind.c_str());
    return Usage();
  }

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "proshrink: cannot open %s\n", input_path.c_str());
    return 3;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto result =
      prore::testing::Shrink(buffer.str(), oracle, shrink_options);
  if (!result.ok()) {
    std::fprintf(stderr, "proshrink: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "proshrink: %zu -> %zu clause%s, %zu goal%s removed, "
               "%zu oracle call%s, 1-minimal: %s\n",
               result->original_clauses, result->final_clauses,
               result->final_clauses == 1 ? "" : "s", result->removed_goals,
               result->removed_goals == 1 ? "" : "s", result->oracle_calls,
               result->oracle_calls == 1 ? "" : "s",
               result->one_minimal
                   ? "yes"
                   : "no (probe budget or deadline ran out)");

  if (output_path.empty()) {
    std::fputs(result->source.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "proshrink: cannot write %s\n",
                   output_path.c_str());
      return 3;
    }
    out << result->source;
  }
  if (dump) {
    auto path = prore::testing::DumpRepro(
        oracle_kind, result->source,
        "minimized from " + input_path);
    if (path.ok()) {
      std::fprintf(stderr, "proshrink: artifact written to %s\n",
                   path->c_str());
    } else {
      std::fprintf(stderr, "proshrink: artifact dump failed: %s\n",
                   path.status().ToString().c_str());
      return 3;
    }
  }
  return 0;
}
