// prored — the persistent reorder/lint/query daemon.
//
// Speaks the length-prefixed JSON protocol of src/common/frame_io.h on a
// Unix-domain socket (and optionally TCP on 127.0.0.1). Clients load
// programs into named sessions, then reorder, lint, and solve against
// them; analysis results are cached across requests by content hash, so
// an edit to one predicate re-runs only its dependency cone.
//
// Usage:
//   prored --socket=PATH [--tcp-port=N] [--workers=N|auto]
//          [--max-queue=N] [--max-connections=N] [--deadline-ms=N]
//          [--session-cells=N] [--max-frame-bytes=N] [--idle-timeout-ms=N]
//          [--io-timeout-ms=N] [--cache-entries=N] [--retry-attempts=N]
//          [--jobs=N|auto] [--profile-in=FILE]
//
// --profile-in=FILE loads an execution profile (docs/profile-format.md)
// as the server-wide default: every session loaded without its own
// "profile" field feeds it into the reorder cost model, with per-predicate
// staleness fallback to the static model.
//
// Exit codes (the subset of the prore contract a daemon can meet):
//   0  clean shutdown (SIGTERM/SIGINT drain, or {"op":"shutdown"})
//   2  usage error
//   3  bind/listen failure
//
// SIGTERM and SIGINT drain gracefully: stop accepting, fail new requests
// with {"status":"shutting_down"}, cancel in-flight work through the root
// CancellationSource, finish every reply frame in progress, then exit.

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "profile/profile.h"
#include "server/server.h"

namespace {

// The signal handler can only poke something async-signal-safe; the
// server exposes exactly one such method.
prore::server::Server* g_server = nullptr;

void OnTermSignal(int) {
  if (g_server != nullptr) g_server->NotifyShutdownAsync();
}

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: prored --socket=PATH [--tcp-port=N] [--workers=N|auto]\n"
      "              [--max-queue=N] [--max-connections=N]\n"
      "              [--deadline-ms=N] [--session-cells=N]\n"
      "              [--max-frame-bytes=N] [--idle-timeout-ms=N]\n"
      "              [--io-timeout-ms=N] [--cache-entries=N]\n"
      "              [--retry-attempts=N] [--jobs=N|auto]\n"
      "              [--profile-in=FILE] [--help]\n"
      "\n"
      "  --profile-in=FILE  default execution profile for every session\n"
      "                     loaded without its own \"profile\" field\n"
      "                     (docs/profile-format.md)\n"
      "  --help             print this help and exit 0\n"
      "\n"
      "Full reference: docs/cli.md\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

/// Parses the numeric tail of --flag=N; false on malformed or
/// out-of-range input (never throws, unlike std::stoull).
bool ParseNum(const std::string& arg, const char* prefix, uint64_t* out) {
  const size_t n = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(n);
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  uint64_t parsed = 0;
  for (char c : value) {
    if (parsed > (UINT64_MAX - (c - '0')) / 10) return false;  // overflow
    parsed = parsed * 10 + (c - '0');
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  prore::server::ServerOptions options;
  // A daemon defaults to using the machine; --workers=N pins it.
  options.workers = prore::ThreadPool::HardwareConcurrency();
  options.pipeline.jobs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t n = 0;
    if (arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (arg.rfind("--profile-in=", 0) == 0) {
      const std::string path = arg.substr(std::strlen("--profile-in="));
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "prored: cannot open %s\n", path.c_str());
        return Usage();
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      auto data = prore::profile::FromJson(buffer.str());
      if (!data.ok()) {
        std::fprintf(stderr, "prored: %s: %s\n", path.c_str(),
                     data.status().ToString().c_str());
        return Usage();
      }
      options.default_profile =
          std::make_shared<const prore::profile::ProfileData>(
              std::move(*data));
    } else if (arg.rfind("--socket=", 0) == 0) {
      options.socket_path = arg.substr(std::strlen("--socket="));
    } else if (ParseNum(arg, "--tcp-port=", &n) && n <= 65535) {
      options.tcp_port = static_cast<int>(n);
    } else if (arg == "--workers=auto") {
      options.workers = prore::ThreadPool::HardwareConcurrency();
    } else if (ParseNum(arg, "--workers=", &n) && n <= 1024) {
      options.workers = static_cast<size_t>(n);
    } else if (ParseNum(arg, "--max-queue=", &n) && n >= 1 && n <= 100000) {
      options.max_queue = static_cast<size_t>(n);
    } else if (ParseNum(arg, "--max-connections=", &n) && n >= 1 &&
               n <= 100000) {
      options.max_connections = static_cast<size_t>(n);
    } else if (ParseNum(arg, "--deadline-ms=", &n)) {
      options.default_deadline_ms = n;
    } else if (ParseNum(arg, "--session-cells=", &n)) {
      options.session_cell_limit = static_cast<size_t>(n);
    } else if (ParseNum(arg, "--max-frame-bytes=", &n) && n >= 16) {
      options.max_frame_bytes = static_cast<size_t>(n);
    } else if (ParseNum(arg, "--idle-timeout-ms=", &n)) {
      options.idle_timeout_ms = n;
    } else if (ParseNum(arg, "--io-timeout-ms=", &n)) {
      options.io_timeout_ms = n;
    } else if (ParseNum(arg, "--cache-entries=", &n) && n >= 1 &&
               n <= 1000000) {
      options.cache_entries = static_cast<size_t>(n);
    } else if (ParseNum(arg, "--retry-attempts=", &n) && n >= 1 && n <= 100) {
      options.pipeline.retry.max_attempts = static_cast<int>(n);
    } else if (arg == "--jobs=auto") {
      options.pipeline.jobs = prore::ThreadPool::HardwareConcurrency();
    } else if (ParseNum(arg, "--jobs=", &n) && n <= 1024) {
      options.pipeline.jobs = static_cast<size_t>(n);
    } else {
      std::fprintf(stderr, "prored: unknown or malformed option %s\n",
                   arg.c_str());
      return Usage();
    }
  }
  if (options.socket_path.empty() && options.tcp_port < 0) {
    std::fprintf(stderr, "prored: need --socket=PATH and/or --tcp-port=N\n");
    return Usage();
  }

  prore::server::Server server(std::move(options));
  if (prore::Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "prored: %s\n", st.ToString().c_str());
    return 3;
  }
  g_server = &server;

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnTermSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A client that disappears mid-write must cost us an errno, not the
  // process; writes already use MSG_NOSIGNAL, this covers stray paths.
  ::signal(SIGPIPE, SIG_IGN);

  if (!server.socket_path().empty()) {
    std::fprintf(stderr, "prored: listening on %s\n",
                 server.socket_path().c_str());
  }
  if (server.tcp_port() >= 0) {
    std::fprintf(stderr, "prored: listening on 127.0.0.1:%d\n",
                 server.tcp_port());
  }

  server.Wait();
  g_server = nullptr;

  prore::server::ServerStatsSnapshot stats = server.Stats();
  std::fprintf(stderr,
               "prored: drained (%llu requests, %llu completed, %llu shed, "
               "%llu protocol errors)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}
