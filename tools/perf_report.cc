// Emits BENCH_engine.json: wall-clock and engine counters for the Table
// II/III/IV workloads plus the unification-heavy microbench scenarios, so
// the engine's perf trajectory is machine-readable across PRs.
//
// Schema: an array of
//   {"workload": str, "wall_ns": int, "calls": int, "unifications": int,
//    "heap_cells": int, "choicepoints_elided": int, "threads": int,
//    "hw_threads": int}
// where `calls` is the paper's headline counter (user + builtin calls),
// `unifications` counts clause-head unification attempts, `heap_cells`
// is the peak term cells live above the query watermark,
// `choicepoints_elided` counts choicepoints the engine skipped because a
// head-exclusivity witness proved at most one clause could match, `threads`
// is how
// many engine workers solved the scenario concurrently (snapshot-backed
// machines; 1 = the classic single machine), and `hw_threads` is the
// host's hardware concurrency — so scaling numbers carry their context.
//
// Usage: perf_report [--threads N] [output.json]   (default
// BENCH_engine.json; --threads N runs the micro scenarios on N concurrent
// machines over one shared ProgramSnapshot, counters summed across
// workers)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "engine/database.h"
#include "engine/machine.h"
#include "engine/snapshot.h"
#include "programs/programs.h"
#include "programs/workload_runner.h"
#include "reader/parser.h"
#include "term/store.h"

namespace {

struct Row {
  std::string workload;
  uint64_t wall_ns = 0;
  uint64_t calls = 0;
  uint64_t unifications = 0;
  uint64_t heap_cells = 0;
  uint64_t choicepoints_elided = 0;
  size_t threads = 1;  ///< concurrent engine workers for this entry
};

// Repeats a scenario until it has run for at least ~50ms and reports the
// best-of-n wall time (steady-state, machine warm), with the counters of a
// single run.
template <typename Fn>
Row Measure(const std::string& name, Fn&& run_once) {
  Row row;
  row.workload = name;
  uint64_t total_ns = 0;
  uint64_t best_ns = UINT64_MAX;
  int runs = 0;
  while (total_ns < 50'000'000 || runs < 3) {
    auto t0 = std::chrono::steady_clock::now();
    prore::engine::Metrics m = run_once();
    auto t1 = std::chrono::steady_clock::now();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    total_ns += ns;
    if (ns < best_ns) best_ns = ns;
    row.calls = m.TotalCalls();
    row.unifications = m.head_unifications;
    row.heap_cells = m.heap_cells;
    row.choicepoints_elided = m.choicepoints_elided;
    if (++runs >= 200) break;
  }
  row.wall_ns = best_ns;
  return row;
}

/// One warm machine per micro scenario: program text + goal text.
struct MicroScenario {
  const char* name;
  const char* program;
  const char* goal;
};

// The unification-heavy solve scenarios mirrored from bench/microbench.cc
// (BM_Solve*) plus backtracking fan-outs from the stress test.
const MicroScenario kMicro[] = {
    {"micro_nrev30",
     "nrev([], []).\n"
     "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
     "app([], L, L).\n"
     "app([H|T], L, [H|R]) :- app(T, L, R).\n",
     "nrev([0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,"
     "24,25,26,27,28,29], R)"},
    {"micro_between_fanout",
     "pick(X) :- between(1, 2000, X), 0 is X mod 499.\n",
     "pick(X), fail"},
    {"micro_member_deep",
     "probe(L) :- member(X, L), X == 199.\n", ""},  // goal built below
};

Row MeasureMicro(const MicroScenario& s, const std::string& goal_text,
                 size_t threads) {
  prore::term::TermStore store;
  auto parsed = prore::reader::ParseProgramText(&store, s.program);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse %s: %s\n", s.name,
                 parsed.status().message().c_str());
    return Row{s.name};
  }

  if (threads <= 1) {
    auto db = prore::engine::Database::Build(&store, *parsed);
    if (!db.ok()) {
      std::fprintf(stderr, "build %s: %s\n", s.name,
                   db.status().message().c_str());
      return Row{s.name};
    }
    prore::engine::Machine machine(&store, &*db);
    auto q = prore::reader::ParseQueryText(&store, goal_text + ".");
    if (!q.ok()) {
      std::fprintf(stderr, "query %s: %s\n", s.name,
                   q.status().message().c_str());
      return Row{s.name};
    }
    return Measure(s.name, [&]() {
      auto m = machine.Solve(q->term);
      return m.ok() ? *m : prore::engine::Metrics{};
    });
  }

  // N warm snapshot-backed machines, each with its private heap clone of
  // the shared compiled program; one run = every machine solves the query
  // once, concurrently. Counters are summed across workers.
  auto snap = prore::engine::ProgramSnapshot::Compile(store, *parsed);
  if (!snap.ok()) {
    std::fprintf(stderr, "snapshot %s: %s\n", s.name,
                 snap.status().message().c_str());
    return Row{s.name};
  }
  std::vector<std::unique_ptr<prore::engine::Machine>> machines;
  std::vector<prore::term::TermRef> goals;
  for (size_t i = 0; i < threads; ++i) {
    machines.push_back(std::make_unique<prore::engine::Machine>(*snap));
    auto q = prore::reader::ParseQueryText(&machines[i]->store(),
                                           goal_text + ".");
    if (!q.ok()) {
      std::fprintf(stderr, "query %s: %s\n", s.name,
                   q.status().message().c_str());
      return Row{s.name};
    }
    goals.push_back(q->term);
  }
  std::vector<prore::engine::Metrics> worker_metrics(threads);
  Row row = Measure(s.name, [&]() {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      pool.emplace_back([&, i]() {
        auto m = machines[i]->Solve(goals[i]);
        worker_metrics[i] = m.ok() ? *m : prore::engine::Metrics{};
      });
    }
    for (std::thread& t : pool) t.join();
    prore::engine::Metrics total;
    for (const auto& m : worker_metrics) total += m;
    return total;
  });
  row.threads = threads;
  return row;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_engine.json";
  size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1 || n > 1024) {
        std::fprintf(stderr, "perf_report: bad --threads %s\n", argv[i]);
        return 1;
      }
      threads = static_cast<size_t>(n);
    } else {
      out_path = argv[i];
    }
  }
  std::vector<Row> rows;

  // Table II/III/IV (+ Warren geography) workloads, full query sets.
  for (const prore::programs::BenchmarkProgram* p :
       prore::programs::AllPrograms()) {
    prore::engine::SolveOptions opts;
    rows.push_back(Measure("table_" + p->name, [&]() {
      auto run = prore::programs::RunWorkload(*p, opts);
      if (!run.ok()) {
        std::fprintf(stderr, "workload %s: %s\n", p->name.c_str(),
                     run.status().message().c_str());
        return prore::engine::Metrics{};
      }
      return run->metrics;
    }));
  }

  // Unification-heavy micro scenarios on warm machines (--threads N runs
  // N concurrent snapshot-backed workers per scenario).
  rows.push_back(MeasureMicro(kMicro[0], kMicro[0].goal, threads));
  rows.push_back(MeasureMicro(kMicro[1], kMicro[1].goal, threads));
  {
    std::string list = "[";
    for (int i = 0; i < 200; ++i) {
      if (i) list += ",";
      list += std::to_string(i);
    }
    list += "]";
    rows.push_back(MeasureMicro(kMicro[2], "probe(" + list + ")", threads));
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"workload\": \"%s\", \"wall_ns\": %llu, "
                 "\"calls\": %llu, \"unifications\": %llu, "
                 "\"heap_cells\": %llu, \"choicepoints_elided\": %llu, "
                 "\"threads\": %zu, \"hw_threads\": %zu}%s\n",
                 JsonEscape(r.workload).c_str(),
                 static_cast<unsigned long long>(r.wall_ns),
                 static_cast<unsigned long long>(r.calls),
                 static_cast<unsigned long long>(r.unifications),
                 static_cast<unsigned long long>(r.heap_cells),
                 static_cast<unsigned long long>(r.choicepoints_elided),
                 r.threads, prore::ThreadPool::HardwareConcurrency(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu workloads)\n", out_path, rows.size());
  return 0;
}
