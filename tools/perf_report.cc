// Emits BENCH_engine.json: wall-clock and engine counters for the Table
// II/III/IV workloads plus the unification-heavy microbench scenarios, so
// the engine's perf trajectory is machine-readable across PRs.
//
// Schema: an array of
//   {"workload": str, "wall_ns": int, "calls": int, "unifications": int,
//    "heap_cells": int}
// where `calls` is the paper's headline counter (user + builtin calls),
// `unifications` counts clause-head unification attempts, and `heap_cells`
// is the peak term cells live above the query watermark.
//
// Usage: perf_report [output.json]   (default BENCH_engine.json)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/machine.h"
#include "programs/programs.h"
#include "programs/workload_runner.h"
#include "reader/parser.h"
#include "term/store.h"

namespace {

struct Row {
  std::string workload;
  uint64_t wall_ns = 0;
  uint64_t calls = 0;
  uint64_t unifications = 0;
  uint64_t heap_cells = 0;
};

// Repeats a scenario until it has run for at least ~50ms and reports the
// best-of-n wall time (steady-state, machine warm), with the counters of a
// single run.
template <typename Fn>
Row Measure(const std::string& name, Fn&& run_once) {
  Row row;
  row.workload = name;
  uint64_t total_ns = 0;
  uint64_t best_ns = UINT64_MAX;
  int runs = 0;
  while (total_ns < 50'000'000 || runs < 3) {
    auto t0 = std::chrono::steady_clock::now();
    prore::engine::Metrics m = run_once();
    auto t1 = std::chrono::steady_clock::now();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    total_ns += ns;
    if (ns < best_ns) best_ns = ns;
    row.calls = m.TotalCalls();
    row.unifications = m.head_unifications;
    row.heap_cells = m.heap_cells;
    if (++runs >= 200) break;
  }
  row.wall_ns = best_ns;
  return row;
}

/// One warm machine per micro scenario: program text + goal text.
struct MicroScenario {
  const char* name;
  const char* program;
  const char* goal;
};

// The unification-heavy solve scenarios mirrored from bench/microbench.cc
// (BM_Solve*) plus backtracking fan-outs from the stress test.
const MicroScenario kMicro[] = {
    {"micro_nrev30",
     "nrev([], []).\n"
     "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
     "app([], L, L).\n"
     "app([H|T], L, [H|R]) :- app(T, L, R).\n",
     "nrev([0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,"
     "24,25,26,27,28,29], R)"},
    {"micro_between_fanout",
     "pick(X) :- between(1, 2000, X), 0 is X mod 499.\n",
     "pick(X), fail"},
    {"micro_member_deep",
     "probe(L) :- member(X, L), X == 199.\n", ""},  // goal built below
};

Row MeasureMicro(const MicroScenario& s, const std::string& goal_text) {
  prore::term::TermStore store;
  auto parsed = prore::reader::ParseProgramText(&store, s.program);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse %s: %s\n", s.name,
                 parsed.status().message().c_str());
    return Row{s.name};
  }
  auto db = prore::engine::Database::Build(&store, *parsed);
  if (!db.ok()) {
    std::fprintf(stderr, "build %s: %s\n", s.name,
                 db.status().message().c_str());
    return Row{s.name};
  }
  prore::engine::Machine machine(&store, &*db);
  auto q = prore::reader::ParseQueryText(&store, goal_text + ".");
  if (!q.ok()) {
    std::fprintf(stderr, "query %s: %s\n", s.name,
                 q.status().message().c_str());
    return Row{s.name};
  }
  return Measure(s.name, [&]() {
    auto m = machine.Solve(q->term);
    return m.ok() ? *m : prore::engine::Metrics{};
  });
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  std::vector<Row> rows;

  // Table II/III/IV (+ Warren geography) workloads, full query sets.
  for (const prore::programs::BenchmarkProgram* p :
       prore::programs::AllPrograms()) {
    prore::engine::SolveOptions opts;
    rows.push_back(Measure("table_" + p->name, [&]() {
      auto run = prore::programs::RunWorkload(*p, opts);
      if (!run.ok()) {
        std::fprintf(stderr, "workload %s: %s\n", p->name.c_str(),
                     run.status().message().c_str());
        return prore::engine::Metrics{};
      }
      return run->metrics;
    }));
  }

  // Unification-heavy micro scenarios on a warm machine.
  rows.push_back(MeasureMicro(kMicro[0], kMicro[0].goal));
  rows.push_back(MeasureMicro(kMicro[1], kMicro[1].goal));
  {
    std::string list = "[";
    for (int i = 0; i < 200; ++i) {
      if (i) list += ",";
      list += std::to_string(i);
    }
    list += "]";
    rows.push_back(MeasureMicro(kMicro[2], "probe(" + list + ")"));
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"workload\": \"%s\", \"wall_ns\": %llu, "
                 "\"calls\": %llu, \"unifications\": %llu, "
                 "\"heap_cells\": %llu}%s\n",
                 JsonEscape(r.workload).c_str(),
                 static_cast<unsigned long long>(r.wall_ns),
                 static_cast<unsigned long long>(r.calls),
                 static_cast<unsigned long long>(r.unifications),
                 static_cast<unsigned long long>(r.heap_cells),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu workloads)\n", out_path, rows.size());
  return 0;
}
