// prolint — Prolog diagnostics tool built on the prore lint subsystem.
//
// Runs the registered lint passes (PL001..PL008) over each input file and,
// unless --no-check-reorder is given, reorders the program and runs the
// reorder validator (PL100..PL103) over the result — exercising the same
// self-verification path the optimizer uses.
//
// Usage:
//   prolint [options] file.pl...
//
// Options:
//   --format=text|json|sarif  output format (default text). sarif emits
//                       one SARIF 2.1.0 log covering every input file.
//   --werror            treat warnings as errors (exit 1)
//   --no-check-reorder  skip the reorder + validate step
//   --only=LIST         run only the selected passes; LIST is a comma-
//                       separated mix of pass names and codes, including
//                       the validator codes PL100-PL103 and the reorderer
//                       notes PL210/PL211 (selecting any of those runs the
//                       reorder check and filters its findings). Repeatable.
//   --deadline-ms=N     wall-clock deadline for the whole invocation
//                       (0 = off), covering every input file. The lint
//                       passes themselves are cheap and always finish; the
//                       deadline bounds the reorder + validate step, which
//                       runs real analyses. When it expires, the remaining
//                       reorder checks degrade to a "reorder check
//                       skipped" PL000 note — lint findings are still
//                       reported and the exit code is unchanged (skipped
//                       self-checks are not failures).
//   --list-passes       list the registered passes and exit
//
// Exit codes: 0 clean (or warnings without --werror), 1 diagnostics at the
// gating severity or a file error, 2 usage error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/reorderer.h"
#include "lint/diagnostic.h"
#include "lint/lint.h"
#include "reader/parser.h"
#include "term/store.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: prolint [--format=text|json|sarif] [--werror]\n"
               "               [--no-check-reorder] [--only=PASS,PASS,...]\n"
               "               [--deadline-ms=N] [--list-passes] [--help]\n"
               "               file.pl...\n"
               "\n"
               "Full reference: docs/cli.md\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

/// Parses the numeric tail of --flag=N; false on malformed or
/// out-of-range input (never throws, unlike std::stoull).
bool ParseBudget(const std::string& arg, const char* prefix, uint64_t* out) {
  const size_t n = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(n);
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  uint64_t parsed = 0;
  for (char c : value) {
    if (parsed > (UINT64_MAX - (c - '0')) / 10) return false;  // overflow
    parsed = parsed * 10 + (c - '0');
  }
  *out = parsed;
  return true;
}

/// Codes emitted by the reorder + validate step rather than by a
/// registered pass: accepted by --only all the same.
bool IsReorderCheckCode(const std::string& sel) {
  return sel == "PL100" || sel == "PL101" || sel == "PL102" ||
         sel == "PL103" || sel == "PL210" || sel == "PL211";
}

int ListPasses() {
  for (const auto& pass : prore::lint::PassRegistry::Default().passes()) {
    std::printf("%s  %-20s %s\n", pass->code(), pass->name(),
                pass->description());
  }
  std::printf("PL100-PL103 reorder-validator   "
              "self-verification of the reorderer's output\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Format { kText, kJson, kSarif };
  Format format = Format::kText;
  bool werror = false;
  bool check_reorder = true;
  uint64_t deadline_ms = 0;
  std::vector<std::string> only_selected;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseBudget(arg, "--deadline-ms=", &deadline_ms)) {
        std::fprintf(stderr, "prolint: malformed option %s\n", arg.c_str());
        return Usage();
      }
    } else if (arg == "--format=text") {
      format = Format::kText;
    } else if (arg == "--format=json") {
      format = Format::kJson;
    } else if (arg == "--format=sarif") {
      format = Format::kSarif;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--no-check-reorder") {
      check_reorder = false;
    } else if (arg.rfind("--only=", 0) == 0) {
      // Comma-separated names/codes; validator and reorderer codes
      // (PL100..PL103, PL21x) are accepted uniformly with pass selectors.
      std::string list = arg.substr(7);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string sel = list.substr(
            start, comma == std::string::npos ? comma : comma - start);
        if (!sel.empty()) {
          if (prore::lint::PassRegistry::Default().Find(sel) == nullptr &&
              !IsReorderCheckCode(sel)) {
            std::fprintf(stderr, "prolint: unknown pass %s\n", sel.c_str());
            return 2;
          }
          only_selected.push_back(std::move(sel));
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--list-passes") {
      return ListPasses();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "prolint: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) return Usage();

  // Registry selectors go to the Linter; reorder-check codes (which no
  // registered pass owns) additionally force the reorder step to run and
  // its findings to be filtered. An all-PL1xx selection still suppresses
  // every registered pass: the codes match no pass, so none run.
  prore::lint::LintOptions lint_options;
  lint_options.only = only_selected;
  const bool want_reorder_codes =
      std::any_of(only_selected.begin(), only_selected.end(),
                  IsReorderCheckCode);
  auto selected = [&](const std::string& code) {
    return only_selected.empty() ||
           std::find(only_selected.begin(), only_selected.end(), code) !=
               only_selected.end();
  };

  // One deadline over the whole invocation: the reorder self-check of every
  // file shares it, so a pathological early file cannot starve the plain
  // lint findings of later ones (those always run to completion).
  prore::ExecContext exec;
  if (deadline_ms != 0) {
    exec = exec.WithDeadline(prore::Deadline::AfterMs(deadline_ms));
  }

  const prore::lint::Severity gate = werror
                                         ? prore::lint::Severity::kWarning
                                         : prore::lint::Severity::kError;
  bool any_gating = false;
  bool any_io_error = false;
  // --format=sarif: one combined log; (file, diagnostics) accumulated
  // across inputs.
  std::vector<std::pair<std::string, std::vector<prore::lint::Diagnostic>>>
      sarif_runs;

  for (size_t f = 0; f < files.size(); ++f) {
    const std::string& path = files[f];
    std::vector<prore::lint::Diagnostic> diags;

    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "prolint: cannot open %s\n", path.c_str());
      any_io_error = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    prore::term::TermStore store;
    // Error-recovering parse: every clause-level syntax error becomes its
    // own PL000 (instead of the first error hiding the rest), and the
    // clauses that did parse are still linted.
    std::vector<prore::Status> parse_errors;
    auto program = prore::reader::ParseProgramTextRecovering(
        &store, buffer.str(), &parse_errors);
    for (const prore::Status& e : parse_errors) {
      diags.push_back(prore::lint::FromParseStatus(e));
    }
    {
      prore::lint::Linter linter(lint_options);
      auto run = linter.Run(store, program);
      if (!run.ok()) {
        std::fprintf(stderr, "prolint: %s: %s\n", path.c_str(),
                     run.status().ToString().c_str());
        any_io_error = true;
        continue;
      }
      for (prore::lint::Diagnostic& d : run.value()) {
        diags.push_back(std::move(d));
      }

      if (check_reorder && parse_errors.empty() &&
          (only_selected.empty() || want_reorder_codes)) {
        // Reorder and self-verify; the reorderer embeds the validator
        // (ReorderOptions::validate_output), so its diagnostics carry the
        // PL1xx findings. A program the reorderer rejects outright is not
        // a lint finding — the reorderer covers a subset of Prolog — so
        // that failure is reported as a plain note.
        prore::core::ReorderOptions options;
        options.exec = exec;
        prore::core::Reorderer reorderer(&store, options);
        auto reordered = reorderer.Run(program);
        if (reordered.ok()) {
          for (prore::lint::Diagnostic& d : reordered->diagnostics) {
            if (!selected(d.code)) continue;
            diags.push_back(std::move(d));
          }
        } else {
          diags.push_back(prore::lint::Diagnostic{
              "PL000", prore::lint::Severity::kNote, {}, "",
              "reorder check skipped: " +
                  reordered.status().ToString()});
        }
      }
    }

    for (const auto& d : diags) {
      if (d.severity >= gate) {
        any_gating = true;
        break;
      }
    }
    switch (format) {
      case Format::kJson:
        std::printf("%s\n", prore::lint::RenderJson(diags, path).c_str());
        break;
      case Format::kSarif:
        sarif_runs.emplace_back(path, std::move(diags));
        break;
      case Format::kText:
        std::fputs(prore::lint::RenderText(diags, path).c_str(), stdout);
        break;
    }
  }

  if (format == Format::kSarif) {
    std::printf("%s\n", prore::lint::RenderSarif(sarif_runs).c_str());
  }
  if (any_io_error) return 1;
  return any_gating ? 1 : 0;
}
