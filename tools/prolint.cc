// prolint — Prolog diagnostics tool built on the prore lint subsystem.
//
// Runs the registered lint passes (PL001..PL008) over each input file and,
// unless --no-check-reorder is given, reorders the program and runs the
// reorder validator (PL100..PL103) over the result — exercising the same
// self-verification path the optimizer uses.
//
// Usage:
//   prolint [options] file.pl...
//
// Options:
//   --format=text|json  output format (default text)
//   --werror            treat warnings as errors (exit 1)
//   --no-check-reorder  skip the reorder + validate step
//   --only=NAME|CODE    run only the named pass (repeatable)
//   --list-passes       list the registered passes and exit
//
// Exit codes: 0 clean (or warnings without --werror), 1 diagnostics at the
// gating severity or a file error, 2 usage error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/reorderer.h"
#include "lint/diagnostic.h"
#include "lint/lint.h"
#include "reader/parser.h"
#include "term/store.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: prolint [--format=text|json] [--werror]\n"
               "               [--no-check-reorder] [--only=PASS]\n"
               "               [--list-passes] file.pl...\n");
  return 2;
}

int ListPasses() {
  for (const auto& pass : prore::lint::PassRegistry::Default().passes()) {
    std::printf("%s  %-20s %s\n", pass->code(), pass->name(),
                pass->description());
  }
  std::printf("PL100-PL103 reorder-validator   "
              "self-verification of the reorderer's output\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool check_reorder = true;
  prore::lint::LintOptions lint_options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--no-check-reorder") {
      check_reorder = false;
    } else if (arg.rfind("--only=", 0) == 0) {
      std::string sel = arg.substr(7);
      if (prore::lint::PassRegistry::Default().Find(sel) == nullptr) {
        std::fprintf(stderr, "prolint: unknown pass %s\n", sel.c_str());
        return 2;
      }
      lint_options.only.push_back(std::move(sel));
    } else if (arg == "--list-passes") {
      return ListPasses();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "prolint: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) return Usage();

  const prore::lint::Severity gate = werror
                                         ? prore::lint::Severity::kWarning
                                         : prore::lint::Severity::kError;
  bool any_gating = false;
  bool any_io_error = false;

  for (size_t f = 0; f < files.size(); ++f) {
    const std::string& path = files[f];
    std::vector<prore::lint::Diagnostic> diags;

    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "prolint: cannot open %s\n", path.c_str());
      any_io_error = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    prore::term::TermStore store;
    // Error-recovering parse: every clause-level syntax error becomes its
    // own PL000 (instead of the first error hiding the rest), and the
    // clauses that did parse are still linted.
    std::vector<prore::Status> parse_errors;
    auto program = prore::reader::ParseProgramTextRecovering(
        &store, buffer.str(), &parse_errors);
    for (const prore::Status& e : parse_errors) {
      diags.push_back(prore::lint::FromParseStatus(e));
    }
    {
      prore::lint::Linter linter(lint_options);
      auto run = linter.Run(store, program);
      if (!run.ok()) {
        std::fprintf(stderr, "prolint: %s: %s\n", path.c_str(),
                     run.status().ToString().c_str());
        any_io_error = true;
        continue;
      }
      for (prore::lint::Diagnostic& d : run.value()) {
        diags.push_back(std::move(d));
      }

      if (check_reorder && lint_options.only.empty() &&
          parse_errors.empty()) {
        // Reorder and self-verify; the reorderer embeds the validator
        // (ReorderOptions::validate_output), so its diagnostics carry the
        // PL1xx findings. A program the reorderer rejects outright is not
        // a lint finding — the reorderer covers a subset of Prolog — so
        // that failure is reported as a plain note.
        prore::core::ReorderOptions options;
        prore::core::Reorderer reorderer(&store, options);
        auto reordered = reorderer.Run(program);
        if (reordered.ok()) {
          for (prore::lint::Diagnostic& d : reordered->diagnostics) {
            diags.push_back(std::move(d));
          }
        } else {
          diags.push_back(prore::lint::Diagnostic{
              "PL000", prore::lint::Severity::kNote, {}, "",
              "reorder check skipped: " +
                  reordered.status().ToString()});
        }
      }
    }

    for (const auto& d : diags) {
      if (d.severity >= gate) {
        any_gating = true;
        break;
      }
    }
    if (json) {
      std::printf("%s\n", prore::lint::RenderJson(diags, path).c_str());
    } else {
      std::fputs(prore::lint::RenderText(diags, path).c_str(), stdout);
    }
  }

  if (any_io_error) return 1;
  return any_gating ? 1 : 0;
}
