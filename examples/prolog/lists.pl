% List utilities — recursive predicates whose determinism the abstract
% interpreter can classify: len/2 and sum/2 are semidet under ground
% input (exclusive []/[_|_] heads), append/3 is nondet when splitting.

len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.

sum([], 0).
sum([X|T], S) :- sum(T, R), S is R + X.

app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).

member_of(X, [X|_]).
member_of(X, [_|T]) :- member_of(X, T).

last_of([X], X) :- !.
last_of([_|T], X) :- last_of(T, X).

?- len([a, b, c], N).
?- sum([1, 2, 3], S).
?- app(Front, Back, [a, b]).
?- member_of(b, [a, b, c]).
?- last_of([a, b, c], L).
