% Family-tree knowledge base — the running example from the reordering
% literature. Exercises fact indexing, conjunctive rules with shared
% variables, and recursive ancestry.

parent(tom, bob).
parent(tom, liz).
parent(bob, ann).
parent(bob, pat).
parent(pat, jim).

male(tom).
male(bob).
male(jim).
female(liz).
female(ann).
female(pat).

father(F, C) :- parent(F, C), male(F).
mother(M, C) :- parent(M, C), female(M).

grandparent(G, C) :- parent(G, P), parent(P, C).

sibling(X, Y) :- parent(P, X), parent(P, Y), X \== Y.

ancestor(A, D) :- parent(A, D).
ancestor(A, D) :- parent(A, P), ancestor(P, D).

?- father(tom, Who).
?- grandparent(tom, G).
?- ancestor(tom, jim).
