// Quickstart: parse a Prolog program, reorder it, print the result, and
// measure the improvement on a query.
//
//   $ ./examples/quickstart
//
// This is the paper's §I-D example: `grandmother(GC, GM) :-
// grandparent(GC, GM), female(GM).` — the reorderer discovers that the
// cheap female/1 test should run first and specializes every predicate
// per calling mode.

#include <cstdio>
#include <cstdlib>

#include "core/evaluation.h"
#include "core/reorderer.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

int main() {
  const char* kProgram = R"(
    wife(john, jane).     wife(paul, mary).    wife(peter, ann).
    wife(abe, agnes).     wife(bob, june).     wife(carl, rose).
    mother(john, joan).   mother(jane, june).  mother(paul, joan).
    mother(mary, rose).   mother(peter, rose). mother(ann, june).
    mother(joan, agnes).
    female(jan).
    female(W) :- wife(_, W).
    grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
    grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
    parent(C, P) :- mother(C, P).
    parent(C, P) :- mother(C, M), wife(P, M).
  )";

  prore::term::TermStore store;

  // 1. Parse.
  auto program = prore::reader::ParseProgramText(&store, kProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  std::printf("Parsed %zu predicates, %zu clauses.\n\n", program->NumPreds(),
              program->NumClauses());

  // 2. Reorder (restriction analysis + mode inference + Markov-chain
  //    order search + per-mode specialization, all behind one call).
  prore::core::Reorderer reorderer(&store);
  auto reordered = reorderer.Run(*program);
  if (!reordered.ok()) {
    std::fprintf(stderr, "reorder error: %s\n",
                 reordered.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  std::printf("--- reordered program ---\n%s\n",
              prore::reader::WriteProgram(store, reordered->program).c_str());

  // 3. Measure: same query, both programs, counting predicate calls.
  prore::core::Evaluator eval(&store, *program, reordered->program);
  auto comparison = eval.CompareQuery("grandmother(X, Y)");
  if (!comparison.ok()) {
    std::fprintf(stderr, "evaluation error: %s\n",
                 comparison.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  std::printf("query grandmother(X, Y), all solutions:\n");
  std::printf("  original calls:  %llu\n",
              static_cast<unsigned long long>(comparison->original_calls));
  std::printf("  reordered calls: %llu\n",
              static_cast<unsigned long long>(comparison->reordered_calls));
  std::printf("  improvement:     %.2fx\n", comparison->Ratio());
  std::printf("  answers:         %zu (set-equivalent: %s)\n",
              comparison->original_answers,
              comparison->set_equivalent ? "yes" : "NO");
  return comparison->set_equivalent ? EXIT_SUCCESS : EXIT_FAILURE;
}
