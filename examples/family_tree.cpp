// Family-tree walkthrough (the paper's §VII evaluation): loads the
// 55-person database, reorders it, prints the per-mode specialized
// kinship predicates (cf. the paper's Fig. 7) and a Table II-style
// per-mode comparison for one predicate.
//
//   $ ./examples/family_tree [pred]     (default: aunt)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/evaluation.h"
#include "core/reorderer.h"
#include "programs/programs.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

int main(int argc, char** argv) {
  std::string pred = argc > 1 ? argv[1] : "aunt";

  const auto& family = prore::programs::FamilyTree();
  prore::term::TermStore store;
  auto program = prore::reader::ParseProgramText(&store, family.source);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  prore::core::Reorderer reorderer(&store);
  auto reordered = reorderer.Run(*program);
  if (!reordered.ok()) {
    std::fprintf(stderr, "reorder: %s\n",
                 reordered.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  // Show the specialized versions of the chosen predicate.
  std::printf("--- specialized versions of %s/2 (cf. paper Fig. 7) ---\n",
              pred.c_str());
  std::string text =
      prore::reader::WriteProgram(store, reordered->program);
  bool keep = false;
  for (size_t i = 0; i < text.size();) {
    size_t nl = text.find('\n', i);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(i, nl - i);
    if (line.rfind(pred, 0) == 0 || keep) {
      std::printf("%s\n", line.c_str());
      keep = !line.empty() && line.find('.') == std::string::npos;
    }
    i = nl + 1;
  }

  // Per-mode comparison (one row of Table II).
  std::printf("\n--- %s/2 per calling mode ---\n", pred.c_str());
  std::printf("%-8s %12s %12s %8s\n", "mode", "original", "reordered",
              "ratio");
  prore::core::Evaluator eval(&store, *program, reordered->program);
  for (const char* mode : {"(-,-)", "(-,+)", "(+,-)", "(+,+)"}) {
    auto c = eval.CompareMode(pred, 2, mode, family.universe);
    if (!c.ok()) {
      std::fprintf(stderr, "%s: %s\n", mode, c.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    std::printf("%-8s %12llu %12llu %8.2f%s\n", mode,
                static_cast<unsigned long long>(c->original_calls),
                static_cast<unsigned long long>(c->reordered_calls),
                c->Ratio(), c->set_equivalent ? "" : "  ANSWERS DIFFER!");
  }
  return EXIT_SUCCESS;
}
