// Database-query optimization (the paper's Table III scenario, and the
// setting of Warren's original work): a corporate database whose rules
// were written joins-first, filters-last. The reorderer turns them into
// filter-early queries — classic selectivity-based join ordering, done as
// Prolog source-to-source transformation.
//
//   $ ./examples/database_query

#include <cstdio>
#include <cstdlib>

#include "core/evaluation.h"
#include "core/reorderer.h"
#include "programs/programs.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

int main() {
  const auto& corp = prore::programs::CorporateDb();
  prore::term::TermStore store;
  auto program = prore::reader::ParseProgramText(&store, corp.source);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  prore::core::Reorderer reorderer(&store);
  auto reordered = reorderer.Run(*program);
  if (!reordered.ok()) {
    std::fprintf(stderr, "reorder: %s\n",
                 reordered.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  // Show what happened to the benefits/2 rule.
  std::printf("--- benefits/2, original ---\n");
  prore::term::PredId benefits{store.symbols().Intern("benefits"), 2};
  for (const auto& clause : program->ClausesOf(benefits)) {
    std::printf("%s\n",
                prore::reader::WriteClause(store, clause).c_str());
  }
  std::printf("\n--- benefits/2, reordered (open-query version) ---\n");
  std::string text =
      prore::reader::WriteProgram(store, reordered->program);
  bool keep = false;
  for (size_t i = 0; i < text.size();) {
    size_t nl = text.find('\n', i);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(i, nl - i);
    if (line.rfind("benefits", 0) == 0 || keep) {
      std::printf("%s\n", line.c_str());
      keep = !line.empty() && line.find('.') == std::string::npos;
    }
    i = nl + 1;
  }

  std::printf("\n--- measured workloads ---\n");
  prore::core::Evaluator eval(&store, *program, reordered->program);
  for (const auto& wl : corp.query_workloads) {
    auto c = eval.CompareQueries(wl.queries);
    if (!c.ok()) {
      std::fprintf(stderr, "%s: %s\n", wl.label.c_str(),
                   c.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    std::printf("%-22s %8llu -> %8llu calls  (%.2fx)%s\n", wl.label.c_str(),
                static_cast<unsigned long long>(c->original_calls),
                static_cast<unsigned long long>(c->reordered_calls),
                c->Ratio(), c->set_equivalent ? "" : "  ANSWERS DIFFER!");
  }
  return EXIT_SUCCESS;
}
