// Mode-analysis walkthrough (§V of the paper): runs the abstract
// interpreter over a program and prints, per predicate, the observed legal
// call modes and the inferred output modes — then asks the legality oracle
// about a few calls the program never makes.
//
//   $ ./examples/mode_analysis

#include <cstdio>
#include <cstdlib>

#include "analysis/callgraph.h"
#include "analysis/fixity.h"
#include "analysis/mode_inference.h"
#include "analysis/modes.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

int main() {
  const char* kProgram = R"(
    % The paper's delete/3 (SV-B): fine with a bound list, loops with
    % only the first argument bound. The entries' modes are declared, so
    % the analysis walks are non-speculative and the modes they induce on
    % the recursive delete/3 become legal.
    :- legal_mode(main(-), main(+)).
    :- legal_mode(main2(-), main2(+)).
    delete(X, [X|Y], Y).
    delete(U, [X|Y], [X|V]) :- delete(U, Y, V).

    main(R) :- delete(a, [a,b,c], R).
    main2(L) :- delete(b, L, [a,c]).
  )";

  prore::term::TermStore store;
  auto program = prore::reader::ParseProgramText(&store, kProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  auto graph = prore::analysis::CallGraph::Build(store, *program);
  if (!graph.ok()) return EXIT_FAILURE;
  auto decls = prore::analysis::ParseDeclarations(store, *program);
  if (!decls.ok()) return EXIT_FAILURE;
  auto analysis =
      prore::analysis::InferModes(store, *program, *graph, *decls);
  if (!analysis.ok()) {
    std::fprintf(stderr, "inference: %s\n",
                 analysis.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  std::printf("--- observed call modes and inferred outputs ---\n");
  for (const auto& pred : graph->Preds()) {
    std::printf("%s%s:\n", prore::reader::PredName(store, pred).c_str(),
                graph->IsRecursive(pred) ? "  (recursive)" : "");
    auto it = analysis->observed_inputs.find(pred);
    if (it == analysis->observed_inputs.end()) {
      std::printf("  (never called)\n");
      continue;
    }
    for (const auto& input : it->second) {
      auto output = analysis->table.OutputFor(pred, input);
      std::printf("  %s -> %s\n",
                  prore::analysis::ModeString(input).c_str(),
                  output.has_value()
                      ? prore::analysis::ModeString(*output).c_str()
                      : "?");
    }
  }

  std::printf("\n--- legality oracle ---\n");
  prore::analysis::LegalityOracle oracle(&store, &*program, &*graph,
                                         &*analysis);
  prore::term::PredId del{store.symbols().Intern("delete"), 3};
  struct Probe {
    const char* mode;
    const char* why;
  };
  const Probe probes[] = {
      {"(+,+,-)", "delete from a bound list: observed, legal"},
      {"(-,+,-)", "enumerate deletions from a bound list"},
      {"(-,-,+)", "insert into a bound list"},
      {"(+,-,-)", "only the item bound: the paper's infinite loop"},
  };
  for (const Probe& probe : probes) {
    auto mode = prore::analysis::ModeFromString(probe.mode);
    bool legal = oracle.IsLegalCall(del, *mode);
    std::printf("  delete%s : %-7s  %% %s\n", probe.mode,
                legal ? "legal" : "ILLEGAL", probe.why);
  }
  std::printf(
      "\nThe reorderer will reject any goal order that calls delete/3 in a\n"
      "mode the oracle cannot prove safe (paper SVI-B.1).\n");
  return EXIT_SUCCESS;
}
