// Warren's original experiment (the paper's §I-E): conjunctive queries
// over a geography database, written in English word order. "Reordering
// to minimize this yielded speedups up to several hundred times."
//
//   $ ./examples/warren_queries

#include <cstdio>
#include <cstdlib>

#include "core/evaluation.h"
#include "core/reorderer.h"
#include "programs/programs.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/store.h"

int main() {
  const auto& geo = prore::programs::Geography();
  prore::term::TermStore store;
  auto program = prore::reader::ParseProgramText(&store, geo.source);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  prore::core::Reorderer reorderer(&store);
  auto reordered = reorderer.Run(*program);
  if (!reordered.ok()) {
    std::fprintf(stderr, "reorder: %s\n",
                 reordered.status().ToString().c_str());
    return EXIT_FAILURE;
  }

  std::printf(
      "Conjunctive geography queries in English word order (Warren 1981),\n"
      "before and after reordering:\n\n");
  std::printf("%-28s %10s %10s %8s %8s\n", "query", "original", "reordered",
              "ratio", "answers");
  prore::core::Evaluator eval(&store, *program, reordered->program);
  bool ok = true;
  for (const auto& wl : geo.query_workloads) {
    auto c = eval.CompareQueries(wl.queries);
    if (!c.ok()) {
      std::fprintf(stderr, "%s: %s\n", wl.label.c_str(),
                   c.status().ToString().c_str());
      return EXIT_FAILURE;
    }
    ok = ok && c->set_equivalent;
    std::printf("%-28s %10llu %10llu %8.2f %8zu%s\n", wl.label.c_str(),
                static_cast<unsigned long long>(c->original_calls),
                static_cast<unsigned long long>(c->reordered_calls),
                c->Ratio(), c->original_answers,
                c->set_equivalent ? "" : "  ANSWERS DIFFER!");
  }

  // Show one rewritten query.
  std::printf("\n--- q_euro_neighbor/1 before ---\n");
  prore::term::PredId q{store.symbols().Intern("q_euro_neighbor"), 1};
  for (const auto& clause : program->ClausesOf(q)) {
    std::printf("%s\n", prore::reader::WriteClause(store, clause).c_str());
  }
  std::printf("\n--- after (open-query version) ---\n");
  std::string text = prore::reader::WriteProgram(store, reordered->program);
  bool keep = false;
  for (size_t i = 0; i < text.size();) {
    size_t nl = text.find('\n', i);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(i, nl - i);
    if (line.rfind("q_euro_neighbor", 0) == 0 || keep) {
      std::printf("%s\n", line.c_str());
      keep = !line.empty() && line.find('.') == std::string::npos;
    }
    i = nl + 1;
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
