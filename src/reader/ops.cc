#include "reader/ops.h"

namespace prore::reader {

OpTable::OpTable() {
  Add(":-", 1200, OpType::kXfx);
  Add("-->", 1200, OpType::kXfx);
  Add(":-", 1200, OpType::kFx);
  Add("?-", 1200, OpType::kFx);
  Add(";", 1100, OpType::kXfy);
  Add("->", 1050, OpType::kXfy);
  Add(",", 1000, OpType::kXfy);
  Add("\\+", 900, OpType::kFy);
  Add("not", 900, OpType::kFy);
  Add("=", 700, OpType::kXfx);
  Add("\\=", 700, OpType::kXfx);
  Add("==", 700, OpType::kXfx);
  Add("\\==", 700, OpType::kXfx);
  Add("@<", 700, OpType::kXfx);
  Add("@>", 700, OpType::kXfx);
  Add("@=<", 700, OpType::kXfx);
  Add("@>=", 700, OpType::kXfx);
  Add("is", 700, OpType::kXfx);
  Add("=:=", 700, OpType::kXfx);
  Add("=\\=", 700, OpType::kXfx);
  Add("<", 700, OpType::kXfx);
  Add(">", 700, OpType::kXfx);
  Add("=<", 700, OpType::kXfx);
  Add(">=", 700, OpType::kXfx);
  Add("=..", 700, OpType::kXfx);
  Add("+", 500, OpType::kYfx);
  Add("-", 500, OpType::kYfx);
  Add("/\\", 500, OpType::kYfx);
  Add("\\/", 500, OpType::kYfx);
  Add("*", 400, OpType::kYfx);
  Add("/", 400, OpType::kYfx);
  Add("//", 400, OpType::kYfx);
  Add("mod", 400, OpType::kYfx);
  Add("rem", 400, OpType::kYfx);
  Add("<<", 400, OpType::kYfx);
  Add(">>", 400, OpType::kYfx);
  Add("**", 200, OpType::kXfx);
  Add("^", 200, OpType::kXfy);
  Add("-", 200, OpType::kFy);
  Add("+", 200, OpType::kFy);
}

void OpTable::Add(std::string_view name, int priority, OpType type) {
  OpDef def{priority, type};
  if (type == OpType::kFx || type == OpType::kFy) {
    prefix_[std::string(name)] = def;
  } else {
    infix_[std::string(name)] = def;
  }
}

std::optional<OpDef> OpTable::Infix(std::string_view name) const {
  auto it = infix_.find(std::string(name));
  if (it == infix_.end()) return std::nullopt;
  return it->second;
}

std::optional<OpDef> OpTable::Prefix(std::string_view name) const {
  auto it = prefix_.find(std::string(name));
  if (it == prefix_.end()) return std::nullopt;
  return it->second;
}

bool OpTable::IsOp(std::string_view name) const {
  return infix_.count(std::string(name)) > 0 ||
         prefix_.count(std::string(name)) > 0;
}

}  // namespace prore::reader
