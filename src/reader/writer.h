#ifndef PRORE_READER_WRITER_H_
#define PRORE_READER_WRITER_H_

#include <string>

#include "reader/ops.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::reader {

struct WriteOptions {
  /// Quote atoms that would not re-read as the same atom.
  bool quoted = true;
  /// Print operators in infix/prefix notation (a+b instead of +(a,b)).
  bool use_operators = true;
  /// Print lists as [a,b|T] instead of '.'(a,'.'(b,T)).
  bool use_lists = true;
  /// Prefer original variable names when available (else _G<id>).
  bool var_names = true;
};

/// Renders a term back to Prolog source text that re-reads to an equal term.
std::string WriteTerm(const term::TermStore& store, term::TermRef t,
                      const WriteOptions& opts = WriteOptions());

/// Renders one clause as `head.` or `head :-\n    goal1,\n    goal2.`.
std::string WriteClause(const term::TermStore& store, const Clause& clause,
                        const WriteOptions& opts = WriteOptions());

/// Renders an entire program, predicates in order, blank line between
/// predicates.
std::string WriteProgram(const term::TermStore& store, const Program& program,
                         const WriteOptions& opts = WriteOptions());

/// "name/arity" for diagnostics.
std::string PredName(const term::TermStore& store, const term::PredId& id);

}  // namespace prore::reader

#endif  // PRORE_READER_WRITER_H_
