#ifndef PRORE_READER_PARSER_H_
#define PRORE_READER_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "reader/lexer.h"
#include "reader/ops.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::reader {

/// A parsed top-level term plus the named variables it contains, in
/// first-occurrence order (for printing query answers).
struct ReadTerm {
  term::TermRef term = term::kNullTerm;
  std::vector<std::pair<std::string, term::TermRef>> var_names;
  SourceSpan span;  ///< position of the term's first token
};

/// Operator-precedence parser for the DEC-10 Prolog subset used throughout
/// the paper: clauses, facts, directives, lists, disjunction/if-then-else,
/// negation, arithmetic, quoted atoms. Variable goals and DCG rules are
/// parsed but rejected later by the analyses that cannot handle them.
class Parser {
 public:
  Parser(term::TermStore* store, const OpTable* ops)
      : store_(store), ops_(ops) {}

  /// Parses a whole program: clauses and `:- directive.` items.
  prore::Result<Program> ParseProgram(std::string_view text);

  /// Like ParseProgram, but recovers from clause-level syntax errors:
  /// each failed clause is skipped up to its terminating '.' and the error
  /// is appended to *errors, so a single bad clause no longer hides every
  /// later diagnostic. The returned program holds every clause that parsed.
  /// (A lexer error is not recoverable; it is reported and parsing stops.)
  Program ParseProgramRecovering(std::string_view text,
                                 std::vector<prore::Status>* errors);

  /// Parses a single term ending in '.' (e.g. a query body).
  prore::Result<ReadTerm> ParseTermText(std::string_view text);

  /// Parses a sequence of '.'-terminated terms.
  prore::Result<std::vector<ReadTerm>> ParseTermSequenceText(
      std::string_view text);

 private:
  // One clause's worth of parsing state (variables scoped per clause).
  prore::Result<term::TermRef> ParseTerm(int max_priority);
  /// Parses one '.'-terminated clause or directive into `program`.
  prore::Status ParseClauseInto(Program* program);
  prore::Result<term::TermRef> ParsePrimary(int max_priority);
  prore::Result<term::TermRef> ParseArgList(term::Symbol functor);
  prore::Result<term::TermRef> ParseList();
  term::TermRef VarFor(const std::string& name);
  /// Handles `:- op(Priority, Type, Name)` so later clauses parse with the
  /// user-declared operator (copy-on-write over the standard table).
  prore::Status ApplyOpDirective(term::TermRef goal);

  /// Records where `t` was parsed (first writer wins, so a variable keeps
  /// the position of its first occurrence in the clause).
  void NoteSpan(term::TermRef t, const Token& tok) {
    spans_.emplace(t, SourceSpan{tok.line, tok.column});
  }

  const Token& Cur() const { return tokens_[tpos_]; }
  const Token& Next() const {
    return tokens_[tpos_ + 1 < tokens_.size() ? tpos_ + 1 : tpos_];
  }
  void Bump() {
    if (tpos_ + 1 < tokens_.size()) ++tpos_;
  }
  prore::Status ErrorHere(const std::string& what) const;

  term::TermStore* store_;
  const OpTable* ops_;
  std::unique_ptr<OpTable> local_ops_;  // engaged after a :- op/3 directive
  std::vector<Token> tokens_;
  size_t tpos_ = 0;
  std::unordered_map<std::string, term::TermRef> clause_vars_;
  std::vector<std::pair<std::string, term::TermRef>> var_order_;
  /// Source position of every term created while parsing, keyed by ref.
  /// ParseProgram moves this into the returned Program for diagnostics.
  std::unordered_map<term::TermRef, SourceSpan> spans_;
};

/// Convenience one-shots using the standard operator table.
prore::Result<Program> ParseProgramText(term::TermStore* store,
                                        std::string_view text);
Program ParseProgramTextRecovering(term::TermStore* store,
                                   std::string_view text,
                                   std::vector<prore::Status>* errors);
prore::Result<ReadTerm> ParseQueryText(term::TermStore* store,
                                       std::string_view text);

/// Parses a sequence of '.'-terminated terms (the shape read/1 consumes).
prore::Result<std::vector<ReadTerm>> ParseTermSequence(term::TermStore* store,
                                                       std::string_view text);

/// Splits a clause term into head/body at ':-'. A term without a neck is a
/// fact with body `true`. Returns error if head is not callable.
prore::Result<Clause> SplitClause(term::TermStore* store, term::TermRef t);

}  // namespace prore::reader

#endif  // PRORE_READER_PARSER_H_
