#ifndef PRORE_READER_OPS_H_
#define PRORE_READER_OPS_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace prore::reader {

/// Operator fixity classes, DEC-10 style.
enum class OpType {
  kXfx,  ///< infix, both args of strictly lower priority
  kXfy,  ///< infix, right arg may be equal priority
  kYfx,  ///< infix, left arg may be equal priority
  kFy,   ///< prefix, arg may be equal priority
  kFx,   ///< prefix, arg of strictly lower priority
  kXf,   ///< postfix (unused by the standard set but supported)
  kYf
};

struct OpDef {
  int priority = 0;
  OpType type = OpType::kXfx;
};

/// The DEC-10 Prolog operator table (the subset relevant to the paper's
/// programs). A name may be both a prefix and an infix operator (e.g. '-').
class OpTable {
 public:
  /// Constructs the standard table.
  OpTable();

  void Add(std::string_view name, int priority, OpType type);

  std::optional<OpDef> Infix(std::string_view name) const;
  std::optional<OpDef> Prefix(std::string_view name) const;

  /// True if `name` is an operator of any fixity.
  bool IsOp(std::string_view name) const;

 private:
  std::unordered_map<std::string, OpDef> infix_;
  std::unordered_map<std::string, OpDef> prefix_;
};

}  // namespace prore::reader

#endif  // PRORE_READER_OPS_H_
