#include "reader/program.h"

#include <algorithm>
#include <cassert>

namespace prore::reader {

bool Program::AddClause(const term::TermStore& store, const Clause& clause) {
  term::TermRef head = store.Deref(clause.head);
  if (!store.IsCallable(head)) return false;
  term::PredId id = store.pred_id(head);
  auto it = preds_.find(id);
  if (it == preds_.end()) {
    pred_order_.push_back(id);
    preds_.emplace(id, std::vector<Clause>{clause});
  } else {
    it->second.push_back(clause);
  }
  return true;
}

const std::vector<Clause>& Program::ClausesOf(const term::PredId& id) const {
  // Function-local static reference: trivially-destructible static storage.
  static const auto& kEmpty = *new std::vector<Clause>();
  auto it = preds_.find(id);
  return it == preds_.end() ? kEmpty : it->second;
}

std::vector<Clause>* Program::MutableClausesOf(const term::PredId& id) {
  auto it = preds_.find(id);
  return it == preds_.end() ? nullptr : &it->second;
}

void Program::SetClauses(const term::PredId& id, std::vector<Clause> clauses) {
  auto it = preds_.find(id);
  if (it == preds_.end()) {
    pred_order_.push_back(id);
    preds_.emplace(id, std::move(clauses));
  } else {
    it->second = std::move(clauses);
  }
}

void Program::ErasePred(const term::PredId& id) {
  auto it = preds_.find(id);
  if (it == preds_.end()) return;
  preds_.erase(it);
  pred_order_.erase(std::remove(pred_order_.begin(), pred_order_.end(), id),
                    pred_order_.end());
}

size_t Program::NumClauses() const {
  size_t n = 0;
  for (const auto& [id, clauses] : preds_) n += clauses.size();
  return n;
}

}  // namespace prore::reader
