#include "reader/parser.h"

#include <cassert>
#include <memory>

#include "common/str_util.h"

namespace prore::reader {

using term::SymbolTable;
using term::TermRef;

prore::Status Parser::ErrorHere(const std::string& what) const {
  return prore::Status::ParseError(prore::StrFormat(
      "%s at line %d column %d (near '%s')", what.c_str(), Cur().line,
      Cur().column, Cur().text.c_str()));
}

term::TermRef Parser::VarFor(const std::string& name) {
  if (name == "_") return store_->MakeVar();  // each _ is distinct
  auto it = clause_vars_.find(name);
  if (it != clause_vars_.end()) return it->second;
  TermRef v = store_->MakeVar(name);
  clause_vars_.emplace(name, v);
  var_order_.emplace_back(name, v);
  return v;
}

namespace {
// Priority tracking for the precedence-climbing loop.
struct PriorityHolder {
  int value = 0;
};
}  // namespace

// The priority of the most recent ParsePrimary/ParseTerm result. Operator
// parsing is strictly sequential, so a member is safe.
static thread_local PriorityHolder g_last_priority;

prore::Result<TermRef> Parser::ParsePrimary(int max_priority) {
  const Token tok = Cur();
  switch (tok.kind) {
    case TokenKind::kInteger: {
      Bump();
      g_last_priority.value = 0;
      TermRef t = store_->MakeInt(std::stoll(tok.text));
      NoteSpan(t, tok);
      return t;
    }
    case TokenKind::kFloat: {
      Bump();
      g_last_priority.value = 0;
      TermRef t = store_->MakeFloat(std::stod(tok.text));
      NoteSpan(t, tok);
      return t;
    }
    case TokenKind::kVariable: {
      Bump();
      g_last_priority.value = 0;
      TermRef t = VarFor(tok.text);
      NoteSpan(t, tok);  // first occurrence wins
      return t;
    }
    case TokenKind::kPunct: {
      if (tok.text == "(") {
        Bump();
        PRORE_ASSIGN_OR_RETURN(TermRef inner, ParseTerm(1200));
        if (Cur().kind != TokenKind::kPunct || Cur().text != ")") {
          return ErrorHere("expected ')'");
        }
        Bump();
        g_last_priority.value = 0;
        return inner;
      }
      if (tok.text == "[") {
        Bump();
        PRORE_ASSIGN_OR_RETURN(TermRef list, ParseList());
        NoteSpan(list, tok);
        return list;
      }
      if (tok.text == "{") {
        Bump();
        PRORE_ASSIGN_OR_RETURN(TermRef inner, ParseTerm(1200));
        if (Cur().kind != TokenKind::kPunct || Cur().text != "}") {
          return ErrorHere("expected '}'");
        }
        Bump();
        g_last_priority.value = 0;
        const TermRef args[] = {inner};
        TermRef t = store_->MakeStruct(SymbolTable::kCurly, args);
        NoteSpan(t, tok);
        return t;
      }
      return ErrorHere("unexpected token");
    }
    case TokenKind::kAtom: {
      term::Symbol sym = store_->symbols().Intern(tok.text);
      if (tok.functor_paren) {
        Bump();  // atom
        Bump();  // '('
        PRORE_ASSIGN_OR_RETURN(TermRef t, ParseArgList(sym));
        NoteSpan(t, tok);
        return t;
      }
      // Prefix operator?
      auto prefix = ops_->Prefix(tok.text);
      if (prefix.has_value() && prefix->priority <= max_priority) {
        const Token& next = Next();
        bool operand_follows =
            next.kind == TokenKind::kInteger ||
            next.kind == TokenKind::kFloat ||
            next.kind == TokenKind::kVariable ||
            (next.kind == TokenKind::kAtom) ||
            (next.kind == TokenKind::kPunct &&
             (next.text == "(" || next.text == "[" || next.text == "{"));
        // An atom that is *also* usable standalone: if the next token is an
        // infix operator atom (and not a prefix one), treat this atom as an
        // operand instead (e.g. the query `X == (-)` is exotic; we favor
        // the common case).
        if (operand_follows && next.kind == TokenKind::kAtom &&
            !next.functor_paren) {
          bool next_is_infix_only = ops_->Infix(next.text).has_value() &&
                                    !ops_->Prefix(next.text).has_value();
          if (next_is_infix_only) operand_follows = false;
        }
        if (operand_follows) {
          Bump();
          // Negative numeric literal: -42 or -3.5.
          if (tok.text == "-" && Cur().kind == TokenKind::kInteger) {
            int64_t v = std::stoll(Cur().text);
            Bump();
            g_last_priority.value = 0;
            TermRef t = store_->MakeInt(-v);
            NoteSpan(t, tok);
            return t;
          }
          if (tok.text == "-" && Cur().kind == TokenKind::kFloat) {
            double v = std::stod(Cur().text);
            Bump();
            g_last_priority.value = 0;
            TermRef t = store_->MakeFloat(-v);
            NoteSpan(t, tok);
            return t;
          }
          int arg_max = prefix->type == OpType::kFy ? prefix->priority
                                                    : prefix->priority - 1;
          PRORE_ASSIGN_OR_RETURN(TermRef arg, ParseTerm(arg_max));
          g_last_priority.value = prefix->priority;
          const TermRef args[] = {arg};
          TermRef t = store_->MakeStruct(sym, args);
          NoteSpan(t, tok);
          return t;
        }
      }
      // Plain atom (possibly an operator name used as an atom). An operator
      // used as a bare operand carries the operator's priority, which keeps
      // it from becoming the argument of a tighter-binding operator.
      Bump();
      int p = 0;
      if (auto inf = ops_->Infix(tok.text); inf.has_value()) {
        p = std::max(p, inf->priority);
      }
      if (auto pre = ops_->Prefix(tok.text); pre.has_value()) {
        p = std::max(p, pre->priority);
      }
      g_last_priority.value = p;
      TermRef t = store_->MakeAtom(sym);
      NoteSpan(t, tok);
      return t;
    }
    case TokenKind::kEnd:
      return ErrorHere("unexpected end of clause");
    case TokenKind::kEof:
      return ErrorHere("unexpected end of input");
  }
  return ErrorHere("unexpected token");
}

prore::Result<TermRef> Parser::ParseArgList(term::Symbol functor) {
  std::vector<TermRef> args;
  while (true) {
    PRORE_ASSIGN_OR_RETURN(TermRef arg, ParseTerm(999));
    args.push_back(arg);
    if (Cur().kind == TokenKind::kPunct && Cur().text == ",") {
      Bump();
      continue;
    }
    if (Cur().kind == TokenKind::kPunct && Cur().text == ")") {
      Bump();
      g_last_priority.value = 0;
      return store_->MakeStruct(functor, args);
    }
    return ErrorHere("expected ',' or ')' in argument list");
  }
}

prore::Result<TermRef> Parser::ParseList() {
  if (Cur().kind == TokenKind::kPunct && Cur().text == "]") {
    Bump();
    g_last_priority.value = 0;
    return store_->MakeNil();
  }
  std::vector<TermRef> items;
  TermRef tail = term::kNullTerm;
  while (true) {
    PRORE_ASSIGN_OR_RETURN(TermRef item, ParseTerm(999));
    items.push_back(item);
    if (Cur().kind == TokenKind::kPunct && Cur().text == ",") {
      Bump();
      continue;
    }
    if (Cur().kind == TokenKind::kPunct && Cur().text == "|") {
      Bump();
      PRORE_ASSIGN_OR_RETURN(tail, ParseTerm(999));
      break;
    }
    break;
  }
  if (Cur().kind != TokenKind::kPunct || Cur().text != "]") {
    return ErrorHere("expected ']' to close list");
  }
  Bump();
  g_last_priority.value = 0;
  TermRef list = tail == term::kNullTerm ? store_->MakeNil() : tail;
  for (size_t i = items.size(); i-- > 0;) {
    list = store_->MakeCons(items[i], list);
  }
  return list;
}

prore::Result<TermRef> Parser::ParseTerm(int max_priority) {
  PRORE_ASSIGN_OR_RETURN(TermRef left, ParsePrimary(max_priority));
  int left_priority = g_last_priority.value;
  while (true) {
    std::string op_name;
    // At an operator position, an atom is an operator even when glued to a
    // '(' — `a->(b;c)` is infix '->' applied to the parenthesized term.
    if (Cur().kind == TokenKind::kAtom) {
      op_name = Cur().text;
    } else if (Cur().kind == TokenKind::kPunct && Cur().text == ",") {
      op_name = ',';  // single-char assign: GCC 12 -Wrestrict false positive
    } else {
      break;
    }
    auto infix = ops_->Infix(op_name);
    if (!infix.has_value()) break;
    int p = infix->priority;
    if (p > max_priority) break;
    int left_max = infix->type == OpType::kYfx ? p : p - 1;
    int right_max = infix->type == OpType::kXfy ? p : p - 1;
    if (left_priority > left_max) break;
    const Token op_tok = Cur();
    Bump();
    PRORE_ASSIGN_OR_RETURN(TermRef right, ParseTerm(right_max));
    term::Symbol sym = store_->symbols().Intern(op_name);
    const TermRef args[] = {left, right};
    left = store_->MakeStruct(sym, args);
    NoteSpan(left, op_tok);
    left_priority = p;
  }
  g_last_priority.value = left_priority;
  return left;
}

prore::Status Parser::ApplyOpDirective(term::TermRef goal) {
  term::TermRef prio = store_->Deref(store_->arg(goal, 0));
  term::TermRef type = store_->Deref(store_->arg(goal, 1));
  term::TermRef name = store_->Deref(store_->arg(goal, 2));
  if (store_->tag(prio) != term::Tag::kInt ||
      store_->tag(type) != term::Tag::kAtom ||
      store_->tag(name) != term::Tag::kAtom) {
    return prore::Status::InvalidArgument(
        "op/3: expected op(Priority, Type, Name) with an integer and two "
        "atoms");
  }
  int64_t p = store_->int_value(prio);
  if (p < 1 || p > 1200) {
    return prore::Status::InvalidArgument("op/3: priority out of 1..1200");
  }
  const std::string& type_name =
      store_->symbols().Name(store_->symbol(type));
  OpType op_type;
  if (type_name == "xfx") {
    op_type = OpType::kXfx;
  } else if (type_name == "xfy") {
    op_type = OpType::kXfy;
  } else if (type_name == "yfx") {
    op_type = OpType::kYfx;
  } else if (type_name == "fy") {
    op_type = OpType::kFy;
  } else if (type_name == "fx") {
    op_type = OpType::kFx;
  } else if (type_name == "xf") {
    op_type = OpType::kXf;
  } else if (type_name == "yf") {
    op_type = OpType::kYf;
  } else {
    return prore::Status::InvalidArgument("op/3: unknown type " + type_name);
  }
  if (local_ops_ == nullptr) {
    // Copy-on-write: the shared standard table stays untouched.
    local_ops_ = std::make_unique<OpTable>(*ops_);
    ops_ = local_ops_.get();
  }
  local_ops_->Add(store_->symbols().Name(store_->symbol(name)),
                  static_cast<int>(p), op_type);
  return prore::Status::OK();
}

prore::Status Parser::ParseClauseInto(Program* program) {
  clause_vars_.clear();
  var_order_.clear();
  const SourceSpan clause_span{Cur().line, Cur().column};
  PRORE_ASSIGN_OR_RETURN(TermRef t, ParseTerm(1200));
  if (Cur().kind != TokenKind::kEnd) {
    return ErrorHere("expected '.' at end of clause");
  }
  Bump();
  t = store_->Deref(t);
  // Directive?
  if (store_->tag(t) == term::Tag::kStruct &&
      store_->arity(t) == 1 &&
      (store_->symbols().Name(store_->symbol(t)) == ":-" ||
       store_->symbols().Name(store_->symbol(t)) == "?-")) {
    term::TermRef goal = store_->Deref(store_->arg(t, 0));
    // op/3 takes effect immediately for the rest of the file (the
    // classic behavior: subsequent clauses parse with the new operator).
    if (store_->tag(goal) == term::Tag::kStruct &&
        store_->arity(goal) == 3 &&
        store_->symbols().Name(store_->symbol(goal)) == "op") {
      PRORE_RETURN_IF_ERROR(ApplyOpDirective(goal));
    }
    program->AddDirective(goal);
    return prore::Status::OK();
  }
  PRORE_ASSIGN_OR_RETURN(Clause clause, SplitClause(store_, t));
  clause.span = clause_span;
  if (!program->AddClause(*store_, clause)) {
    return prore::Status::TypeError("clause head is not callable");
  }
  return prore::Status::OK();
}

prore::Result<Program> Parser::ParseProgram(std::string_view text) {
  Lexer lexer(text);
  PRORE_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  tpos_ = 0;
  spans_.clear();
  Program program;
  while (Cur().kind != TokenKind::kEof) {
    PRORE_RETURN_IF_ERROR(ParseClauseInto(&program));
  }
  program.SetTermSpans(std::move(spans_));
  spans_ = {};
  return program;
}

Program Parser::ParseProgramRecovering(std::string_view text,
                                       std::vector<prore::Status>* errors) {
  Lexer lexer(text);
  Program program;
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) {
    // Lexical errors have no clause boundary to resynchronize on.
    errors->push_back(tokens.status());
    return program;
  }
  tokens_ = std::move(tokens).value();
  tpos_ = 0;
  spans_.clear();
  while (Cur().kind != TokenKind::kEof) {
    const size_t start = tpos_;
    prore::Status status = ParseClauseInto(&program);
    if (status.ok()) continue;
    errors->push_back(std::move(status));
    // Resynchronize on the next '.' unless this clause's terminator was
    // already consumed (errors past the '.': bad head, bad directive).
    const bool past_end =
        tpos_ > start && tokens_[tpos_ - 1].kind == TokenKind::kEnd;
    if (!past_end) {
      while (Cur().kind != TokenKind::kEnd && Cur().kind != TokenKind::kEof) {
        Bump();
      }
      if (Cur().kind == TokenKind::kEnd) Bump();
    }
  }
  program.SetTermSpans(std::move(spans_));
  spans_ = {};
  return program;
}

prore::Result<std::vector<ReadTerm>> Parser::ParseTermSequenceText(
    std::string_view text) {
  Lexer lexer(text);
  PRORE_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  tpos_ = 0;
  std::vector<ReadTerm> out;
  while (Cur().kind != TokenKind::kEof) {
    clause_vars_.clear();
    var_order_.clear();
    const SourceSpan span{Cur().line, Cur().column};
    PRORE_ASSIGN_OR_RETURN(TermRef t, ParseTerm(1200));
    if (Cur().kind != TokenKind::kEnd) {
      return ErrorHere("expected '.' after term");
    }
    Bump();
    ReadTerm rt;
    rt.term = t;
    rt.var_names = var_order_;
    rt.span = span;
    out.push_back(std::move(rt));
  }
  return out;
}

prore::Result<ReadTerm> Parser::ParseTermText(std::string_view text) {
  Lexer lexer(text);
  PRORE_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  tpos_ = 0;
  clause_vars_.clear();
  var_order_.clear();
  const SourceSpan span{Cur().line, Cur().column};
  PRORE_ASSIGN_OR_RETURN(TermRef t, ParseTerm(1200));
  if (Cur().kind == TokenKind::kEnd) Bump();
  if (Cur().kind != TokenKind::kEof) {
    return ErrorHere("trailing input after term");
  }
  ReadTerm out;
  out.term = t;
  out.var_names = var_order_;
  out.span = span;
  return out;
}

prore::Result<Program> ParseProgramText(term::TermStore* store,
                                        std::string_view text) {
  OpTable ops;
  Parser parser(store, &ops);
  return parser.ParseProgram(text);
}

Program ParseProgramTextRecovering(term::TermStore* store,
                                   std::string_view text,
                                   std::vector<prore::Status>* errors) {
  OpTable ops;
  Parser parser(store, &ops);
  return parser.ParseProgramRecovering(text, errors);
}

prore::Result<ReadTerm> ParseQueryText(term::TermStore* store,
                                       std::string_view text) {
  OpTable ops;
  Parser parser(store, &ops);
  return parser.ParseTermText(text);
}

prore::Result<std::vector<ReadTerm>> ParseTermSequence(
    term::TermStore* store, std::string_view text) {
  OpTable ops;
  Parser parser(store, &ops);
  return parser.ParseTermSequenceText(text);
}

prore::Result<Clause> SplitClause(term::TermStore* store, term::TermRef t) {
  t = store->Deref(t);
  Clause c;
  if (store->tag(t) == term::Tag::kStruct && store->arity(t) == 2 &&
      store->symbol(t) == SymbolTable::kNeck) {
    c.head = store->Deref(store->arg(t, 0));
    c.body = store->Deref(store->arg(t, 1));
  } else {
    c.head = t;
    c.body = store->MakeAtom(SymbolTable::kTrue);
  }
  if (!store->IsCallable(c.head)) {
    return prore::Status::TypeError("clause head is not callable");
  }
  return c;
}

}  // namespace prore::reader
