#ifndef PRORE_READER_LEXER_H_
#define PRORE_READER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace prore::reader {

/// Token kinds produced by the Prolog tokenizer.
enum class TokenKind {
  kAtom,      ///< foo, 'quoted atom', symbolic (:-, \+, =..), [] and {}
  kVariable,  ///< X, _Foo, _
  kInteger,   ///< 42
  kFloat,     ///< 3.14
  kPunct,     ///< ( ) [ ] { } , | — single structural characters
  kEnd,       ///< clause-terminating '.' (followed by layout or EOF)
  kEof
};

struct Token {
  TokenKind kind;
  std::string text;  ///< Atom/variable name, digit string, or punct char.
  int line = 0;
  int column = 0;
  /// True when an atom token is immediately followed by '(' with no space:
  /// Edinburgh syntax requires that for functor application f(...).
  bool functor_paren = false;
  /// True when '(' immediately follows an atom (same flag, seen from the
  /// paren side); lets the parser distinguish f(  from f (.
  bool preceded_by_atom = false;
};

/// Splits Prolog source text into tokens. Handles %-comments, /* */ block
/// comments, quoted atoms with '' escapes and \-escapes, symbolic atoms
/// made of #$&*+-./:<=>?@^~\ runs, and the solo characters ! ; , | ( ) [ ] { }.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  /// Tokenizes the whole input.
  prore::Result<std::vector<Token>> Tokenize();

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance();
  prore::Status SkipLayout();  // whitespace + comments

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace prore::reader

#endif  // PRORE_READER_LEXER_H_
