#include "reader/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace prore::reader {

namespace {

bool IsSymbolChar(char c) {
  switch (c) {
    case '#':
    case '$':
    case '&':
    case '*':
    case '+':
    case '-':
    case '.':
    case '/':
    case ':':
    case '<':
    case '=':
    case '>':
    case '?':
    case '@':
    case '^':
    case '~':
    case '\\':
      return true;
    default:
      return false;
  }
}

bool IsSolo(char c) {
  switch (c) {
    case '!':
    case ';':
    case ',':
    case '|':
    case '(':
    case ')':
    case '[':
    case ']':
    case '{':
    case '}':
      return true;
    default:
      return false;
  }
}

bool IsAlnumUnderscore(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

char Lexer::Advance() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

prore::Status Lexer::SkipLayout() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '%') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      int start_line = line_;
      Advance();
      Advance();
      while (!(Peek() == '*' && Peek(1) == '/')) {
        if (AtEnd()) {
          return prore::Status::ParseError(
              prore::StrFormat("unterminated block comment at line %d",
                               start_line));
        }
        Advance();
      }
      Advance();
      Advance();
    } else {
      break;
    }
  }
  return prore::Status::OK();
}

prore::Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  bool last_was_atom = false;
  while (true) {
    PRORE_RETURN_IF_ERROR(SkipLayout());
    Token tok;
    tok.line = line_;
    tok.column = column_;
    if (AtEnd()) {
      tok.kind = TokenKind::kEof;
      out.push_back(tok);
      return out;
    }
    char c = Peek();
    bool this_is_atom = false;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Integer. (0'c character codes are supported as a convenience.)
      if (c == '0' && Peek(1) == '\'' && Peek(2) != '\0') {
        Advance();
        Advance();
        char code = Advance();
        if (code == '\\') {
          char esc = Advance();
          switch (esc) {
            case 'n': code = '\n'; break;
            case 't': code = '\t'; break;
            case 'a': code = '\a'; break;
            case '\\': code = '\\'; break;
            case '\'': code = '\''; break;
            default: code = esc; break;
          }
        }
        tok.kind = TokenKind::kInteger;
        tok.text = std::to_string(static_cast<int>(code));
      } else {
        std::string digits;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          digits.push_back(Advance());
        }
        // A '.' followed by a digit continues into a float literal.
        if (Peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(Peek(1)))) {
          digits.push_back(Advance());
          while (!AtEnd() &&
                 std::isdigit(static_cast<unsigned char>(Peek()))) {
            digits.push_back(Advance());
          }
          tok.kind = TokenKind::kFloat;
        } else {
          tok.kind = TokenKind::kInteger;
        }
        tok.text = digits;
      }
    } else if (std::islower(static_cast<unsigned char>(c))) {
      // Unquoted name atom.
      std::string name;
      while (!AtEnd() && IsAlnumUnderscore(Peek())) name.push_back(Advance());
      tok.kind = TokenKind::kAtom;
      tok.text = name;
      this_is_atom = true;
    } else if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (!AtEnd() && IsAlnumUnderscore(Peek())) name.push_back(Advance());
      tok.kind = TokenKind::kVariable;
      tok.text = name;
    } else if (c == '\'') {
      // Quoted atom.
      Advance();
      std::string name;
      while (true) {
        if (AtEnd()) {
          return prore::Status::ParseError(prore::StrFormat(
              "unterminated quoted atom at line %d", tok.line));
        }
        char q = Advance();
        if (q == '\'') {
          if (Peek() == '\'') {  // '' escape
            name.push_back('\'');
            Advance();
          } else {
            break;
          }
        } else if (q == '\\') {
          if (AtEnd()) {
            return prore::Status::ParseError(prore::StrFormat(
                "unterminated escape in quoted atom at line %d", tok.line));
          }
          char esc = Advance();
          switch (esc) {
            case 'n': name.push_back('\n'); break;
            case 't': name.push_back('\t'); break;
            case 'a': name.push_back('\a'); break;
            case '\\': name.push_back('\\'); break;
            case '\'': name.push_back('\''); break;
            case '\n': break;  // line continuation
            default: name.push_back(esc); break;
          }
        } else {
          name.push_back(q);
        }
      }
      tok.kind = TokenKind::kAtom;
      tok.text = name;
      this_is_atom = true;
    } else if (c == '[' && Peek(1) == ']') {
      Advance();
      Advance();
      tok.kind = TokenKind::kAtom;
      tok.text = "[]";
      this_is_atom = true;
    } else if (c == '{' && Peek(1) == '}') {
      Advance();
      Advance();
      tok.kind = TokenKind::kAtom;
      tok.text = "{}";
      this_is_atom = true;
    } else if (IsSolo(c)) {
      Advance();
      if (c == '!' || c == ';') {
        tok.kind = TokenKind::kAtom;
        tok.text = std::string(1, c);
        this_is_atom = true;
      } else {
        tok.kind = TokenKind::kPunct;
        tok.text = std::string(1, c);
        if (c == '(') tok.preceded_by_atom = last_was_atom;
      }
    } else if (IsSymbolChar(c)) {
      // Run of symbol characters forms one symbolic atom — except that a
      // '.' followed by layout or EOF terminates the clause.
      if (c == '.') {
        char next = Peek(1);
        if (next == '\0' || std::isspace(static_cast<unsigned char>(next)) ||
            next == '%') {
          Advance();
          tok.kind = TokenKind::kEnd;
          tok.text = ".";
          out.push_back(tok);
          last_was_atom = false;
          continue;
        }
      }
      // Maximal munch: the clause-terminating '.' is only recognized at
      // token start (checked above); inside a run, '.' is a symbol char
      // so that '=..' lexes as one atom.
      std::string sym;
      while (!AtEnd() && IsSymbolChar(Peek())) {
        sym.push_back(Advance());
      }
      tok.kind = TokenKind::kAtom;
      tok.text = sym;
      this_is_atom = true;
    } else {
      return prore::Status::ParseError(prore::StrFormat(
          "unexpected character '%c' at line %d column %d", c, tok.line,
          tok.column));
    }
    // Mark functor application: atom immediately followed by '('.
    if (this_is_atom && Peek() == '(') tok.functor_paren = true;
    out.push_back(tok);
    last_was_atom = this_is_atom && tok.functor_paren;
  }
}

}  // namespace prore::reader
