#ifndef PRORE_READER_PROGRAM_H_
#define PRORE_READER_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "term/store.h"

namespace prore::reader {

/// One clause, split at the neck: `head :- body.`; facts have body = true.
/// Head and body share variables (they were renamed apart from other
/// clauses when read in).
struct Clause {
  term::TermRef head = term::kNullTerm;
  term::TermRef body = term::kNullTerm;  ///< atom `true` for facts
};

/// A parsed Prolog program: predicates in first-appearance order, each with
/// its clauses in source order, plus the directives (`:- goal.`) in order.
class Program {
 public:
  /// Appends a clause, creating its predicate on first sight.
  /// Returns false if `head` is not callable.
  bool AddClause(const term::TermStore& store, const Clause& clause);

  void AddDirective(term::TermRef goal) { directives_.push_back(goal); }

  const std::vector<term::PredId>& pred_order() const { return pred_order_; }

  bool Has(const term::PredId& id) const { return preds_.count(id) > 0; }

  const std::vector<Clause>& ClausesOf(const term::PredId& id) const;
  std::vector<Clause>* MutableClausesOf(const term::PredId& id);

  /// Replaces (or creates) the clause list of `id`.
  void SetClauses(const term::PredId& id, std::vector<Clause> clauses);

  /// Removes a predicate entirely (used when specialization supersedes the
  /// original). No-op if absent.
  void ErasePred(const term::PredId& id);

  const std::vector<term::TermRef>& directives() const { return directives_; }

  size_t NumPreds() const { return pred_order_.size(); }
  size_t NumClauses() const;

 private:
  std::vector<term::PredId> pred_order_;
  std::unordered_map<term::PredId, std::vector<Clause>, term::PredIdHash>
      preds_;
  std::vector<term::TermRef> directives_;
};

}  // namespace prore::reader

#endif  // PRORE_READER_PROGRAM_H_
