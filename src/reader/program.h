#ifndef PRORE_READER_PROGRAM_H_
#define PRORE_READER_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "term/store.h"

namespace prore::reader {

/// A position in the source text, 1-based. line == 0 means "unknown"
/// (e.g. a term synthesized by a transformation rather than parsed).
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  bool operator==(const SourceSpan&) const = default;
};

/// One clause, split at the neck: `head :- body.`; facts have body = true.
/// Head and body share variables (they were renamed apart from other
/// clauses when read in).
struct Clause {
  term::TermRef head = term::kNullTerm;
  term::TermRef body = term::kNullTerm;  ///< atom `true` for facts
  /// Position of the clause's first token in the source it was parsed
  /// from; unknown for synthesized clauses.
  SourceSpan span;
};

/// A parsed Prolog program: predicates in first-appearance order, each with
/// its clauses in source order, plus the directives (`:- goal.`) in order.
class Program {
 public:
  /// Appends a clause, creating its predicate on first sight.
  /// Returns false if `head` is not callable.
  bool AddClause(const term::TermStore& store, const Clause& clause);

  void AddDirective(term::TermRef goal) { directives_.push_back(goal); }

  const std::vector<term::PredId>& pred_order() const { return pred_order_; }

  bool Has(const term::PredId& id) const { return preds_.count(id) > 0; }

  const std::vector<Clause>& ClausesOf(const term::PredId& id) const;
  std::vector<Clause>* MutableClausesOf(const term::PredId& id);

  /// Replaces (or creates) the clause list of `id`.
  void SetClauses(const term::PredId& id, std::vector<Clause> clauses);

  /// Removes a predicate entirely (used when specialization supersedes the
  /// original). No-op if absent.
  void ErasePred(const term::PredId& id);

  const std::vector<term::TermRef>& directives() const { return directives_; }

  size_t NumPreds() const { return pred_order_.size(); }
  size_t NumClauses() const;

  // ---- Source spans ---------------------------------------------------------
  // The parser records where each parsed term came from, keyed by TermRef
  // (terms are immutable, so the key is stable). Diagnostics look spans up
  // here; terms created by transformations simply have no entry.

  void SetTermSpan(term::TermRef t, const SourceSpan& span) {
    term_spans_.emplace(t, span);
  }
  void SetTermSpans(std::unordered_map<term::TermRef, SourceSpan> spans) {
    term_spans_ = std::move(spans);
  }

  /// Span of a parsed term; an unknown (line 0) span if never recorded.
  SourceSpan TermSpan(term::TermRef t) const {
    auto it = term_spans_.find(t);
    return it == term_spans_.end() ? SourceSpan{} : it->second;
  }

  size_t NumTermSpans() const { return term_spans_.size(); }

 private:
  std::vector<term::PredId> pred_order_;
  std::unordered_map<term::PredId, std::vector<Clause>, term::PredIdHash>
      preds_;
  std::vector<term::TermRef> directives_;
  std::unordered_map<term::TermRef, SourceSpan> term_spans_;
};

}  // namespace prore::reader

#endif  // PRORE_READER_PROGRAM_H_
