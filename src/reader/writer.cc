#include "reader/writer.h"

#include <cctype>

#include "common/str_util.h"
#include "term/symbol.h"

namespace prore::reader {

namespace {

using term::SymbolTable;
using term::Tag;
using term::TermRef;
using term::TermStore;

bool IsLetterAtom(const std::string& name) {
  if (name.empty() || !std::islower(static_cast<unsigned char>(name[0]))) {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

bool IsSymbolChar(char c) {
  switch (c) {
    case '#': case '$': case '&': case '*': case '+': case '-': case '.':
    case '/': case ':': case '<': case '=': case '>': case '?': case '@':
    case '^': case '~': case '\\':
      return true;
    default:
      return false;
  }
}

bool IsSymbolAtom(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!IsSymbolChar(c)) return false;
  }
  return true;
}

bool NeedsQuotes(const std::string& name) {
  if (IsLetterAtom(name) || IsSymbolAtom(name)) return false;
  if (name == "[]" || name == "{}" || name == "!" || name == ";") return false;
  return true;
}

std::string QuoteAtom(const std::string& name, bool quoted) {
  if (!quoted || !NeedsQuotes(name)) return name;
  std::string out = "'";
  for (char c : name) {
    if (c == '\'') {
      out += "\\'";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('\'');
  return out;
}

class Writer {
 public:
  Writer(const TermStore& store, const WriteOptions& opts)
      : store_(store), opts_(opts) {}

  void Write(TermRef t, int max_priority, std::string* out) {
    t = store_.Deref(t);
    switch (store_.tag(t)) {
      case Tag::kVar: {
        const std::string& name = store_.var_name(t);
        if (opts_.var_names && !name.empty()) {
          out->append(name);
        } else {
          out->append(prore::StrFormat("_G%u", store_.var_id(t)));
        }
        return;
      }
      case Tag::kInt: {
        int64_t v = store_.int_value(t);
        if (v < 0 && max_priority < 200) {
          out->push_back('(');
          out->append(std::to_string(v));
          out->push_back(')');
        } else {
          out->append(std::to_string(v));
        }
        return;
      }
      case Tag::kFloat: {
        double v = store_.float_value(t);
        std::string text = prore::StrFormat("%g", v);
        // Keep it re-readable as a float.
        if (text.find('.') == std::string::npos &&
            text.find('e') == std::string::npos &&
            text.find("inf") == std::string::npos &&
            text.find("nan") == std::string::npos) {
          text += ".0";
        }
        if (v < 0 && max_priority < 200) {
          out->push_back('(');
          out->append(text);
          out->push_back(')');
        } else {
          out->append(text);
        }
        return;
      }
      case Tag::kAtom: {
        const std::string& name = store_.symbols().Name(store_.symbol(t));
        // A bare operator atom in an operand position needs parentheses.
        if (ops_.IsOp(name) && max_priority < 1200) {
          int p = 0;
          if (auto d = ops_.Infix(name); d.has_value()) {
            p = std::max(p, d->priority);
          }
          if (auto d = ops_.Prefix(name); d.has_value()) {
            p = std::max(p, d->priority);
          }
          if (p > max_priority) {
            out->push_back('(');
            out->append(QuoteAtom(name, opts_.quoted));
            out->push_back(')');
            return;
          }
        }
        out->append(QuoteAtom(name, opts_.quoted));
        return;
      }
      case Tag::kStruct:
        WriteStruct(t, max_priority, out);
        return;
    }
  }

 private:
  void WriteStruct(TermRef t, int max_priority, std::string* out) {
    const std::string& name = store_.symbols().Name(store_.symbol(t));
    uint32_t n = store_.arity(t);

    // Lists.
    if (opts_.use_lists && store_.symbol(t) == SymbolTable::kDot && n == 2) {
      WriteList(t, out);
      return;
    }
    // {Goal}.
    if (store_.symbol(t) == SymbolTable::kCurly && n == 1) {
      out->push_back('{');
      Write(store_.arg(t, 0), 1200, out);
      out->push_back('}');
      return;
    }
    if (opts_.use_operators && n == 2) {
      auto d = ops_.Infix(name);
      if (d.has_value()) {
        int p = d->priority;
        int left_max = d->type == OpType::kYfx ? p : p - 1;
        int right_max = d->type == OpType::kXfy ? p : p - 1;
        bool parens = p > max_priority;
        if (parens) out->push_back('(');
        std::string left_str, right_str;
        Write(store_.arg(t, 0), left_max, &left_str);
        Write(store_.arg(t, 1), right_max, &right_str);
        out->append(left_str);
        if (name == ",") {
          out->append(",");
        } else if (IsLetterAtom(name)) {
          out->push_back(' ');
          out->append(name);
          out->push_back(' ');
        } else {
          // Keep the compact form but insert a space wherever the operator
          // would otherwise fuse with an operand token: a symbol-char
          // neighbour, or a '(' (which would re-read as name(...)).
          if (!left_str.empty() && IsSymbolChar(left_str.back())) {
            out->push_back(' ');
          }
          out->append(name);
          if (!right_str.empty() &&
              (right_str[0] == '(' || IsSymbolChar(right_str[0]))) {
            out->push_back(' ');
          }
        }
        out->append(right_str);
        if (parens) out->push_back(')');
        return;
      }
    }
    if (opts_.use_operators && n == 1) {
      auto d = ops_.Prefix(name);
      if (d.has_value()) {
        int p = d->priority;
        int arg_max = d->type == OpType::kFy ? p : p - 1;
        bool parens = p > max_priority;
        if (parens) out->push_back('(');
        out->append(name);
        std::string arg_str;
        Write(store_.arg(t, 0), arg_max, &arg_str);
        // Space wherever operator and argument would fuse into one token:
        // letter operators always, symbolic operators before '-', '(' or
        // another symbol char.
        bool space = IsLetterAtom(name);
        if (!space && !arg_str.empty() &&
            (arg_str[0] == '(' || IsSymbolChar(arg_str[0]))) {
          space = true;
        }
        if (space) out->push_back(' ');
        out->append(arg_str);
        if (parens) out->push_back(')');
        return;
      }
    }
    // Canonical functor notation.
    out->append(QuoteAtom(name, opts_.quoted));
    out->push_back('(');
    for (uint32_t i = 0; i < n; ++i) {
      if (i > 0) out->push_back(',');
      Write(store_.arg(t, i), 999, out);
    }
    out->push_back(')');
  }

  void WriteList(TermRef t, std::string* out) {
    out->push_back('[');
    bool first = true;
    while (true) {
      t = store_.Deref(t);
      if (store_.IsCons(t)) {
        if (!first) out->push_back(',');
        Write(store_.arg(t, 0), 999, out);
        first = false;
        t = store_.arg(t, 1);
        continue;
      }
      if (store_.IsNil(t)) break;
      out->push_back('|');
      Write(t, 999, out);
      break;
    }
    out->push_back(']');
  }

  const TermStore& store_;
  const WriteOptions& opts_;
  OpTable ops_;
};

}  // namespace

std::string WriteTerm(const term::TermStore& store, term::TermRef t,
                      const WriteOptions& opts) {
  std::string out;
  Writer writer(store, opts);
  writer.Write(t, 1200, &out);
  return out;
}

std::string WriteClause(const term::TermStore& store, const Clause& clause,
                        const WriteOptions& opts) {
  std::string out;
  Writer writer(store, opts);
  writer.Write(clause.head, 1199, &out);
  term::TermRef body = store.Deref(clause.body);
  bool is_fact = store.tag(body) == term::Tag::kAtom &&
                 store.symbol(body) == term::SymbolTable::kTrue;
  if (!is_fact) {
    out.append(" :-\n");
    // Print top-level conjuncts one per line.
    std::vector<term::TermRef> goals;
    term::TermRef cur = body;
    while (true) {
      cur = store.Deref(cur);
      if (store.tag(cur) == term::Tag::kStruct &&
          store.symbol(cur) == term::SymbolTable::kComma &&
          store.arity(cur) == 2) {
        goals.push_back(store.arg(cur, 0));
        cur = store.arg(cur, 1);
      } else {
        goals.push_back(cur);
        break;
      }
    }
    for (size_t i = 0; i < goals.size(); ++i) {
      out.append("    ");
      writer.Write(goals[i], 999, &out);
      if (i + 1 < goals.size()) out.append(",\n");
    }
  }
  out.push_back('.');
  return out;
}

std::string WriteProgram(const term::TermStore& store, const Program& program,
                         const WriteOptions& opts) {
  std::string out;
  bool first = true;
  for (const term::PredId& id : program.pred_order()) {
    if (!first) out.push_back('\n');
    first = false;
    for (const Clause& clause : program.ClausesOf(id)) {
      out.append(WriteClause(store, clause, opts));
      out.push_back('\n');
    }
  }
  return out;
}

std::string PredName(const term::TermStore& store, const term::PredId& id) {
  return prore::StrFormat("%s/%u", store.symbols().Name(id.name).c_str(),
                          id.arity);
}

}  // namespace prore::reader
