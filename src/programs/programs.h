#ifndef PRORE_PROGRAMS_PROGRAMS_H_
#define PRORE_PROGRAMS_PROGRAMS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prore::programs {

/// One benchmark program with its evaluation workload — the inputs to the
/// paper's Tables II, III and IV.
struct BenchmarkProgram {
  std::string name;
  /// Prolog source text (facts synthesized deterministically + rules).
  std::string source;
  /// Constants to instantiate '+' positions with (Table II calls each
  /// predicate once per possible instantiation).
  std::vector<std::string> universe;

  /// Predicate-per-mode workloads (Table II / III rows).
  struct ModeWorkload {
    std::string pred;
    uint32_t arity;
    std::string mode;  ///< e.g. "(+,-)"
    /// Expected improvement ratio reported by the paper (0 = not reported);
    /// recorded so the bench can print paper-vs-measured side by side.
    double paper_ratio = 0.0;
  };
  std::vector<ModeWorkload> mode_workloads;

  /// Plain query workloads (Table IV rows).
  struct QueryWorkload {
    std::string label;
    std::vector<std::string> queries;
    double paper_ratio = 0.0;
  };
  std::vector<QueryWorkload> query_workloads;
};

/// The family-tree program of §VII / Fig. 6: 55 constants, 10 girl/1,
/// 19 wife/2, 34 mother/2 facts (the paper's exact fact counts), with the
/// kinship rules aunt, brother, cousins, grandmother, ... (Table II).
const BenchmarkProgram& FamilyTree();

/// The corporate-database program of Table III: 120 employees keyed by an
/// identification number, rules benefits/2, pay/3, maternity/2,
/// average_pay/2, tax/2.
const BenchmarkProgram& CorporateDb();

/// Problem 58 from "How to Solve It in Prolog" (Table IV): a small
/// generate-and-test number puzzle, queried fully instantiated.
const BenchmarkProgram& P58();

/// The meal planner of Table IV: plans (appetizer, main, dessert) menus;
/// largely deterministic, so reordering gains little.
const BenchmarkProgram& Meal();

/// The project-team generator of Table IV: staff database queried for
/// compatible teams; highly nondeterministic, the biggest Table IV gains.
const BenchmarkProgram& Team();

/// The kmbench stand-in of Table IV: a small backward-chaining theorem
/// prover (depth-bounded, contrapositive rules) running a benchmark set;
/// mostly deterministic with a single reorderable clause.
const BenchmarkProgram& KmBench();

/// Warren's original setting (the paper's §I-E): a geography database with
/// conjunctive queries written in English word order — "reordering to
/// minimize this yielded speedups up to several hundred times".
const BenchmarkProgram& Geography();

/// All of the above, for sweeping benches/tests.
std::vector<const BenchmarkProgram*> AllPrograms();

}  // namespace prore::programs

#endif  // PRORE_PROGRAMS_PROGRAMS_H_
