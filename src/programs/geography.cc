#include <string>

#include "common/str_util.h"
#include "programs/programs.h"

namespace prore::programs {

namespace {

/// Warren's original setting (§I-E: "queries were automated translations of
/// questions in English ... on geography"): a database of countries,
/// continents, populations and borders, with conjunctive queries whose goal
/// order follows the English word order — usually a bad execution order.
struct CountryRow {
  const char* name;
  const char* continent;
  int population;  // millions
};

constexpr CountryRow kCountries[] = {
    {"albania", "europe", 3},        {"austria", "europe", 9},
    {"belgium", "europe", 12},       {"bulgaria", "europe", 7},
    {"czechia", "europe", 11},       {"denmark", "europe", 6},
    {"finland", "europe", 6},        {"france", "europe", 68},
    {"germany", "europe", 84},       {"greece", "europe", 10},
    {"hungary", "europe", 10},       {"italy", "europe", 59},
    {"netherlands", "europe", 18},   {"norway", "europe", 5},
    {"poland", "europe", 37},        {"portugal", "europe", 10},
    {"romania", "europe", 19},       {"spain", "europe", 48},
    {"sweden", "europe", 10},        {"switzerland", "europe", 9},
    {"ukraine", "europe", 38},       {"uk", "europe", 68},
    {"china", "asia", 1412},         {"india", "asia", 1428},
    {"iran", "asia", 89},            {"iraq", "asia", 45},
    {"israel", "asia", 10},          {"japan", "asia", 124},
    {"jordan", "asia", 11},          {"mongolia", "asia", 3},
    {"pakistan", "asia", 240},       {"saudi_arabia", "asia", 36},
    {"syria", "asia", 23},           {"thailand", "asia", 72},
    {"turkey", "asia", 85},          {"vietnam", "asia", 98},
    {"algeria", "africa", 45},       {"egypt", "africa", 112},
    {"ethiopia", "africa", 126},     {"kenya", "africa", 55},
    {"libya", "africa", 7},          {"morocco", "africa", 37},
    {"nigeria", "africa", 223},      {"sudan", "africa", 48},
    {"tunisia", "africa", 12},       {"argentina", "south_america", 46},
    {"bolivia", "south_america", 12}, {"brazil", "south_america", 216},
    {"chile", "south_america", 20},  {"colombia", "south_america", 52},
    {"peru", "south_america", 34},   {"venezuela", "south_america", 28},
    {"canada", "north_america", 39}, {"mexico", "north_america", 128},
    {"usa", "north_america", 335},   {"russia", "asia", 144},
};

constexpr const char* kBorders[][2] = {
    {"albania", "greece"},      {"austria", "germany"},
    {"austria", "italy"},       {"austria", "switzerland"},
    {"austria", "hungary"},     {"austria", "czechia"},
    {"belgium", "france"},      {"belgium", "germany"},
    {"belgium", "netherlands"}, {"bulgaria", "greece"},
    {"bulgaria", "romania"},    {"bulgaria", "turkey"},
    {"czechia", "germany"},     {"czechia", "poland"},
    {"denmark", "germany"},     {"finland", "norway"},
    {"finland", "sweden"},      {"france", "germany"},
    {"france", "italy"},        {"france", "spain"},
    {"france", "switzerland"},  {"germany", "netherlands"},
    {"germany", "poland"},      {"germany", "switzerland"},
    {"greece", "turkey"},       {"hungary", "romania"},
    {"hungary", "ukraine"},     {"italy", "switzerland"},
    {"norway", "sweden"},       {"poland", "ukraine"},
    {"portugal", "spain"},      {"romania", "ukraine"},
    {"china", "india"},         {"china", "mongolia"},
    {"china", "pakistan"},      {"china", "vietnam"},
    {"india", "pakistan"},      {"iran", "iraq"},
    {"iran", "pakistan"},       {"iran", "turkey"},
    {"iraq", "jordan"},         {"iraq", "saudi_arabia"},
    {"iraq", "syria"},          {"iraq", "turkey"},
    {"israel", "egypt"},        {"israel", "jordan"},
    {"israel", "syria"},        {"jordan", "saudi_arabia"},
    {"jordan", "syria"},        {"syria", "turkey"},
    {"algeria", "libya"},       {"algeria", "morocco"},
    {"algeria", "tunisia"},     {"egypt", "libya"},
    {"egypt", "sudan"},         {"ethiopia", "kenya"},
    {"ethiopia", "sudan"},      {"libya", "sudan"},
    {"libya", "tunisia"},       {"argentina", "bolivia"},
    {"argentina", "brazil"},    {"argentina", "chile"},
    {"bolivia", "brazil"},      {"bolivia", "chile"},
    {"bolivia", "peru"},        {"brazil", "colombia"},
    {"brazil", "peru"},         {"brazil", "venezuela"},
    {"chile", "peru"},          {"colombia", "peru"},
    {"colombia", "venezuela"},  {"canada", "usa"},
    {"mexico", "usa"},          {"russia", "ukraine"},
    {"russia", "finland"},      {"russia", "poland"},
    {"russia", "norway"},       {"russia", "china"},
    {"russia", "mongolia"},     {"spain", "morocco"},
};

BenchmarkProgram Build() {
  BenchmarkProgram p;
  p.name = "geography";
  std::string facts;
  for (const CountryRow& row : kCountries) {
    facts += prore::StrFormat("country(%s, %s, %d).\n", row.name,
                              row.continent, row.population);
    p.universe.push_back(row.name);
  }
  for (const auto& b : kBorders) {
    facts += prore::StrFormat("border_fact(%s, %s).\n", b[0], b[1]);
  }
  // Queries in the English word order Warren describes — the generators
  // come first because the question names them first.
  p.source = facts + R"(
borders(A, B) :- border_fact(A, B).
borders(A, B) :- border_fact(B, A).
populous(C) :- country(C, _, P), P > 100.

% "Which countries bordering a populous country are in Europe?"
q_euro_neighbor(C) :-
    country(X, _, _),
    populous(X),
    borders(C, X),
    country(C, europe, _).

% "Which African countries bridge two other African countries?"
q_afro_bridge(C, E1, E2) :-
    country(E1, africa, _),
    country(E2, africa, _),
    E1 \== E2,
    borders(C, E1),
    borders(C, E2),
    country(C, africa, _).

% "Which pairs of bordering countries are on different continents?"
q_cross_continent(A, B) :-
    country(A, CA, _),
    country(B, CB, _),
    CA \== CB,
    borders(A, B).

% "Which small countries border a very large one?"
q_david_goliath(S, L) :-
    country(S, _, PS),
    country(L, _, PL),
    PS < 15,
    PL > 200,
    borders(S, L).
)";
  p.query_workloads = {
      {"q_euro_neighbor(-)", {"q_euro_neighbor(C)"}, 0.0},
      {"q_afro_bridge(-,-,-)", {"q_afro_bridge(C, E1, E2)"}, 0.0},
      {"q_cross_continent(-,-)", {"q_cross_continent(A, B)"}, 0.0},
      {"q_david_goliath(-,-)", {"q_david_goliath(S, L)"}, 0.0},
  };
  return p;
}

}  // namespace

const BenchmarkProgram& Geography() {
  static const auto& program = *new BenchmarkProgram(Build());
  return program;
}

}  // namespace prore::programs
