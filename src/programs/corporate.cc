#include <cstdint>
#include <string>

#include "common/str_util.h"
#include "programs/programs.h"

namespace prore::programs {

namespace {

/// Deterministic LCG so the database is identical on every run.
struct Lcg {
  uint64_t state = 0x5DEECE66Dull;
  uint32_t Next(uint32_t bound) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>((state >> 33) % bound);
  }
};

/// 120 employees, facts keyed by the employee identification number (the
/// paper: "facts in this database are indexed on the employee
/// identification number; once that is instantiated, many goals of the
/// rules become trivial").
std::string BuildFacts(std::vector<std::string>* universe) {
  const char* kDepts[] = {"engineering", "sales",   "hr",
                          "finance",     "support", "research"};
  std::string facts;
  Lcg rng;
  for (int i = 1; i <= 120; ++i) {
    std::string id = prore::StrFormat("e%d", i);
    // One well-known employee for the bound-name workloads.
    std::string name = i == 7 ? "jane" : prore::StrFormat("name%d", i);
    const char* dept = kDepts[rng.Next(6)];
    int salary = 25000 + static_cast<int>(rng.Next(16)) * 5000;  // 25k..100k
    int years = static_cast<int>(rng.Next(21));                  // 0..20
    const char* gender = rng.Next(2) == 0 ? "f" : "m";
    const char* status = rng.Next(4) == 0 ? "parttime" : "fulltime";
    facts += prore::StrFormat("employee(%s,%s,%s).\n", id.c_str(),
                              name.c_str(), dept);
    facts += prore::StrFormat("salary(%s,%d).\n", id.c_str(), salary);
    facts += prore::StrFormat("years(%s,%d).\n", id.c_str(), years);
    facts += prore::StrFormat("gender(%s,%s).\n", id.c_str(), gender);
    facts += prore::StrFormat("status(%s,%s).\n", id.c_str(), status);
    universe->push_back(name);
  }
  const int kProfit[] = {140, 90, 20, 160, 40, 110};
  for (int d = 0; d < 6; ++d) {
    facts += prore::StrFormat("dept_profit(%s,%d).\n", kDepts[d], kProfit[d]);
  }
  for (int d = 0; d < 6; ++d) {
    facts += prore::StrFormat("department(%s).\n", kDepts[d]);
  }
  return facts;
}

/// The rules, written in the "natural" narrative order a programmer would
/// use — joins first, cheap filters last — which is what the reorderer
/// improves (Table III).
constexpr const char* kRules = R"(
benefits(Name, pension) :-
    employee(Id, Name, _),
    salary(Id, S),
    years(Id, Y),
    status(Id, fulltime),
    Y >= 10,
    S < 60000.
benefits(Name, bonus) :-
    employee(Id, Name, D),
    salary(Id, S),
    dept_profit(D, P),
    P >= 100,
    S < 80000.

pay(Name, Base, Net) :-
    employee(Id, Name, _),
    salary(Id, Base),
    tax_band(Base, Band),
    band_rate(Band, R),
    Net is Base - Base * R // 100.

maternity(Name, Weeks) :-
    employee(Id, Name, _),
    years(Id, Y),
    Y >= 1,
    status(Id, fulltime),
    gender(Id, f),
    Weeks is 12 + Y.

average_pay(Dept, Avg) :-
    department(Dept),
    findall(S, dept_salary(Dept, S), L),
    sum_list(L, Total),
    length(L, N),
    N > 0,
    Avg is Total // N.
dept_salary(Dept, S) :- employee(Id, _, Dept), salary(Id, S).

tax(Name, T) :-
    employee(Id, Name, _),
    salary(Id, S),
    status(Id, fulltime),
    tax_band(S, Band),
    band_rate(Band, R),
    T is S * R // 100.

tax_band(S, low) :- S < 40000.
tax_band(S, mid) :- S >= 40000, S < 70000.
tax_band(S, high) :- S >= 70000.
band_rate(low, 10).
band_rate(mid, 20).
band_rate(high, 30).
)";

BenchmarkProgram Build() {
  BenchmarkProgram p;
  p.name = "corporate";
  p.source = BuildFacts(&p.universe) + kRules;
  p.query_workloads = {
      {"benefits(-,-)", {"benefits(N, B)"}, 2.34},
      {"pay(-,-,-)", {"pay(N, B, T)"}, 1.00},
      {"pay(jane,-,-)", {"pay(jane, B, T)"}, 1.00},
      {"maternity(-,-)", {"maternity(N, W)"}, 2.07},
      {"maternity(jane,-)", {"maternity(jane, W)"}, 1.00},
      {"average_pay(-,-)", {"average_pay(D, A)"}, 1.00},
      {"tax(-,-)", {"tax(N, T)"}, 1.17},
      {"tax(jane,-)", {"tax(jane, T)"}, 1.00},
  };
  return p;
}

}  // namespace

const BenchmarkProgram& CorporateDb() {
  static const auto& program = *new BenchmarkProgram(Build());
  return program;
}

}  // namespace prore::programs
