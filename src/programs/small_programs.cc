#include <string>

#include "common/str_util.h"
#include "programs/programs.h"

namespace prore::programs {

// ---- p58 (Table IV) ---------------------------------------------------------

namespace {

BenchmarkProgram BuildP58() {
  BenchmarkProgram p;
  p.name = "p58";
  std::string facts;
  for (int i = 1; i <= 11; ++i) {
    facts += prore::StrFormat("num58(%d).\n", i);
  }
  p.source = facts + R"(
even58(X) :- 0 =:= X mod 2.
p58(S, P) :-
    num58(X),
    num58(Y),
    even58(X),
    X < Y,
    S =:= X + Y,
    P =:= X * Y.
)";
  // The paper queries p58 fully instantiated: p58(+,+), ratio 1.55.
  p.query_workloads = {
      {"p58(+,+)",
       {"p58(10, 24)", "p58(14, 48)", "p58(13, 40)", "p58(9, 8)",
        "p58(12, 20)"},
       1.55},
  };
  return p;
}

// ---- meal (Table IV) --------------------------------------------------------

BenchmarkProgram BuildMeal() {
  BenchmarkProgram p;
  p.name = "meal";
  p.source = R"(
appetizer(pate).
appetizer(salad).
appetizer(soup).
appetizer(melon).
appetizer(shrimp).
main_course(beef).
main_course(chicken).
main_course(fish).
main_course(pasta).
main_course(pork).
main_course(tofu).
dessert(cake).
dessert(fruit).
dessert(ice_cream).
dessert(sorbet).
dessert(cheese).
calories(pate, 300).
calories(salad, 120).
calories(soup, 200).
calories(melon, 90).
calories(shrimp, 250).
calories(beef, 700).
calories(chicken, 500).
calories(fish, 400).
calories(pasta, 550).
calories(pork, 650).
calories(tofu, 300).
calories(cake, 450).
calories(fruit, 150).
calories(ice_cream, 350).
calories(sorbet, 200).
calories(cheese, 400).
meal(A, M, D) :-
    appetizer(A),
    main_course(M),
    dessert(D),
    light(A, M, D).
light(A, M, D) :-
    calories(A, CA),
    calories(M, CM),
    calories(D, CD),
    CA + CM + CD =< 1000.
)";
  // meal is largely deterministic: every combination must be generated and
  // the three-way test needs all three courses — little to reorder
  // (paper ratio 1.06).
  p.query_workloads = {
      {"meal(-,-,-)", {"meal(A, M, D)"}, 1.06},
  };
  return p;
}

// ---- team (Table IV) --------------------------------------------------------

BenchmarkProgram BuildTeam() {
  BenchmarkProgram p;
  p.name = "team";
  std::string facts;
  // 30 staff members: 5 managers, 13 programmers, 12 analysts.
  const char* kSkills[] = {"db", "ui", "net", "ai"};
  for (int i = 1; i <= 30; ++i) {
    std::string id = prore::StrFormat("s%d", i);
    p.universe.push_back(id);
    facts += prore::StrFormat("person(%s).\n", id.c_str());
    const char* role = i <= 5 ? "manager" : (i <= 18 ? "programmer"
                                                     : "analyst");
    facts += prore::StrFormat("role(%s,%s).\n", id.c_str(), role);
    facts += prore::StrFormat("skill(%s,%s).\n", id.c_str(),
                              kSkills[(i * 7) % 4]);
    if (i % 3 != 0) facts += prore::StrFormat("free(%s).\n", id.c_str());
  }
  // Each manager needs one skill; compatibility is sparse.
  for (int m = 1; m <= 5; ++m) {
    facts += prore::StrFormat("needs(s%d,%s).\n", m, kSkills[m % 4]);
    for (int o = 6; o <= 30; o += (m + 1)) {
      facts += prore::StrFormat("compatible(s%d,s%d).\n", m, o);
    }
  }
  p.source = facts + R"(
team(L, P) :-
    person(L),
    person(P),
    role(L, manager),
    role(P, programmer),
    skill(P, S),
    needs(L, S),
    free(P),
    compatible(L, P).
)";
  p.mode_workloads = {
      {"team", 2, "(-,-)", 3.47},
      {"team", 2, "(+,+)", 3.87},
  };
  return p;
}

// ---- kmbench (Table IV) -----------------------------------------------------

BenchmarkProgram BuildKmBench() {
  BenchmarkProgram p;
  p.name = "kmbench";
  std::string facts;
  // A layered Horn theory: layer-0 axioms, higher layers combine lower
  // facts conjunctively/disjunctively; theorems sit at the top. The prover
  // is a depth-bounded backward chainer — recursive, hence untouched by
  // the reorderer; only the driver clause reorders (paper: "only a single
  // clause of ... kmbench can be reordered", ratio 1.14).
  for (int i = 1; i <= 8; ++i) {
    facts += prore::StrFormat("axiom(a%d).\n", i);
  }
  // Layer 1: b_k :- a_k, a_{k+1}.
  for (int i = 1; i <= 7; ++i) {
    facts += prore::StrFormat("rule(b%d, (a%d, a%d)).\n", i, i, i + 1);
  }
  // Layer 2: c_k :- b_k, b_{k+2}  (some provable, some not).
  for (int i = 1; i <= 6; ++i) {
    facts += prore::StrFormat("rule(c%d, (b%d, b%d)).\n", i, i,
                              (i % 5) + 1);
  }
  // Layer 3: theorems with two alternative derivations each.
  for (int i = 1; i <= 5; ++i) {
    facts += prore::StrFormat("rule(t%d, (c%d, b%d)).\n", i, i, i);
    facts += prore::StrFormat("rule(t%d, (c%d, a%d)).\n", i, i + 1, i);
    facts += prore::StrFormat("theorem(t%d).\n", i);
  }
  // A few non-theorems to make `interesting` selective.
  facts += "interesting(t1).\ninteresting(t3).\ninteresting(t5).\n";
  p.source = facts + R"(
prove(G) :- prove(G, 12).
prove(true, _).
prove((A, B), D) :- prove(A, D), prove(B, D).
prove(G, _) :- axiom(G).
prove(G, D) :- D > 0, D1 is D - 1, rule(G, Body), prove(Body, D1).
check(T) :- theorem(T), prove(T), interesting(T).
)";
  p.query_workloads = {
      {"kmbench", {"check(T)"}, 1.14},
  };
  return p;
}

}  // namespace

const BenchmarkProgram& P58() {
  static const auto& program = *new BenchmarkProgram(BuildP58());
  return program;
}

const BenchmarkProgram& Meal() {
  static const auto& program = *new BenchmarkProgram(BuildMeal());
  return program;
}

const BenchmarkProgram& Team() {
  static const auto& program = *new BenchmarkProgram(BuildTeam());
  return program;
}

const BenchmarkProgram& KmBench() {
  static const auto& program = *new BenchmarkProgram(BuildKmBench());
  return program;
}

std::vector<const BenchmarkProgram*> AllPrograms() {
  return {&FamilyTree(), &CorporateDb(), &P58(), &Meal(), &Team(),
          &KmBench(), &Geography()};
}

}  // namespace prore::programs
