#include <string>

#include "common/str_util.h"
#include "programs/programs.h"

namespace prore::programs {

namespace {

/// Builds the 55-person family tree with the paper's exact fact counts:
/// 19 wife/2, 34 mother/2, 10 girl/1.
///
/// Shape: three generations.
///   gen 0: couples (h1,w1)..(h5,w5) — roots, no recorded mothers.
///   gen 1: 17 children of w1..w5:   h6..h12, w6..w12, g1..g3,
///          marrying into couples (h6,w6)..(h12,w12).
///   gen 2: 17 children of w6..w12:  h13..h19, w13..w19, g4..g6,
///          marrying into couples (h13,w13)..(h19,w19).
///   plus girls g7..g10 and boys b1..b7 outside the tree.
/// 19 + 19 + 10 + 7 = 55 people; 5 + 7 + 7 = 19 couples;
/// 17 + 17 = 34 mother facts; 10 girl facts.
std::string BuildFacts(std::vector<std::string>* universe) {
  std::string facts;
  auto h = [](int i) { return prore::StrFormat("h%d", i); };
  auto w = [](int i) { return prore::StrFormat("w%d", i); };
  auto g = [](int i) { return prore::StrFormat("g%d", i); };
  auto b = [](int i) { return prore::StrFormat("b%d", i); };

  for (int i = 1; i <= 19; ++i) universe->push_back(h(i));
  for (int i = 1; i <= 19; ++i) universe->push_back(w(i));
  for (int i = 1; i <= 10; ++i) universe->push_back(g(i));
  for (int i = 1; i <= 7; ++i) universe->push_back(b(i));

  // girl/1: 10 facts.
  for (int i = 1; i <= 10; ++i) {
    facts += prore::StrFormat("girl(%s).\n", g(i).c_str());
  }
  // wife/2: 19 facts, wife(Husband, Wife).
  for (int i = 1; i <= 19; ++i) {
    facts += prore::StrFormat("wife(%s,%s).\n", h(i).c_str(), w(i).c_str());
  }
  // mother/2: 34 facts, mother(Child, Mother).
  // Gen 1 (17 children of w1..w5). Spread children across root mothers so
  // different couples' children intermarry (making cousins/aunts real).
  const char* gen1[][2] = {
      // child, mother-index
      {"h6", "1"},  {"w7", "1"},  {"h8", "1"},  {"g1", "1"},
      {"w6", "2"},  {"h7", "2"},  {"w9", "2"},  {"g2", "2"},
      {"h9", "3"},  {"w8", "3"},  {"h10", "3"},
      {"w10", "4"}, {"h11", "4"}, {"w12", "4"},
      {"w11", "5"}, {"h12", "5"}, {"g3", "5"},
  };
  for (const auto& row : gen1) {
    facts += prore::StrFormat("mother(%s,w%s).\n", row[0], row[1]);
  }
  // Gen 2 (17 children of w6..w12).
  const char* gen2[][2] = {
      {"h13", "6"},  {"w14", "6"},  {"g4", "6"},
      {"w13", "7"},  {"h14", "7"},  {"g5", "7"},
      {"h15", "8"},  {"w16", "8"},  {"g6", "8"},
      {"w15", "9"},  {"h16", "9"},  {"h17", "9"},
      {"w17", "10"}, {"h18", "10"},
      {"w18", "11"}, {"h19", "11"},
      {"w19", "12"},
  };
  for (const auto& row : gen2) {
    facts += prore::StrFormat("mother(%s,w%s).\n", row[0], row[1]);
  }
  return facts;
}

/// The kinship rules, in the paper's Fig. 6 source order (goal orders are
/// the "natural" ones the reorderer is supposed to improve).
constexpr const char* kRules = R"(
female(X) :- girl(X).
female(X) :- wife(_, X).
male(X) :- not(female(X)).
father(X, Y) :- mother(X, M), wife(Y, M).
parent(X, Y) :- mother(X, Y).
parent(X, Y) :- father(X, Y).
married(X, Y) :- wife(X, Y).
married(X, Y) :- wife(Y, X).
siblings(X, Y) :- mother(X, M), mother(Y, M), unequal(X, Y).
sister(X, Y) :- siblings(X, Y), female(Y).
brother(X, Y) :- siblings(X, Y), male(Y).
grandmother(X, Y) :- parent(X, Z), mother(Z, Y).
cousins(X, Y) :- parent(X, Z), parent(Y, W), siblings(W, Z).
cousins(X, Y) :- parent(X, Z), parent(Y, W), siblings(W, V), married(V, Z).
aunt(X, Y) :- parent(X, Z), sister(Z, Y).
aunt(X, Y) :- parent(X, Z), brother(Z, W), wife(W, Y).
unequal(X, Y) :- X \== Y.
)";

BenchmarkProgram Build() {
  BenchmarkProgram p;
  p.name = "family_tree";
  p.source = BuildFacts(&p.universe) + kRules;
  // Table II rows: aunt, brother, cousins, grandmother in all four modes,
  // with the ratios the paper measured (C-Prolog 1.5, their fact base).
  p.mode_workloads = {
      {"aunt", 2, "(-,-)", 1.47},      {"aunt", 2, "(-,+)", 43.91},
      {"aunt", 2, "(+,-)", 1.00},      {"aunt", 2, "(+,+)", 1.39},
      {"brother", 2, "(-,-)", 1.00},   {"brother", 2, "(-,+)", 3.45},
      {"brother", 2, "(+,-)", 1.00},   {"brother", 2, "(+,+)", 0.75},
      {"cousins", 2, "(-,-)", 42.65},  {"cousins", 2, "(-,+)", 52.49},
      {"cousins", 2, "(+,-)", 24.84},  {"cousins", 2, "(+,+)", 0.91},
      {"grandmother", 2, "(-,-)", 1.15}, {"grandmother", 2, "(-,+)", 347.66},
      {"grandmother", 2, "(+,-)", 1.00}, {"grandmother", 2, "(+,+)", 1.52},
  };
  return p;
}

}  // namespace

const BenchmarkProgram& FamilyTree() {
  static const auto& program = *new BenchmarkProgram(Build());
  return program;
}

}  // namespace prore::programs
