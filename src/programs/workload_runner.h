#ifndef PRORE_PROGRAMS_WORKLOAD_RUNNER_H_
#define PRORE_PROGRAMS_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/machine.h"
#include "engine/metrics.h"
#include "programs/programs.h"

namespace prore::programs {

/// Expands a BenchmarkProgram's declared workloads into the concrete query
/// strings the Table II/III/IV reproductions execute: every mode workload
/// becomes one query per combination of universe constants over its '+'
/// positions (the paper's Table II methodology), and every query workload
/// contributes its queries verbatim. The expansion is deterministic, so the
/// metrics-invariance test and the perf reporter measure exactly the same
/// work.
std::vector<std::string> WorkloadQueries(const BenchmarkProgram& program);

/// Outcome of running a program's full workload on a fresh store/database/
/// machine.
struct WorkloadRun {
  engine::Metrics metrics;   ///< Accumulated over all queries.
  uint64_t wall_ns = 0;      ///< Wall-clock for the solve loop only
                             ///< (parsing and database build excluded).
  uint64_t answers = 0;      ///< Total solutions across all queries.
};

/// Parses `program`, builds its database (with the library), and solves
/// every workload query to exhaustion. Queries are parsed up front so
/// `wall_ns` covers only Machine::Solve.
prore::Result<WorkloadRun> RunWorkload(const BenchmarkProgram& program,
                                       const engine::SolveOptions& opts);

}  // namespace prore::programs

#endif  // PRORE_PROGRAMS_WORKLOAD_RUNNER_H_
