#include "programs/workload_runner.h"

#include <chrono>

#include "common/str_util.h"
#include "engine/database.h"
#include "reader/parser.h"
#include "term/store.h"

namespace prore::programs {

namespace {

/// Positions of '+' arguments in a mode string like "(+,-)". Anything that
/// is not '+' or '-' (parentheses, commas, spaces) is ignored, matching
/// analysis::ModeFromString for the subset the benchmark programs use.
std::vector<size_t> PlusPositions(const std::string& mode) {
  std::vector<size_t> out;
  size_t pos = 0;
  for (char c : mode) {
    if (c == '+') out.push_back(pos);
    if (c == '+' || c == '-') ++pos;
  }
  return out;
}

void AppendModeQueries(const BenchmarkProgram& program,
                       const BenchmarkProgram::ModeWorkload& wl,
                       std::vector<std::string>* goals) {
  std::vector<size_t> plus = PlusPositions(wl.mode);
  std::vector<size_t> is_plus(wl.arity, 0);
  for (size_t p : plus) is_plus[p] = 1;
  if (!plus.empty() && program.universe.empty()) return;
  // Odometer over universe constants in the '+' positions, exactly as
  // core::Evaluator::CompareMode enumerates them.
  std::vector<size_t> idx(plus.size(), 0);
  while (true) {
    std::string goal = wl.pred;
    if (wl.arity > 0) {
      goal += "(";
      size_t plus_seen = 0;
      for (uint32_t i = 0; i < wl.arity; ++i) {
        if (i > 0) goal += ",";
        if (is_plus[i]) {
          goal += program.universe[idx[plus_seen]];
          ++plus_seen;
        } else {
          goal += prore::StrFormat("V%u", i);
        }
      }
      goal += ")";
    }
    goals->push_back(goal);
    size_t k = 0;
    for (; k < idx.size(); ++k) {
      if (++idx[k] < program.universe.size()) break;
      idx[k] = 0;
    }
    if (idx.empty() || k == idx.size()) break;
  }
}

}  // namespace

std::vector<std::string> WorkloadQueries(const BenchmarkProgram& program) {
  std::vector<std::string> goals;
  for (const auto& wl : program.mode_workloads) {
    AppendModeQueries(program, wl, &goals);
  }
  for (const auto& wl : program.query_workloads) {
    goals.insert(goals.end(), wl.queries.begin(), wl.queries.end());
  }
  return goals;
}

prore::Result<WorkloadRun> RunWorkload(const BenchmarkProgram& program,
                                       const engine::SolveOptions& opts) {
  term::TermStore store;
  PRORE_ASSIGN_OR_RETURN(reader::Program parsed,
                         reader::ParseProgramText(&store, program.source));
  PRORE_ASSIGN_OR_RETURN(engine::Database db,
                         engine::Database::Build(&store, parsed));
  std::vector<term::TermRef> queries;
  for (const std::string& text : WorkloadQueries(program)) {
    PRORE_ASSIGN_OR_RETURN(reader::ReadTerm q,
                           reader::ParseQueryText(&store, text + "."));
    queries.push_back(q.term);
  }
  engine::Machine machine(&store, &db, opts);
  WorkloadRun run;
  auto t0 = std::chrono::steady_clock::now();
  for (term::TermRef q : queries) {
    PRORE_ASSIGN_OR_RETURN(engine::Metrics m, machine.Solve(q));
    run.answers += m.solutions;
  }
  auto t1 = std::chrono::steady_clock::now();
  run.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  run.metrics = machine.total_metrics();
  return run;
}

}  // namespace prore::programs
