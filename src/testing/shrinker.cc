#include "testing/shrinker.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <utility>

#include "common/str_util.h"
#include "core/disjunction.h"
#include "engine/database.h"
#include "reader/parser.h"
#include "reader/writer.h"
#include "term/symbol.h"

namespace prore::testing {

using term::Tag;
using term::TermRef;
using term::TermStore;

namespace {

// ---- Source <-> item-list plumbing ----------------------------------------

/// Renders a program as one string per removable unit: directives first
/// (op/3 declarations must precede the clauses that use them), then each
/// clause. Joining the items with newlines re-reads as the same program.
std::vector<std::string> RenderItems(const TermStore& store,
                                     const reader::Program& program) {
  std::vector<std::string> items;
  for (TermRef d : program.directives()) {
    items.push_back(":- " + reader::WriteTerm(store, d) + ".");
  }
  for (const term::PredId& pred : program.pred_order()) {
    for (const reader::Clause& clause : program.ClausesOf(pred)) {
      items.push_back(reader::WriteClause(store, clause));
    }
  }
  return items;
}

std::string JoinItems(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    out += item;
    out.push_back('\n');
  }
  return out;
}

void FlattenConj(const TermStore& store, TermRef t,
                 std::vector<TermRef>* out) {
  t = store.Deref(t);
  if (store.tag(t) == Tag::kStruct &&
      store.symbol(t) == term::SymbolTable::kComma && store.arity(t) == 2) {
    FlattenConj(store, store.arg(t, 0), out);
    FlattenConj(store, store.arg(t, 1), out);
    return;
  }
  out->push_back(t);
}

TermRef BuildConj(TermStore* store, const std::vector<TermRef>& goals) {
  if (goals.empty()) return store->MakeAtom(term::SymbolTable::kTrue);
  TermRef body = goals.back();
  for (size_t i = goals.size() - 1; i-- > 0;) {
    const TermRef args[] = {goals[i], body};
    body = store->MakeStruct(term::SymbolTable::kComma, args);
  }
  return body;
}

// ---- The minimization loop ------------------------------------------------

class Minimizer {
 public:
  Minimizer(std::vector<std::string> items, const Oracle& oracle,
            const ShrinkOptions& options)
      : items_(std::move(items)), oracle_(oracle), options_(options) {}

  /// True iff the candidate still fails. Counts calls; once the budget is
  /// gone every probe reports "does not fail" so the loops unwind.
  bool Probe(const std::vector<std::string>& candidate) {
    if (calls_ >= options_.max_oracle_calls ||
        (options_.exec.active() && !options_.exec.Check().ok())) {
      budget_out_ = true;
      return false;
    }
    ++calls_;
    return oracle_(JoinItems(candidate));
  }

  /// One pass over the items deleting `chunk`-sized windows. Returns true
  /// if anything was removed.
  bool SweepChunks(size_t chunk) {
    bool removed = false;
    size_t start = 0;
    while (start < items_.size()) {
      const size_t len = std::min(chunk, items_.size() - start);
      std::vector<std::string> candidate(items_.begin(),
                                         items_.begin() + start);
      candidate.insert(candidate.end(), items_.begin() + start + len,
                       items_.end());
      if (Probe(candidate)) {
        items_ = std::move(candidate);
        removed = true;
        // Stay at `start`: the next window shifted into place.
      } else {
        start += chunk;
      }
    }
    return removed;
  }

  /// Deletes top-level body goals of item `k` while the failure persists.
  /// Items that do not round-trip as a single plain clause (directives,
  /// clauses relying on program-level op declarations) are skipped.
  void ShrinkGoalsOf(size_t k) {
    for (bool removed_one = true; removed_one;) {
      removed_one = false;
      TermStore local;
      auto parsed = reader::ParseProgramText(&local, items_[k]);
      if (!parsed.ok() || !parsed->directives().empty() ||
          parsed->NumClauses() != 1 || parsed->pred_order().size() != 1) {
        return;
      }
      reader::Clause clause = parsed->ClausesOf(parsed->pred_order()[0])[0];
      std::vector<TermRef> goals;
      FlattenConj(local, clause.body, &goals);
      if (goals.size() < 2) return;
      for (size_t j = 0; j < goals.size(); ++j) {
        std::vector<TermRef> rest = goals;
        rest.erase(rest.begin() + j);
        reader::Clause smaller = clause;
        smaller.body = BuildConj(&local, rest);
        std::vector<std::string> candidate = items_;
        candidate[k] = reader::WriteClause(local, smaller);
        if (Probe(candidate)) {
          items_ = std::move(candidate);
          ++removed_goals_;
          removed_one = true;
          break;  // re-parse the shrunk clause and retry its goals
        }
      }
    }
  }

  ShrinkResult Finish(size_t original_items) {
    // Chunk phase: halve the deletion window down to single items.
    for (size_t chunk = std::max<size_t>(items_.size() / 2, 1);;
         chunk /= 2) {
      SweepChunks(chunk);
      if (chunk == 1) break;
    }
    // Single-item fixpoint = 1-minimality at clause granularity.
    while (SweepChunks(1)) {
    }
    if (options_.shrink_goals) {
      for (size_t k = 0; k < items_.size(); ++k) ShrinkGoalsOf(k);
      // Goal deletion can make a whole clause deletable; re-establish.
      if (removed_goals_ > 0) {
        while (SweepChunks(1)) {
        }
      }
    }
    ShrinkResult result;
    result.source = JoinItems(items_);
    result.original_clauses = original_items;
    result.final_clauses = items_.size();
    result.removed_goals = removed_goals_;
    result.oracle_calls = calls_;
    result.one_minimal = !budget_out_;
    return result;
  }

 private:
  std::vector<std::string> items_;
  const Oracle& oracle_;
  const ShrinkOptions& options_;
  size_t calls_ = 0;
  size_t removed_goals_ = 0;
  bool budget_out_ = false;
};

}  // namespace

prore::Result<ShrinkResult> Shrink(const std::string& source,
                                   const Oracle& oracle,
                                   const ShrinkOptions& options) {
  TermStore store;
  auto parsed = reader::ParseProgramText(&store, source);
  if (!parsed.ok()) {
    return prore::Status::InvalidArgument(
        "shrink input does not parse: " + parsed.status().ToString());
  }
  if (!oracle(source)) {
    return prore::Status::InvalidArgument(
        "shrink input does not fail the oracle; nothing to reproduce");
  }
  std::vector<std::string> items = RenderItems(store, *parsed);
  const size_t original_items = items.size();
  if (!oracle(JoinItems(items))) {
    // The renormalized rendering no longer fails (span- or
    // formatting-sensitive bug); minimizing rendered items would chase a
    // different failure, so hand back the input untouched.
    ShrinkResult result;
    result.source = source;
    result.original_clauses = original_items;
    result.final_clauses = original_items;
    result.oracle_calls = 2;
    result.one_minimal = false;
    return result;
  }
  Minimizer minimizer(std::move(items), oracle, options);
  ShrinkResult result = minimizer.Finish(original_items);
  result.oracle_calls += 2;  // the two precondition probes above
  return result;
}

// ---- Canned oracles -------------------------------------------------------

namespace {

/// Unfold/factor/reorder over an already-parsed candidate, with the same
/// fault boundary the guarded pipeline uses (exceptions become Status).
prore::Result<core::ReorderResult> RunTransform(TermStore* store,
                                                const reader::Program&
                                                    program,
                                                const OracleOptions& o) {
  try {
    const reader::Program* working = &program;
    reader::Program unfolded, factored;
    if (o.unfold) {
      auto r = core::UnfoldProgram(store, *working, o.unfold_options);
      if (!r.ok()) return r.status();
      unfolded = std::move(r).value();
      working = &unfolded;
    }
    if (o.factor) {
      auto r = core::FactorDisjunctions(store, *working);
      if (!r.ok()) return r.status();
      factored = std::move(r).value();
      working = &factored;
    }
    return core::Reorderer(store, o.reorder).Run(*working);
  } catch (const std::exception& e) {
    return prore::Status::Internal(
        prore::StrFormat("uncaught exception: %s", e.what()));
  }
}

}  // namespace

Oracle ValidatorErrorOracle(OracleOptions options) {
  options.reorder.validate_output = true;
  return [options](const std::string& source) -> bool {
    TermStore store;
    auto program = reader::ParseProgramText(&store, source);
    if (!program.ok()) return false;
    auto rr = RunTransform(&store, *program, options);
    if (!rr.ok()) return false;  // CrashOracle territory
    for (const lint::Diagnostic& d : rr->diagnostics) {
      if (d.severity == lint::Severity::kError) return true;
    }
    return false;
  };
}

Oracle CrashOracle(OracleOptions options) {
  return [options](const std::string& source) -> bool {
    TermStore store;
    auto program = reader::ParseProgramText(&store, source);
    if (!program.ok()) return false;
    auto rr = RunTransform(&store, *program, options);
    return !rr.ok() &&
           rr.status().code() != prore::StatusCode::kResourceExhausted;
  };
}

Oracle WatchdogOracle(OracleOptions options) {
  return [options](const std::string& source) -> bool {
    TermStore store;
    auto program = reader::ParseProgramText(&store, source);
    if (!program.ok()) return false;
    auto rr = RunTransform(&store, *program, options);
    return !rr.ok() &&
           rr.status().code() == prore::StatusCode::kResourceExhausted;
  };
}

Oracle DifferentialOracle(OracleOptions options) {
  return [options](const std::string& source) -> bool {
    TermStore store;
    auto program = reader::ParseProgramText(&store, source);
    if (!program.ok()) return false;
    auto rr = RunTransform(&store, *program, options);
    if (!rr.ok()) return false;  // not this oracle's failure mode
    auto original_db = engine::Database::Build(&store, *program);
    auto reordered_db = engine::Database::Build(&store, rr->program);
    if (!original_db.ok() || !reordered_db.ok()) return false;

    // Build each query goal twice so the two sides share no variables.
    auto make_goals = [&]() -> std::vector<TermRef> {
      std::vector<TermRef> goals;
      if (options.queries.empty()) {
        for (const term::PredId& pred : program->pred_order()) {
          if (pred.arity == 0) {
            goals.push_back(store.MakeAtom(pred.name));
            continue;
          }
          std::vector<TermRef> args;
          for (uint32_t i = 0; i < pred.arity; ++i) {
            args.push_back(store.MakeVar());
          }
          goals.push_back(store.MakeStruct(pred.name, args));
        }
        return goals;
      }
      for (const std::string& text : options.queries) {
        auto q = reader::ParseQueryText(&store, text + ".");
        goals.push_back(q.ok() ? q->term : term::kNullTerm);
      }
      return goals;
    };
    const std::vector<TermRef> goals1 = make_goals();
    const std::vector<TermRef> goals2 = make_goals();

    struct SideResult {
      prore::Status status;
      std::vector<std::string> answers;
    };
    auto run_side = [&](engine::Database* db, TermRef goal) -> SideResult {
      engine::SolveOptions so = options.solve;
      so.fault = options.fault;
      if (options.fault != nullptr) options.fault->Reset();
      engine::Machine machine(&store, db, so);
      auto r = machine.SolveToStrings(goal, goal);
      if (!r.ok()) return {r.status(), {}};
      SideResult side{prore::Status::OK(), std::move(r).value()};
      std::sort(side.answers.begin(), side.answers.end());
      return side;
    };
    auto resource_limited = [](const SideResult& r) {
      if (r.status.ok()) return false;
      if (r.status.code() == prore::StatusCode::kResourceExhausted) {
        return true;
      }
      auto err = engine::PrologErrorFromStatus(r.status);
      const std::string& ball = err ? err->ball : r.status.message();
      return ball.find("resource_error(") != std::string::npos;
    };

    for (size_t i = 0; i < goals1.size(); ++i) {
      if (goals1[i] == term::kNullTerm || goals2[i] == term::kNullTerm) {
        continue;  // unparseable query: no verdict
      }
      SideResult a = run_side(&*original_db, goals1[i]);
      SideResult b = run_side(&*reordered_db, goals2[i]);
      // A budget trip on either side says nothing about equivalence (the
      // two programs legitimately differ in cost); skip the query.
      if (resource_limited(a) || resource_limited(b)) continue;
      if (a.status.ok() != b.status.ok()) return true;
      if (!a.status.ok()) {
        auto ea = engine::PrologErrorFromStatus(a.status);
        auto eb = engine::PrologErrorFromStatus(b.status);
        const std::string ball_a = ea ? ea->ball : a.status.ToString();
        const std::string ball_b = eb ? eb->ball : b.status.ToString();
        if (ball_a != ball_b) return true;
        continue;
      }
      if (a.answers != b.answers) return true;
    }
    return false;
  };
}

prore::Result<std::string> DumpRepro(const std::string& kind,
                                     const std::string& source,
                                     const std::string& details) {
  namespace fs = std::filesystem;
  const char* env = std::getenv("PRORE_ARTIFACT_DIR");
  const fs::path dir =
      (env != nullptr && *env != '\0') ? fs::path(env)
                                       : fs::path("repro_artifacts");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return prore::Status::Internal(
        prore::StrFormat("cannot create artifact dir %s: %s",
                         dir.string().c_str(), ec.message().c_str()));
  }
  const size_t hash = std::hash<std::string>{}(kind + "\n" + source);
  const fs::path path =
      dir / prore::StrFormat("repro_%s_%08zx.pl", kind.c_str(),
                             hash & 0xFFFFFFFFu);
  std::ofstream out(path);
  if (!out) {
    return prore::Status::Internal(
        prore::StrFormat("cannot write %s", path.string().c_str()));
  }
  out << "% prore minimized reproducer\n% oracle: " << kind << "\n";
  std::string line;
  for (char c : details) {
    if (c == '\n') {
      out << "% " << line << "\n";
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) out << "% " << line << "\n";
  out << source;
  return path.string();
}

}  // namespace prore::testing
