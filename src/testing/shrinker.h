#ifndef PRORE_TESTING_SHRINKER_H_
#define PRORE_TESTING_SHRINKER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/reorderer.h"
#include "core/unfold.h"
#include "engine/fault.h"
#include "engine/machine.h"

namespace prore::testing {

/// A failure oracle: true if `source` (a whole Prolog program as text)
/// still exhibits the failure being minimized. Candidates that do not
/// parse must return false ("does not fail"), so the shrinker never
/// trades one bug for a syntax error.
using Oracle = std::function<bool(const std::string& source)>;

struct ShrinkOptions {
  /// Hard cap on oracle invocations; when it runs out the best candidate
  /// so far is returned with one_minimal = false.
  size_t max_oracle_calls = 2000;
  /// After clause-level minimization, also try deleting top-level body
  /// goals one at a time.
  bool shrink_goals = true;
  /// Cancellation/deadline scope, checked between oracle probes. When it
  /// fires, minimization stops gracefully: the best (still-failing)
  /// candidate so far is returned with one_minimal = false — same
  /// contract as running out of max_oracle_calls.
  prore::ExecContext exec;
};

struct ShrinkResult {
  /// Minimized program source (still fails the oracle).
  std::string source;
  size_t original_clauses = 0;  ///< clauses + directives in the input
  size_t final_clauses = 0;     ///< clauses + directives kept
  size_t removed_goals = 0;     ///< body goals deleted on top
  size_t oracle_calls = 0;
  /// True when the result is 1-minimal at clause granularity: removing
  /// any single remaining clause makes the failure disappear.
  bool one_minimal = false;
};

/// Delta-debugging minimizer: repeatedly deletes chunks of clauses (then
/// single clauses, then top-level goals) while the oracle keeps failing.
/// Returns InvalidArgument when `source` does not parse or does not fail
/// the oracle in the first place — there is nothing to shrink.
prore::Result<ShrinkResult> Shrink(const std::string& source,
                                   const Oracle& oracle,
                                   const ShrinkOptions& options = {});

/// Configuration shared by the canned oracles below. The solve budgets
/// default to small values so an oracle probe can never hang on a
/// runaway candidate (shrinking calls the oracle hundreds of times).
struct OracleOptions {
  OracleOptions() {
    solve.max_calls = 200'000;
    solve.timeout_ms = 2'000;
  }

  /// Transform under test. Watchdog budgets ride inside (cost_watchdog,
  /// inference.watchdog) — the watchdog oracle reads them from here.
  core::ReorderOptions reorder;
  bool unfold = false;
  core::UnfoldOptions unfold_options;
  bool factor = false;

  /// Differential workload (query text without the trailing dot). When
  /// empty, one open query per predicate of the candidate is generated.
  std::vector<std::string> queries;
  engine::SolveOptions solve;
  /// Optional runtime fault plan, replayed (Reset) before each side of
  /// each differential query. Not owned.
  engine::FaultInjector* fault = nullptr;
};

/// Fails iff reordering the candidate emits an error-severity validator
/// diagnostic (PL1xx) — the transform broke its own legality contract.
Oracle ValidatorErrorOracle(OracleOptions options);

/// Fails iff any transform stage throws or returns a non-ok Status
/// (watchdog trips excluded — use WatchdogOracle for those).
Oracle CrashOracle(OracleOptions options);

/// Fails iff the original and reordered programs disagree on a query:
/// different answer multisets, or different error outcomes (one throws
/// and the other does not, or the thrown balls differ).
Oracle DifferentialOracle(OracleOptions options);

/// Fails iff a transform stage trips a watchdog / resource budget
/// (kResourceExhausted from the reorderer).
Oracle WatchdogOracle(OracleOptions options);

/// Writes a minimized reproducer to `$PRORE_ARTIFACT_DIR` (or
/// ./repro_artifacts) as repro_<kind>_<hash>.pl, with `details` in a
/// comment header. Returns the path written.
prore::Result<std::string> DumpRepro(const std::string& kind,
                                     const std::string& source,
                                     const std::string& details);

}  // namespace prore::testing

#endif  // PRORE_TESTING_SHRINKER_H_
