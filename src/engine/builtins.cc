#include "engine/builtins.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/str_util.h"
#include "engine/arith.h"
#include "engine/machine.h"
#include "reader/writer.h"

namespace prore::engine {

namespace {

using term::Tag;
using term::TermRef;
using term::TermStore;

TermRef Arg(Machine* m, TermRef goal, uint32_t i) {
  return m->store().Deref(m->store().arg(goal, i));
}

// ---- ISO error balls -------------------------------------------------------
// Every error a builtin raises is a structured, catchable term
// error(Payload, Context) delivered through the machine's exception
// machinery; see Machine::ThrowError.

prore::Status ThrowInstantiation(Machine* m, const char* context) {
  return m->ThrowError(m->store().MakeAtom("instantiation_error"), context);
}

prore::Status ThrowTypeError(Machine* m, const char* type, TermRef culprit,
                             const char* context) {
  TermStore& s = m->store();
  const TermRef args[] = {s.MakeAtom(type), culprit};
  return m->ThrowError(s.MakeStruct("type_error", args), context);
}

/// permission_error(modify, static_procedure, Name/Arity) — raised when a
/// snapshot-backed machine (immutable shared database) runs assert/retract.
prore::Status ThrowStaticProcedure(Machine* m, const term::PredId& id,
                                   const char* context) {
  TermStore& s = m->store();
  const TermRef ind_args[] = {s.MakeAtom(id.name),
                              s.MakeInt(static_cast<int64_t>(id.arity))};
  const TermRef args[] = {s.MakeAtom("modify"),
                          s.MakeAtom("static_procedure"),
                          s.MakeStruct("/", ind_args)};
  return m->ThrowError(s.MakeStruct("permission_error", args), context);
}

prore::Status ThrowDomainError(Machine* m, const char* domain,
                               TermRef culprit, const char* context) {
  TermStore& s = m->store();
  const TermRef args[] = {s.MakeAtom(domain), culprit};
  return m->ThrowError(s.MakeStruct("domain_error", args), context);
}

prore::Status ThrowRepresentationError(Machine* m, const char* flag,
                                       const char* context) {
  TermStore& s = m->store();
  const TermRef args[] = {s.MakeAtom(flag)};
  return m->ThrowError(s.MakeStruct("representation_error", args), context);
}

/// Converts a proper list to a vector; false if not a proper list.
bool ListToVector(const TermStore& store, TermRef list,
                  std::vector<TermRef>* out) {
  list = store.Deref(list);
  while (true) {
    if (store.IsNil(list)) return true;
    if (!store.IsCons(list)) return false;
    list = store.Deref(list);
    out->push_back(store.arg(list, 0));
    list = store.Deref(store.arg(list, 1));
  }
}

// ---- Unification and comparison -------------------------------------------

prore::Status BiUnify(Machine* m, TermRef g, bool* success) {
  *success = m->Unify(Arg(m, g, 0), Arg(m, g, 1));
  return prore::Status::OK();
}

prore::Status BiNotUnify(Machine* m, TermRef g, bool* success) {
  size_t mark = m->TrailMark();
  bool unifies = m->Unify(Arg(m, g, 0), Arg(m, g, 1));
  m->TrailUndo(mark);
  *success = !unifies;
  return prore::Status::OK();
}

prore::Status BiStructEq(Machine* m, TermRef g, bool* success) {
  *success = m->store().Equal(Arg(m, g, 0), Arg(m, g, 1));
  return prore::Status::OK();
}

prore::Status BiStructNeq(Machine* m, TermRef g, bool* success) {
  *success = !m->store().Equal(Arg(m, g, 0), Arg(m, g, 1));
  return prore::Status::OK();
}

template <int Lo, int Hi>
prore::Status BiTermOrder(Machine* m, TermRef g, bool* success) {
  int c = m->store().Compare(Arg(m, g, 0), Arg(m, g, 1));
  *success = c >= Lo && c <= Hi;
  return prore::Status::OK();
}

prore::Status BiCompare(Machine* m, TermRef g, bool* success) {
  int c = m->store().Compare(Arg(m, g, 1), Arg(m, g, 2));
  const char* rel = c < 0 ? "<" : (c == 0 ? "=" : ">");
  *success = m->Unify(Arg(m, g, 0), m->store().MakeAtom(rel));
  return prore::Status::OK();
}

// ---- Type tests ------------------------------------------------------------

prore::Status BiVar(Machine* m, TermRef g, bool* success) {
  *success = m->store().tag(Arg(m, g, 0)) == Tag::kVar;
  return prore::Status::OK();
}

prore::Status BiNonvar(Machine* m, TermRef g, bool* success) {
  *success = m->store().tag(Arg(m, g, 0)) != Tag::kVar;
  return prore::Status::OK();
}

prore::Status BiAtom(Machine* m, TermRef g, bool* success) {
  *success = m->store().tag(Arg(m, g, 0)) == Tag::kAtom;
  return prore::Status::OK();
}

prore::Status BiInteger(Machine* m, TermRef g, bool* success) {
  *success = m->store().tag(Arg(m, g, 0)) == Tag::kInt;
  return prore::Status::OK();
}

prore::Status BiFloat(Machine* m, TermRef g, bool* success) {
  *success = m->store().tag(Arg(m, g, 0)) == Tag::kFloat;
  return prore::Status::OK();
}

prore::Status BiNumber(Machine* m, TermRef g, bool* success) {
  Tag t = m->store().tag(Arg(m, g, 0));
  *success = t == Tag::kInt || t == Tag::kFloat;
  return prore::Status::OK();
}

prore::Status BiAtomic(Machine* m, TermRef g, bool* success) {
  Tag t = m->store().tag(Arg(m, g, 0));
  *success = t == Tag::kAtom || t == Tag::kInt || t == Tag::kFloat;
  return prore::Status::OK();
}

prore::Status BiCompound(Machine* m, TermRef g, bool* success) {
  *success = m->store().tag(Arg(m, g, 0)) == Tag::kStruct;
  return prore::Status::OK();
}

prore::Status BiCallable(Machine* m, TermRef g, bool* success) {
  *success = m->store().IsCallable(Arg(m, g, 0));
  return prore::Status::OK();
}

prore::Status BiGround(Machine* m, TermRef g, bool* success) {
  *success = m->store().IsGround(Arg(m, g, 0));
  return prore::Status::OK();
}

prore::Status BiIsList(Machine* m, TermRef g, bool* success) {
  std::vector<TermRef> ignored;
  *success = ListToVector(m->store(), Arg(m, g, 0), &ignored);
  return prore::Status::OK();
}

// ---- Arithmetic ------------------------------------------------------------

prore::Status BiIs(Machine* m, TermRef g, bool* success) {
  auto v = EvalArith(m->store(), Arg(m, g, 1));
  if (!v.ok()) return m->ThrowStatus(v.status(), "is/2");
  *success = m->Unify(Arg(m, g, 0), v->ToTerm(&m->store()));
  return prore::Status::OK();
}

template <typename Cmp>
prore::Status BiArithCompare(Machine* m, TermRef g, bool* success,
                             const char* context, Cmp cmp) {
  auto a = EvalArith(m->store(), Arg(m, g, 0));
  if (!a.ok()) return m->ThrowStatus(a.status(), context);
  auto b = EvalArith(m->store(), Arg(m, g, 1));
  if (!b.ok()) return m->ThrowStatus(b.status(), context);
  if (!a->is_float && !b->is_float) {
    *success = cmp(a->i, b->i);  // exact integer comparison
  } else {
    *success = cmp(a->AsDouble(), b->AsDouble());
  }
  return prore::Status::OK();
}

prore::Status BiLt(Machine* m, TermRef g, bool* success) {
  return BiArithCompare(m, g, success, "</2",
                        [](auto a, auto b) { return a < b; });
}
prore::Status BiGt(Machine* m, TermRef g, bool* success) {
  return BiArithCompare(m, g, success, ">/2",
                        [](auto a, auto b) { return a > b; });
}
prore::Status BiLe(Machine* m, TermRef g, bool* success) {
  return BiArithCompare(m, g, success, "=</2",
                        [](auto a, auto b) { return a <= b; });
}
prore::Status BiGe(Machine* m, TermRef g, bool* success) {
  return BiArithCompare(m, g, success, ">=/2",
                        [](auto a, auto b) { return a >= b; });
}
prore::Status BiArithEq(Machine* m, TermRef g, bool* success) {
  return BiArithCompare(m, g, success, "=:=/2",
                        [](auto a, auto b) { return a == b; });
}
prore::Status BiArithNeq(Machine* m, TermRef g, bool* success) {
  return BiArithCompare(m, g, success, "=\\=/2",
                        [](auto a, auto b) { return a != b; });
}

// ---- Term construction and inspection --------------------------------------

prore::Status BiFunctor(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef t = Arg(m, g, 0);
  TermRef name = Arg(m, g, 1);
  TermRef arity = Arg(m, g, 2);
  *success = false;
  switch (store.tag(t)) {
    case Tag::kAtom:
    case Tag::kInt:
    case Tag::kFloat:
      *success = m->Unify(name, t) && m->Unify(arity, store.MakeInt(0));
      return prore::Status::OK();
    case Tag::kStruct:
      *success = m->Unify(name, store.MakeAtom(store.symbol(t))) &&
                 m->Unify(arity, store.MakeInt(store.arity(t)));
      return prore::Status::OK();
    case Tag::kVar:
      break;
  }
  // Construction mode: functor(-T, +Name, +Arity).
  if (store.tag(arity) == Tag::kVar) {
    return ThrowInstantiation(m, "functor/3");
  }
  if (store.tag(arity) != Tag::kInt) {
    return ThrowTypeError(m, "integer", arity, "functor/3");
  }
  int64_t n = store.int_value(arity);
  if (n == 0) {
    if (store.tag(name) == Tag::kVar) {
      return ThrowInstantiation(m, "functor/3");
    }
    *success = m->Unify(t, name);
    return prore::Status::OK();
  }
  if (store.tag(name) == Tag::kVar) {
    return ThrowInstantiation(m, "functor/3");
  }
  if (store.tag(name) != Tag::kAtom) {
    return ThrowTypeError(m, "atom", name, "functor/3");
  }
  if (n < 0) {
    return ThrowDomainError(m, "not_less_than_zero", arity, "functor/3");
  }
  if (n > 1024) {
    return ThrowRepresentationError(m, "max_arity", "functor/3");
  }
  std::vector<TermRef> args(static_cast<size_t>(n));
  for (auto& a : args) a = store.MakeVar();
  *success = m->Unify(t, store.MakeStruct(store.symbol(name), args));
  return prore::Status::OK();
}

prore::Status BiArg(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef n = Arg(m, g, 0);
  TermRef t = Arg(m, g, 1);
  *success = false;
  if (store.tag(n) == Tag::kVar || store.tag(t) == Tag::kVar) {
    return ThrowInstantiation(m, "arg/3");
  }
  if (store.tag(n) != Tag::kInt) {
    return ThrowTypeError(m, "integer", n, "arg/3");
  }
  if (store.tag(t) != Tag::kStruct) {
    return ThrowTypeError(m, "compound", t, "arg/3");
  }
  int64_t i = store.int_value(n);
  if (i < 1 || i > store.arity(t)) return prore::Status::OK();  // fails
  *success = m->Unify(Arg(m, g, 2), store.arg(t, static_cast<uint32_t>(i - 1)));
  return prore::Status::OK();
}

prore::Status BiUniv(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef t = Arg(m, g, 0);
  TermRef list = Arg(m, g, 1);
  *success = false;
  if (store.tag(t) != Tag::kVar) {
    std::vector<TermRef> items;
    switch (store.tag(t)) {
      case Tag::kAtom:
      case Tag::kInt:
      case Tag::kFloat:
        items.push_back(t);
        break;
      case Tag::kStruct: {
        items.push_back(store.MakeAtom(store.symbol(t)));
        for (uint32_t i = 0; i < store.arity(t); ++i) {
          items.push_back(store.arg(t, i));
        }
        break;
      }
      case Tag::kVar:
        break;
    }
    *success = m->Unify(list, store.MakeList(items));
    return prore::Status::OK();
  }
  std::vector<TermRef> items;
  if (store.tag(list) == Tag::kVar) {
    return ThrowInstantiation(m, "=../2");
  }
  if (!ListToVector(store, list, &items) || items.empty()) {
    return ThrowTypeError(m, "list", list, "=../2");
  }
  TermRef head = store.Deref(items[0]);
  if (items.size() == 1) {
    *success = m->Unify(t, head);
    return prore::Status::OK();
  }
  if (store.tag(head) == Tag::kVar) {
    return ThrowInstantiation(m, "=../2");
  }
  if (store.tag(head) != Tag::kAtom) {
    return ThrowTypeError(m, "atom", head, "=../2");
  }
  std::vector<TermRef> args(items.begin() + 1, items.end());
  *success = m->Unify(t, store.MakeStruct(store.symbol(head), args));
  return prore::Status::OK();
}

prore::Status BiCopyTerm(Machine* m, TermRef g, bool* success) {
  TermRef copy = m->store().Rename(Arg(m, g, 0));
  *success = m->Unify(Arg(m, g, 1), copy);
  return prore::Status::OK();
}

// ---- I/O (buffered in the machine; the fixity analysis is what matters) ----

prore::Status BiWrite(Machine* m, TermRef g, bool* success) {
  reader::WriteOptions opts;
  opts.quoted = false;
  m->AppendOutput(reader::WriteTerm(m->store(), Arg(m, g, 0), opts));
  *success = true;
  return prore::Status::OK();
}

prore::Status BiWriteln(Machine* m, TermRef g, bool* success) {
  PRORE_RETURN_IF_ERROR(BiWrite(m, g, success));
  m->AppendOutput("\n");
  return prore::Status::OK();
}

prore::Status BiNl(Machine* m, TermRef g, bool* success) {
  (void)g;
  m->AppendOutput("\n");
  *success = true;
  return prore::Status::OK();
}

prore::Status BiTab(Machine* m, TermRef g, bool* success) {
  auto ev = EvalArithInt(m->store(), Arg(m, g, 0));
  if (!ev.ok()) return m->ThrowStatus(ev.status(), "tab/1");
  int64_t n = *ev;
  m->AppendOutput(std::string(static_cast<size_t>(std::max<int64_t>(0, n)), ' '));
  *success = true;
  return prore::Status::OK();
}

// ---- All-solutions predicates ----------------------------------------------

/// Strips `V^Goal` wrappers (bagof/setof existential quantification).
TermRef StripCarets(const TermStore& store, TermRef goal) {
  goal = store.Deref(goal);
  while (store.tag(goal) == Tag::kStruct && store.arity(goal) == 2 &&
         store.symbols().Name(store.symbol(goal)) == "^") {
    goal = store.Deref(store.arg(goal, 1));
  }
  return goal;
}

prore::Status BiFindall(Machine* m, TermRef g, bool* success) {
  TermRef tmpl = Arg(m, g, 0);
  TermRef goal = StripCarets(m->store(), Arg(m, g, 1));
  PRORE_ASSIGN_OR_RETURN(std::vector<TermRef> items, m->FindAll(goal, tmpl));
  *success = m->Unify(Arg(m, g, 2), m->store().MakeList(items));
  return prore::Status::OK();
}

prore::Status BiBagof(Machine* m, TermRef g, bool* success) {
  // Simplified bagof (the paper treats set-predicates "cursorily" and we
  // follow suit): findall semantics, but fails on an empty bag. Free
  // variables of the goal are not enumerated.
  TermRef tmpl = Arg(m, g, 0);
  TermRef goal = StripCarets(m->store(), Arg(m, g, 1));
  PRORE_ASSIGN_OR_RETURN(std::vector<TermRef> items, m->FindAll(goal, tmpl));
  if (items.empty()) {
    *success = false;
    return prore::Status::OK();
  }
  *success = m->Unify(Arg(m, g, 2), m->store().MakeList(items));
  return prore::Status::OK();
}

prore::Status BiSetof(Machine* m, TermRef g, bool* success) {
  TermRef tmpl = Arg(m, g, 0);
  TermRef goal = StripCarets(m->store(), Arg(m, g, 1));
  PRORE_ASSIGN_OR_RETURN(std::vector<TermRef> items, m->FindAll(goal, tmpl));
  if (items.empty()) {
    *success = false;
    return prore::Status::OK();
  }
  TermStore& store = m->store();
  std::sort(items.begin(), items.end(),
            [&](TermRef a, TermRef b) { return store.Compare(a, b) < 0; });
  items.erase(std::unique(items.begin(), items.end(),
                          [&](TermRef a, TermRef b) {
                            return store.Compare(a, b) == 0;
                          }),
              items.end());
  *success = m->Unify(Arg(m, g, 2), store.MakeList(items));
  return prore::Status::OK();
}

prore::Status SortList(Machine* m, TermRef g, bool dedup, bool* success) {
  TermStore& store = m->store();
  std::vector<TermRef> items;
  *success = false;
  TermRef input = Arg(m, g, 0);
  if (!ListToVector(store, input, &items)) {
    if (store.tag(input) == Tag::kVar) {
      return ThrowInstantiation(m, "sort/2");
    }
    return ThrowTypeError(m, "list", input, "sort/2");
  }
  std::sort(items.begin(), items.end(),
            [&](TermRef a, TermRef b) { return store.Compare(a, b) < 0; });
  if (dedup) {
    items.erase(std::unique(items.begin(), items.end(),
                            [&](TermRef a, TermRef b) {
                              return store.Compare(a, b) == 0;
                            }),
                items.end());
  }
  *success = m->Unify(Arg(m, g, 1), store.MakeList(items));
  return prore::Status::OK();
}

prore::Status BiSort(Machine* m, TermRef g, bool* success) {
  return SortList(m, g, /*dedup=*/true, success);
}

prore::Status BiMsort(Machine* m, TermRef g, bool* success) {
  return SortList(m, g, /*dedup=*/false, success);
}

// ---- Atom/string built-ins ---------------------------------------------------

prore::Status AtomName(Machine* m, TermRef t, std::string* out,
                       const char* context) {
  TermStore& store = m->store();
  t = store.Deref(t);
  switch (store.tag(t)) {
    case Tag::kAtom:
      *out = store.symbols().Name(store.symbol(t));
      return prore::Status::OK();
    case Tag::kInt:
      *out = std::to_string(store.int_value(t));
      return prore::Status::OK();
    case Tag::kFloat: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", store.float_value(t));
      *out = buf;
      return prore::Status::OK();
    }
    case Tag::kVar:
      return ThrowInstantiation(m, context);
    default:
      return ThrowTypeError(m, "atomic", t, context);
  }
}

prore::Status BiAtomLength(Machine* m, TermRef g, bool* success) {
  TermRef a = Arg(m, g, 0);
  std::string name;
  PRORE_RETURN_IF_ERROR(AtomName(m, a, &name, "atom_length/2"));
  *success = m->Unify(Arg(m, g, 1),
                      m->store().MakeInt(static_cast<int64_t>(name.size())));
  return prore::Status::OK();
}

prore::Status BiAtomCodes(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef a = Arg(m, g, 0);
  *success = false;
  if (store.tag(a) != Tag::kVar) {
    std::string name;
    PRORE_RETURN_IF_ERROR(AtomName(m, a, &name, "atom_codes/2"));
    std::vector<TermRef> codes;
    for (unsigned char c : name) codes.push_back(store.MakeInt(c));
    *success = m->Unify(Arg(m, g, 1), store.MakeList(codes));
    return prore::Status::OK();
  }
  std::vector<TermRef> items;
  TermRef codes_arg = Arg(m, g, 1);
  if (!ListToVector(store, codes_arg, &items)) {
    if (store.tag(codes_arg) == Tag::kVar) {
      return ThrowInstantiation(m, "atom_codes/2");
    }
    return ThrowTypeError(m, "list", codes_arg, "atom_codes/2");
  }
  std::string name;
  for (TermRef item : items) {
    item = store.Deref(item);
    if (store.tag(item) != Tag::kInt) {
      return ThrowTypeError(m, "integer", item, "atom_codes/2");
    }
    name.push_back(static_cast<char>(store.int_value(item)));
  }
  *success = m->Unify(a, store.MakeAtom(name));
  return prore::Status::OK();
}

prore::Status BiAtomChars(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef a = Arg(m, g, 0);
  *success = false;
  if (store.tag(a) != Tag::kVar) {
    std::string name;
    PRORE_RETURN_IF_ERROR(AtomName(m, a, &name, "atom_chars/2"));
    std::vector<TermRef> chars;
    for (char c : name) chars.push_back(store.MakeAtom(std::string(1, c)));
    *success = m->Unify(Arg(m, g, 1), store.MakeList(chars));
    return prore::Status::OK();
  }
  std::vector<TermRef> items;
  TermRef chars_arg = Arg(m, g, 1);
  if (!ListToVector(store, chars_arg, &items)) {
    if (store.tag(chars_arg) == Tag::kVar) {
      return ThrowInstantiation(m, "atom_chars/2");
    }
    return ThrowTypeError(m, "list", chars_arg, "atom_chars/2");
  }
  std::string name;
  for (TermRef item : items) {
    item = store.Deref(item);
    if (store.tag(item) != Tag::kAtom) {
      return ThrowTypeError(m, "character", item, "atom_chars/2");
    }
    name += store.symbols().Name(store.symbol(item));
  }
  *success = m->Unify(a, store.MakeAtom(name));
  return prore::Status::OK();
}

prore::Status BiCharCode(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef ch = Arg(m, g, 0);
  TermRef code = Arg(m, g, 1);
  *success = false;
  if (store.tag(ch) == Tag::kAtom) {
    const std::string& name = store.symbols().Name(store.symbol(ch));
    if (name.size() != 1) {
      return ThrowTypeError(m, "character", ch, "char_code/2");
    }
    *success = m->Unify(code, store.MakeInt(
                                   static_cast<unsigned char>(name[0])));
    return prore::Status::OK();
  }
  if (store.tag(code) == Tag::kInt) {
    char c = static_cast<char>(store.int_value(code));
    *success = m->Unify(ch, store.MakeAtom(std::string(1, c)));
    return prore::Status::OK();
  }
  return ThrowInstantiation(m, "char_code/2");
}

prore::Status BiNumberCodes(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef n = Arg(m, g, 0);
  *success = false;
  if (store.tag(n) == Tag::kInt || store.tag(n) == Tag::kFloat) {
    std::string text;
    PRORE_RETURN_IF_ERROR(AtomName(m, n, &text, "number_codes/2"));
    std::vector<TermRef> codes;
    for (unsigned char c : text) codes.push_back(store.MakeInt(c));
    *success = m->Unify(Arg(m, g, 1), store.MakeList(codes));
    return prore::Status::OK();
  }
  std::vector<TermRef> items;
  TermRef codes_arg = Arg(m, g, 1);
  if (!ListToVector(store, codes_arg, &items)) {
    if (store.tag(codes_arg) == Tag::kVar) {
      return ThrowInstantiation(m, "number_codes/2");
    }
    return ThrowTypeError(m, "list", codes_arg, "number_codes/2");
  }
  std::string text;
  for (TermRef item : items) {
    item = store.Deref(item);
    if (store.tag(item) != Tag::kInt) {
      return ThrowTypeError(m, "integer", item, "number_codes/2");
    }
    text.push_back(static_cast<char>(store.int_value(item)));
  }
  // Parse without exceptions (strto* with full-consumption check).
  const char* begin = text.c_str();
  char* end = nullptr;
  if (text.find('.') != std::string::npos ||
      text.find('e') != std::string::npos) {
    double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0') {
      return ThrowTypeError(m, "number", n, "number_codes/2");
    }
    *success = m->Unify(n, store.MakeFloat(v));
  } else {
    long long v = std::strtoll(begin, &end, 10);
    if (end == begin || *end != '\0') {
      return ThrowTypeError(m, "number", n, "number_codes/2");
    }
    *success = m->Unify(n, store.MakeInt(v));
  }
  return prore::Status::OK();
}

prore::Status BiAtomConcat(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef a = Arg(m, g, 0);
  TermRef b = Arg(m, g, 1);
  *success = false;
  if (store.tag(a) == Tag::kVar || store.tag(b) == Tag::kVar) {
    // The enumerating (?,?,+) mode needs choicepoints; this engine keeps
    // atom_concat deterministic (mode (+,+,?)), like early DEC-10 libs.
    return ThrowInstantiation(m, "atom_concat/3");
  }
  std::string na, nb;
  PRORE_RETURN_IF_ERROR(AtomName(m, a, &na, "atom_concat/3"));
  PRORE_RETURN_IF_ERROR(AtomName(m, b, &nb, "atom_concat/3"));
  *success = m->Unify(Arg(m, g, 2), store.MakeAtom(na + nb));
  return prore::Status::OK();
}

prore::Status BiSucc(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef a = Arg(m, g, 0);
  TermRef b = Arg(m, g, 1);
  *success = false;
  if (store.tag(a) == Tag::kInt) {
    if (store.int_value(a) < 0) {
      return ThrowTypeError(m, "not_less_than_zero", a, "succ/2");
    }
    *success = m->Unify(b, store.MakeInt(store.int_value(a) + 1));
    return prore::Status::OK();
  }
  if (store.tag(b) == Tag::kInt) {
    if (store.int_value(b) <= 0) return prore::Status::OK();  // fails
    *success = m->Unify(a, store.MakeInt(store.int_value(b) - 1));
    return prore::Status::OK();
  }
  return ThrowInstantiation(m, "succ/2");
}

// ---- Dynamic clauses and input (substrate features; excluded from the
// ----- reorderer's scope, treated as side-effects by the analyses) -------

prore::Status BiAssert(Machine* m, TermRef g, bool* success, bool front) {
  TermStore& store = m->store();
  TermRef clause = store.Deref(store.arg(g, 0));
  if (!store.IsCallable(clause)) {
    if (store.tag(clause) == Tag::kVar) {
      return ThrowInstantiation(m, "assert/1");
    }
    return ThrowTypeError(m, "callable", clause, "assert/1");
  }
  if (m->mutable_db() == nullptr) {
    TermRef head = clause;
    if (store.tag(clause) == Tag::kStruct && store.arity(clause) == 2 &&
        store.symbol(clause) == term::SymbolTable::kNeck) {
      head = store.Deref(store.arg(clause, 0));
    }
    return ThrowStaticProcedure(m, store.pred_id(head), "assert/1");
  }
  // Store an independent copy: later binding changes must not affect the
  // database (ISO semantics).
  TermRef copy = store.Rename(clause);
  PRORE_RETURN_IF_ERROR(m->mutable_db()->Assert(&store, copy, front));
  *success = true;
  return prore::Status::OK();
}

prore::Status BiAssertZ(Machine* m, TermRef g, bool* success) {
  return BiAssert(m, g, success, /*front=*/false);
}

prore::Status BiAssertA(Machine* m, TermRef g, bool* success) {
  return BiAssert(m, g, success, /*front=*/true);
}

prore::Status BiRetract(Machine* m, TermRef g, bool* success) {
  TermStore& store = m->store();
  TermRef pattern = store.Deref(store.arg(g, 0));
  // Normalize to Head/Body.
  TermRef pat_head = pattern;
  TermRef pat_body = store.MakeAtom(term::SymbolTable::kTrue);
  if (store.tag(pattern) == Tag::kStruct && store.arity(pattern) == 2 &&
      store.symbol(pattern) == term::SymbolTable::kNeck) {
    pat_head = store.Deref(store.arg(pattern, 0));
    pat_body = store.Deref(store.arg(pattern, 1));
  }
  if (!store.IsCallable(pat_head)) {
    if (store.tag(pat_head) == Tag::kVar) {
      return ThrowInstantiation(m, "retract/1");
    }
    return ThrowTypeError(m, "callable", pat_head, "retract/1");
  }
  term::PredId id = store.pred_id(pat_head);
  if (m->mutable_db() == nullptr) {
    return ThrowStaticProcedure(m, id, "retract/1");
  }
  const PredEntry* entry = m->db().Lookup(id);
  *success = false;
  if (entry == nullptr) return prore::Status::OK();
  size_t n = entry->clauses.size();  // snapshot: later asserts invisible
  for (size_t i = 0; i < n; ++i) {
    const CompiledClause& cc = entry->clauses[i];
    if (cc.dead()) continue;
    size_t mark = m->TrailMark();
    std::unordered_map<uint32_t, TermRef> var_map;
    TermRef head_copy = store.Rename(cc.head, &var_map);
    TermRef body_copy = store.Rename(cc.body, &var_map);
    if (m->Unify(pat_head, head_copy) && m->Unify(pat_body, body_copy)) {
      m->mutable_db()->MarkDead(id, i);
      *success = true;  // bindings from the match remain (ISO)
      return prore::Status::OK();
    }
    m->TrailUndo(mark);
  }
  return prore::Status::OK();
}

prore::Status BiRead(Machine* m, TermRef g, bool* success) {
  *success = m->Unify(Arg(m, g, 0), m->NextInputTerm());
  return prore::Status::OK();
}

// ---- Exceptions -------------------------------------------------------------
// throw/1 and catch/3 are dispatched natively by the machine (they are
// control constructs, ISO 7.8.9/7.8.10: uncounted, with the catch frame
// living on the choicepoint stack). The registry entries exist so the
// static analyses — PL002 undefined-predicate lint, callgraph, cost
// model — recognize them as defined; BiThrow also serves nested machines
// that dispatch via the builtin table.

prore::Status BiThrow(Machine* m, TermRef g, bool* success) {
  *success = false;
  return m->ThrowTerm(m->store().arg(g, 0));
}

prore::Status BiCatch(Machine* m, TermRef g, bool* success) {
  (void)m;
  (void)g;
  (void)success;
  return prore::Status::Internal(
      "catch/3 must be dispatched by the machine, not the builtin table");
}

struct NameArity {
  std::string name;
  uint32_t arity;
  bool operator==(const NameArity&) const = default;
};

struct NameArityHash {
  size_t operator()(const NameArity& k) const {
    return std::hash<std::string>()(k.name) ^ (k.arity * 0x9e3779b9u);
  }
};

const std::unordered_map<NameArity, BuiltinFn, NameArityHash>& Registry() {
  static const auto& table = *new std::unordered_map<NameArity, BuiltinFn,
                                                     NameArityHash>{
      {{"=", 2}, BiUnify},
      {{"\\=", 2}, BiNotUnify},
      {{"==", 2}, BiStructEq},
      {{"\\==", 2}, BiStructNeq},
      {{"@<", 2}, BiTermOrder<-1, -1>},
      {{"@>", 2}, BiTermOrder<1, 1>},
      {{"@=<", 2}, BiTermOrder<-1, 0>},
      {{"@>=", 2}, BiTermOrder<0, 1>},
      {{"compare", 3}, BiCompare},
      {{"var", 1}, BiVar},
      // Dispatcher tag test: same as var/1 but uncounted (the paper: the
      // dispatch "needs merely to test two tag bits").
      {{"$var_test", 1}, BiVar},
      {{"nonvar", 1}, BiNonvar},
      {{"atom", 1}, BiAtom},
      {{"integer", 1}, BiInteger},
      {{"float", 1}, BiFloat},
      {{"number", 1}, BiNumber},
      {{"atomic", 1}, BiAtomic},
      {{"compound", 1}, BiCompound},
      {{"callable", 1}, BiCallable},
      {{"ground", 1}, BiGround},
      {{"is_list", 1}, BiIsList},
      {{"is", 2}, BiIs},
      {{"<", 2}, BiLt},
      {{">", 2}, BiGt},
      {{"=<", 2}, BiLe},
      {{">=", 2}, BiGe},
      {{"=:=", 2}, BiArithEq},
      {{"=\\=", 2}, BiArithNeq},
      {{"functor", 3}, BiFunctor},
      {{"arg", 3}, BiArg},
      {{"=..", 2}, BiUniv},
      {{"copy_term", 2}, BiCopyTerm},
      {{"write", 1}, BiWrite},
      {{"print", 1}, BiWrite},
      {{"writeln", 1}, BiWriteln},
      {{"nl", 0}, BiNl},
      {{"tab", 1}, BiTab},
      {{"findall", 3}, BiFindall},
      {{"bagof", 3}, BiBagof},
      {{"setof", 3}, BiSetof},
      {{"sort", 2}, BiSort},
      {{"msort", 2}, BiMsort},
      {{"atom_length", 2}, BiAtomLength},
      {{"atom_codes", 2}, BiAtomCodes},
      {{"atom_chars", 2}, BiAtomChars},
      {{"char_code", 2}, BiCharCode},
      {{"number_codes", 2}, BiNumberCodes},
      {{"atom_concat", 3}, BiAtomConcat},
      {{"succ", 2}, BiSucc},
      {{"assert", 1}, BiAssertZ},
      {{"assertz", 1}, BiAssertZ},
      {{"asserta", 1}, BiAssertA},
      {{"retract", 1}, BiRetract},
      {{"read", 1}, BiRead},
      {{"throw", 1}, BiThrow},
      {{"catch", 3}, BiCatch},
  };
  return table;
}

}  // namespace

BuiltinFn LookupBuiltin(std::string_view name, uint32_t arity) {
  auto it = Registry().find(NameArity{std::string(name), arity});
  return it == Registry().end() ? nullptr : it->second;
}

std::vector<std::pair<std::string, uint32_t>> AllBuiltins() {
  std::vector<std::pair<std::string, uint32_t>> out;
  out.reserve(Registry().size());
  for (const auto& [key, fn] : Registry()) {
    out.emplace_back(key.name, key.arity);
  }
  return out;
}

}  // namespace prore::engine
