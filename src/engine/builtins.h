#ifndef PRORE_ENGINE_BUILTINS_H_
#define PRORE_ENGINE_BUILTINS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "term/store.h"

namespace prore::engine {

class Machine;

/// A deterministic built-in predicate. Sets *success; returns non-OK only
/// for genuine errors (instantiation/type errors), which abort the query.
/// Nondeterministic built-ins (between/3, member/2, ...) are provided as
/// pure-Prolog library predicates instead — see LibrarySource().
using BuiltinFn = prore::Status (*)(Machine* machine, term::TermRef goal,
                                    bool* success);

/// Returns the built-in implementation for name/arity, or nullptr.
/// Control constructs (',', ';', '->', '!', '\\+', call) are handled by the
/// Machine itself and are not in this registry.
BuiltinFn LookupBuiltin(std::string_view name, uint32_t arity);

/// Names of all registered built-ins, as name/arity pairs (for the analyses,
/// which must treat built-ins as leaves with known modes/costs).
std::vector<std::pair<std::string, uint32_t>> AllBuiltins();

}  // namespace prore::engine

#endif  // PRORE_ENGINE_BUILTINS_H_
