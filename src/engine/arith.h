#ifndef PRORE_ENGINE_ARITH_H_
#define PRORE_ENGINE_ARITH_H_

#include <cstdint>

#include "common/result.h"
#include "term/store.h"

namespace prore::engine {

/// An arithmetic value: integer or double, mirroring the two numeric term
/// tags. Integer operations stay exact; any float operand promotes.
struct Number {
  bool is_float = false;
  int64_t i = 0;
  double f = 0.0;

  static Number Int(int64_t v) { return Number{false, v, 0.0}; }
  static Number Float(double v) { return Number{true, 0, v}; }

  double AsDouble() const { return is_float ? f : static_cast<double>(i); }

  /// The corresponding term.
  term::TermRef ToTerm(term::TermStore* store) const {
    return is_float ? store->MakeFloat(f) : store->MakeInt(i);
  }
};

/// Evaluates an arithmetic expression term: +, -, *, /, //, mod, rem,
/// min/2, max/2, abs/1, sign/1, unary -, unary +, bit ops, ^/**.
/// / yields a float unless both operands are integers that divide evenly.
/// Fails with InstantiationError on unbound variables and TypeError on
/// non-numeric leaves.
prore::Result<Number> EvalArith(const term::TermStore& store,
                                term::TermRef expr);

/// As EvalArith but demands an integer result (e.g. tab/1).
prore::Result<int64_t> EvalArithInt(const term::TermStore& store,
                                    term::TermRef expr);

}  // namespace prore::engine

#endif  // PRORE_ENGINE_ARITH_H_
