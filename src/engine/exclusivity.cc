#include "engine/exclusivity.h"

#include <algorithm>
#include <cstddef>

namespace prore::engine {

namespace {

using term::Tag;
using term::TermRef;
using term::TermStore;

/// Principal functor of one head argument, flattened to a comparable key.
/// `known == false` means the position can never discriminate a pair this
/// argument is part of (variable, float, or out-of-range).
struct ArgShape {
  bool known = false;
  uint8_t kind = 0;     // 1 = atom, 2 = int, 3 = struct
  uint64_t a = 0;       // symbol / int bits
  uint32_t b = 0;       // struct arity

  bool Distinct(const ArgShape& o) const {
    if (!known || !o.known) return false;
    return kind != o.kind || a != o.a || b != o.b;
  }
};

ArgShape ShapeOf(const TermStore& store, TermRef head, uint32_t pos) {
  ArgShape s;
  head = store.Deref(head);
  if (store.tag(head) != Tag::kStruct || pos >= store.arity(head)) return s;
  TermRef arg = store.Deref(store.arg(head, pos));
  switch (store.tag(arg)) {
    case Tag::kAtom:
      s = {true, 1, store.symbol(arg), 0};
      break;
    case Tag::kInt:
      s = {true, 2, static_cast<uint64_t>(store.int_value(arg)), 0};
      break;
    case Tag::kStruct:
      s = {true, 3, store.symbol(arg), store.arity(arg)};
      break;
    case Tag::kVar:
    case Tag::kFloat:
      // Variables match anything; floats are excluded from discrimination
      // the same way first-arg indexing excludes them (equality of doubles
      // is not the same relation as unification).
      break;
  }
  return s;
}

}  // namespace

std::vector<Witness> ExclusivityWitnesses(const TermStore& store,
                                          const std::vector<TermRef>& heads,
                                          uint32_t arity,
                                          size_t max_witnesses,
                                          size_t max_clauses) {
  if (heads.size() < 2) return {Witness{}};
  if (arity == 0 || heads.size() > max_clauses) return {};

  // Shape table: shapes[c][k] = principal functor of clause c's argument k.
  std::vector<std::vector<ArgShape>> shapes(heads.size());
  for (size_t c = 0; c < heads.size(); ++c) {
    shapes[c].reserve(arity);
    for (uint32_t k = 0; k < arity; ++k) {
      shapes[c].push_back(ShapeOf(store, heads[c], k));
    }
  }

  // discriminates[k] = the clause pairs position k tells apart, as indices
  // into the (i, j) pair enumeration.
  const size_t num_pairs = heads.size() * (heads.size() - 1) / 2;
  std::vector<std::vector<bool>> discriminates(
      arity, std::vector<bool>(num_pairs, false));
  std::vector<size_t> covered_count(arity, 0);
  size_t pair_idx = 0;
  for (size_t i = 0; i < heads.size(); ++i) {
    for (size_t j = i + 1; j < heads.size(); ++j, ++pair_idx) {
      for (uint32_t k = 0; k < arity; ++k) {
        if (shapes[i][k].Distinct(shapes[j][k])) {
          discriminates[k][pair_idx] = true;
          ++covered_count[k];
        }
      }
    }
  }

  std::vector<Witness> out;
  // Single-position witnesses first: they elide under the weakest
  // boundness requirement, so different call patterns can each find one
  // they satisfy.
  for (uint32_t k = 0; k < arity && out.size() < max_witnesses; ++k) {
    if (covered_count[k] == num_pairs) out.push_back(Witness{k});
  }
  if (!out.empty() || max_witnesses == 0) return out;

  // No single position suffices: greedy set cover over positions.
  Witness combo;
  std::vector<bool> covered(num_pairs, false);
  size_t remaining = num_pairs;
  while (remaining > 0) {
    uint32_t best = arity;
    size_t best_gain = 0;
    for (uint32_t k = 0; k < arity; ++k) {
      if (std::find(combo.begin(), combo.end(), k) != combo.end()) continue;
      size_t gain = 0;
      for (size_t p = 0; p < num_pairs; ++p) {
        if (!covered[p] && discriminates[k][p]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = k;
      }
    }
    if (best == arity) return {};  // some pair is indistinguishable
    combo.push_back(best);
    for (size_t p = 0; p < num_pairs; ++p) {
      if (discriminates[best][p] && !covered[p]) {
        covered[p] = true;
        --remaining;
      }
    }
  }
  std::sort(combo.begin(), combo.end());
  out.push_back(std::move(combo));
  return out;
}

}  // namespace prore::engine
