#ifndef PRORE_ENGINE_PROFILE_H_
#define PRORE_ENGINE_PROFILE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "term/store.h"

namespace prore::engine {

/// Per-clause counters gathered while SolveOptions::profile is armed.
/// "try" counts head-unification attempts (after first-argument index
/// filtering — a clause the index skips was never tried), "entry" counts
/// successful head unifications (the body was entered), "first_exit"
/// counts entries that produced at least one solution, and "exit" counts
/// every solution the clause produced (redo re-exits included). The
/// empirical clause probabilities the cost model wants fall straight out:
/// P(clause succeeds | tried) = first_exit/try, head-match probability =
/// entry/try, expected solutions per try = exit/try.
struct ClauseCounts {
  uint64_t tries = 0;
  uint64_t entries = 0;
  uint64_t first_exits = 0;
  uint64_t exits = 0;
};

/// 4-port box-model counters for one predicate (Byrd's call/exit/redo/
/// fail), plus `succ` — the number of *calls* that exited at least once,
/// which is exactly the success probability numerator the Markov model
/// consumes (exit alone over-counts multi-solution calls).
struct PortCounts {
  uint64_t call = 0;
  uint64_t exit = 0;
  uint64_t redo = 0;
  uint64_t fail = 0;
  uint64_t succ = 0;
};

struct PredCounts {
  PortCounts ports;
  /// Indexed by the callee's clause position in the database at call time
  /// (== source clause order for static programs). Grown on demand.
  std::vector<ClauseCounts> clauses;
};

/// Accumulates execution counts for one or more Solves. Not thread-safe:
/// use one collector per Machine (nested findall machines share their
/// parent's pointer, which is safe — they run on the parent's thread).
///
/// Keys are PredIds of the machine's TermStore, so a collector must not
/// be shared across machines with unrelated stores (snapshot clones are
/// fine — CloneFrom preserves symbol numbering).
///
/// Port counts are exact for cut-free, exception-free executions. A cut
/// or an exception discards pending exit markers and choicepoints without
/// crossing their ports, so calls pruned that way under-report exit/fail;
/// callers treating the counts as probabilities should regard them as
/// frequencies of *observed* port crossings (docs/profile-format.md).
class ProfileCollector {
 public:
  void OnCall(const term::PredId& id) { ++Pred(id).ports.call; }

  void OnFail(const term::PredId& id) { ++Pred(id).ports.fail; }

  void OnRedo(const term::PredId& id) { ++Pred(id).ports.redo; }

  void OnClauseTry(const term::PredId& id, uint32_t clause_index) {
    ++Clause(id, clause_index).tries;
  }

  void OnClauseEnter(const term::PredId& id, uint32_t clause_index) {
    ++Clause(id, clause_index).entries;
  }

  void OnExit(const term::PredId& id, uint32_t clause_index,
              bool first_for_entry, bool first_for_call) {
    PredCounts& p = Pred(id);
    ++p.ports.exit;
    if (first_for_call) {
      ++p.ports.succ;
    } else {
      // A non-first exit of the same call means the engine re-entered the
      // box after an exit: a redo that reached the exit port again.
      ++p.ports.redo;
    }
    ClauseCounts& c = Clause(id, clause_index);
    ++c.exits;
    if (first_for_entry) ++c.first_exits;
  }

  /// Builtins get call/exit/fail only (they are deterministic in this
  /// engine — no redo port) and no clause breakdown.
  void OnBuiltin(const term::PredId& id, bool success) {
    PredCounts& p = builtins_[id];
    ++p.ports.call;
    if (success) {
      ++p.ports.exit;
      ++p.ports.succ;
    } else {
      ++p.ports.fail;
    }
  }

  using Map =
      std::unordered_map<term::PredId, PredCounts, term::PredIdHash>;

  const Map& preds() const { return preds_; }
  const Map& builtins() const { return builtins_; }

  bool empty() const { return preds_.empty() && builtins_.empty(); }

  void Clear() {
    preds_.clear();
    builtins_.clear();
  }

 private:
  PredCounts& Pred(const term::PredId& id) { return preds_[id]; }

  ClauseCounts& Clause(const term::PredId& id, uint32_t clause_index) {
    PredCounts& p = preds_[id];
    if (p.clauses.size() <= clause_index) p.clauses.resize(clause_index + 1);
    return p.clauses[clause_index];
  }

  Map preds_;
  Map builtins_;
};

}  // namespace prore::engine

#endif  // PRORE_ENGINE_PROFILE_H_
