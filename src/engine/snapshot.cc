#include "engine/snapshot.h"

#include <utility>

namespace prore::engine {

prore::Result<std::shared_ptr<const ProgramSnapshot>> ProgramSnapshot::Compile(
    const term::TermStore& store, const reader::Program& program,
    bool load_library) {
  // The constructor is private, so make_shared is unavailable; one extra
  // control-block allocation at compile time is irrelevant.
  std::shared_ptr<ProgramSnapshot> snap(new ProgramSnapshot());
  snap->store_ = std::make_unique<term::TermStore>();
  snap->store_->CloneFrom(store);
  PRORE_ASSIGN_OR_RETURN(
      snap->db_, Database::Build(snap->store_.get(), program, load_library));
  return std::shared_ptr<const ProgramSnapshot>(std::move(snap));
}

}  // namespace prore::engine
