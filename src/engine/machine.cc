#include "engine/machine.h"

#include <algorithm>
#include <cassert>

#include "common/str_util.h"
#include "engine/builtins.h"
#include "reader/parser.h"
#include "reader/writer.h"

namespace prore::engine {

using term::SymbolTable;
using term::Tag;
using term::TermRef;

namespace {
constexpr const char* kIteThenMarker = "$ite_then";
}  // namespace

Machine::Machine(term::TermStore* store, Database* db,
                 SolveOptions opts)
    : store_(store), db_(db), opts_(std::move(opts)) {
  // Interned once so the per-step dispatcher never compares strings.
  sym_ite_marker_ = store_->symbols().Intern(kIteThenMarker);
  sym_not_name_ = store_->symbols().Intern("not");
  sym_false_ = store_->symbols().Intern("false");
}

Machine::GoalRef Machine::NewGoalNode(TermRef goal, uint32_t barrier,
                                      GoalRef next) {
  node_pool_.push_back(GoalNode{goal, barrier, next});
  return static_cast<GoalRef>(node_pool_.size() - 1);
}

void Machine::TrailUnwind(size_t mark) {
  while (trail_.size() > mark) {
    store_->ResetVar(trail_.back());
    trail_.pop_back();
  }
}

void Machine::CutTo(uint32_t barrier) {
  // Cut discards choicepoints but keeps bindings (and the goal nodes still
  // reachable from goals_, which is why the node pool is only truncated on
  // backtracking, never here).
  if (cps_.size() > barrier) cps_.resize(barrier);
}

bool Machine::Unify(TermRef a, TermRef b) {
  // Iterative unification without occurs check (standard Prolog). The
  // worklist is a machine member so steady-state unification allocates
  // nothing.
  unify_stack_.clear();
  unify_stack_.emplace_back(a, b);
  while (!unify_stack_.empty()) {
    auto [x, y] = unify_stack_.back();
    unify_stack_.pop_back();
    x = store_->Deref(x);
    y = store_->Deref(y);
    if (x == y) continue;
    Tag tx = store_->tag(x), ty = store_->tag(y);
    if (tx == Tag::kVar) {
      store_->BindVar(x, y);
      trail_.push_back(x);
      continue;
    }
    if (ty == Tag::kVar) {
      store_->BindVar(y, x);
      trail_.push_back(y);
      continue;
    }
    if (tx != ty) return false;
    switch (tx) {
      case Tag::kAtom:
        if (store_->symbol(x) != store_->symbol(y)) return false;
        break;
      case Tag::kInt:
        if (store_->int_value(x) != store_->int_value(y)) return false;
        break;
      case Tag::kFloat:
        if (store_->float_value(x) != store_->float_value(y)) return false;
        break;
      case Tag::kStruct: {
        if (store_->symbol(x) != store_->symbol(y) ||
            store_->arity(x) != store_->arity(y)) {
          return false;
        }
        for (uint32_t i = 0; i < store_->arity(x); ++i) {
          unify_stack_.emplace_back(store_->arg(x, i), store_->arg(y, i));
        }
        break;
      }
      case Tag::kVar:
        break;  // unreachable
    }
  }
  return true;
}

void Machine::PushConjunction(TermRef goal, uint32_t barrier) {
  // Flatten right-nested conjunctions iteratively to keep node counts low.
  conj_scratch_.clear();
  TermRef cur = goal;
  while (true) {
    cur = store_->Deref(cur);
    if (store_->tag(cur) == Tag::kStruct &&
        store_->symbol(cur) == SymbolTable::kComma &&
        store_->arity(cur) == 2) {
      conj_scratch_.push_back(store_->arg(cur, 0));
      cur = store_->arg(cur, 1);
    } else {
      conj_scratch_.push_back(cur);
      break;
    }
  }
  for (size_t i = conj_scratch_.size(); i-- > 0;) {
    goals_ = NewGoalNode(conj_scratch_[i], barrier, goals_);
  }
}

void Machine::PushIfThenElse(TermRef cond, TermRef then_goal,
                             TermRef else_goal, uint32_t barrier) {
  // Else-branch choicepoint: resume with `else_goal ++ rest` on failure of
  // the condition.
  GoalRef else_cont = NewGoalNode(else_goal, barrier, goals_);
  Choicepoint cp;
  cp.kind = Choicepoint::Kind::kGoals;
  cp.continuation = else_cont;
  cp.node_mark = static_cast<uint32_t>(node_pool_.size());
  cp.trail_mark = trail_.size();
  cp.heap_mark = store_->Watermark();
  cps_.push_back(cp);
  uint32_t cut_to = static_cast<uint32_t>(cps_.size()) - 1;

  // Marker: when the condition succeeds, commit (cut to `cut_to`) and run
  // the then-branch with the clause's own barrier.
  const TermRef marker_args[] = {then_goal, store_->MakeInt(barrier)};
  TermRef marker = store_->MakeStruct(sym_ite_marker_, marker_args);
  GoalRef marker_node = NewGoalNode(marker, cut_to, goals_);

  // Condition runs with a local cut barrier: a '!' inside the condition
  // must not remove the else-branch choicepoint (ISO semantics).
  goals_ = NewGoalNode(cond, static_cast<uint32_t>(cps_.size()), marker_node);
}

uint32_t Machine::ClauseScan::Next() {
  const std::vector<CompiledClause>& clauses = entry->clauses;
  switch (mode) {
    case Mode::kAll:
      while (pos < clause_limit) {
        uint32_t i = pos++;
        if (clauses[i].died_at > call_clock) return i;
      }
      return kNoClause;
    case Mode::kPretest:
      while (pos < clause_limit) {
        uint32_t i = pos++;
        if (clauses[i].died_at <= call_clock) continue;
        if (Database::KeysCompatible(call_key, clauses[i].key)) return i;
      }
      return kNoClause;
    case Mode::kBuckets:
      // Lazy in-order merge of the key bucket with the var-headed list;
      // both hold ascending positions, so once the minimum reaches
      // clause_limit nothing visible remains.
      while (true) {
        uint32_t b = (bucket != nullptr && pos < bucket->size())
                         ? (*bucket)[pos]
                         : kNoClause;
        uint32_t v = (var_list != nullptr && var_pos < var_list->size())
                         ? (*var_list)[var_pos]
                         : kNoClause;
        uint32_t i = std::min(b, v);
        if (i == kNoClause || i >= clause_limit) return kNoClause;
        if (i == b) {
          ++pos;
        } else {
          ++var_pos;
        }
        if (clauses[i].died_at <= call_clock) continue;
        return i;
      }
  }
  return kNoClause;
}

Machine::ClauseScan Machine::MakeScan(const PredEntry* entry,
                                      TermRef goal) const {
  ClauseScan scan;
  scan.entry = entry;
  scan.call_clock = db_->update_clock();
  scan.clause_limit = static_cast<uint32_t>(entry->clauses.size());
  if (!opts_.use_indexing) {
    scan.mode = ClauseScan::Mode::kAll;
    return scan;
  }
  FirstArgKey call_key = Database::KeyForCall(*store_, goal);
  if (call_key.kind == FirstArgKey::Kind::kAny) {
    // Unbound (or unindexable) first argument: every clause is a
    // candidate — the sentinel "all clauses" scan, no merge, no copy.
    scan.mode = ClauseScan::Mode::kAll;
    return scan;
  }
  if (entry->indexed) {
    scan.mode = ClauseScan::Mode::kBuckets;
    scan.bucket = entry->index.Bucket(call_key);
    scan.var_list =
        entry->index.var_list.empty() ? nullptr : &entry->index.var_list;
    return scan;
  }
  scan.mode = ClauseScan::Mode::kPretest;
  scan.call_key = call_key;
  return scan;
}

TermRef Machine::RenameHead(const CompiledClause& clause) {
  regs_.assign(clause.num_vars, term::kNullTerm);
  return store_->RenameSkeleton(clause.head, clause.var_base, regs_);
}

bool Machine::TryClauses(Choicepoint* cp) {
  while (true) {
    uint32_t idx = cp->scan.Next();
    if (idx == kNoClause) return false;
    TrailUnwind(cp->trail_mark);
    if (CanReclaimHeap()) store_->Truncate(cp->heap_mark);
    // Goal nodes pushed by a previously tried clause's body are
    // unreachable once we are back at this choicepoint: recycle them.
    if (node_pool_.size() > cp->node_mark) node_pool_.resize(cp->node_mark);
    const CompiledClause& clause = cp->scan.entry->clauses[idx];
    ++metrics_.head_unifications;
    TermRef head = RenameHead(clause);
    if (!Unify(cp->call_goal, head)) continue;
    TermRef body =
        store_->RenameSkeleton(clause.body, clause.var_base, regs_);
    goals_ = cp->continuation;
    PushConjunction(body, cp->body_barrier);
    return true;
  }
}

prore::Status Machine::CallUserPredicate(TermRef goal, uint32_t barrier,
                                         bool* failed) {
  (void)barrier;
  term::PredId id = store_->pred_id(goal);
  const PredEntry* entry = db_->Lookup(id);
  if (entry == nullptr) {
    if (opts_.unknown_predicate_fails) {
      *failed = true;
      return prore::Status::OK();
    }
    return prore::Status::ExistenceError(
        prore::StrFormat("unknown predicate %s/%u",
                         store_->symbols().Name(id.name).c_str(), id.arity));
  }
  ClauseScan scan = MakeScan(entry, goal);
  ClauseScan peek = scan;  // cheap value copy; scan stays at the start
  uint32_t first = peek.Next();
  if (first == kNoClause) {
    *failed = true;
    return prore::Status::OK();
  }

  uint32_t body_barrier = static_cast<uint32_t>(cps_.size());
  if (peek.Next() == kNoClause) {
    // Deterministic call: no choicepoint.
    size_t trail_mark = trail_.size();
    term::TermStore::Mark heap_mark = store_->Watermark();
    const CompiledClause& clause = entry->clauses[first];
    ++metrics_.head_unifications;
    TermRef head = RenameHead(clause);
    if (!Unify(goal, head)) {
      TrailUnwind(trail_mark);
      if (CanReclaimHeap()) store_->Truncate(heap_mark);
      *failed = true;
      return prore::Status::OK();
    }
    TermRef body =
        store_->RenameSkeleton(clause.body, clause.var_base, regs_);
    PushConjunction(body, body_barrier);
    return prore::Status::OK();
  }

  Choicepoint cp;
  cp.kind = Choicepoint::Kind::kClauses;
  cp.continuation = goals_;
  cp.node_mark = static_cast<uint32_t>(node_pool_.size());
  cp.trail_mark = trail_.size();
  cp.heap_mark = store_->Watermark();
  cp.call_goal = goal;
  cp.scan = scan;
  cp.body_barrier = body_barrier;
  cps_.push_back(cp);
  if (!TryClauses(&cps_.back())) {
    cps_.pop_back();
    *failed = true;
  }
  return prore::Status::OK();
}

prore::Status Machine::Step(bool* failed) {
  *failed = false;
  // Copy, not reference: pushing goals below reallocates the pool.
  const GoalNode node = node_pool_[goals_];
  TermRef g = store_->Deref(node.goal);
  uint32_t barrier = node.cut_barrier;
  goals_ = node.next;

  Tag t = store_->tag(g);
  if (t == Tag::kVar) {
    return prore::Status::InstantiationError("unbound variable as goal");
  }
  if (t == Tag::kInt || t == Tag::kFloat) {
    return prore::Status::TypeError("number is not a callable goal");
  }

  term::Symbol sym = store_->symbol(g);
  uint32_t arity = store_->arity(g);

  if (t == Tag::kStruct) {
    if (sym == SymbolTable::kComma && arity == 2) {
      PushConjunction(g, barrier);
      return prore::Status::OK();
    }
    if (sym == SymbolTable::kSemicolon && arity == 2) {
      TermRef left = store_->Deref(store_->arg(g, 0));
      TermRef right = store_->arg(g, 1);
      if (store_->tag(left) == Tag::kStruct &&
          store_->symbol(left) == SymbolTable::kArrow &&
          store_->arity(left) == 2) {
        PushIfThenElse(store_->arg(left, 0), store_->arg(left, 1), right,
                       barrier);
        return prore::Status::OK();
      }
      // Plain disjunction: choicepoint for the right branch.
      GoalRef right_cont = NewGoalNode(right, barrier, goals_);
      Choicepoint cp;
      cp.kind = Choicepoint::Kind::kGoals;
      cp.continuation = right_cont;
      cp.node_mark = static_cast<uint32_t>(node_pool_.size());
      cp.trail_mark = trail_.size();
      cp.heap_mark = store_->Watermark();
      cps_.push_back(cp);
      goals_ = NewGoalNode(left, barrier, goals_);
      return prore::Status::OK();
    }
    if (sym == SymbolTable::kArrow && arity == 2) {
      // Bare if-then: (C -> T) == (C -> T ; fail).
      PushIfThenElse(store_->arg(g, 0), store_->arg(g, 1),
                     store_->MakeAtom(SymbolTable::kFail), barrier);
      return prore::Status::OK();
    }
    if ((sym == SymbolTable::kNot || sym == sym_not_name_) && arity == 1) {
      // Negation as failure: (G -> fail ; true), G opaque to outer cut.
      PushIfThenElse(store_->arg(g, 0),
                     store_->MakeAtom(SymbolTable::kFail),
                     store_->MakeAtom(SymbolTable::kTrue), barrier);
      return prore::Status::OK();
    }
    if (sym == SymbolTable::kCall && arity == 1) {
      TermRef inner = store_->Deref(store_->arg(g, 0));
      if (!store_->IsCallable(inner)) {
        return prore::Status::InstantiationError(
            "call/1: argument is not callable");
      }
      // Cut inside call/1 is local.
      goals_ = NewGoalNode(inner, static_cast<uint32_t>(cps_.size()), goals_);
      return prore::Status::OK();
    }
    if (sym == sym_ite_marker_ && arity == 2) {
      // Condition of an if-then-else succeeded: commit and run then-branch.
      CutTo(barrier);  // node.cut_barrier held the commit point
      TermRef then_goal = store_->arg(g, 0);
      uint32_t clause_barrier = static_cast<uint32_t>(
          store_->int_value(store_->Deref(store_->arg(g, 1))));
      goals_ = NewGoalNode(then_goal, clause_barrier, goals_);
      return prore::Status::OK();
    }
  } else {
    // Atoms.
    if (sym == SymbolTable::kCut) {
      CutTo(barrier);
      return prore::Status::OK();
    }
    if (sym == SymbolTable::kTrue) return prore::Status::OK();
    if (sym == SymbolTable::kFail || sym == sym_false_) {
      *failed = true;
      return prore::Status::OK();
    }
  }

  // User predicate or built-in. User definitions take precedence so the
  // benchmark programs may define e.g. their own delete/3.
  term::PredId id{sym, arity};
  if (db_->Lookup(id) != nullptr) {
    ++metrics_.user_calls;
    if (metrics_.TotalCalls() > opts_.max_calls) {
      return prore::Status::ResourceExhausted("call limit exceeded");
    }
    if (opts_.mode_observer) {
      std::string mode;
      for (uint32_t i = 0; i < arity; ++i) {
        TermRef a = store_->Deref(store_->arg(g, i));
        if (store_->tag(a) == Tag::kVar) {
          mode.push_back('u');
        } else if (store_->IsGround(a)) {
          mode.push_back('i');
        } else {
          mode.push_back('a');
        }
      }
      opts_.mode_observer(id, mode);
    }
    return CallUserPredicate(g, barrier, failed);
  }
  uint64_t cache_key = (static_cast<uint64_t>(sym) << 32) | arity;
  BuiltinFn fn;
  if (auto cit = builtin_cache_.find(cache_key);
      cit != builtin_cache_.end()) {
    fn = cit->second;
  } else {
    fn = LookupBuiltin(store_->symbols().Name(sym), arity);
    builtin_cache_.emplace(cache_key, fn);
  }
  if (fn != nullptr) {
    // '$'-prefixed builtins are harness-internal (dispatcher tag tests)
    // and cost no "call" in the paper's metric.
    if (store_->symbols().Name(sym)[0] != '$') {
      ++metrics_.builtin_calls;
      if (metrics_.TotalCalls() > opts_.max_calls) {
        return prore::Status::ResourceExhausted("call limit exceeded");
      }
    }
    bool success = false;
    PRORE_RETURN_IF_ERROR(fn(this, g, &success));
    *failed = !success;
    return prore::Status::OK();
  }
  ++metrics_.user_calls;
  return CallUserPredicate(g, barrier, failed);  // reports unknown predicate
}

bool Machine::Backtrack() {
  while (!cps_.empty()) {
    Choicepoint& cp = cps_.back();
    TrailUnwind(cp.trail_mark);
    if (CanReclaimHeap()) store_->Truncate(cp.heap_mark);
    if (cp.kind == Choicepoint::Kind::kGoals) {
      if (node_pool_.size() > cp.node_mark) node_pool_.resize(cp.node_mark);
      goals_ = cp.continuation;
      cps_.pop_back();
      return true;
    }
    if (TryClauses(&cp)) return true;
    cps_.pop_back();
  }
  return false;
}

prore::Result<Metrics> Machine::Solve(TermRef goal,
                                      const SolutionCallback& on_solution) {
  if (solving_) {
    return prore::Status::Internal(
        "Machine::Solve is not reentrant; use a nested Machine");
  }
  solving_ = true;
  metrics_ = Metrics();
  node_pool_.clear();  // vector: capacity is retained across queries
  goals_ = kNilGoal;
  cps_.clear();
  trail_.clear();
  term::TermStore::Mark query_mark = store_->Watermark();
  if (reclaim_heap_) store_->ResetHighWater();
  query_db_generation_ = db_->generation();

  goals_ = NewGoalNode(goal, 0, kNilGoal);
  prore::Status status = prore::Status::OK();
  while (true) {
    if (goals_ == kNilGoal) {
      ++metrics_.solutions;
      bool keep_going = on_solution ? on_solution() : true;
      if (!keep_going || metrics_.solutions >= opts_.max_solutions) break;
      if (!Backtrack()) break;
      continue;
    }
    bool failed = false;
    status = Step(&failed);
    if (!status.ok()) break;
    if (failed) {
      ++metrics_.backtracks;
      if (!Backtrack()) break;
    }
  }

  metrics_.heap_cells += store_->HighWaterCells() - query_mark.cells;
  TrailUnwind(0);
  if (CanReclaimHeap()) store_->Truncate(query_mark);
  goals_ = kNilGoal;
  cps_.clear();
  node_pool_.clear();
  solving_ = false;
  total_metrics_ += metrics_;
  if (!status.ok()) return status;
  return metrics_;
}

prore::Result<std::vector<std::string>> Machine::SolveToStrings(
    TermRef goal, TermRef template_term) {
  std::vector<std::string> out;
  reader::WriteOptions wopts;
  wopts.var_names = false;
  auto cb = [&]() {
    out.push_back(reader::WriteTerm(*store_, template_term, wopts));
    return true;
  };
  PRORE_ASSIGN_OR_RETURN(Metrics m, Solve(goal, cb));
  (void)m;
  return out;
}

prore::Result<bool> Machine::Succeeds(TermRef goal) {
  bool found = false;
  SolveOptions saved = opts_;
  opts_.max_solutions = 1;
  auto cb = [&]() {
    found = true;
    return false;
  };
  auto result = Solve(goal, cb);
  opts_ = saved;
  if (!result.ok()) return result.status();
  return found;
}

prore::Status Machine::SetInput(std::string_view text) {
  PRORE_ASSIGN_OR_RETURN(auto terms,
                         reader::ParseTermSequence(store_, text));
  input_terms_.clear();
  input_head_ = 0;
  for (const reader::ReadTerm& rt : terms) input_terms_.push_back(rt.term);
  return prore::Status::OK();
}

term::TermRef Machine::NextInputTerm() {
  if (input_head_ >= input_terms_.size()) {
    return store_->MakeAtom("end_of_file");
  }
  return input_terms_[input_head_++];
}

prore::Result<std::vector<TermRef>> Machine::FindAll(TermRef goal,
                                                     TermRef template_term) {
  SolveOptions child_opts = opts_;
  // A solution cap on the outer query must not truncate the bag.
  child_opts.max_solutions = UINT64_MAX;
  Machine child(store_, db_, child_opts);
  child.reclaim_heap_ = false;  // collected copies must outlive the subquery
  std::vector<TermRef> copies;
  auto cb = [&]() {
    copies.push_back(store_->Rename(template_term));
    return true;
  };
  auto result = child.Solve(goal, cb);
  if (!result.ok()) return result.status();
  metrics_ += *result;           // the paper counts all calls
  output_ += child.output();     // nested side-effects surface
  return copies;
}

}  // namespace prore::engine
