#include "engine/machine.h"

#include <algorithm>
#include <cassert>

#include "common/str_util.h"
#include "engine/builtins.h"
#include "engine/profile.h"
#include "reader/parser.h"
#include "reader/writer.h"

namespace prore::engine {

using term::SymbolTable;
using term::Tag;
using term::TermRef;

namespace {
constexpr const char* kIteThenMarker = "$ite_then";
constexpr const char* kCatchDoneMarker = "$catch_done";
constexpr const char* kProfExitMarker = "$prof_exit";

/// The profile exit marker carries its predicate as one integer so the
/// marker term stays flat: (symbol << 32) | arity, reversible because
/// Symbol is 32-bit. The sign bit is unreachable for real symbol tables.
int64_t EncodePredId(const term::PredId& id) {
  return static_cast<int64_t>((static_cast<uint64_t>(id.name) << 32) |
                              id.arity);
}

term::PredId DecodePredId(int64_t enc) {
  const uint64_t bits = static_cast<uint64_t>(enc);
  return term::PredId{static_cast<term::Symbol>(bits >> 32),
                      static_cast<uint32_t>(bits & 0xFFFFFFFFu)};
}

/// Maps a thrown ball onto the Status taxonomy: error/2 balls with a
/// recognized ISO payload keep their library-level code (so callers that
/// predate the exception machinery still see e.g. kTypeError), anything
/// else is an uncaught user throw.
prore::StatusCode ClassifyBall(const term::TermStore& s, TermRef ball,
                               term::Symbol sym_error) {
  ball = s.Deref(ball);
  if (s.tag(ball) != Tag::kStruct || s.symbol(ball) != sym_error ||
      s.arity(ball) != 2) {
    return prore::StatusCode::kPrologThrow;
  }
  TermRef payload = s.Deref(s.arg(ball, 0));
  Tag t = s.tag(payload);
  if (t != Tag::kAtom && t != Tag::kStruct) {
    return prore::StatusCode::kPrologThrow;
  }
  const std::string& name = s.symbols().Name(s.symbol(payload));
  if (name == "instantiation_error") {
    return prore::StatusCode::kInstantiationError;
  }
  if (name == "type_error" || name == "domain_error" ||
      name == "representation_error") {
    return prore::StatusCode::kTypeError;
  }
  if (name == "existence_error") return prore::StatusCode::kExistenceError;
  if (name == "evaluation_error") return prore::StatusCode::kEvaluationError;
  if (name == "resource_error") return prore::StatusCode::kResourceExhausted;
  if (name == "canceled") return prore::StatusCode::kCancelled;
  return prore::StatusCode::kPrologThrow;
}

/// True for status codes that exist as Prolog exceptions (convertible to a
/// ball); parse/internal/invalid-argument failures abort the query instead.
bool IsPrologLevel(prore::StatusCode code) {
  switch (code) {
    case prore::StatusCode::kTypeError:
    case prore::StatusCode::kInstantiationError:
    case prore::StatusCode::kExistenceError:
    case prore::StatusCode::kEvaluationError:
    case prore::StatusCode::kResourceExhausted:
    case prore::StatusCode::kPrologThrow:
    case prore::StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}
}  // namespace

std::optional<PrologError> PrologErrorFromStatus(const prore::Status& status) {
  if (status.ok() || !status.has_error_term()) return std::nullopt;
  return PrologError{status.code(), status.error_term(), status.message()};
}

Machine::Machine(term::TermStore* store, Database* db,
                 SolveOptions opts)
    : store_(store), db_(db), mutable_db_(db), opts_(std::move(opts)) {
  InternDispatchSymbols();
}

Machine::Machine(std::shared_ptr<const ProgramSnapshot> snapshot,
                 SolveOptions opts)
    : store_(nullptr),
      db_(&snapshot->db()),
      mutable_db_(nullptr),
      snapshot_(std::move(snapshot)),
      own_store_(std::make_unique<term::TermStore>()),
      opts_(std::move(opts)) {
  // The private heap starts as an exact copy of the frozen arena, so every
  // skeleton TermRef in the shared Database denotes the same term here.
  own_store_->CloneFrom(snapshot_->store());
  store_ = own_store_.get();
  InternDispatchSymbols();
}

void Machine::InternDispatchSymbols() {
  // Interned once so the per-step dispatcher never compares strings.
  sym_ite_marker_ = store_->symbols().Intern(kIteThenMarker);
  sym_not_name_ = store_->symbols().Intern("not");
  sym_false_ = store_->symbols().Intern("false");
  sym_catch_ = store_->symbols().Intern("catch");
  sym_throw_ = store_->symbols().Intern("throw");
  sym_catch_done_ = store_->symbols().Intern(kCatchDoneMarker);
  sym_error_ = store_->symbols().Intern("error");
  sym_prof_exit_ = store_->symbols().Intern(kProfExitMarker);
}

Machine::GoalRef Machine::NewGoalNode(TermRef goal, uint32_t barrier,
                                      GoalRef next) {
  node_pool_.push_back(GoalNode{goal, barrier, next});
  return static_cast<GoalRef>(node_pool_.size() - 1);
}

void Machine::TrailUnwind(size_t mark) {
  while (trail_.size() > mark) {
    store_->ResetVar(trail_.back());
    trail_.pop_back();
  }
}

void Machine::CutTo(uint32_t barrier) {
  // Cut discards choicepoints but keeps bindings (and the goal nodes still
  // reachable from goals_, which is why the node pool is only truncated on
  // backtracking, never here).
  if (cps_.size() > barrier) cps_.resize(barrier);
}

void Machine::CatchLogUnwind(size_t mark) {
  // Replays catch-frame deactivations in LIFO order. An entry may be stale
  // (its frame was discarded by a cut); the guards make replay a no-op
  // then: a frame index beyond the stack is gone, and a frame created
  // after the entry was logged records a catch_log_mark above this entry,
  // so it is popped — truncating nothing below its own mark — before any
  // unwind that could reach this entry (re-arming an active frame is
  // idempotent anyway).
  while (catch_log_.size() > mark) {
    uint32_t idx = catch_log_.back();
    catch_log_.pop_back();
    if (idx < cps_.size() && cps_[idx].kind == Choicepoint::Kind::kCatch) {
      cps_[idx].catch_active = true;
    }
  }
}

prore::Status Machine::ThrowTerm(TermRef ball) {
  TermRef b = store_->Deref(ball);
  if (store_->tag(b) == Tag::kVar) {
    // throw/1 demands a bound ball; the error it raises instead is itself
    // catchable.
    const TermRef args[] = {store_->MakeAtom("instantiation_error"),
                            store_->MakeAtom("throw/1")};
    ball_ = store_->MakeStruct(sym_error_, args);
  } else {
    // Copy: the ball must survive the unwinding of the thrower's bindings.
    ball_ = store_->Rename(b);
  }
  return prore::Status(prore::StatusCode::kPrologThrow, "prolog exception");
}

prore::Status Machine::ThrowError(TermRef payload,
                                  std::string_view context) {
  // Context rendered as a predicate indicator when it looks like one
  // ("name/arity"), else a plain atom.
  TermRef ctx = term::kNullTerm;
  size_t slash = context.rfind('/');
  if (slash != std::string_view::npos && slash > 0 &&
      slash + 1 < context.size()) {
    std::string_view digits = context.substr(slash + 1);
    bool numeric = true;
    for (char c : digits) numeric = numeric && c >= '0' && c <= '9';
    if (numeric) {
      const TermRef pi_args[] = {
          store_->MakeAtom(context.substr(0, slash)),
          store_->MakeInt(std::stoll(std::string(digits)))};
      ctx = store_->MakeStruct("/", pi_args);
    }
  }
  if (ctx == term::kNullTerm) ctx = store_->MakeAtom(context);
  const TermRef args[] = {payload, ctx};
  return ThrowTerm(store_->MakeStruct(sym_error_, args));
}

prore::Status Machine::ThrowStatus(const prore::Status& status,
                                   std::string_view context) {
  if (status.ok()) return status;
  if (status.code() == prore::StatusCode::kPrologThrow &&
      ball_ != term::kNullTerm) {
    return status;  // already in flight
  }
  TermRef payload = term::kNullTerm;
  if (status.has_error_term()) {
    auto parsed = reader::ParseQueryText(store_, status.error_term());
    if (parsed.ok()) payload = parsed->term;
  }
  if (payload == term::kNullTerm) {
    const TermRef args[] = {store_->MakeAtom(status.message())};
    payload = store_->MakeStruct("system_error", args);
  }
  return ThrowError(payload, context);
}

prore::Status Machine::RaiseResource(const char* what,
                                     const char* limit_name) {
  const TermRef payload_args[] = {store_->MakeAtom(what)};
  TermRef payload = store_->MakeStruct("resource_error", payload_args);
  const TermRef args[] = {payload, store_->MakeAtom(limit_name)};
  ball_ = store_->MakeStruct(sym_error_, args);
  return prore::Status::ResourceExhausted(
      prore::StrFormat("%s limit exceeded", limit_name));
}

prore::Status Machine::RaiseCancelled() {
  const TermRef args[] = {store_->MakeAtom("canceled"),
                          store_->MakeAtom("cancel")};
  ball_ = store_->MakeStruct(sym_error_, args);
  std::string why = opts_.exec.token.reason();
  return prore::Status::Cancelled(why.empty() ? "canceled" : why);
}

prore::Status Machine::ApplyCallFault() {
  switch (opts_.fault->OnCall()) {
    case FaultInjector::CallAction::kNone:
      return prore::Status::OK();
    case FaultInjector::CallAction::kThrow: {
      const TermRef payload_args[] = {store_->MakeInt(
          static_cast<int64_t>(opts_.fault->calls_seen()))};
      TermRef payload = store_->MakeStruct("fault_injected", payload_args);
      return ThrowError(payload, "fault");
    }
    case FaultInjector::CallAction::kExhaust:
      return RaiseResource("fault", "fault");
    case FaultInjector::CallAction::kCancel:
      // The injector's callback typically cancels this solve's own token;
      // returning OK lets the next budget check observe it through the
      // real cancellation path rather than a synthetic shortcut.
      return prore::Status::OK();
  }
  return prore::Status::OK();
}

prore::Status Machine::CheckBudgets() {
  // Cancellation is one acquire load and is checked every step, so a
  // cancel lands within one resolution step plus catch-frame unwinding —
  // the bounded-work guarantee mt_cancel_test asserts.
  if (opts_.exec.token.Cancelled()) return RaiseCancelled();
  if (opts_.max_depth != 0 && node_pool_.size() > opts_.max_depth) {
    return RaiseResource("depth", "max_depth");
  }
  if (has_heap_limit_ && store_->NumCells() > heap_cell_limit_) {
    return RaiseResource("heap", "max_heap_cells");
  }
  // The clock is sampled every 256 steps: cheap enough to leave budgeted
  // runs comparable with unbudgeted ones, precise enough for a wall-clock
  // guard.
  // Post-increment: tick 0 samples too, so an already-expired deadline
  // trips on the very first check instead of only after a full stride —
  // short queries must not slip under an expired deadline.
  if (has_deadline_ && (budget_tick_++ & 0xFFu) == 0 &&
      std::chrono::steady_clock::now() > deadline_) {
    // The ball distinguishes the per-solve timeout_ms budget from an
    // ExecContext deadline that arrived from the outside.
    return deadline_from_exec_
               ? RaiseResource("deadline_exceeded", "deadline")
               : RaiseResource("time", "timeout");
  }
  return prore::Status::OK();
}

prore::Status Machine::HandleException(prore::Status status) {
  TermRef ball = ball_;
  ball_ = term::kNullTerm;
  if (ball == term::kNullTerm) {
    // No pre-built ball: the status bubbled out of library code (arith via
    // a builtin that did not convert it) or a nested findall machine.
    if (!IsPrologLevel(status.code())) return status;
    if (status.has_error_term()) {
      auto parsed = reader::ParseQueryText(store_, status.error_term());
      if (parsed.ok()) ball = parsed->term;
    }
    if (ball == term::kNullTerm) {
      const TermRef payload_args[] = {store_->MakeAtom(status.message())};
      TermRef payload = store_->MakeStruct("system_error", payload_args);
      const TermRef args[] = {payload, store_->MakeAtom("prore")};
      ball = store_->MakeStruct(sym_error_, args);
    }
  }

  // Unwind to the nearest active catch frame. Bindings are undone through
  // the trail but the heap is NOT truncated: the ball was copied above
  // every candidate frame's heap mark and must reach the handler intact
  // (ordinary backtracking below the handler reclaims those cells later,
  // after the trail has unlinked every reference into them).
  while (!cps_.empty()) {
    Choicepoint cp = cps_.back();  // copy: popped or mutated below
    if (cp.kind == Choicepoint::Kind::kCatch && cp.catch_active) {
      TrailUnwind(cp.trail_mark);
      CatchLogUnwind(cp.catch_log_mark);
      if (node_pool_.size() > cp.node_mark) node_pool_.resize(cp.node_mark);
      TermRef catcher = store_->arg(cp.call_goal, 1);
      size_t mark = trail_.size();
      if (Unify(catcher, ball)) {
        cps_.pop_back();
        goals_ = cp.continuation;
        // The recovery goal runs like call/1: cut inside it is local.
        goals_ = NewGoalNode(store_->arg(cp.call_goal, 2),
                             static_cast<uint32_t>(cps_.size()), goals_);
        return prore::Status::OK();
      }
      // Ball mismatch: undo the trial unification and rethrow outward.
      TrailUnwind(mark);
      cps_.pop_back();
      continue;
    }
    TrailUnwind(cp.trail_mark);
    CatchLogUnwind(cp.catch_log_mark);
    cps_.pop_back();
  }

  // Uncaught: surface as a typed PrologError. Render the ball before
  // Solve's cleanup truncates the heap.
  TrailUnwind(0);
  std::string text = reader::WriteTerm(*store_, ball);
  prore::StatusCode code = ClassifyBall(*store_, ball, sym_error_);
  std::string message = status.message().empty()
                            ? prore::StrFormat("uncaught exception: %s",
                                               text.c_str())
                            : status.message();
  if (code == prore::StatusCode::kPrologThrow) {
    message = prore::StrFormat("uncaught exception: %s", text.c_str());
  }
  return prore::Status(code, std::move(message))
      .WithErrorTerm(std::move(text));
}

bool Machine::Unify(TermRef a, TermRef b) {
  // Iterative unification without occurs check (standard Prolog). The
  // worklist is a machine member so steady-state unification allocates
  // nothing.
  unify_stack_.clear();
  unify_stack_.emplace_back(a, b);
  while (!unify_stack_.empty()) {
    auto [x, y] = unify_stack_.back();
    unify_stack_.pop_back();
    x = store_->Deref(x);
    y = store_->Deref(y);
    if (x == y) continue;
    Tag tx = store_->tag(x), ty = store_->tag(y);
    if (tx == Tag::kVar) {
      store_->BindVar(x, y);
      trail_.push_back(x);
      continue;
    }
    if (ty == Tag::kVar) {
      store_->BindVar(y, x);
      trail_.push_back(y);
      continue;
    }
    if (tx != ty) return false;
    switch (tx) {
      case Tag::kAtom:
        if (store_->symbol(x) != store_->symbol(y)) return false;
        break;
      case Tag::kInt:
        if (store_->int_value(x) != store_->int_value(y)) return false;
        break;
      case Tag::kFloat:
        if (store_->float_value(x) != store_->float_value(y)) return false;
        break;
      case Tag::kStruct: {
        if (store_->symbol(x) != store_->symbol(y) ||
            store_->arity(x) != store_->arity(y)) {
          return false;
        }
        for (uint32_t i = 0; i < store_->arity(x); ++i) {
          unify_stack_.emplace_back(store_->arg(x, i), store_->arg(y, i));
        }
        break;
      }
      case Tag::kVar:
        break;  // unreachable
    }
  }
  return true;
}

void Machine::PushConjunction(TermRef goal, uint32_t barrier) {
  // Flatten right-nested conjunctions iteratively to keep node counts low.
  conj_scratch_.clear();
  TermRef cur = goal;
  while (true) {
    cur = store_->Deref(cur);
    if (store_->tag(cur) == Tag::kStruct &&
        store_->symbol(cur) == SymbolTable::kComma &&
        store_->arity(cur) == 2) {
      conj_scratch_.push_back(store_->arg(cur, 0));
      cur = store_->arg(cur, 1);
    } else {
      conj_scratch_.push_back(cur);
      break;
    }
  }
  for (size_t i = conj_scratch_.size(); i-- > 0;) {
    goals_ = NewGoalNode(conj_scratch_[i], barrier, goals_);
  }
}

void Machine::PushIfThenElse(TermRef cond, TermRef then_goal,
                             TermRef else_goal, uint32_t barrier) {
  // Else-branch choicepoint: resume with `else_goal ++ rest` on failure of
  // the condition.
  GoalRef else_cont = NewGoalNode(else_goal, barrier, goals_);
  Choicepoint cp;
  cp.kind = Choicepoint::Kind::kGoals;
  cp.continuation = else_cont;
  cp.node_mark = static_cast<uint32_t>(node_pool_.size());
  cp.trail_mark = trail_.size();
  cp.heap_mark = store_->Watermark();
  cps_.push_back(cp);
  uint32_t cut_to = static_cast<uint32_t>(cps_.size()) - 1;

  // Marker: when the condition succeeds, commit (cut to `cut_to`) and run
  // the then-branch with the clause's own barrier.
  const TermRef marker_args[] = {then_goal, store_->MakeInt(barrier)};
  TermRef marker = store_->MakeStruct(sym_ite_marker_, marker_args);
  GoalRef marker_node = NewGoalNode(marker, cut_to, goals_);

  // Condition runs with a local cut barrier: a '!' inside the condition
  // must not remove the else-branch choicepoint (ISO semantics).
  goals_ = NewGoalNode(cond, static_cast<uint32_t>(cps_.size()), marker_node);
}

uint32_t Machine::ClauseScan::Next() {
  const std::vector<CompiledClause>& clauses = entry->clauses;
  switch (mode) {
    case Mode::kAll:
      while (pos < clause_limit) {
        uint32_t i = pos++;
        if (clauses[i].died_at > call_clock) return i;
      }
      return kNoClause;
    case Mode::kPretest:
      while (pos < clause_limit) {
        uint32_t i = pos++;
        if (clauses[i].died_at <= call_clock) continue;
        if (Database::KeysCompatible(call_key, clauses[i].key)) return i;
      }
      return kNoClause;
    case Mode::kBuckets:
      // Lazy in-order merge of the key bucket with the var-headed list;
      // both hold ascending positions, so once the minimum reaches
      // clause_limit nothing visible remains.
      while (true) {
        uint32_t b = (bucket != nullptr && pos < bucket->size())
                         ? (*bucket)[pos]
                         : kNoClause;
        uint32_t v = (var_list != nullptr && var_pos < var_list->size())
                         ? (*var_list)[var_pos]
                         : kNoClause;
        uint32_t i = std::min(b, v);
        if (i == kNoClause || i >= clause_limit) return kNoClause;
        if (i == b) {
          ++pos;
        } else {
          ++var_pos;
        }
        if (clauses[i].died_at <= call_clock) continue;
        return i;
      }
  }
  return kNoClause;
}

Machine::ClauseScan Machine::MakeScan(const PredEntry* entry,
                                      TermRef goal) const {
  ClauseScan scan;
  scan.entry = entry;
  scan.call_clock = db_->update_clock();
  scan.clause_limit = static_cast<uint32_t>(entry->clauses.size());
  if (!opts_.use_indexing) {
    scan.mode = ClauseScan::Mode::kAll;
    return scan;
  }
  FirstArgKey call_key = Database::KeyForCall(*store_, goal);
  if (call_key.kind == FirstArgKey::Kind::kAny) {
    // Unbound (or unindexable) first argument: every clause is a
    // candidate — the sentinel "all clauses" scan, no merge, no copy.
    scan.mode = ClauseScan::Mode::kAll;
    return scan;
  }
  if (entry->indexed) {
    scan.mode = ClauseScan::Mode::kBuckets;
    scan.bucket = entry->index.Bucket(call_key);
    scan.var_list =
        entry->index.var_list.empty() ? nullptr : &entry->index.var_list;
    return scan;
  }
  scan.mode = ClauseScan::Mode::kPretest;
  scan.call_key = call_key;
  return scan;
}

TermRef Machine::RenameHead(const CompiledClause& clause) {
  regs_.assign(clause.num_vars, term::kNullTerm);
  return store_->RenameSkeleton(clause.head, clause.var_base, regs_);
}

bool Machine::TryClauses(Choicepoint* cp) {
  ProfileCollector* prof = opts_.profile;
  term::PredId prof_id{};
  if (prof != nullptr) prof_id = store_->pred_id(cp->call_goal);
  while (true) {
    uint32_t idx = cp->scan.Next();
    if (idx == kNoClause) return false;
    TrailUnwind(cp->trail_mark);
    CatchLogUnwind(cp->catch_log_mark);
    if (CanReclaimHeap()) store_->Truncate(cp->heap_mark);
    // Goal nodes pushed by a previously tried clause's body are
    // unreachable once we are back at this choicepoint: recycle them.
    if (node_pool_.size() > cp->node_mark) node_pool_.resize(cp->node_mark);
    const CompiledClause& clause = cp->scan.entry->clauses[idx];
    ++metrics_.head_unifications;
    if (prof != nullptr) prof->OnClauseTry(prof_id, idx);
    TermRef head = RenameHead(clause);
    if (opts_.fault != nullptr && opts_.fault->SabotageUnification()) {
      continue;
    }
    if (!Unify(cp->call_goal, head)) continue;
    TermRef body =
        store_->RenameSkeleton(clause.body, clause.var_base, regs_);
    goals_ = cp->continuation;
    if (prof != nullptr) {
      prof->OnClauseEnter(prof_id, idx);
      // Exit marker: runs after the clause body succeeds, before the
      // caller's continuation — the exit port of the Byrd box. The
      // per-entry flag is allocated above cp->heap_mark (a clause retry
      // reclaims it, giving a fresh first-exit bit per entry); the
      // per-call flag in cp->prof_flag lives below the mark and spans
      // the whole call.
      TermRef entry_flag = store_->MakeVar();
      const TermRef margs[] = {store_->MakeInt(EncodePredId(prof_id)),
                               store_->MakeInt(static_cast<int64_t>(idx)),
                               entry_flag, cp->prof_flag};
      goals_ = NewGoalNode(store_->MakeStruct(sym_prof_exit_, margs),
                           cp->body_barrier, goals_);
    }
    PushConjunction(body, cp->body_barrier);
    return true;
  }
}

prore::Status Machine::CallUserPredicate(TermRef goal, uint32_t barrier,
                                         bool* failed) {
  (void)barrier;
  term::PredId id = store_->pred_id(goal);
  const PredEntry* entry = db_->Lookup(id);
  if (entry == nullptr) {
    if (opts_.unknown_predicate_fails) {
      *failed = true;
      return prore::Status::OK();
    }
    // error(existence_error(procedure, Name/Arity), Name/Arity).
    const TermRef pi_args[] = {store_->MakeAtom(id.name),
                               store_->MakeInt(id.arity)};
    TermRef pi = store_->MakeStruct("/", pi_args);
    const TermRef payload_args[] = {store_->MakeAtom("procedure"), pi};
    std::string indicator =
        prore::StrFormat("%s/%u", store_->symbols().Name(id.name).c_str(),
                         id.arity);
    return ThrowError(store_->MakeStruct("existence_error", payload_args),
                      indicator);
  }
  ProfileCollector* prof = opts_.profile;
  if (prof != nullptr) prof->OnCall(id);
  ClauseScan scan = MakeScan(entry, goal);
  ClauseScan peek = scan;  // cheap value copy; scan stays at the start
  uint32_t first = peek.Next();
  if (first == kNoClause) {
    if (prof != nullptr) prof->OnFail(id);
    *failed = true;
    return prore::Status::OK();
  }

  uint32_t body_barrier = static_cast<uint32_t>(cps_.size());
  // Profiling routes every call through the generic choicepoint path so
  // all four ports are observed; the two fast paths below never cross an
  // exit marker.
  if (prof == nullptr && peek.Next() == kNoClause) {
    // Deterministic call: no choicepoint.
    size_t trail_mark = trail_.size();
    term::TermStore::Mark heap_mark = store_->Watermark();
    const CompiledClause& clause = entry->clauses[first];
    ++metrics_.head_unifications;
    TermRef head = RenameHead(clause);
    bool sabotaged =
        opts_.fault != nullptr && opts_.fault->SabotageUnification();
    if (sabotaged || !Unify(goal, head)) {
      TrailUnwind(trail_mark);
      if (CanReclaimHeap()) store_->Truncate(heap_mark);
      *failed = true;
      return prore::Status::OK();
    }
    TermRef body =
        store_->RenameSkeleton(clause.body, clause.var_base, regs_);
    PushConjunction(body, body_barrier);
    return prore::Status::OK();
  }

  if (prof == nullptr && opts_.use_choicepoint_elision &&
      !entry->witnesses.empty()) {
    bool witness_bound = false;
    for (const Witness& w : entry->witnesses) {
      witness_bound = true;
      for (uint32_t k : w) {
        if (store_->tag(store_->Deref(store_->arg(goal, k))) == Tag::kVar) {
          witness_bound = false;
          break;
        }
      }
      if (witness_bound) break;
    }
    if (witness_bound) {
      // All positions of an exclusivity witness are bound: at most one
      // clause head can unify, so commit to the first match without a
      // choicepoint. Between attempts only a failed head unification has
      // run (no body, no catch-log entries), so unwinding the trail and
      // reclaiming the heap is all the undo needed — exactly the
      // deterministic-call path above, repeated per candidate.
      size_t trail_mark = trail_.size();
      term::TermStore::Mark heap_mark = store_->Watermark();
      while (true) {
        uint32_t idx = scan.Next();
        if (idx == kNoClause) {
          TrailUnwind(trail_mark);
          if (CanReclaimHeap()) store_->Truncate(heap_mark);
          *failed = true;
          return prore::Status::OK();
        }
        TrailUnwind(trail_mark);
        if (CanReclaimHeap()) store_->Truncate(heap_mark);
        const CompiledClause& clause = entry->clauses[idx];
        ++metrics_.head_unifications;
        TermRef head = RenameHead(clause);
        if (opts_.fault != nullptr && opts_.fault->SabotageUnification()) {
          continue;
        }
        if (!Unify(goal, head)) continue;
        ++metrics_.choicepoints_elided;
        TermRef body =
            store_->RenameSkeleton(clause.body, clause.var_base, regs_);
        PushConjunction(body, body_barrier);
        return prore::Status::OK();
      }
    }
  }

  Choicepoint cp;
  cp.kind = Choicepoint::Kind::kClauses;
  cp.continuation = goals_;
  cp.node_mark = static_cast<uint32_t>(node_pool_.size());
  cp.trail_mark = trail_.size();
  // The per-call exit flag must be allocated before the heap mark is
  // taken so clause retries (which truncate to the mark) keep it alive.
  if (prof != nullptr) cp.prof_flag = store_->MakeVar();
  cp.heap_mark = store_->Watermark();
  cp.call_goal = goal;
  cp.scan = scan;
  cp.body_barrier = body_barrier;
  cps_.push_back(cp);
  if (!TryClauses(&cps_.back())) {
    cps_.pop_back();
    if (prof != nullptr) prof->OnFail(id);
    *failed = true;
  }
  return prore::Status::OK();
}

prore::Status Machine::Step(bool* failed) {
  *failed = false;
  // Copy, not reference: pushing goals below reallocates the pool.
  const GoalNode node = node_pool_[goals_];
  TermRef g = store_->Deref(node.goal);
  uint32_t barrier = node.cut_barrier;
  goals_ = node.next;

  Tag t = store_->tag(g);
  if (t == Tag::kVar) {
    return ThrowError(store_->MakeAtom("instantiation_error"), "call/1");
  }
  if (t == Tag::kInt || t == Tag::kFloat) {
    const TermRef args[] = {store_->MakeAtom("callable"), g};
    return ThrowError(store_->MakeStruct("type_error", args), "call/1");
  }

  term::Symbol sym = store_->symbol(g);
  uint32_t arity = store_->arity(g);

  if (t == Tag::kStruct) {
    if (sym == SymbolTable::kComma && arity == 2) {
      PushConjunction(g, barrier);
      return prore::Status::OK();
    }
    if (sym == SymbolTable::kSemicolon && arity == 2) {
      TermRef left = store_->Deref(store_->arg(g, 0));
      TermRef right = store_->arg(g, 1);
      if (store_->tag(left) == Tag::kStruct &&
          store_->symbol(left) == SymbolTable::kArrow &&
          store_->arity(left) == 2) {
        PushIfThenElse(store_->arg(left, 0), store_->arg(left, 1), right,
                       barrier);
        return prore::Status::OK();
      }
      // Plain disjunction: choicepoint for the right branch.
      GoalRef right_cont = NewGoalNode(right, barrier, goals_);
      Choicepoint cp;
      cp.kind = Choicepoint::Kind::kGoals;
      cp.continuation = right_cont;
      cp.node_mark = static_cast<uint32_t>(node_pool_.size());
      cp.trail_mark = trail_.size();
      cp.heap_mark = store_->Watermark();
      cps_.push_back(cp);
      goals_ = NewGoalNode(left, barrier, goals_);
      return prore::Status::OK();
    }
    if (sym == SymbolTable::kArrow && arity == 2) {
      // Bare if-then: (C -> T) == (C -> T ; fail).
      PushIfThenElse(store_->arg(g, 0), store_->arg(g, 1),
                     store_->MakeAtom(SymbolTable::kFail), barrier);
      return prore::Status::OK();
    }
    if ((sym == SymbolTable::kNot || sym == sym_not_name_) && arity == 1) {
      // Negation as failure: (G -> fail ; true), G opaque to outer cut.
      PushIfThenElse(store_->arg(g, 0),
                     store_->MakeAtom(SymbolTable::kFail),
                     store_->MakeAtom(SymbolTable::kTrue), barrier);
      return prore::Status::OK();
    }
    if (sym == SymbolTable::kCall && arity == 1) {
      TermRef inner = store_->Deref(store_->arg(g, 0));
      if (!store_->IsCallable(inner)) {
        if (store_->tag(inner) == Tag::kVar) {
          return ThrowError(store_->MakeAtom("instantiation_error"),
                            "call/1");
        }
        const TermRef args[] = {store_->MakeAtom("callable"), inner};
        return ThrowError(store_->MakeStruct("type_error", args), "call/1");
      }
      // Cut inside call/1 is local.
      goals_ = NewGoalNode(inner, static_cast<uint32_t>(cps_.size()), goals_);
      return prore::Status::OK();
    }
    if (sym == sym_catch_ && arity == 3) {
      // catch(Goal, Catcher, Recovery): push a handler frame, then run
      // Goal like call/1 (cut inside it is local, ISO 7.8.9). The frame
      // carries no alternatives — on ordinary backtracking it is popped
      // transparently.
      Choicepoint cp;
      cp.kind = Choicepoint::Kind::kCatch;
      cp.continuation = goals_;
      cp.node_mark = static_cast<uint32_t>(node_pool_.size());
      cp.trail_mark = trail_.size();
      cp.heap_mark = store_->Watermark();
      cp.catch_log_mark = catch_log_.size();
      cp.call_goal = g;
      cp.catch_active = true;
      cps_.push_back(cp);
      // Once Goal completes, the frame no longer protects the
      // continuation; the marker deactivates it (and backtracking back
      // into Goal re-arms it through the catch log).
      const TermRef marker_args[] = {
          store_->MakeInt(static_cast<int64_t>(cps_.size() - 1))};
      TermRef marker = store_->MakeStruct(sym_catch_done_, marker_args);
      GoalRef marker_node = NewGoalNode(marker, barrier, goals_);
      goals_ = NewGoalNode(store_->arg(g, 0),
                           static_cast<uint32_t>(cps_.size()), marker_node);
      return prore::Status::OK();
    }
    if (sym == sym_throw_ && arity == 1) {
      return ThrowTerm(store_->arg(g, 0));
    }
    if (sym == sym_catch_done_ && arity == 1) {
      size_t idx = static_cast<size_t>(
          store_->int_value(store_->Deref(store_->arg(g, 0))));
      if (idx < cps_.size() &&
          cps_[idx].kind == Choicepoint::Kind::kCatch &&
          cps_[idx].catch_active) {
        cps_[idx].catch_active = false;
        catch_log_.push_back(static_cast<uint32_t>(idx));
      }
      return prore::Status::OK();
    }
    if (sym == sym_prof_exit_ && arity == 4) {
      // Exit port of a profiled call (see TryClauses). The two flag
      // arguments are bound *untrailed*: backtracking must not unbind
      // them, or a later solution of the same call/entry would be
      // mistaken for a first exit.
      if (opts_.profile != nullptr) {
        TermRef entry_flag = store_->Deref(store_->arg(g, 2));
        TermRef call_flag = store_->Deref(store_->arg(g, 3));
        const bool first_entry = store_->tag(entry_flag) == Tag::kVar;
        const bool first_call = store_->tag(call_flag) == Tag::kVar;
        if (first_entry) store_->BindVar(entry_flag, g);
        if (first_call) store_->BindVar(call_flag, g);
        const int64_t enc =
            store_->int_value(store_->Deref(store_->arg(g, 0)));
        const uint32_t clause_index = static_cast<uint32_t>(
            store_->int_value(store_->Deref(store_->arg(g, 1))));
        opts_.profile->OnExit(DecodePredId(enc), clause_index, first_entry,
                              first_call);
      }
      return prore::Status::OK();
    }
    if (sym == sym_ite_marker_ && arity == 2) {
      // Condition of an if-then-else succeeded: commit and run then-branch.
      CutTo(barrier);  // node.cut_barrier held the commit point
      TermRef then_goal = store_->arg(g, 0);
      uint32_t clause_barrier = static_cast<uint32_t>(
          store_->int_value(store_->Deref(store_->arg(g, 1))));
      goals_ = NewGoalNode(then_goal, clause_barrier, goals_);
      return prore::Status::OK();
    }
  } else {
    // Atoms.
    if (sym == SymbolTable::kCut) {
      CutTo(barrier);
      return prore::Status::OK();
    }
    if (sym == SymbolTable::kTrue) return prore::Status::OK();
    if (sym == SymbolTable::kFail || sym == sym_false_) {
      *failed = true;
      return prore::Status::OK();
    }
  }

  // User predicate or built-in. User definitions take precedence so the
  // benchmark programs may define e.g. their own delete/3.
  term::PredId id{sym, arity};
  if (db_->Lookup(id) != nullptr) {
    ++metrics_.user_calls;
    if (metrics_.TotalCalls() > call_limit_) {
      // Re-arm with fresh headroom so a handler's recovery goal can run
      // (otherwise its first call would re-trip the already-spent budget
      // with the catch frame gone, making the error uncatchable).
      call_limit_ += opts_.max_calls;
      return RaiseResource("calls", "max_calls");
    }
    if (opts_.fault != nullptr) {
      PRORE_RETURN_IF_ERROR(ApplyCallFault());
    }
    if (opts_.mode_observer) {
      std::string mode;
      for (uint32_t i = 0; i < arity; ++i) {
        TermRef a = store_->Deref(store_->arg(g, i));
        if (store_->tag(a) == Tag::kVar) {
          mode.push_back('u');
        } else if (store_->IsGround(a)) {
          mode.push_back('i');
        } else {
          mode.push_back('a');
        }
      }
      opts_.mode_observer(id, mode);
    }
    return CallUserPredicate(g, barrier, failed);
  }
  uint64_t cache_key = (static_cast<uint64_t>(sym) << 32) | arity;
  BuiltinFn fn;
  if (auto cit = builtin_cache_.find(cache_key);
      cit != builtin_cache_.end()) {
    fn = cit->second;
  } else {
    fn = LookupBuiltin(store_->symbols().Name(sym), arity);
    builtin_cache_.emplace(cache_key, fn);
  }
  if (fn != nullptr) {
    // '$'-prefixed builtins are harness-internal (dispatcher tag tests)
    // and cost no "call" in the paper's metric.
    if (store_->symbols().Name(sym)[0] != '$') {
      ++metrics_.builtin_calls;
      if (metrics_.TotalCalls() > call_limit_) {
        call_limit_ += opts_.max_calls;  // see the user-predicate site
        return RaiseResource("calls", "max_calls");
      }
      if (opts_.fault != nullptr) {
        PRORE_RETURN_IF_ERROR(ApplyCallFault());
      }
    }
    bool success = false;
    PRORE_RETURN_IF_ERROR(fn(this, g, &success));
    if (opts_.profile != nullptr && store_->symbols().Name(sym)[0] != '$') {
      opts_.profile->OnBuiltin(id, success);
    }
    *failed = !success;
    return prore::Status::OK();
  }
  ++metrics_.user_calls;
  return CallUserPredicate(g, barrier, failed);  // reports unknown predicate
}

bool Machine::Backtrack() {
  while (!cps_.empty()) {
    Choicepoint& cp = cps_.back();
    TrailUnwind(cp.trail_mark);
    CatchLogUnwind(cp.catch_log_mark);
    if (CanReclaimHeap()) store_->Truncate(cp.heap_mark);
    if (cp.kind == Choicepoint::Kind::kGoals) {
      if (node_pool_.size() > cp.node_mark) node_pool_.resize(cp.node_mark);
      goals_ = cp.continuation;
      cps_.pop_back();
      return true;
    }
    if (cp.kind == Choicepoint::Kind::kCatch) {
      // A handler frame holds no alternatives: backtracking out of the
      // catch goal just discards it.
      cps_.pop_back();
      continue;
    }
    if (TryClauses(&cp)) return true;
    if (opts_.profile != nullptr) {
      // The choicepoint dies with no candidate left: the call's final
      // failure. If it had exited before, this failing re-entry is also a
      // redo (the box model's redo-then-fail tail). Intermediate failing
      // re-entries between solutions are folded into the exit-side redo
      // count — see docs/profile-format.md for the exact semantics.
      term::PredId id = store_->pred_id(cp.call_goal);
      if (cp.prof_flag != term::kNullTerm &&
          store_->tag(store_->Deref(cp.prof_flag)) != Tag::kVar) {
        opts_.profile->OnRedo(id);
      }
      opts_.profile->OnFail(id);
    }
    cps_.pop_back();
  }
  return false;
}

prore::Result<Metrics> Machine::Solve(TermRef goal,
                                      const SolutionCallback& on_solution) {
  if (solving_) {
    return prore::Status::Internal(
        "Machine::Solve is not reentrant; use a nested Machine");
  }
  solving_ = true;
  metrics_ = Metrics();
  node_pool_.clear();  // vector: capacity is retained across queries
  goals_ = kNilGoal;
  cps_.clear();
  trail_.clear();
  ball_ = term::kNullTerm;
  catch_log_.clear();
  term::TermStore::Mark query_mark = store_->Watermark();
  if (reclaim_heap_) store_->ResetHighWater();
  query_db_generation_ = db_->generation();

  // Budgets are resolved once per query; with none armed the solve loop
  // pays a single branch per step.
  budget_tick_ = 0;
  call_limit_ = opts_.max_calls;
  // The effective deadline is the earlier of the per-solve timeout_ms
  // budget and the ExecContext deadline; which one won decides the error
  // term (resource_error(time) vs resource_error(deadline_exceeded)).
  prore::Deadline effective = opts_.exec.deadline;
  deadline_from_exec_ = !effective.infinite();
  if (opts_.timeout_ms != 0) {
    prore::Deadline budget = prore::Deadline::AfterMs(opts_.timeout_ms);
    if (effective.infinite() ||
        budget.time_point() <= effective.time_point()) {
      deadline_from_exec_ = false;
    }
    effective = prore::Deadline::Earlier(effective, budget);
  }
  has_deadline_ = !effective.infinite();
  if (has_deadline_) deadline_ = effective.time_point();
  has_heap_limit_ = opts_.max_heap_cells != 0;
  if (has_heap_limit_) {
    heap_cell_limit_ = store_->NumCells() + opts_.max_heap_cells;
  }
  const bool budgets_active = opts_.max_depth != 0 || has_heap_limit_ ||
                              has_deadline_ ||
                              opts_.exec.token.CanBeCancelled();

  goals_ = NewGoalNode(goal, 0, kNilGoal);
  prore::Status status = prore::Status::OK();
  while (true) {
    if (goals_ == kNilGoal) {
      ++metrics_.solutions;
      bool keep_going = on_solution ? on_solution() : true;
      if (!keep_going || metrics_.solutions >= opts_.max_solutions) break;
      if (!Backtrack()) break;
      continue;
    }
    bool failed = false;
    try {
      if (budgets_active) {
        status = CheckBudgets();
        if (status.ok()) status = Step(&failed);
      } else {
        status = Step(&failed);
      }
    } catch (const std::bad_alloc&) {
      // Heap exhaustion — a real bad_alloc, the TermStore cell limit, or
      // an injected allocation failure — must not escape the solve loop
      // (it would tear down a pipeline worker thread). Raise headroom
      // first so building the ball and running a handler cannot re-trip,
      // then surface it as a catchable resource_error(memory) ball.
      store_->AddCellHeadroom(4096);
      status = RaiseResource("memory", "heap");
    }
    if (!status.ok()) {
      // ISO exception propagation: unwind to the nearest active catch/3
      // frame; OK means a handler took over with its recovery goal.
      status = HandleException(std::move(status));
      if (!status.ok()) break;
      continue;
    }
    if (failed) {
      ++metrics_.backtracks;
      if (!Backtrack()) break;
    }
  }

  metrics_.heap_cells += store_->HighWaterCells() - query_mark.cells;
  TrailUnwind(0);
  if (CanReclaimHeap()) store_->Truncate(query_mark);
  goals_ = kNilGoal;
  cps_.clear();
  node_pool_.clear();
  solving_ = false;
  total_metrics_ += metrics_;
  if (!status.ok()) return status;
  return metrics_;
}

prore::Result<std::vector<std::string>> Machine::SolveToStrings(
    TermRef goal, TermRef template_term) {
  std::vector<std::string> out;
  reader::WriteOptions wopts;
  wopts.var_names = false;
  auto cb = [&]() {
    out.push_back(reader::WriteTerm(*store_, template_term, wopts));
    return true;
  };
  PRORE_ASSIGN_OR_RETURN(Metrics m, Solve(goal, cb));
  (void)m;
  return out;
}

prore::Result<bool> Machine::Succeeds(TermRef goal) {
  bool found = false;
  SolveOptions saved = opts_;
  opts_.max_solutions = 1;
  auto cb = [&]() {
    found = true;
    return false;
  };
  auto result = Solve(goal, cb);
  opts_ = saved;
  if (!result.ok()) return result.status();
  return found;
}

prore::Status Machine::SetInput(std::string_view text) {
  PRORE_ASSIGN_OR_RETURN(auto terms,
                         reader::ParseTermSequence(store_, text));
  input_terms_.clear();
  input_head_ = 0;
  for (const reader::ReadTerm& rt : terms) input_terms_.push_back(rt.term);
  return prore::Status::OK();
}

term::TermRef Machine::NextInputTerm() {
  if (input_head_ >= input_terms_.size()) {
    return store_->MakeAtom("end_of_file");
  }
  return input_terms_[input_head_++];
}

prore::Result<std::vector<TermRef>> Machine::FindAll(TermRef goal,
                                                     TermRef template_term) {
  SolveOptions child_opts = opts_;
  // A solution cap on the outer query must not truncate the bag.
  child_opts.max_solutions = UINT64_MAX;
  // The child shares this machine's heap and database view, including the
  // mutability split: under a snapshot-backed parent, mutable_db_ is null
  // and nested assert/retract raise the same permission_error.
  Machine child(store_, mutable_db_, child_opts);
  child.db_ = db_;
  child.reclaim_heap_ = false;  // collected copies must outlive the subquery
  std::vector<TermRef> copies;
  auto cb = [&]() {
    copies.push_back(store_->Rename(template_term));
    return true;
  };
  auto result = child.Solve(goal, cb);
  if (!result.ok()) return result.status();
  metrics_ += *result;           // the paper counts all calls
  output_ += child.output();     // nested side-effects surface
  return copies;
}

}  // namespace prore::engine
