#ifndef PRORE_ENGINE_METRICS_H_
#define PRORE_ENGINE_METRICS_H_

#include <cstdint>

namespace prore::engine {

/// Execution counters, the paper's cost measure ("we measure this as the
/// number of predicate calls or unifications; CPU time is too coarse").
struct Metrics {
  uint64_t user_calls = 0;      ///< Calls to user-defined predicates.
  uint64_t builtin_calls = 0;   ///< Calls to built-in predicates.
  uint64_t head_unifications = 0;  ///< Clause-head unification attempts.
  uint64_t backtracks = 0;      ///< Failure-driven returns to a choicepoint.
  uint64_t solutions = 0;       ///< Answers delivered.
  /// Multi-candidate calls that committed without a choicepoint because a
  /// head-exclusivity witness was bound (engine/exclusivity.h).
  uint64_t choicepoints_elided = 0;
  /// Peak term cells the query had live above its starting watermark
  /// (engine-health stat for the perf trajectory, not a paper metric;
  /// approximate when nested findall queries share the store).
  uint64_t heap_cells = 0;

  /// The paper's headline number: every predicate call, user or built-in.
  uint64_t TotalCalls() const { return user_calls + builtin_calls; }

  Metrics& operator+=(const Metrics& o) {
    user_calls += o.user_calls;
    builtin_calls += o.builtin_calls;
    head_unifications += o.head_unifications;
    backtracks += o.backtracks;
    solutions += o.solutions;
    choicepoints_elided += o.choicepoints_elided;
    heap_cells += o.heap_cells;
    return *this;
  }
};

}  // namespace prore::engine

#endif  // PRORE_ENGINE_METRICS_H_
