#ifndef PRORE_ENGINE_DATABASE_H_
#define PRORE_ENGINE_DATABASE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/exclusivity.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::engine {

/// First-argument index key of a clause head, used to skip clauses that
/// cannot possibly unify with a call whose first argument is bound
/// (Warren-style clause indexing, paper §III-A).
struct FirstArgKey {
  enum class Kind : uint8_t {
    kAny,     ///< Head has no args or first arg is a variable: always try.
    kAtom,    ///< First arg is the atom `symbol`.
    kInt,     ///< First arg is the integer `value`.
    kStruct,  ///< First arg is a compound with functor `symbol`/`arity`.
  };
  Kind kind = Kind::kAny;
  term::Symbol symbol = 0;
  uint32_t arity = 0;
  int64_t value = 0;
};

/// "Still alive" value for CompiledClause::died_at.
inline constexpr uint64_t kNeverDied = UINT64_MAX;

/// A clause compiled to an executable skeleton: head and body are a
/// detached copy whose variables carry *dense* ids in
/// [var_base, var_base + num_vars), so the machine renames them through a
/// flat register file (TermStore::RenameSkeleton) instead of hashing a
/// var-map per clause attempt. Skeleton terms are never unified directly,
/// so their variables stay unbound forever.
struct CompiledClause {
  term::TermRef head = term::kNullTerm;
  term::TermRef body = term::kNullTerm;
  FirstArgKey key;
  uint32_t var_base = 0;  ///< First dense variable id of the skeleton.
  uint32_t num_vars = 0;  ///< Distinct variables in head + body.
  /// Database::update_clock() value at retraction, kNeverDied while alive.
  /// A call started at clock C sees the clause iff died_at > C — the
  /// logical update view without per-call candidate snapshots.
  uint64_t died_at = kNeverDied;

  bool dead() const { return died_at != kNeverDied; }
};

/// Hash-bucketed first-argument index over one predicate's clauses, built
/// once (Database::Build or incrementally on assertz). Buckets hold clause
/// positions in ascending order; a call with a bound first argument lazily
/// merges its bucket with var_list at iteration time, so no candidate
/// vector is ever materialized.
struct ClauseIndex {
  std::unordered_map<term::Symbol, std::vector<uint32_t>> atom_buckets;
  std::unordered_map<int64_t, std::vector<uint32_t>> int_buckets;
  /// Keyed by functor (symbol << 32 | arity).
  std::unordered_map<uint64_t, std::vector<uint32_t>> struct_buckets;
  /// Clauses with a kAny key (var-headed / arity 0): candidates of every
  /// call regardless of its first argument.
  std::vector<uint32_t> var_list;

  static uint64_t StructKey(term::Symbol s, uint32_t arity) {
    return (static_cast<uint64_t>(s) << 32) | arity;
  }
  /// Bucket for a bound call key, nullptr if no clause has that shape.
  const std::vector<uint32_t>* Bucket(const FirstArgKey& key) const;
  void Insert(const FirstArgKey& key, uint32_t position);
};

struct PredEntry {
  std::vector<CompiledClause> clauses;
  ClauseIndex index;
  /// Buckets reflect `clauses`. Cleared (sticky) by asserta, which shifts
  /// clause positions; such predicates fall back to a scan with an on-the-
  /// fly first-argument pretest.
  bool indexed = false;
  /// Head-exclusivity witnesses (see engine/exclusivity.h): when a call
  /// has every position of some witness bound, at most one clause head can
  /// unify and the machine commits without a choicepoint. Cleared by any
  /// dynamic update — the witnesses were computed over the static clause
  /// set and a changed set needs a fresh proof.
  std::vector<Witness> witnesses;
};

/// Executable form of a program: clause lists per predicate, with
/// first-argument index keys precomputed. The *reorderer* never sees
/// dynamic updates (the paper excludes assert/retract from reordering and
/// treats them as side-effects), but the engine substrate supports them:
/// assertz/asserta append/prepend, retract marks clauses dead, and calls
/// snapshot their candidate set at call time (the logical update view).
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Compiles `program`. If `load_library` is set, pure-Prolog library
  /// predicates (append/3, member/2, between/3, ...) that the program does
  /// not define itself are added.
  static prore::Result<Database> Build(term::TermStore* store,
                                       const reader::Program& program,
                                       bool load_library = true);

  /// nullptr if the predicate has no clauses.
  const PredEntry* Lookup(const term::PredId& id) const;

  /// Adds a clause at the back (assertz) or front (asserta). `clause_term`
  /// may be `Head :- Body` or a fact; it is stored as-is (callers should
  /// pass a fresh copy).
  prore::Status Assert(term::TermStore* store, term::TermRef clause_term,
                       bool front);

  /// Marks clause `index` of `id` dead as of the next update-clock tick.
  /// Used by retract/1 after it found the matching clause. Calls already in
  /// progress (their clock snapshot predates the tick) keep seeing the
  /// clause; new calls skip it.
  void MarkDead(const term::PredId& id, size_t index);

  /// Pre-registers an (initially empty) dynamic predicate so calling it
  /// before the first assert fails instead of erroring.
  void DeclareDynamic(const term::PredId& id);

  /// Bumped by every Assert. The machine snapshots this per query: once
  /// the database grew during a query, the query's heap cells may be
  /// referenced by the database and must not be reclaimed (neither on
  /// backtracking nor when Solve returns).
  uint64_t generation() const { return generation_; }

  /// Bumped by every Assert *and* MarkDead. The machine snapshots this per
  /// call; together with CompiledClause::died_at and the per-call clause
  /// count it yields the logical update view without copying candidate
  /// sets.
  uint64_t update_clock() const { return update_clock_; }

  size_t NumPreds() const { return preds_.size(); }

  /// Computes the index key for a (dereferenced) clause head.
  static FirstArgKey KeyForHead(const term::TermStore& store,
                                term::TermRef head);
  /// Computes the index key a *call* selects on; kAny if the first argument
  /// is unbound.
  static FirstArgKey KeyForCall(const term::TermStore& store,
                                term::TermRef goal);
  /// True if a clause with key `clause_key` might match a call with
  /// key `call_key`.
  static bool KeysCompatible(const FirstArgKey& call_key,
                             const FirstArgKey& clause_key);

 private:
  void AddProgram(term::TermStore* store, const reader::Program& program);
  /// Compiles head/body into a detached skeleton with dense variable ids.
  static CompiledClause CompileClause(term::TermStore* store,
                                      term::TermRef head, term::TermRef body);

  std::unordered_map<term::PredId, PredEntry, term::PredIdHash> preds_;
  uint64_t generation_ = 0;
  uint64_t update_clock_ = 0;
};

/// Source text of the pure-Prolog library (append/3, member/2, ...).
/// Exposed so analyses can include the library in their view of a program.
const char* LibrarySource();

}  // namespace prore::engine

#endif  // PRORE_ENGINE_DATABASE_H_
