#ifndef PRORE_ENGINE_DATABASE_H_
#define PRORE_ENGINE_DATABASE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::engine {

/// First-argument index key of a clause head, used to skip clauses that
/// cannot possibly unify with a call whose first argument is bound
/// (Warren-style clause indexing, paper §III-A).
struct FirstArgKey {
  enum class Kind : uint8_t {
    kAny,     ///< Head has no args or first arg is a variable: always try.
    kAtom,    ///< First arg is the atom `symbol`.
    kInt,     ///< First arg is the integer `value`.
    kStruct,  ///< First arg is a compound with functor `symbol`/`arity`.
  };
  Kind kind = Kind::kAny;
  term::Symbol symbol = 0;
  uint32_t arity = 0;
  int64_t value = 0;
};

/// A clause ready for execution.
struct CompiledClause {
  term::TermRef head = term::kNullTerm;
  term::TermRef body = term::kNullTerm;
  FirstArgKey key;
  /// Retracted. Calls already in progress keep seeing the clause (the
  /// logical update view); new calls skip it.
  bool dead = false;
};

struct PredEntry {
  std::vector<CompiledClause> clauses;
};

/// Executable form of a program: clause lists per predicate, with
/// first-argument index keys precomputed. The *reorderer* never sees
/// dynamic updates (the paper excludes assert/retract from reordering and
/// treats them as side-effects), but the engine substrate supports them:
/// assertz/asserta append/prepend, retract marks clauses dead, and calls
/// snapshot their candidate set at call time (the logical update view).
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Compiles `program`. If `load_library` is set, pure-Prolog library
  /// predicates (append/3, member/2, between/3, ...) that the program does
  /// not define itself are added.
  static prore::Result<Database> Build(term::TermStore* store,
                                       const reader::Program& program,
                                       bool load_library = true);

  /// nullptr if the predicate has no clauses.
  const PredEntry* Lookup(const term::PredId& id) const;

  /// Adds a clause at the back (assertz) or front (asserta). `clause_term`
  /// may be `Head :- Body` or a fact; it is stored as-is (callers should
  /// pass a fresh copy).
  prore::Status Assert(term::TermStore* store, term::TermRef clause_term,
                       bool front);

  /// Marks clause `index` of `id` dead. Used by retract/1 after it found
  /// the matching clause.
  void MarkDead(const term::PredId& id, size_t index);

  /// Pre-registers an (initially empty) dynamic predicate so calling it
  /// before the first assert fails instead of erroring.
  void DeclareDynamic(const term::PredId& id);

  /// Bumped by every Assert. The machine snapshots this per query: once
  /// the database grew during a query, the query's heap cells may be
  /// referenced by the database and must not be reclaimed (neither on
  /// backtracking nor when Solve returns).
  uint64_t generation() const { return generation_; }

  size_t NumPreds() const { return preds_.size(); }

  /// Computes the index key for a (dereferenced) clause head.
  static FirstArgKey KeyForHead(const term::TermStore& store,
                                term::TermRef head);
  /// Computes the index key a *call* selects on; kAny if the first argument
  /// is unbound.
  static FirstArgKey KeyForCall(const term::TermStore& store,
                                term::TermRef goal);
  /// True if a clause with key `clause_key` might match a call with
  /// key `call_key`.
  static bool KeysCompatible(const FirstArgKey& call_key,
                             const FirstArgKey& clause_key);

 private:
  void AddProgram(term::TermStore* store, const reader::Program& program);

  std::unordered_map<term::PredId, PredEntry, term::PredIdHash> preds_;
  uint64_t generation_ = 0;
};

/// Source text of the pure-Prolog library (append/3, member/2, ...).
/// Exposed so analyses can include the library in their view of a program.
const char* LibrarySource();

}  // namespace prore::engine

#endif  // PRORE_ENGINE_DATABASE_H_
