#include "engine/database.h"

#include "reader/parser.h"

namespace prore::engine {

using term::Tag;
using term::TermRef;
using term::TermStore;

const char* LibrarySource() {
  return R"PL(
append([], X, X).
append([H|T], Y, [H|Z]) :- append(T, Y, Z).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, [Y|T]) :- ( X = Y -> true ; memberchk(X, T) ).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

reverse(L, R) :- reverse_(L, [], R).
reverse_([], Acc, Acc).
reverse_([H|T], Acc, R) :- reverse_(T, [H|Acc], R).

length(L, N) :- nonvar(L), length_count(L, 0, N).
length(L, N) :- var(L), nonvar(N), length_build(L, N).
length_count([], N, N).
length_count([_|T], Acc, N) :- Acc1 is Acc + 1, length_count(T, Acc1, N).
length_build([], 0).
length_build([_|T], N) :- N > 0, N1 is N - 1, length_build(T, N1).

between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

nth0(I, L, E) :- nth_(L, 0, I, E).
nth1(I, L, E) :- nth_(L, 1, I, E).
nth_([H|_], N, N, H).
nth_([_|T], N0, N, E) :- N1 is N0 + 1, nth_(T, N1, N, E).

last([X], X).
last([_|T], X) :- last(T, X).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.

max_list([X], X).
max_list([H|T], M) :- max_list(T, M1), ( H >= M1 -> M = H ; M = M1 ).

min_list([X], X).
min_list([H|T], M) :- min_list(T, M1), ( H =< M1 -> M = H ; M = M1 ).

permutation([], []).
permutation(Xs, [X|Ys]) :- select(X, Xs, Zs), permutation(Zs, Ys).

delete_one(X, [X|Y], Y).
delete_one(U, [X|Y], [X|V]) :- delete_one(U, Y, V).

forall(Cond, Action) :- \+ (call(Cond), \+ call(Action)).
)PL";
}

FirstArgKey Database::KeyForHead(const TermStore& store, TermRef head) {
  head = store.Deref(head);
  FirstArgKey key;
  if (store.tag(head) != Tag::kStruct || store.arity(head) == 0) return key;
  TermRef a0 = store.Deref(store.arg(head, 0));
  switch (store.tag(a0)) {
    case Tag::kVar:
      key.kind = FirstArgKey::Kind::kAny;
      break;
    case Tag::kAtom:
      key.kind = FirstArgKey::Kind::kAtom;
      key.symbol = store.symbol(a0);
      break;
    case Tag::kInt:
      key.kind = FirstArgKey::Kind::kInt;
      key.value = store.int_value(a0);
      break;
    case Tag::kFloat:
      // Floats are rare in the paper's programs; don't index on them.
      key.kind = FirstArgKey::Kind::kAny;
      break;
    case Tag::kStruct:
      key.kind = FirstArgKey::Kind::kStruct;
      key.symbol = store.symbol(a0);
      key.arity = store.arity(a0);
      break;
  }
  return key;
}

FirstArgKey Database::KeyForCall(const TermStore& store, TermRef goal) {
  // A call selects exactly the way a head indexes.
  return KeyForHead(store, goal);
}

bool Database::KeysCompatible(const FirstArgKey& call_key,
                              const FirstArgKey& clause_key) {
  if (call_key.kind == FirstArgKey::Kind::kAny ||
      clause_key.kind == FirstArgKey::Kind::kAny) {
    return true;
  }
  if (call_key.kind != clause_key.kind) return false;
  switch (call_key.kind) {
    case FirstArgKey::Kind::kAtom:
      return call_key.symbol == clause_key.symbol;
    case FirstArgKey::Kind::kInt:
      return call_key.value == clause_key.value;
    case FirstArgKey::Kind::kStruct:
      return call_key.symbol == clause_key.symbol &&
             call_key.arity == clause_key.arity;
    case FirstArgKey::Kind::kAny:
      return true;
  }
  return true;
}

const std::vector<uint32_t>* ClauseIndex::Bucket(
    const FirstArgKey& key) const {
  switch (key.kind) {
    case FirstArgKey::Kind::kAtom: {
      auto it = atom_buckets.find(key.symbol);
      return it == atom_buckets.end() ? nullptr : &it->second;
    }
    case FirstArgKey::Kind::kInt: {
      auto it = int_buckets.find(key.value);
      return it == int_buckets.end() ? nullptr : &it->second;
    }
    case FirstArgKey::Kind::kStruct: {
      auto it = struct_buckets.find(StructKey(key.symbol, key.arity));
      return it == struct_buckets.end() ? nullptr : &it->second;
    }
    case FirstArgKey::Kind::kAny:
      return nullptr;  // callers use a full scan for unbound first args
  }
  return nullptr;
}

void ClauseIndex::Insert(const FirstArgKey& key, uint32_t position) {
  switch (key.kind) {
    case FirstArgKey::Kind::kAny:
      var_list.push_back(position);
      break;
    case FirstArgKey::Kind::kAtom:
      atom_buckets[key.symbol].push_back(position);
      break;
    case FirstArgKey::Kind::kInt:
      int_buckets[key.value].push_back(position);
      break;
    case FirstArgKey::Kind::kStruct:
      struct_buckets[StructKey(key.symbol, key.arity)].push_back(position);
      break;
  }
}

CompiledClause Database::CompileClause(TermStore* store, TermRef head,
                                       TermRef body) {
  CompiledClause cc;
  // Rename allocates the skeleton's fresh variables consecutively, which is
  // what gives them the dense [var_base, var_base + num_vars) id range the
  // register-file rename depends on.
  cc.var_base = store->next_var_id();
  std::unordered_map<uint32_t, TermRef> var_map;
  cc.head = store->Rename(head, &var_map);
  cc.body = store->Rename(body, &var_map);
  cc.num_vars = store->next_var_id() - cc.var_base;
  cc.key = KeyForHead(*store, cc.head);
  return cc;
}

void Database::AddProgram(TermStore* store, const reader::Program& program) {
  for (const term::PredId& id : program.pred_order()) {
    if (preds_.count(id) > 0) continue;  // First definition wins.
    PredEntry entry;
    for (const reader::Clause& clause : program.ClausesOf(id)) {
      CompiledClause cc = CompileClause(store, clause.head, clause.body);
      entry.index.Insert(cc.key,
                         static_cast<uint32_t>(entry.clauses.size()));
      entry.clauses.push_back(cc);
    }
    entry.indexed = true;
    std::vector<TermRef> heads;
    heads.reserve(entry.clauses.size());
    for (const CompiledClause& cc : entry.clauses) heads.push_back(cc.head);
    entry.witnesses = ExclusivityWitnesses(*store, heads, id.arity);
    preds_.emplace(id, std::move(entry));
  }
}

prore::Result<Database> Database::Build(TermStore* store,
                                        const reader::Program& program,
                                        bool load_library) {
  Database db;
  db.AddProgram(store, program);
  // `:- dynamic(p/N)` (or a comma list of indicators) pre-registers
  // predicates that exist only via assert at run time.
  for (TermRef d : program.directives()) {
    d = store->Deref(d);
    if (store->tag(d) != Tag::kStruct || store->arity(d) != 1 ||
        store->symbols().Name(store->symbol(d)) != "dynamic") {
      continue;
    }
    std::vector<TermRef> specs;
    TermRef cur = store->Deref(store->arg(d, 0));
    while (store->tag(cur) == Tag::kStruct &&
           store->symbol(cur) == term::SymbolTable::kComma &&
           store->arity(cur) == 2) {
      specs.push_back(store->Deref(store->arg(cur, 0)));
      cur = store->Deref(store->arg(cur, 1));
    }
    specs.push_back(cur);
    for (TermRef spec : specs) {
      if (store->tag(spec) == Tag::kStruct && store->arity(spec) == 2 &&
          store->symbols().Name(store->symbol(spec)) == "/") {
        TermRef name = store->Deref(store->arg(spec, 0));
        TermRef arity = store->Deref(store->arg(spec, 1));
        if (store->tag(name) == Tag::kAtom &&
            store->tag(arity) == Tag::kInt) {
          db.DeclareDynamic(term::PredId{
              store->symbol(name),
              static_cast<uint32_t>(store->int_value(arity))});
        }
      }
    }
  }
  if (load_library) {
    PRORE_ASSIGN_OR_RETURN(reader::Program lib,
                           reader::ParseProgramText(store, LibrarySource()));
    db.AddProgram(store, lib);  // Program-defined predicates take precedence.
  }
  return db;
}

const PredEntry* Database::Lookup(const term::PredId& id) const {
  auto it = preds_.find(id);
  return it == preds_.end() ? nullptr : &it->second;
}

prore::Status Database::Assert(TermStore* store, TermRef clause_term,
                               bool front) {
  PRORE_ASSIGN_OR_RETURN(reader::Clause clause,
                         reader::SplitClause(store, clause_term));
  term::PredId id = store->pred_id(store->Deref(clause.head));
  CompiledClause cc = CompileClause(store, clause.head, clause.body);
  auto& entry = preds_[id];
  entry.witnesses.clear();
  if (front) {
    // Prepending shifts every clause position, so the bucket index would
    // have to be rebuilt under the feet of live choicepoints; instead the
    // predicate permanently falls back to the pretest scan.
    entry.clauses.insert(entry.clauses.begin(), cc);
    entry.indexed = false;
  } else {
    if (entry.indexed) {
      entry.index.Insert(cc.key,
                         static_cast<uint32_t>(entry.clauses.size()));
    }
    entry.clauses.push_back(cc);
  }
  ++generation_;
  ++update_clock_;
  return prore::Status::OK();
}

void Database::MarkDead(const term::PredId& id, size_t index) {
  auto it = preds_.find(id);
  if (it != preds_.end() && index < it->second.clauses.size()) {
    it->second.clauses[index].died_at = ++update_clock_;
    it->second.witnesses.clear();
  }
}

void Database::DeclareDynamic(const term::PredId& id) {
  auto [it, inserted] = preds_.try_emplace(id);
  if (inserted) it->second.indexed = true;  // empty buckets, filled by assertz
}

}  // namespace prore::engine
