#ifndef PRORE_ENGINE_MACHINE_H_
#define PRORE_ENGINE_MACHINE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "engine/builtins.h"
#include "engine/database.h"
#include "engine/fault.h"
#include "engine/metrics.h"
#include "engine/snapshot.h"
#include "term/store.h"

namespace prore::engine {

class ProfileCollector;

/// Observes every user-predicate call's instantiation pattern (one char
/// per argument: 'i' ground, 'u' unbound, 'a' partial) — the dynamic
/// counterpart of static mode inference (§V-E: Debray's transformed
/// program "when executed conventionally, yields the mode information").
using ModeObserver =
    std::function<void(const term::PredId& pred, const std::string& mode)>;

struct SolveOptions {
  /// Raise a catchable error(resource_error(calls), max_calls) after this
  /// many calls (runaway guard).
  uint64_t max_calls = 100'000'000;
  /// Stop searching after this many solutions.
  uint64_t max_solutions = UINT64_MAX;
  /// Wall-clock budget for one Solve, in milliseconds; 0 = unlimited.
  /// Exhaustion raises a catchable error(resource_error(time), timeout).
  /// The clock is sampled every 256 resolution steps, so enforcement is
  /// approximate but the non-budgeted hot path stays untouched.
  uint64_t timeout_ms = 0;
  /// Maximum resolution depth, measured as the number of live goal nodes
  /// (pending goals plus suspended continuations); 0 = unlimited.
  /// Exhaustion raises a catchable error(resource_error(depth), max_depth).
  uint64_t max_depth = 0;
  /// Maximum heap cells a query may allocate beyond the store's size at
  /// Solve entry; 0 = unlimited. Exhaustion raises a catchable
  /// error(resource_error(heap), max_heap_cells).
  uint64_t max_heap_cells = 0;
  /// Optional fault-injection plan (not owned; see engine/fault.h).
  /// Shared with nested findall machines so call counting matches the
  /// paper's metric.
  FaultInjector* fault = nullptr;
  /// First-argument clause indexing (paper §III-A discusses its interaction
  /// with clause reordering; the ablation bench toggles it).
  bool use_indexing = true;
  /// Choicepoint elision for head-exclusive predicates: when every
  /// position of an exclusivity witness (engine/exclusivity.h) is bound at
  /// call time, commit to the first matching clause without pushing a
  /// choicepoint. Answers and error outcomes are unaffected — only head
  /// unifications that were going to fail on backtracking are skipped; the
  /// ablation bench and the absint differential tests toggle it.
  bool use_choicepoint_elision = true;
  /// If false, calling an undefined predicate is an ExistenceError;
  /// if true it just fails (C-Prolog's `unknown` flag).
  bool unknown_predicate_fails = false;
  /// Optional per-call mode observation hook (slows solving; off by
  /// default).
  ModeObserver mode_observer;
  /// Optional execution-profile collector (not owned; engine/profile.h).
  /// Null — the default — costs one pointer test per call and leaves
  /// metrics bit-identical. When armed, the deterministic-call and
  /// choicepoint-elision fast paths are bypassed so every user call
  /// crosses the generic choicepoint path and all four ports (call/exit/
  /// redo/fail) plus per-clause try/enter/exit counts are observed.
  /// Value semantics propagate the pointer into nested findall machines.
  ProfileCollector* profile = nullptr;
  /// Cancellation + deadline scope for this solve. Value semantics: nested
  /// findall machines copy these options, so the scope propagates to inner
  /// solves automatically. Cancellation raises a catchable
  /// error(canceled, cancel) ball; an expired deadline raises
  /// error(resource_error(deadline_exceeded), deadline). When both the
  /// context deadline and timeout_ms are set, the earlier one wins.
  ExecContext exec;
};

/// Typed view of an uncaught Prolog exception carried by a non-OK Status
/// from Machine::Solve. `ball` is the canonical text of the thrown term —
/// e.g. "error(existence_error(procedure, foo/1), foo/1)" for a system
/// error, or the user's own term for an uncaught throw/1.
struct PrologError {
  prore::StatusCode code;
  std::string ball;
  std::string message;
};

/// Decodes `status` into a PrologError if it carries a thrown ball;
/// nullopt for OK statuses and for engine failures that never existed as
/// Prolog exceptions (parse errors, internal invariant violations, ...).
std::optional<PrologError> PrologErrorFromStatus(const prore::Status& status);

/// SLD-resolution interpreter with chronological backtracking — the
/// substrate standing in for the paper's instrumented C-Prolog 1.5 /
/// SB-Prolog 2.3. Depth-first, left-to-right, first-clause-first: exactly
/// the traversal order whose cost the reorderer optimizes.
///
/// Control constructs handled natively: ','/2, ';'/2, '->'/2 (if-then-else
/// with ISO-local cut in the condition), '!'/0, '\\+'/1, not/1, call/1,
/// true/0, fail/0, false/0. Everything else is a user predicate or one of
/// the built-ins in builtins.cc.
///
/// A Machine may be re-used for several queries; heap space allocated by a
/// query is reclaimed when Solve returns.
///
/// The steady-state resolution loop is allocation-free: clause heads and
/// bodies are renamed from compiled skeletons through a reusable register
/// file, candidate clauses are enumerated lazily from the database's
/// bucketed first-argument index (no candidate vector per call), goal
/// nodes live in a pooled stack recycled on backtracking, and the
/// unification/conjunction scratch stacks are machine members. All
/// containers retain capacity across Solve calls, so repeated queries on
/// one Machine reach a fixed memory footprint.
class Machine {
 public:
  Machine(term::TermStore* store, Database* db,
          SolveOptions opts = SolveOptions());

  /// A worker machine over a shared compiled snapshot: clones the
  /// snapshot's frozen arena as this machine's private bindable heap (the
  /// machine owns the clone) and executes the snapshot's Database without
  /// ever mutating it. Any number of such machines may solve concurrently
  /// against one snapshot; assert/retract raise
  /// permission_error(modify, static_procedure, ...). The machine keeps
  /// the snapshot alive.
  explicit Machine(std::shared_ptr<const ProgramSnapshot> snapshot,
                   SolveOptions opts = SolveOptions());

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Called on each solution while the goal's bindings are still in place;
  /// return false to stop the search.
  using SolutionCallback = std::function<bool()>;

  /// Proves `goal`, invoking `on_solution` per answer. Returns the metrics
  /// for this query (also accumulated into total_metrics()).
  prore::Result<Metrics> Solve(term::TermRef goal,
                               const SolutionCallback& on_solution = nullptr);

  /// Proves `goal` and renders `template_term` once per solution.
  /// The canonical strings let callers compare answer sets for
  /// set-equivalence without worrying about heap reclamation.
  prore::Result<std::vector<std::string>> SolveToStrings(
      term::TermRef goal, term::TermRef template_term);

  /// True if `goal` has at least one solution.
  prore::Result<bool> Succeeds(term::TermRef goal);

  // ---- Services used by built-ins ----------------------------------------

  term::TermStore& store() { return *store_; }
  const Database& db() const { return *db_; }
  /// For assert/retract built-ins. Null for snapshot-backed machines, whose
  /// database is shared and immutable — callers must raise
  /// permission_error(modify, static_procedure, ...) instead.
  Database* mutable_db() { return mutable_db_; }

  /// Sets the text read/1 consumes; parsed eagerly into terms. Replaces
  /// any unread input.
  prore::Status SetInput(std::string_view text);
  /// Next input term, or the atom end_of_file when input is exhausted.
  term::TermRef NextInputTerm();
  const SolveOptions& options() const { return opts_; }
  /// Rescopes cancellation/deadline for subsequent queries — a worker
  /// machine returning to a pool gets a fresh scope instead of staying
  /// poisoned by its last job's cancelled token. Must not be called while
  /// a Solve is in flight on this machine.
  void set_exec_context(const ExecContext& exec) { opts_.exec = exec; }

  /// Unifies a and b, trailing bindings; false if they do not unify.
  bool Unify(term::TermRef a, term::TermRef b);

  /// Runs a nested query (findall/bagof/setof), collecting a renamed copy
  /// of `template_term` per solution. The nested query's metrics are added
  /// to this machine's current query metrics (the paper counts all calls).
  prore::Result<std::vector<term::TermRef>> FindAll(
      term::TermRef goal, term::TermRef template_term);

  /// Trail bookmark for built-ins that must undo speculative bindings
  /// (e.g. \\=/2) regardless of success.
  size_t TrailMark() const { return trail_.size(); }
  void TrailUndo(size_t mark) { TrailUnwind(mark); }

  // ---- ISO exceptions ----------------------------------------------------

  /// Records a copy of `ball` as the in-flight exception and returns the
  /// kPrologThrow signal status; the solve loop unwinds to the nearest
  /// active catch/3 (or surfaces the ball as an uncaught PrologError).
  /// This is how built-ins raise catchable errors.
  prore::Status ThrowTerm(term::TermRef ball);

  /// Throws error(Payload, Context) — the ISO ball shape. `context` is
  /// parsed-ish: an atom or predicate indicator rendered from text, e.g.
  /// "atom_length/2".
  prore::Status ThrowError(term::TermRef payload, std::string_view context);

  /// Converts a payload-carrying Status (see Status::error_term) from a
  /// machine-less helper such as EvalArith into a thrown ball with the
  /// given context. Statuses without a structured payload become
  /// error(system_error, 'message').
  prore::Status ThrowStatus(const prore::Status& status,
                            std::string_view context);

  /// Text written by write/1, nl/0, tab/1 since last ClearOutput.
  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }
  void AppendOutput(const std::string& s) { output_ += s; }

  /// Metrics accumulated across all Solve calls on this machine.
  const Metrics& total_metrics() const { return total_metrics_; }
  /// Metrics of the query currently being solved (builtins may inspect).
  Metrics& current_metrics() { return metrics_; }

  // ---- Introspection for allocation-regression tests ---------------------

  /// Capacity of the pooled goal-node stack. Stable across repeated Solve
  /// calls once warm (the stress test asserts this).
  size_t GoalNodePoolCapacity() const { return node_pool_.capacity(); }
  size_t TrailCapacity() const { return trail_.capacity(); }

 private:
  /// Goal nodes are pool indices, not pointers: the pool is a stack that
  /// grows during forward execution and is truncated to the choicepoint's
  /// watermark on backtracking, so node storage is recycled and index
  /// links survive pool reallocation.
  using GoalRef = uint32_t;
  static constexpr GoalRef kNilGoal = 0xFFFFFFFFu;
  static constexpr uint32_t kNoClause = 0xFFFFFFFFu;

  struct GoalNode {
    term::TermRef goal;
    uint32_t cut_barrier;  ///< Cut here resizes the CP stack to this value.
    GoalRef next;
  };

  /// Lazy candidate-clause enumerator. Replaces the per-call candidate
  /// vector: the next clause index is derived on demand from the
  /// database's bucketed index (or a plain scan), with the logical update
  /// view enforced by the (clause_limit, call_clock) snapshot. Plain
  /// copyable value — peeking ahead is a struct copy.
  struct ClauseScan {
    enum class Mode : uint8_t {
      kAll,      ///< Every clause: unindexed call or unbound first arg.
      kPretest,  ///< Scan with on-the-fly first-arg compatibility test
                 ///< (predicates whose bucket index was invalidated).
      kBuckets   ///< Lazy merge of the call key's bucket with var_list.
    };
    Mode mode = Mode::kAll;
    const PredEntry* entry = nullptr;
    FirstArgKey call_key;     ///< kPretest only.
    uint64_t call_clock = 0;  ///< db update clock at call time.
    uint32_t clause_limit = 0;  ///< Clauses visible to this call.
    const std::vector<uint32_t>* bucket = nullptr;    ///< kBuckets.
    const std::vector<uint32_t>* var_list = nullptr;  ///< kBuckets.
    uint32_t pos = 0;      ///< kAll/kPretest: next clause; kBuckets: bucket.
    uint32_t var_pos = 0;  ///< kBuckets: position in var_list.

    /// Next candidate clause position, kNoClause when exhausted.
    uint32_t Next();
  };

  struct Choicepoint {
    enum class Kind : uint8_t {
      kClauses,  ///< Remaining candidate clauses of a user predicate call.
      kGoals,    ///< An alternative goal continuation (disjunction/ite else).
      kCatch     ///< A catch/3 frame: handler metadata, no alternatives.
    };
    Kind kind;
    GoalRef continuation = kNilGoal;  ///< Goal list to resume with.
    uint32_t node_mark = 0;  ///< Goal-node pool size at creation.
    size_t trail_mark = 0;
    term::TermStore::Mark heap_mark;
    /// catch_log_ size at creation: backtracking past this choicepoint
    /// replays deactivations recorded after it (re-arming catch frames
    /// whose goal is re-entered).
    size_t catch_log_mark = 0;
    // kClauses:
    term::TermRef call_goal = term::kNullTerm;  ///< kCatch: the catch/3 term.
    ClauseScan scan;
    uint32_t body_barrier = 0;  ///< Barrier for the clause body's goals.
    // kCatch:
    /// A catch frame only intercepts exceptions while its goal argument is
    /// still running; once the goal succeeds the frame is deactivated (and
    /// re-armed if backtracking re-enters the goal).
    bool catch_active = false;
    /// Profiling only (kClauses): an unbound cell allocated *below*
    /// heap_mark, bound untrailed at the call's first exit. Because the
    /// binding is untrailed and the cell sits below the mark, it survives
    /// clause retries and backtracking into the call, and dies with the
    /// choicepoint — a per-call "has exited" bit with no shadow stack.
    term::TermRef prof_flag = term::kNullTerm;
  };

  void InternDispatchSymbols();
  GoalRef NewGoalNode(term::TermRef goal, uint32_t barrier, GoalRef next);
  void TrailUnwind(size_t mark);
  /// Heap reclamation is allowed only while the database has not grown
  /// during this query: an asserted clause lives in the query's heap
  /// region and must survive it.
  bool CanReclaimHeap() const {
    return reclaim_heap_ && db_->generation() == query_db_generation_;
  }
  void CutTo(uint32_t barrier);

  /// One resolution step on goal list `goals_`. Returns OK and sets
  /// *failed if the step failed (caller backtracks).
  prore::Status Step(bool* failed);
  /// Tries the next candidate clause of the top choicepoint; false if
  /// no candidate's head unifies.
  bool TryClauses(Choicepoint* cp);
  /// Pops to the most recent choicepoint with work left. False when the
  /// search space is exhausted.
  bool Backtrack();

  prore::Status CallUserPredicate(term::TermRef goal, uint32_t barrier,
                                  bool* failed);
  /// Replays catch-frame deactivations recorded after `mark` (LIFO), then
  /// truncates the log — the undo side of the `$catch_done` marker.
  void CatchLogUnwind(size_t mark);
  /// Converts a non-OK Step status (or the pending ball_) into exception
  /// unwinding. Returns OK when an active catch frame caught the ball and
  /// installed its recovery goal; otherwise the final (uncaught) status.
  prore::Status HandleException(prore::Status status);
  /// Raises a catchable error(resource_error(what), limit_name) ball.
  prore::Status RaiseResource(const char* what, const char* limit_name);
  /// Raises a catchable error(canceled, cancel) ball for a cancelled
  /// ExecContext token.
  prore::Status RaiseCancelled();
  /// Consults the armed FaultInjector at a counted call; OK (and no side
  /// effect) unless this call is the planned fault point.
  prore::Status ApplyCallFault();
  /// Checks depth/heap/time budgets; OK when all are within limits.
  prore::Status CheckBudgets();
  /// Candidate enumeration state for a call to `entry` with `goal`.
  ClauseScan MakeScan(const PredEntry* entry, term::TermRef goal) const;
  /// Renames `clause`'s head skeleton through the register file. The
  /// matching body rename must follow before the register file is reused.
  term::TermRef RenameHead(const CompiledClause& clause);
  void PushConjunction(term::TermRef goal, uint32_t barrier);
  void PushIfThenElse(term::TermRef cond, term::TermRef then_goal,
                      term::TermRef else_goal, uint32_t barrier);

  term::TermStore* store_;
  const Database* db_;
  /// Same database as db_ for classic machines; null in snapshot mode.
  Database* mutable_db_ = nullptr;
  /// Snapshot mode only: the shared program (kept alive for db_) and the
  /// machine's private clone of its arena (what store_ points at).
  std::shared_ptr<const ProgramSnapshot> snapshot_;
  std::unique_ptr<term::TermStore> own_store_;
  SolveOptions opts_;
  /// Unread input terms for read/1 (head_ is the cursor; a vector so
  /// SetInput/NextInputTerm never allocate node blocks).
  std::vector<term::TermRef> input_terms_;
  size_t input_head_ = 0;

  /// Memoized builtin lookups (symbol+arity -> fn or nullptr), avoiding a
  /// string hash per call.
  std::unordered_map<uint64_t, BuiltinFn> builtin_cache_;

  /// Pre-interned symbols the dispatcher tests against every step.
  term::Symbol sym_ite_marker_;
  term::Symbol sym_not_name_;
  term::Symbol sym_false_;
  term::Symbol sym_catch_;
  term::Symbol sym_throw_;
  term::Symbol sym_catch_done_;
  term::Symbol sym_error_;
  term::Symbol sym_prof_exit_;

  std::vector<GoalNode> node_pool_;
  GoalRef goals_ = kNilGoal;
  std::vector<Choicepoint> cps_;
  std::vector<term::TermRef> trail_;
  /// Register file for skeleton renaming (clause.num_vars wide).
  std::vector<term::TermRef> regs_;
  /// Scratch for Unify's iterative worklist.
  std::vector<std::pair<term::TermRef, term::TermRef>> unify_stack_;
  /// Scratch for PushConjunction's flattening.
  std::vector<term::TermRef> conj_scratch_;
  Metrics metrics_;
  Metrics total_metrics_;
  std::string output_;
  bool solving_ = false;
  /// Whether this machine reclaims heap cells — both on backtracking and
  /// when Solve returns. Disabled for nested findall machines: the copies
  /// they collect are allocated above their choicepoints' heap marks and
  /// must survive the continued search.
  bool reclaim_heap_ = true;
  uint64_t query_db_generation_ = 0;

  // ---- Exception state ---------------------------------------------------
  /// The in-flight ball (a Rename'd copy, independent of the thrower's
  /// bindings), or kNullTerm. Set by ThrowTerm, consumed by
  /// HandleException.
  term::TermRef ball_ = term::kNullTerm;
  /// Catch frames deactivated since their creation (indices into cps_),
  /// replayed on backtracking so a re-entered catch goal is protected
  /// again. Empty for catch-free programs — zero steady-state cost.
  std::vector<uint32_t> catch_log_;

  // ---- Budget state (recomputed per Solve) -------------------------------
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
  /// True when the armed deadline came from opts_.exec rather than
  /// timeout_ms — decides which resource_error the trip raises.
  bool deadline_from_exec_ = false;
  /// Absolute cell count above which the heap budget is exhausted.
  size_t heap_cell_limit_ = 0;
  bool has_heap_limit_ = false;
  /// Step counter for the periodic (every 256 steps) deadline sample.
  uint32_t budget_tick_ = 0;
  /// Current calls budget; starts at opts_.max_calls and is re-armed with
  /// another increment each time it trips, so a caught resource_error
  /// leaves headroom for the handler's recovery goal.
  uint64_t call_limit_ = 0;
};

}  // namespace prore::engine

#endif  // PRORE_ENGINE_MACHINE_H_
