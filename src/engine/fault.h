#ifndef PRORE_ENGINE_FAULT_H_
#define PRORE_ENGINE_FAULT_H_

#include <cstdint>

namespace prore::engine {

/// Deterministic fault-injection plan consulted by the Machine on its hot
/// paths. Used by the differential harness (tests/fault_injection_test.cc)
/// to force error conditions at chosen points of a resolution and check
/// that (a) the engine's exception machinery unwinds cleanly, (b) the
/// Machine stays reusable afterwards, and (c) faults are catchable
/// in-program like any other structured error.
///
/// A Machine consults the injector through SolveOptions::fault; the same
/// injector is shared with nested findall/bagof/setof machines (the plan
/// counts every resolved call, exactly like the paper's call metric).
/// All counters are plain increments — with no plan armed the per-call
/// cost is one pointer test in the Machine.
///
/// Counting reference points:
///  - `calls` are counted calls (user predicates + non-'$' builtins), in
///    the same order as Metrics::TotalCalls();
///  - `unifications` are head-unification attempts, in the same order as
///    Metrics::head_unifications — a proxy for resolution depth that is
///    stable across engine configurations.
class FaultInjector {
 public:
  /// What the Machine should do at a counted call. The fault fires exactly
  /// once; counters keep advancing afterwards.
  enum class CallAction : uint8_t {
    kNone,
    kThrow,    ///< throw error(fault_injected(N), fault)
    kExhaust,  ///< throw error(resource_error(fault), fault)
  };

  // ---- Plan (set before solving; 0 disables a channel) -------------------
  uint64_t throw_at_call = 0;        ///< Throw on the Nth counted call.
  uint64_t exhaust_at_call = 0;      ///< Budget-style fault on the Nth call.
  uint64_t fail_unification_at = 0;  ///< Nth head unification fails.

  /// Rewinds the counters so a plan can be replayed on a fresh query.
  void Reset() {
    calls_seen_ = 0;
    unifications_seen_ = 0;
    fired_ = 0;
  }

  /// Advances the call counter and reports the action for this call.
  CallAction OnCall() {
    ++calls_seen_;
    if (throw_at_call != 0 && calls_seen_ == throw_at_call) {
      ++fired_;
      return CallAction::kThrow;
    }
    if (exhaust_at_call != 0 && calls_seen_ == exhaust_at_call) {
      ++fired_;
      return CallAction::kExhaust;
    }
    return CallAction::kNone;
  }

  /// Advances the unification counter; true if this head unification must
  /// be reported as a failure regardless of the terms.
  bool SabotageUnification() {
    ++unifications_seen_;
    if (fail_unification_at != 0 &&
        unifications_seen_ == fail_unification_at) {
      ++fired_;
      return true;
    }
    return false;
  }

  uint64_t calls_seen() const { return calls_seen_; }
  uint64_t unifications_seen() const { return unifications_seen_; }
  /// Number of faults actually delivered (0 if the plan never triggered).
  uint64_t fired() const { return fired_; }

 private:
  uint64_t calls_seen_ = 0;
  uint64_t unifications_seen_ = 0;
  uint64_t fired_ = 0;
};

}  // namespace prore::engine

#endif  // PRORE_ENGINE_FAULT_H_
