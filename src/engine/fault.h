#ifndef PRORE_ENGINE_FAULT_H_
#define PRORE_ENGINE_FAULT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

namespace prore::engine {

/// Deterministic fault-injection plan consulted by the Machine on its hot
/// paths. Used by the differential harness (tests/fault_injection_test.cc)
/// to force error conditions at chosen points of a resolution and check
/// that (a) the engine's exception machinery unwinds cleanly, (b) the
/// Machine stays reusable afterwards, and (c) faults are catchable
/// in-program like any other structured error.
///
/// A Machine consults the injector through SolveOptions::fault; the same
/// injector is shared with nested findall/bagof/setof machines (the plan
/// counts every resolved call, exactly like the paper's call metric).
/// All counters are plain increments — with no plan armed the per-call
/// cost is one pointer test in the Machine.
///
/// Counting reference points:
///  - `calls` are counted calls (user predicates + non-'$' builtins), in
///    the same order as Metrics::TotalCalls();
///  - `unifications` are head-unification attempts, in the same order as
///    Metrics::head_unifications — a proxy for resolution depth that is
///    stable across engine configurations.
class FaultInjector {
 public:
  /// What the Machine should do at a counted call. The fault fires exactly
  /// once; counters keep advancing afterwards.
  enum class CallAction : uint8_t {
    kNone,
    kThrow,    ///< throw error(fault_injected(N), fault)
    kExhaust,  ///< throw error(resource_error(fault), fault)
    kCancel,   ///< on_cancel fired; engine proceeds and the next budget
               ///< check observes the cancelled token (the real path)
  };

  // ---- Plan (set before solving; 0 disables a channel) -------------------
  uint64_t throw_at_call = 0;        ///< Throw on the Nth counted call.
  uint64_t exhaust_at_call = 0;      ///< Budget-style fault on the Nth call.
  uint64_t fail_unification_at = 0;  ///< Nth head unification fails.
  /// Invoke on_cancel at the Nth counted call — the deterministic
  /// mid-solve cancellation channel: the callback cancels the solve's own
  /// CancellationSource, so replay is bit-identical (no cross-thread
  /// timing in the outcome).
  uint64_t cancel_at_call = 0;
  std::function<void()> on_cancel;
  /// Sleep for delay_micros at the Nth counted call. Pure wall-clock
  /// perturbation (widens cross-thread interleavings under TSan); never
  /// affects answers, so it is exempt from replay comparisons.
  uint64_t delay_at_call = 0;
  uint64_t delay_micros = 0;

  /// Rewinds the counters so a plan can be replayed on a fresh query.
  void Reset() {
    calls_seen_ = 0;
    unifications_seen_ = 0;
    fired_ = 0;
  }

  /// Advances the call counter and reports the action for this call.
  CallAction OnCall() {
    ++calls_seen_;
    if (throw_at_call != 0 && calls_seen_ == throw_at_call) {
      ++fired_;
      return CallAction::kThrow;
    }
    if (exhaust_at_call != 0 && calls_seen_ == exhaust_at_call) {
      ++fired_;
      return CallAction::kExhaust;
    }
    if (cancel_at_call != 0 && calls_seen_ == cancel_at_call) {
      ++fired_;
      if (on_cancel) on_cancel();
      return CallAction::kCancel;
    }
    if (delay_at_call != 0 && calls_seen_ == delay_at_call &&
        delay_micros != 0) {
      ++fired_;
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
    }
    return CallAction::kNone;
  }

  /// Advances the unification counter; true if this head unification must
  /// be reported as a failure regardless of the terms.
  bool SabotageUnification() {
    ++unifications_seen_;
    if (fail_unification_at != 0 &&
        unifications_seen_ == fail_unification_at) {
      ++fired_;
      return true;
    }
    return false;
  }

  uint64_t calls_seen() const { return calls_seen_; }
  uint64_t unifications_seen() const { return unifications_seen_; }
  /// Number of faults actually delivered (0 if the plan never triggered).
  uint64_t fired() const { return fired_; }

 private:
  uint64_t calls_seen_ = 0;
  uint64_t unifications_seen_ = 0;
  uint64_t fired_ = 0;
};

/// Seeded, deterministic cross-thread injection plan for the chaos harness
/// (tests/chaos_test.cc): from one seed it derives an independent per-job
/// fault mix — allocation failures, mid-solve cancellations, budget trips,
/// worker delays, pre-expired deadlines — via splitmix64, so the same seed
/// always produces the same scenario on every thread of a jobs=N run.
/// Only the delay channel touches the wall clock; every other channel is
/// counted work, which is what makes per-seed replay bit-identical.
struct ChaosPlan {
  uint64_t seed = 0;

  /// One job's (worker's/query's) derived injection plan. At most one
  /// error channel is armed per job so the expected outcome is
  /// unambiguous; the delay channel may combine with any of them.
  struct JobPlan {
    uint64_t fail_alloc_at = 0;    ///< TermStore::FailAllocAfter operand.
    uint64_t cancel_at_call = 0;   ///< FaultInjector cancel channel.
    uint64_t exhaust_at_call = 0;  ///< FaultInjector budget-trip channel.
    uint64_t throw_at_call = 0;    ///< FaultInjector throw channel.
    uint64_t delay_at_call = 0;    ///< FaultInjector delay channel.
    uint64_t delay_micros = 0;
    bool pre_expired_deadline = false;  ///< ExecContext deadline AfterMs(0).
    bool pre_cancelled = false;         ///< Token cancelled before Solve.

    bool injects_error() const {
      return fail_alloc_at != 0 || cancel_at_call != 0 ||
             exhaust_at_call != 0 || throw_at_call != 0 ||
             pre_expired_deadline || pre_cancelled;
    }
  };

  static uint64_t SplitMix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Deterministic plan for job `job` of this seed. Injection points are
  /// kept small (< 64) so they land inside short test queries; roughly one
  /// job in eight runs clean (control group), and the channels cycle so
  /// every seed exercises several of them across its jobs.
  JobPlan ForJob(uint64_t job) const {
    uint64_t r = SplitMix64(seed ^ SplitMix64(job + 1));
    JobPlan plan;
    uint64_t channel = r % 8;
    uint64_t point = 1 + (SplitMix64(r) % 48);
    switch (channel) {
      case 0: plan.fail_alloc_at = 1 + (point * 7) % 200; break;
      case 1: plan.cancel_at_call = point; break;
      case 2: plan.exhaust_at_call = point; break;
      case 3: plan.throw_at_call = point; break;
      case 4: plan.pre_expired_deadline = true; break;
      case 5: plan.pre_cancelled = true; break;
      case 6:
        plan.cancel_at_call = point;
        plan.delay_at_call = 1 + point / 2;
        plan.delay_micros = 1 + (SplitMix64(r ^ 0xdeull) % 200);
        break;
      default: break;  // clean control job
    }
    return plan;
  }
};

}  // namespace prore::engine

#endif  // PRORE_ENGINE_FAULT_H_
