#ifndef PRORE_ENGINE_EXCLUSIVITY_H_
#define PRORE_ENGINE_EXCLUSIVITY_H_

#include <cstdint>
#include <vector>

#include "term/store.h"

namespace prore::engine {

/// A head-exclusivity witness: a set of argument positions such that for
/// every pair of clause heads of a predicate, at least one position in the
/// set carries *distinct principal functors* in both heads (atom vs other
/// atom, int vs other int, f/2 vs g/2 — floats and variables never
/// discriminate; structs with the same functor/arity are not told apart).
///
/// The runtime guarantee: a call whose arguments at every witness position
/// dereference to nonvar terms can head-unify with at most one clause, so
/// the machine may commit to the first matching clause without pushing a
/// choicepoint. This is sound for *any* call mode — boundness is re-checked
/// per call, and the only work skipped is head unifications that were going
/// to fail, so answers, side-effect order, and error outcomes are
/// unchanged. The analysis layer uses the same witnesses statically: a
/// witness covered by '+' positions of an abstract call pattern proves the
/// clauses mutually exclusive under that pattern.
using Witness = std::vector<uint32_t>;

/// Computes exclusivity witnesses for a predicate's clause heads: every
/// single position that alone discriminates all head pairs, plus (if no
/// single position suffices) one greedy multi-position cover. Returns an
/// empty vector when the heads cannot be proven exclusive, and a single
/// empty witness (no boundness requirement) when there are fewer than two
/// heads. Predicates with more than `max_clauses` heads are skipped (the
/// pair scan is quadratic). At most `max_witnesses` are returned.
std::vector<Witness> ExclusivityWitnesses(const term::TermStore& store,
                                          const std::vector<term::TermRef>& heads,
                                          uint32_t arity,
                                          size_t max_witnesses = 4,
                                          size_t max_clauses = 512);

}  // namespace prore::engine

#endif  // PRORE_ENGINE_EXCLUSIVITY_H_
