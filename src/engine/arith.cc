#include "engine/arith.h"

#include <cmath>
#include <cstdlib>

#include "common/str_util.h"

namespace prore::engine {

using term::Tag;
using term::TermRef;
using term::TermStore;

namespace {

prore::Status ZeroDivisor() {
  return prore::Status::TypeError("arithmetic: zero divisor");
}

}  // namespace

prore::Result<Number> EvalArith(const TermStore& store, TermRef expr) {
  expr = store.Deref(expr);
  switch (store.tag(expr)) {
    case Tag::kVar:
      return prore::Status::InstantiationError(
          "arithmetic: unbound variable in expression");
    case Tag::kInt:
      return Number::Int(store.int_value(expr));
    case Tag::kFloat:
      return Number::Float(store.float_value(expr));
    case Tag::kAtom:
      return prore::Status::TypeError(prore::StrFormat(
          "arithmetic: atom '%s' is not a number",
          store.symbols().Name(store.symbol(expr)).c_str()));
    case Tag::kStruct:
      break;
  }
  const std::string& name = store.symbols().Name(store.symbol(expr));
  uint32_t n = store.arity(expr);
  if (n == 1) {
    PRORE_ASSIGN_OR_RETURN(Number a, EvalArith(store, store.arg(expr, 0)));
    if (name == "-") {
      return a.is_float ? Number::Float(-a.f) : Number::Int(-a.i);
    }
    if (name == "+") return a;
    if (name == "abs") {
      return a.is_float ? Number::Float(std::fabs(a.f))
                        : Number::Int(a.i < 0 ? -a.i : a.i);
    }
    if (name == "sign") {
      double v = a.AsDouble();
      return Number::Int(v < 0 ? -1 : (v > 0 ? 1 : 0));
    }
    if (name == "float") return Number::Float(a.AsDouble());
    if (name == "integer" || name == "truncate") {
      return Number::Int(static_cast<int64_t>(a.AsDouble()));
    }
    if (name == "sqrt") return Number::Float(std::sqrt(a.AsDouble()));
    if (name == "log") return Number::Float(std::log(a.AsDouble()));
    if (name == "exp") return Number::Float(std::exp(a.AsDouble()));
    return prore::Status::TypeError(
        prore::StrFormat("arithmetic: unknown function %s/1", name.c_str()));
  }
  if (n == 2) {
    PRORE_ASSIGN_OR_RETURN(Number a, EvalArith(store, store.arg(expr, 0)));
    PRORE_ASSIGN_OR_RETURN(Number b, EvalArith(store, store.arg(expr, 1)));
    bool fl = a.is_float || b.is_float;
    if (name == "+") {
      return fl ? Number::Float(a.AsDouble() + b.AsDouble())
                : Number::Int(a.i + b.i);
    }
    if (name == "-") {
      return fl ? Number::Float(a.AsDouble() - b.AsDouble())
                : Number::Int(a.i - b.i);
    }
    if (name == "*") {
      return fl ? Number::Float(a.AsDouble() * b.AsDouble())
                : Number::Int(a.i * b.i);
    }
    if (name == "/") {
      if (!fl) {
        if (b.i == 0) return ZeroDivisor();
        if (a.i % b.i == 0) return Number::Int(a.i / b.i);
        return Number::Float(static_cast<double>(a.i) /
                             static_cast<double>(b.i));
      }
      if (b.AsDouble() == 0.0) return ZeroDivisor();
      return Number::Float(a.AsDouble() / b.AsDouble());
    }
    if (name == "//") {
      if (fl) {
        return prore::Status::TypeError("arithmetic: '//' needs integers");
      }
      if (b.i == 0) return ZeroDivisor();
      return Number::Int(a.i / b.i);
    }
    if (name == "mod") {
      if (fl) {
        return prore::Status::TypeError("arithmetic: 'mod' needs integers");
      }
      if (b.i == 0) return ZeroDivisor();
      int64_t m = a.i % b.i;
      if (m != 0 && ((m < 0) != (b.i < 0))) m += b.i;  // floor semantics
      return Number::Int(m);
    }
    if (name == "rem") {
      if (fl) {
        return prore::Status::TypeError("arithmetic: 'rem' needs integers");
      }
      if (b.i == 0) return ZeroDivisor();
      return Number::Int(a.i % b.i);
    }
    if (name == "min") {
      return a.AsDouble() <= b.AsDouble() ? a : b;
    }
    if (name == "max") {
      return a.AsDouble() >= b.AsDouble() ? a : b;
    }
    if (name == ">>" || name == "<<" || name == "/\\" || name == "\\/") {
      if (fl) {
        return prore::Status::TypeError("arithmetic: bit ops need integers");
      }
      if (name == ">>") return Number::Int(a.i >> b.i);
      if (name == "<<") return Number::Int(a.i << b.i);
      if (name == "/\\") return Number::Int(a.i & b.i);
      return Number::Int(a.i | b.i);
    }
    if (name == "^" || name == "**") {
      if (!fl && b.i >= 0) {
        int64_t r = 1;
        for (int64_t k = 0; k < b.i; ++k) r *= a.i;
        return Number::Int(r);
      }
      return Number::Float(std::pow(a.AsDouble(), b.AsDouble()));
    }
    return prore::Status::TypeError(
        prore::StrFormat("arithmetic: unknown function %s/2", name.c_str()));
  }
  return prore::Status::TypeError(prore::StrFormat(
      "arithmetic: unknown function %s/%u", name.c_str(), n));
}

prore::Result<int64_t> EvalArithInt(const TermStore& store, TermRef expr) {
  PRORE_ASSIGN_OR_RETURN(Number v, EvalArith(store, expr));
  if (v.is_float) {
    return prore::Status::TypeError("arithmetic: integer expected");
  }
  return v.i;
}

}  // namespace prore::engine
