#include "engine/arith.h"

#include <cmath>
#include <cstdlib>

#include "common/str_util.h"

namespace prore::engine {

using term::Tag;
using term::TermRef;
using term::TermStore;

namespace {

// Error helpers attach the ISO error *payload* as text via WithErrorTerm();
// Machine::ThrowStatus parses the payload and wraps it into a full
// error(Payload, Context) ball, so arithmetic stays independent of the
// term store that will host the exception.

prore::Status ZeroDivisor() {
  return prore::Status::EvaluationError("arithmetic: zero divisor")
      .WithErrorTerm("evaluation_error(zero_divisor)");
}

prore::Status UnknownEvaluable(const std::string& name, uint32_t arity) {
  return prore::Status::TypeError(
             prore::StrFormat("arithmetic: unknown function %s/%u",
                              name.c_str(), arity))
      .WithErrorTerm(prore::StrFormat("type_error(evaluable, '%s'/%u)",
                                      name.c_str(), arity));
}

prore::Status IntegerExpected(const Number& v) {
  std::string shown = v.is_float
                          ? prore::StrFormat("%g", v.f)
                          : prore::StrFormat("%lld", static_cast<long long>(v.i));
  return prore::Status::TypeError("arithmetic: integer expected")
      .WithErrorTerm(
          prore::StrFormat("type_error(integer, %s)", shown.c_str()));
}

prore::Status NeedIntegers(const Number& a, const Number& b) {
  return IntegerExpected(a.is_float ? a : b);
}

}  // namespace

prore::Result<Number> EvalArith(const TermStore& store, TermRef expr) {
  expr = store.Deref(expr);
  switch (store.tag(expr)) {
    case Tag::kVar:
      return prore::Status::InstantiationError(
                 "arithmetic: unbound variable in expression")
          .WithErrorTerm("instantiation_error");
    case Tag::kInt:
      return Number::Int(store.int_value(expr));
    case Tag::kFloat:
      return Number::Float(store.float_value(expr));
    case Tag::kAtom:
      return UnknownEvaluable(store.symbols().Name(store.symbol(expr)), 0);
    case Tag::kStruct:
      break;
  }
  const std::string& name = store.symbols().Name(store.symbol(expr));
  uint32_t n = store.arity(expr);
  if (n == 1) {
    PRORE_ASSIGN_OR_RETURN(Number a, EvalArith(store, store.arg(expr, 0)));
    if (name == "-") {
      return a.is_float ? Number::Float(-a.f) : Number::Int(-a.i);
    }
    if (name == "+") return a;
    if (name == "abs") {
      return a.is_float ? Number::Float(std::fabs(a.f))
                        : Number::Int(a.i < 0 ? -a.i : a.i);
    }
    if (name == "sign") {
      double v = a.AsDouble();
      return Number::Int(v < 0 ? -1 : (v > 0 ? 1 : 0));
    }
    if (name == "float") return Number::Float(a.AsDouble());
    if (name == "integer" || name == "truncate") {
      return Number::Int(static_cast<int64_t>(a.AsDouble()));
    }
    if (name == "sqrt") return Number::Float(std::sqrt(a.AsDouble()));
    if (name == "log") return Number::Float(std::log(a.AsDouble()));
    if (name == "exp") return Number::Float(std::exp(a.AsDouble()));
    return UnknownEvaluable(name, 1);
  }
  if (n == 2) {
    PRORE_ASSIGN_OR_RETURN(Number a, EvalArith(store, store.arg(expr, 0)));
    PRORE_ASSIGN_OR_RETURN(Number b, EvalArith(store, store.arg(expr, 1)));
    bool fl = a.is_float || b.is_float;
    if (name == "+") {
      return fl ? Number::Float(a.AsDouble() + b.AsDouble())
                : Number::Int(a.i + b.i);
    }
    if (name == "-") {
      return fl ? Number::Float(a.AsDouble() - b.AsDouble())
                : Number::Int(a.i - b.i);
    }
    if (name == "*") {
      return fl ? Number::Float(a.AsDouble() * b.AsDouble())
                : Number::Int(a.i * b.i);
    }
    if (name == "/") {
      if (!fl) {
        if (b.i == 0) return ZeroDivisor();
        if (a.i % b.i == 0) return Number::Int(a.i / b.i);
        return Number::Float(static_cast<double>(a.i) /
                             static_cast<double>(b.i));
      }
      if (b.AsDouble() == 0.0) return ZeroDivisor();
      return Number::Float(a.AsDouble() / b.AsDouble());
    }
    if (name == "//") {
      if (fl) return NeedIntegers(a, b);
      if (b.i == 0) return ZeroDivisor();
      return Number::Int(a.i / b.i);
    }
    if (name == "mod") {
      if (fl) return NeedIntegers(a, b);
      if (b.i == 0) return ZeroDivisor();
      int64_t m = a.i % b.i;
      if (m != 0 && ((m < 0) != (b.i < 0))) m += b.i;  // floor semantics
      return Number::Int(m);
    }
    if (name == "rem") {
      if (fl) return NeedIntegers(a, b);
      if (b.i == 0) return ZeroDivisor();
      return Number::Int(a.i % b.i);
    }
    if (name == "min") {
      return a.AsDouble() <= b.AsDouble() ? a : b;
    }
    if (name == "max") {
      return a.AsDouble() >= b.AsDouble() ? a : b;
    }
    if (name == ">>" || name == "<<" || name == "/\\" || name == "\\/") {
      if (fl) return NeedIntegers(a, b);
      if (name == ">>") return Number::Int(a.i >> b.i);
      if (name == "<<") return Number::Int(a.i << b.i);
      if (name == "/\\") return Number::Int(a.i & b.i);
      return Number::Int(a.i | b.i);
    }
    if (name == "^" || name == "**") {
      if (!fl && b.i >= 0) {
        int64_t r = 1;
        for (int64_t k = 0; k < b.i; ++k) r *= a.i;
        return Number::Int(r);
      }
      return Number::Float(std::pow(a.AsDouble(), b.AsDouble()));
    }
    return UnknownEvaluable(name, 2);
  }
  return UnknownEvaluable(name, n);
}

prore::Result<int64_t> EvalArithInt(const TermStore& store, TermRef expr) {
  PRORE_ASSIGN_OR_RETURN(Number v, EvalArith(store, expr));
  if (v.is_float) return IntegerExpected(v);
  return v.i;
}

}  // namespace prore::engine
