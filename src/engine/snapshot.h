#ifndef PRORE_ENGINE_SNAPSHOT_H_
#define PRORE_ENGINE_SNAPSHOT_H_

#include <memory>

#include "common/result.h"
#include "engine/database.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::engine {

/// An immutable, shareable compiled program: a frozen term arena holding
/// the clause skeletons, plus the Database (clause lists and first-argument
/// indexes) compiled against it. One snapshot serves any number of
/// concurrent Machines — each worker clones the arena as its private
/// bindable heap (TermRefs carry over unchanged, so the shared compiled
/// clauses execute against the clone directly), while the Database itself
/// is shared by const reference and never mutated. Machines constructed
/// over a snapshot reject assert/retract with
/// permission_error(modify, static_procedure, ...).
class ProgramSnapshot {
 public:
  /// Compiles `program` (whose terms live in `store`) into a snapshot. The
  /// snapshot owns a private deep copy of `store`, so the caller's store
  /// stays free to grow or be discarded; `program`'s TermRefs are valid in
  /// the copy by construction.
  static prore::Result<std::shared_ptr<const ProgramSnapshot>> Compile(
      const term::TermStore& store, const reader::Program& program,
      bool load_library = true);

  /// The frozen arena the Database's skeletons point into. Workers clone
  /// it (TermStore::CloneFrom) as their private heap; nobody binds its
  /// variables in place.
  const term::TermStore& store() const { return *store_; }
  const Database& db() const { return db_; }

  ProgramSnapshot(const ProgramSnapshot&) = delete;
  ProgramSnapshot& operator=(const ProgramSnapshot&) = delete;

 private:
  ProgramSnapshot() = default;

  std::unique_ptr<term::TermStore> store_;
  Database db_;
};

}  // namespace prore::engine

#endif  // PRORE_ENGINE_SNAPSHOT_H_
