// The built-in lint passes (PL001..PL008 structural, PL200..PL203 fed by
// the abstract interpretation). Each pass is stateless and
// consults only the LintContext; passes needing an analysis that failed to
// build (null pointer in the context) skip silently — the linter already
// reported the failure as a PL000 note.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/absint/absint.h"
#include "analysis/body.h"
#include "analysis/fixity.h"
#include "analysis/mode_inference.h"
#include "analysis/modes.h"
#include "common/str_util.h"
#include "engine/builtins.h"
#include "engine/database.h"
#include "lint/lint.h"
#include "reader/parser.h"
#include "reader/writer.h"

namespace prore::lint {
namespace {

using analysis::AbstractEnv;
using analysis::BodyKind;
using analysis::BodyNode;
using analysis::Mode;
using analysis::ModeItem;
using analysis::VarState;
using reader::Clause;
using reader::SourceSpan;
using term::PredId;
using term::Tag;
using term::TermRef;
using term::TermStore;

/// Span of a parsed term, falling back to the clause position for
/// synthesized terms.
SourceSpan SpanOf(const LintContext& ctx, TermRef t, const Clause& clause) {
  SourceSpan s = ctx.program->TermSpan(t);
  return s.known() ? s : clause.span;
}

std::string VarDisplayName(const TermStore& store, TermRef v) {
  const std::string& name = store.var_name(v);
  if (!name.empty()) return name;
  return prore::StrFormat("_G%u", store.var_id(v));
}

/// Names of the predicates the bundled pure-Prolog library defines
/// (append/3, member/2, ...). Calls to these are not "undefined" even
/// though the linted program does not define them.
const std::unordered_set<std::string>& LibraryPreds() {
  static const std::unordered_set<std::string>* preds = [] {
    auto* s = new std::unordered_set<std::string>();
    term::TermStore store;
    auto program = reader::ParseProgramText(&store, engine::LibrarySource());
    if (program.ok()) {
      for (const PredId& id : program.value().pred_order()) {
        s->insert(reader::PredName(store, id));
      }
    }
    return s;
  }();
  return *preds;
}

/// Visits every kCall goal of a body in execution order, passing the
/// abstract environment as it stands *before* the call; environments
/// advance exactly the way AdvanceEnvOverNode does, so the instantiation
/// states a pass sees match what the reorderer's own threading computes.
void WalkCallsWithEnv(
    const TermStore& store, const BodyNode& node,
    analysis::LegalityOracle* oracle, AbstractEnv* env,
    const std::function<void(TermRef, const AbstractEnv&)>& on_call) {
  switch (node.kind) {
    case BodyKind::kTrue:
    case BodyKind::kFail:
    case BodyKind::kCut:
      return;
    case BodyKind::kConj:
      for (const auto& child : node.children) {
        WalkCallsWithEnv(store, *child, oracle, env, on_call);
      }
      return;
    case BodyKind::kDisj: {
      AbstractEnv left = *env, right = *env;
      WalkCallsWithEnv(store, *node.children[0], oracle, &left, on_call);
      WalkCallsWithEnv(store, *node.children[1], oracle, &right, on_call);
      *env = AbstractEnv::Join(left, right);
      return;
    }
    case BodyKind::kIfThenElse: {
      AbstractEnv then_env = *env, else_env = *env;
      WalkCallsWithEnv(store, *node.children[0], oracle, &then_env, on_call);
      WalkCallsWithEnv(store, *node.children[1], oracle, &then_env, on_call);
      WalkCallsWithEnv(store, *node.children[2], oracle, &else_env, on_call);
      *env = AbstractEnv::Join(then_env, else_env);
      return;
    }
    case BodyKind::kNeg: {
      // Negation binds nothing outside; visit inner calls with a scratch
      // environment.
      AbstractEnv scratch = *env;
      WalkCallsWithEnv(store, *node.children[0], oracle, &scratch, on_call);
      return;
    }
    case BodyKind::kSetPred: {
      AbstractEnv scratch = *env;
      WalkCallsWithEnv(store, *node.children[0], oracle, &scratch, on_call);
      analysis::AdvanceEnvOverNode(store, node, oracle, env);
      return;
    }
    case BodyKind::kCatch: {
      for (const auto& child : node.children) {
        AbstractEnv scratch = *env;
        WalkCallsWithEnv(store, *child, oracle, &scratch, on_call);
      }
      analysis::AdvanceEnvOverNode(store, node, oracle, env);
      return;
    }
    case BodyKind::kCall:
      on_call(node.goal, *env);
      analysis::AdvanceEnvOverNode(store, node, oracle, env);
      return;
  }
}

// ---- PL001: singleton variables -------------------------------------------

class SingletonVarsPass : public LintPass {
 public:
  const char* name() const override { return "singleton-vars"; }
  const char* code() const override { return "PL001"; }
  const char* description() const override {
    return "named variable used exactly once in its clause";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    const TermStore& store = *ctx.store;
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        std::unordered_map<uint32_t, int> counts;
        std::vector<TermRef> order;  // first occurrence of each variable
        Count(store, clause.head, &counts, &order);
        Count(store, clause.body, &counts, &order);
        for (TermRef v : order) {
          if (counts[store.var_id(v)] != 1) continue;
          const std::string& vname = store.var_name(v);
          if (vname.empty() || vname[0] == '_') continue;  // intentional
          sink->Report("PL001", Severity::kWarning, SpanOf(ctx, v, clause),
                       pred,
                       prore::StrFormat("singleton variable %s",
                                        vname.c_str()));
        }
      }
    }
  }

 private:
  static void Count(const TermStore& store, TermRef t,
                    std::unordered_map<uint32_t, int>* counts,
                    std::vector<TermRef>* order) {
    t = store.Deref(t);
    switch (store.tag(t)) {
      case Tag::kVar:
        if (++(*counts)[store.var_id(t)] == 1) order->push_back(t);
        return;
      case Tag::kStruct:
        for (uint32_t i = 0; i < store.arity(t); ++i) {
          Count(store, store.arg(t, i), counts, order);
        }
        return;
      default:
        return;
    }
  }
};

// ---- PL002: undefined predicates ------------------------------------------

class UndefinedPredPass : public LintPass {
 public:
  const char* name() const override { return "undefined-predicate"; }
  const char* code() const override { return "PL002"; }
  const char* description() const override {
    return "goal calls a predicate no clause, built-in or library defines";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    const TermStore& store = *ctx.store;
    std::set<std::string> seen;  // dedup identical reports
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) continue;  // variable goal etc.; PL000 covers it
        std::vector<TermRef> goals;
        analysis::CollectCalledGoals(store, *body.value(), &goals);
        for (TermRef goal : goals) {
          TermRef g = store.Deref(goal);
          if (!store.IsCallable(g)) continue;
          PredId callee = store.pred_id(g);
          if (ctx.program->Has(callee)) continue;
          const std::string callee_name =
              reader::PredName(store, callee);
          const std::string& bare = store.symbols().Name(callee.name);
          if (engine::LookupBuiltin(bare, callee.arity) != nullptr) continue;
          if (LibraryPreds().count(callee_name) > 0) continue;
          Diagnostic d{"PL002", Severity::kWarning, SpanOf(ctx, g, clause),
                       pred,
                       prore::StrFormat(
                           "call to undefined predicate %s",
                           callee_name.c_str())};
          if (seen.insert(d.ToString()).second) sink->Report(std::move(d));
        }
      }
    }
  }
};

// ---- PL003: clause unreachable after a catch-all cut ----------------------

class UnreachableClausePass : public LintPass {
 public:
  const char* name() const override { return "unreachable-clause"; }
  const char* code() const override { return "PL003"; }
  const char* description() const override {
    return "clause follows one that matches any call and cuts immediately";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    const TermStore& store = *ctx.store;
    for (const PredId& id : ctx.program->pred_order()) {
      const auto& clauses = ctx.program->ClausesOf(id);
      const std::string pred = reader::PredName(store, id);
      for (size_t i = 0; i + 1 < clauses.size(); ++i) {
        if (!IsCatchAllCut(store, clauses[i])) continue;
        for (size_t j = i + 1; j < clauses.size(); ++j) {
          sink->Report(
              "PL003", Severity::kWarning,
              clauses[j].span.known() ? clauses[j].span
                                      : SpanOf(ctx, clauses[j].head,
                                               clauses[j]),
              pred,
              prore::StrFormat("clause %zu is unreachable: clause %zu "
                               "matches any call and cuts immediately",
                               j + 1, i + 1));
        }
        break;  // report against the first catch-all only
      }
    }
  }

 private:
  /// True for `p(X, Y, ...) :- !, ...` with all-distinct unbound variable
  /// head arguments: it unifies with every call and commits.
  static bool IsCatchAllCut(const TermStore& store, const Clause& clause) {
    TermRef head = store.Deref(clause.head);
    std::unordered_set<uint32_t> seen;
    for (uint32_t i = 0; i < store.arity(head); ++i) {
      TermRef a = store.Deref(store.arg(head, i));
      if (store.tag(a) != Tag::kVar) return false;
      if (!seen.insert(store.var_id(a)).second) return false;
    }
    auto body = analysis::ParseBody(store, clause.body);
    if (!body.ok()) return false;
    const BodyNode* node = body.value().get();
    while (node->kind == BodyKind::kConj && !node->children.empty()) {
      node = node->children.front().get();
    }
    return node->kind == BodyKind::kCut;
  }
};

// ---- PL004: goal unreachable after fail -----------------------------------

class UnreachableGoalPass : public LintPass {
 public:
  const char* name() const override { return "unreachable-goal"; }
  const char* code() const override { return "PL004"; }
  const char* description() const override {
    return "goal in a conjunction follows fail/false";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    const TermStore& store = *ctx.store;
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) continue;
        Walk(ctx, store, *body.value(), clause, pred, sink);
      }
    }
  }

 private:
  static void Walk(const LintContext& ctx, const TermStore& store,
                   const BodyNode& node, const Clause& clause,
                   const std::string& pred, DiagnosticSink* sink) {
    if (node.kind == BodyKind::kConj) {
      for (size_t i = 0; i + 1 < node.children.size(); ++i) {
        if (node.children[i]->kind != BodyKind::kFail) continue;
        const BodyNode& next = *node.children[i + 1];
        std::string what =
            next.goal == term::kNullTerm
                ? std::string("goal")
                : reader::WriteTerm(store, next.goal);
        sink->Report("PL004", Severity::kWarning,
                     next.goal == term::kNullTerm
                         ? clause.span
                         : SpanOf(ctx, next.goal, clause),
                     pred,
                     prore::StrFormat("%s is unreachable: it follows fail",
                                      what.c_str()));
        break;  // one report per conjunction
      }
    }
    for (const auto& child : node.children) {
      Walk(ctx, store, *child, clause, pred, sink);
    }
  }
};

// ---- PL005: arithmetic on an unbound variable -----------------------------

class UnboundArithmeticPass : public LintPass {
 public:
  const char* name() const override { return "unbound-arithmetic"; }
  const char* code() const override { return "PL005"; }
  const char* description() const override {
    return "arithmetic evaluates a variable that is still unbound";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    if (ctx.modes == nullptr || ctx.oracle == nullptr) return;
    const TermStore& store = *ctx.store;
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      std::vector<Mode> input_modes;
      auto it = ctx.modes->observed_inputs.find(id);
      if (it != ctx.modes->observed_inputs.end() && !it->second.empty()) {
        input_modes = it->second;
      } else {
        input_modes.push_back(Mode(id.arity, ModeItem::kAny));
      }
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) continue;
        // One report per (goal, variable, position), however many observed
        // modes exhibit it.
        std::set<std::pair<TermRef, uint64_t>> reported;
        for (const Mode& mode : input_modes) {
          AbstractEnv env =
              analysis::EnvFromHead(store, clause.head, mode);
          WalkCallsWithEnv(
              store, *body.value(), ctx.oracle, &env,
              [&](TermRef goal, const AbstractEnv& before) {
                CheckGoal(ctx, store, goal, before, clause, pred, &reported,
                          sink);
              });
        }
      }
    }
  }

 private:
  static void CheckGoal(const LintContext& ctx, const TermStore& store,
                        TermRef goal, const AbstractEnv& env,
                        const Clause& clause, const std::string& pred,
                        std::set<std::pair<TermRef, uint64_t>>* reported,
                        DiagnosticSink* sink) {
    TermRef g = store.Deref(goal);
    if (store.tag(g) != Tag::kStruct) return;
    PredId callee = store.pred_id(g);
    const std::string& name = store.symbols().Name(callee.name);
    std::vector<uint32_t> eval_positions;
    if (name == "is" && callee.arity == 2) {
      eval_positions = {1};
    } else if (callee.arity == 2 &&
               (name == "=:=" || name == "=\\=" || name == "<" ||
                name == ">" || name == "=<" || name == ">=")) {
      eval_positions = {0, 1};
    } else {
      return;
    }
    for (uint32_t p : eval_positions) {
      std::vector<TermRef> vars;
      store.CollectVars(store.arg(g, p), &vars);
      for (TermRef v : vars) {
        if (env.Get(store.var_id(v)) != VarState::kFree) continue;
        uint64_t key = (static_cast<uint64_t>(p) << 32) | store.var_id(v);
        if (!reported->insert({g, key}).second) continue;
        sink->Report(
            "PL005", Severity::kWarning, SpanOf(ctx, g, clause), pred,
            prore::StrFormat(
                "variable %s is unbound when %s/%u evaluates argument %u",
                VarDisplayName(store, v).c_str(), name.c_str(), callee.arity,
                p + 1));
      }
    }
  }
};

// ---- PL006: side-effect goals are pinned ----------------------------------

class PinnedSideEffectPass : public LintPass {
 public:
  const char* name() const override { return "pinned-side-effect"; }
  const char* code() const override { return "PL006"; }
  const char* description() const override {
    return "side-effect goal is immobile and pins clause order (fixity)";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    const TermStore& store = *ctx.store;
    std::set<std::string> seen;
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) continue;
        std::vector<TermRef> goals;
        analysis::CollectCalledGoals(store, *body.value(), &goals);
        for (TermRef goal : goals) {
          TermRef g = store.Deref(goal);
          if (!store.IsCallable(g)) continue;
          PredId callee = store.pred_id(g);
          const std::string& bare = store.symbols().Name(callee.name);
          std::string message;
          if (analysis::IsSideEffectBuiltin(bare, callee.arity)) {
            message = prore::StrFormat(
                "side-effect goal %s/%u is immobile: the reorderer keeps "
                "it in place",
                bare.c_str(), callee.arity);
          } else if (ctx.fixity != nullptr && ctx.program->Has(callee) &&
                     ctx.fixity->IsFixed(callee)) {
            message = prore::StrFormat(
                "goal %s/%u calls a fixed predicate (side effects in its "
                "descendants): it will not be moved",
                bare.c_str(), callee.arity);
          } else {
            continue;
          }
          Diagnostic d{"PL006", Severity::kNote, SpanOf(ctx, g, clause),
                       pred, std::move(message)};
          if (seen.insert(d.ToString()).second) sink->Report(std::move(d));
        }
      }
    }
  }
};

// ---- PL007: discontiguous clause groups -----------------------------------

class DiscontiguousPass : public LintPass {
 public:
  const char* name() const override { return "discontiguous"; }
  const char* code() const override { return "PL007"; }
  const char* description() const override {
    return "clauses of a predicate are interleaved with other predicates";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    const TermStore& store = *ctx.store;
    // All clauses with known positions, in source order.
    struct Entry {
      SourceSpan span;
      std::string pred;
    };
    std::vector<Entry> entries;
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        if (!clause.span.known()) continue;
        entries.push_back({clause.span, pred});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return std::tie(a.span.line, a.span.column) <
                       std::tie(b.span.line, b.span.column);
              });

    std::string current;
    int last_line = 0;
    std::unordered_map<std::string, int> group_end_line;
    std::unordered_set<std::string> reported;
    for (const Entry& e : entries) {
      if (e.pred != current) {
        auto it = group_end_line.find(e.pred);
        if (it != group_end_line.end() && reported.insert(e.pred).second) {
          sink->Report(
              "PL007", Severity::kWarning, e.span, e.pred,
              prore::StrFormat("clauses of %s are discontiguous: the "
                               "previous group ended at line %d",
                               e.pred.c_str(), it->second));
        }
        if (!current.empty()) {
          // Close the group we are leaving at the last line it covered.
          group_end_line[current] = last_line;
        }
        current = e.pred;
      }
      last_line = e.span.line;
    }
  }
};

// ---- PL008: exception-handling pitfalls -----------------------------------

class ExceptionHygienePass : public LintPass {
 public:
  const char* name() const override { return "exception-hygiene"; }
  const char* code() const override { return "PL008"; }
  const char* description() const override {
    return "catch/3 whose catcher is unreachable, or throw/1 of an unbound "
           "ball";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    const TermStore& store = *ctx.store;
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) continue;
        std::unordered_map<uint32_t, int> var_counts;
        CountVars(store, clause.head, &var_counts);
        CountVars(store, clause.body, &var_counts);
        Walk(ctx, store, *body.value(), clause, pred, var_counts, sink);
      }
    }
  }

 private:
  static void CountVars(const TermStore& store, TermRef t,
                        std::unordered_map<uint32_t, int>* counts) {
    t = store.Deref(t);
    switch (store.tag(t)) {
      case Tag::kVar:
        ++(*counts)[store.var_id(t)];
        return;
      case Tag::kStruct:
        for (uint32_t i = 0; i < store.arity(t); ++i) {
          CountVars(store, store.arg(t, i), counts);
        }
        return;
      default:
        return;
    }
  }

  /// True if the subtree contains a throw/1 call (at any depth): such a
  /// recovery can re-deliver a ball to an enclosing catcher.
  static bool ContainsThrow(const TermStore& store, const BodyNode& node) {
    std::vector<TermRef> goals;
    analysis::CollectCalledGoals(store, node, &goals);
    for (TermRef g : goals) {
      g = store.Deref(g);
      if (!store.IsCallable(g)) continue;
      PredId id = store.pred_id(g);
      if (id.arity == 1 && store.symbols().Name(id.name) == "throw") {
        return true;
      }
    }
    return false;
  }

  void Walk(const LintContext& ctx, const TermStore& store,
            const BodyNode& node, const Clause& clause,
            const std::string& pred,
            const std::unordered_map<uint32_t, int>& var_counts,
            DiagnosticSink* sink) const {
    if (node.kind == BodyKind::kCatch) {
      // catch(catch(G, FreshVar, R), Catcher, _): the inner variable
      // catcher intercepts every ball G throws; unless R rethrows, the
      // outer Catcher can never fire from the protected goal.
      const BodyNode& inner = *node.children[0];
      if (inner.kind == BodyKind::kCatch) {
        TermRef inner_catcher =
            store.Deref(store.arg(store.Deref(inner.goal), 1));
        if (store.tag(inner_catcher) == Tag::kVar &&
            !ContainsThrow(store, *inner.children[1])) {
          sink->Report(
              "PL008", Severity::kWarning,
              SpanOf(ctx, node.goal, clause), pred,
              "outer catcher is unreachable: the inner catch/3 has a "
              "variable catcher and its recovery never rethrows");
        }
      }
    }
    if (node.kind == BodyKind::kCall) {
      TermRef g = store.Deref(node.goal);
      if (store.IsCallable(g)) {
        PredId id = store.pred_id(g);
        if (id.arity == 1 && store.symbols().Name(id.name) == "throw") {
          TermRef ball = store.Deref(store.arg(g, 0));
          auto it = store.tag(ball) == Tag::kVar
                        ? var_counts.find(store.var_id(ball))
                        : var_counts.end();
          if (it != var_counts.end() && it->second == 1) {
            sink->Report(
                "PL008", Severity::kWarning, SpanOf(ctx, g, clause), pred,
                prore::StrFormat(
                    "throw(%s) throws an unbound variable: it raises "
                    "instantiation_error, not the intended ball",
                    VarDisplayName(store, ball).c_str()));
          }
        }
      }
    }
    for (const auto& child : node.children) {
      Walk(ctx, store, *child, clause, pred, var_counts, sink);
    }
  }
};

// ---- PL200: goal provably always fails -------------------------------------

/// Input modes to analyze a predicate's clauses under: the observed call
/// patterns when mode inference saw any, else a single all-'?' mode.
std::vector<Mode> InputModesOf(const LintContext& ctx, const PredId& id) {
  auto it = ctx.modes->observed_inputs.find(id);
  if (it != ctx.modes->observed_inputs.end() && !it->second.empty()) {
    return it->second;
  }
  return {Mode(id.arity, ModeItem::kAny)};
}

class AlwaysFailsPass : public LintPass {
 public:
  const char* name() const override { return "always-fails-goal"; }
  const char* code() const override { return "PL200"; }
  const char* description() const override {
    return "goal calls a (predicate, mode) the analysis proves cannot "
           "succeed";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    if (ctx.absint == nullptr || ctx.modes == nullptr ||
        ctx.oracle == nullptr) {
      return;
    }
    const TermStore& store = *ctx.store;
    std::set<std::string> seen;  // dedup repeated identical goals
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) continue;
        // A goal is flagged only when it fails under EVERY observed caller
        // mode — failing in just one of several modes is often the point
        // (e.g. a guard clause).
        const std::vector<Mode> input_modes = InputModesOf(ctx, id);
        std::map<TermRef, size_t> fail_counts;
        for (const Mode& mode : input_modes) {
          AbstractEnv env = analysis::EnvFromHead(store, clause.head, mode);
          WalkCallsWithEnv(
              store, *body.value(), ctx.oracle, &env,
              [&](TermRef goal, const AbstractEnv& before) {
                if (GoalAlwaysFails(ctx, store, goal, before)) {
                  ++fail_counts[store.Deref(goal)];
                }
              });
        }
        for (const auto& [g, count] : fail_counts) {
          if (count < input_modes.size()) continue;
          Diagnostic d{"PL200", Severity::kWarning, SpanOf(ctx, g, clause),
                       pred,
                       prore::StrFormat(
                           "call to %s can never succeed here",
                           reader::PredName(store, store.pred_id(g))
                               .c_str())};
          if (seen.insert(d.ToString()).second) sink->Report(std::move(d));
        }
      }
    }
  }

 private:
  static bool GoalAlwaysFails(const LintContext& ctx, const TermStore& store,
                              TermRef goal, const AbstractEnv& env) {
    TermRef g = store.Deref(goal);
    if (!store.IsCallable(g)) return false;
    PredId callee = store.pred_id(g);
    if (!ctx.program->Has(callee)) return false;
    Mode call_mode = env.CallModeOf(store, g);
    if (ctx.absint->determinism.DetFor(store, callee, call_mode) ==
        analysis::absint::Det::kFailure) {
      return true;
    }
    const analysis::absint::GroundnessValue* gv =
        ctx.absint->groundness.Find(store, callee, call_mode);
    return gv != nullptr && !gv->can_succeed;
  }
};

// ---- PL201: clause head matches no call site --------------------------------

class UnreachableHeadPass : public LintPass {
 public:
  const char* name() const override { return "unreachable-clause-pattern"; }
  const char* code() const override { return "PL201"; }
  const char* description() const override {
    return "clause head is incompatible with every static call site's "
           "argument shapes";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    if (ctx.absint == nullptr || ctx.decls == nullptr) return;
    const TermStore& store = *ctx.store;
    // The harvest below only sees textual call sites, so any dynamic way
    // of constructing a call voids the whole pass.
    if (ProgramHasDynamicCalls(ctx)) return;

    // callee -> call-site goals, across every clause body.
    std::unordered_map<PredId, std::vector<TermRef>, term::PredIdHash> sites;
    for (const PredId& id : ctx.program->pred_order()) {
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) return;  // incomplete harvest: not sound to judge
        std::vector<TermRef> goals;
        analysis::CollectCalledGoals(store, *body.value(), &goals);
        for (TermRef goal : goals) {
          TermRef g = store.Deref(goal);
          if (!store.IsCallable(g)) continue;
          sites[store.pred_id(g)].push_back(g);
        }
      }
    }

    std::unordered_set<PredId, term::PredIdHash> entries(
        ctx.decls->entries.begin(), ctx.decls->entries.end());
    if (ctx.graph != nullptr) {
      for (const PredId& e : ctx.graph->EntryPoints()) entries.insert(e);
    }
    for (const PredId& id : ctx.program->pred_order()) {
      if (entries.count(id) > 0) continue;  // called from outside too
      auto sit = sites.find(id);
      if (sit == sites.end() || sit->second.empty()) continue;
      CheckPred(ctx, store, id, sit->second, sink);
    }
  }

 private:
  /// Principal-functor shape usable for match/mismatch decisions: atoms by
  /// symbol, integers by value, structures by functor/arity. Variables
  /// (match anything) and floats (equality is hazy) yield nullopt.
  static std::optional<std::string> ShapeOf(const TermStore& store,
                                            TermRef t) {
    t = store.Deref(t);
    switch (store.tag(t)) {
      case Tag::kAtom:
        return "a:" + store.symbols().Name(store.symbol(t));
      case Tag::kInt:
        return prore::StrFormat("i:%lld",
                                static_cast<long long>(store.int_value(t)));
      case Tag::kStruct:
        return prore::StrFormat(
            "s:%s/%u", store.symbols().Name(store.pred_id(t).name).c_str(),
            store.pred_id(t).arity);
      default:
        return std::nullopt;
    }
  }

  static bool ProgramHasDynamicCalls(const LintContext& ctx) {
    const TermStore& store = *ctx.store;
    static const std::unordered_set<std::string> kDynamic = {
        "assert", "asserta", "assertz", "retract", "call", "findall",
        "bagof", "setof", "forall"};
    for (const PredId& id : ctx.program->pred_order()) {
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) return true;
        std::vector<TermRef> goals;
        analysis::CollectCalledGoals(store, *body.value(), &goals);
        for (TermRef goal : goals) {
          TermRef g = store.Deref(goal);
          if (!store.IsCallable(g)) return true;  // variable goal
          const std::string& name =
              store.symbols().Name(store.pred_id(g).name);
          if (kDynamic.count(name) > 0) return true;
        }
      }
    }
    return false;
  }

  static void CheckPred(const LintContext& ctx, const TermStore& store,
                        const PredId& id,
                        const std::vector<TermRef>& call_sites,
                        DiagnosticSink* sink) {
    // Per position: the shapes seen across call sites, or "unconstrained"
    // as soon as one site passes something shapeless (variable, float).
    std::vector<std::set<std::string>> shapes(id.arity);
    std::vector<bool> constrained(id.arity, true);
    for (TermRef g : call_sites) {
      for (uint32_t k = 0; k < id.arity; ++k) {
        if (!constrained[k]) continue;
        auto s = ShapeOf(store, store.arg(g, k));
        if (!s.has_value()) {
          constrained[k] = false;
          shapes[k].clear();
        } else {
          shapes[k].insert(std::move(*s));
        }
      }
    }
    const std::string pred = reader::PredName(store, id);
    const auto& clauses = ctx.program->ClausesOf(id);
    for (size_t c = 0; c < clauses.size(); ++c) {
      TermRef head = store.Deref(clauses[c].head);
      for (uint32_t k = 0; k < id.arity; ++k) {
        if (!constrained[k]) continue;
        auto s = ShapeOf(store, store.arg(head, k));
        if (!s.has_value() || shapes[k].count(*s) > 0) continue;
        sink->Report(
            "PL201", Severity::kWarning,
            clauses[c].span.known()
                ? clauses[c].span
                : SpanOf(ctx, clauses[c].head, clauses[c]),
            pred,
            prore::StrFormat("clause %zu can match no call: no call site "
                             "passes %s at argument %u",
                             c + 1, s->substr(2).c_str(), k + 1));
        break;  // one report per clause is enough
      }
    }
  }
};

// ---- PL202: at-most-one-solution call leaves a choicepoint ------------------

class DetChoicepointPass : public LintPass {
 public:
  const char* name() const override { return "det-leaves-choicepoint"; }
  const char* code() const override { return "PL202"; }
  const char* description() const override {
    return "call has at most one solution but its clauses are not "
           "exclusive, so a dead choicepoint survives into later goals";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    if (ctx.absint == nullptr || ctx.modes == nullptr ||
        ctx.oracle == nullptr) {
      return;
    }
    const TermStore& store = *ctx.store;
    std::set<std::string> seen;
    for (const PredId& id : ctx.program->pred_order()) {
      const std::string pred = reader::PredName(store, id);
      for (const Clause& clause : ctx.program->ClausesOf(id)) {
        auto body = analysis::ParseBody(store, clause.body);
        if (!body.ok()) continue;
        const BodyNode& top = *body.value();
        if (top.kind != BodyKind::kConj || top.children.size() < 2) {
          continue;  // nothing follows the call within this clause
        }
        for (const Mode& mode : InputModesOf(ctx, id)) {
          AbstractEnv env = analysis::EnvFromHead(store, clause.head, mode);
          // Top-level goals only (followed by at least one more goal):
          // deeper calls are hard to attribute to a live choicepoint.
          for (size_t i = 0; i + 1 < top.children.size(); ++i) {
            const BodyNode& node = *top.children[i];
            if (node.kind == BodyKind::kCall) {
              CheckGoal(ctx, store, node.goal, env, clause, pred, &seen,
                        sink);
            }
            analysis::AdvanceEnvOverNode(store, node, ctx.oracle, &env);
          }
        }
      }
    }
  }

 private:
  static void CheckGoal(const LintContext& ctx, const TermStore& store,
                        TermRef goal, const AbstractEnv& env,
                        const Clause& clause, const std::string& pred,
                        std::set<std::string>* seen, DiagnosticSink* sink) {
    TermRef g = store.Deref(goal);
    if (!store.IsCallable(g)) return;
    PredId callee = store.pred_id(g);
    if (!ctx.program->Has(callee)) return;
    const auto& callee_clauses = ctx.program->ClausesOf(callee);
    if (callee_clauses.size() < 2) return;
    // A cut anywhere in the callee means the author is already managing
    // its choicepoints; flagging the standard guard-cut idiom is noise.
    for (const Clause& cc : callee_clauses) {
      auto cb = analysis::ParseBody(store, cc.body);
      if (!cb.ok() || analysis::ContainsClauseCut(*cb.value())) return;
    }
    Mode call_mode = env.CallModeOf(store, g);
    analysis::absint::Det det =
        ctx.absint->determinism.DetFor(store, callee, call_mode);
    if (det != analysis::absint::Det::kDet &&
        det != analysis::absint::Det::kSemidet) {
      return;
    }
    if (ctx.absint->determinism.ExclusiveUnder(callee, call_mode)) return;
    Diagnostic d{
        "PL202", Severity::kNote, SpanOf(ctx, g, clause), pred,
        prore::StrFormat(
            "call to %s is %s in mode %s but its clauses are not "
            "exclusive; the engine keeps a choicepoint later goals can "
            "needlessly retry (consider a cut or indexable arguments)",
            reader::PredName(store, callee).c_str(),
            analysis::absint::DetName(det),
            analysis::ModeString(call_mode).c_str())};
    if (seen->insert(d.ToString()).second) sink->Report(std::move(d));
  }
};

// ---- PL203: cut in a clause already proven exclusive ------------------------

class RedundantCutPass : public LintPass {
 public:
  const char* name() const override { return "redundant-cut"; }
  const char* code() const override { return "PL203"; }
  const char* description() const override {
    return "leading cut in a predicate whose clause heads are mutually "
           "exclusive under every inferred call mode";
  }

  void Run(const LintContext& ctx, DiagnosticSink* sink) const override {
    if (ctx.absint == nullptr || ctx.modes == nullptr) return;
    const TermStore& store = *ctx.store;
    for (const PredId& id : ctx.program->pred_order()) {
      const auto& clauses = ctx.program->ClausesOf(id);
      if (clauses.size() < 2) continue;
      auto wit = ctx.absint->determinism.witnesses.find(id);
      if (wit == ctx.absint->determinism.witnesses.end() ||
          wit->second.empty()) {
        continue;
      }
      auto it = ctx.modes->observed_inputs.find(id);
      if (it == ctx.modes->observed_inputs.end() || it->second.empty()) {
        continue;  // no evidence about how it is called
      }
      bool always_exclusive = true;
      for (const Mode& mode : it->second) {
        if (!ctx.absint->determinism.ExclusiveUnder(id, mode)) {
          always_exclusive = false;
          break;
        }
      }
      if (!always_exclusive) continue;
      const std::string pred = reader::PredName(store, id);
      for (size_t c = 0; c < clauses.size(); ++c) {
        if (!HasLeadingCut(store, clauses[c])) continue;
        sink->Report(
            "PL203", Severity::kNote,
            clauses[c].span.known()
                ? clauses[c].span
                : SpanOf(ctx, clauses[c].head, clauses[c]),
            pred,
            prore::StrFormat("cut in clause %zu is redundant: clause heads "
                             "are mutually exclusive under every inferred "
                             "call mode",
                             c + 1));
      }
    }
  }

 private:
  /// True when the first executed goal of the clause body is `!` — nothing
  /// runs before it, so the cut can only be pruning clause alternatives
  /// that head exclusivity already rules out.
  static bool HasLeadingCut(const TermStore& store, const Clause& clause) {
    auto body = analysis::ParseBody(store, clause.body);
    if (!body.ok()) return false;
    const BodyNode* node = body.value().get();
    while (node->kind == BodyKind::kConj && !node->children.empty()) {
      node = node->children.front().get();
    }
    return node->kind == BodyKind::kCut;
  }
};

}  // namespace

const PassRegistry& PassRegistry::Default() {
  static const PassRegistry* registry = [] {
    auto* r = new PassRegistry();
    r->Register(std::make_unique<SingletonVarsPass>());
    r->Register(std::make_unique<UndefinedPredPass>());
    r->Register(std::make_unique<UnreachableClausePass>());
    r->Register(std::make_unique<UnreachableGoalPass>());
    r->Register(std::make_unique<UnboundArithmeticPass>());
    r->Register(std::make_unique<PinnedSideEffectPass>());
    r->Register(std::make_unique<DiscontiguousPass>());
    r->Register(std::make_unique<ExceptionHygienePass>());
    r->Register(std::make_unique<AlwaysFailsPass>());
    r->Register(std::make_unique<UnreachableHeadPass>());
    r->Register(std::make_unique<DetChoicepointPass>());
    r->Register(std::make_unique<RedundantCutPass>());
    return r;
  }();
  return *registry;
}

}  // namespace prore::lint
