#ifndef PRORE_LINT_VALIDATE_H_
#define PRORE_LINT_VALIDATE_H_

#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/fixity.h"
#include "analysis/mode_inference.h"
#include "analysis/modes.h"
#include "lint/diagnostic.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::lint {

/// One specialized version the reorderer emitted: the original predicate,
/// the input mode the version assumes, and the name it was emitted under
/// (equal to the original name for unspecialized predicates). This mirrors
/// the reorderer's per-version report without depending on core.
struct VersionInfo {
  term::PredId pred;
  analysis::Mode mode;
  std::string version_name;
};

/// Everything the reorder validator needs. `oracle` must be built over the
/// *original* program — the validator holds the transformed program to the
/// same legality standard the reorderer itself used. Null analyses disable
/// the checks that need them (mode checks, fixity checks).
struct ReorderCheckInput {
  const reader::Program* original = nullptr;
  const reader::Program* transformed = nullptr;
  std::vector<VersionInfo> versions;
  const analysis::ModeAnalysis* modes = nullptr;   // may be null
  analysis::LegalityOracle* oracle = nullptr;      // may be null
  const analysis::FixityResult* fixity = nullptr;  // may be null
  /// Predicates whose clause and goal order the reorderer promised not to
  /// change (fixed predicates and frozen descendants): their versions must
  /// match the original clause-for-clause.
  analysis::PredSet no_reorder;
};

/// Re-checks a reorderer transformation from the outside:
///   PL100  a call in a transformed body is illegal under the version's
///          declared input mode (builtin demand violated, or a version
///          called where its '+' assumptions are not met);
///   PL101  clause structure was not preserved: a clause lost/gained
///          goals, changed its cut count, moved a pinned (side-effect /
///          fixed) goal, or a no-reorder predicate's order changed;
///   PL102  a dispatcher under an original name is malformed: wrong shape,
///          leaf calling a missing version, or a leaf incompatible with
///          the var-test path that reaches it;
///   PL103  an original predicate has no definition in the transformed
///          program.
/// Returns the findings sorted; empty means the transformation verified.
std::vector<Diagnostic> ValidateReorder(term::TermStore* store,
                                        const ReorderCheckInput& input);

}  // namespace prore::lint

#endif  // PRORE_LINT_VALIDATE_H_
