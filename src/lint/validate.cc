// The reorder validator: re-checks a reorderer transformation against the
// original program, so every optimizer run verifies its own output. The
// checks mirror the guarantees the reorderer claims (PL100..PL103); see
// validate.h for the catalogue.

#include "lint/validate.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/body.h"
#include "common/str_util.h"
#include "reader/writer.h"

namespace prore::lint {
namespace {

using analysis::AbstractEnv;
using analysis::BodyKind;
using analysis::BodyNode;
using analysis::Mode;
using analysis::ModeItem;
using analysis::VarState;
using reader::Clause;
using term::PredId;
using term::Tag;
using term::TermRef;
using term::TermStore;

size_t PlusCount(const Mode& mode) {
  size_t n = 0;
  for (ModeItem m : mode) {
    if (m == ModeItem::kPlus) ++n;
  }
  return n;
}

class Validator {
 public:
  Validator(TermStore* store, const ReorderCheckInput& in)
      : store_(store), in_(in) {
    for (const VersionInfo& v : in.versions) {
      const std::string& original = store_->symbols().Name(v.pred.name);
      if (v.version_name != original) {
        by_name_.emplace(v.version_name, &v);
        dispatched_.insert(v.pred);
      }
      by_pred_[v.pred].push_back(&v);
    }
  }

  std::vector<Diagnostic> Run() {
    CheckCoverage();
    for (const VersionInfo& v : in_.versions) CheckVersion(v);
    CheckDispatchers();
    sink_.Sort();
    return sink_.Take();
  }

 private:
  // Deduplicated reporting: transformed terms mostly have no source spans,
  // so identical findings from different walks would otherwise collide.
  void Report(const char* code, Severity severity, reader::SourceSpan span,
              std::string pred, std::string message) {
    Diagnostic d{code, severity, span, std::move(pred), std::move(message)};
    if (seen_.insert(d.ToString()).second) sink_.Report(std::move(d));
  }

  /// Span of a transformed goal: unrenamed goals keep their original
  /// TermRef, so the original program's span table often still knows them.
  reader::SourceSpan SpanOf(TermRef t) const {
    return in_.original->TermSpan(store_->Deref(t));
  }

  std::string NameOf(const PredId& id) const {
    return reader::PredName(*store_, id);
  }

  /// The original predicate a (possibly version-renamed) callee denotes.
  PredId MapCallee(const PredId& callee) const {
    auto it = by_name_.find(store_->symbols().Name(callee.name));
    if (it != by_name_.end() && it->second->pred.arity == callee.arity) {
      return it->second->pred;
    }
    return callee;
  }

  // ---- PL103: predicate coverage ------------------------------------------

  void CheckCoverage() {
    for (const PredId& pred : in_.original->pred_order()) {
      if (!in_.transformed->Has(pred)) {
        Report("PL103", Severity::kError, {}, NameOf(pred),
               "predicate has no definition in the transformed program");
      }
    }
  }

  // ---- Structural helpers --------------------------------------------------

  /// A renaming-insensitive key for one goal: the original predicate name
  /// plus the written arguments. Emitted goals reuse the original argument
  /// TermRefs, so equal goals render equally.
  std::string GoalKey(TermRef goal) const {
    TermRef g = store_->Deref(goal);
    if (!store_->IsCallable(g)) return reader::WriteTerm(*store_, g);
    std::string key = NameOf(MapCallee(store_->pred_id(g)));
    for (uint32_t i = 0; i < store_->arity(g); ++i) {
      key += "|";
      key += reader::WriteTerm(*store_, store_->arg(g, i));
    }
    return key;
  }

  /// Collects goal keys in execution order. Set-predicates contribute one
  /// key from their outer arguments (their inner conjunction may be
  /// legitimately reordered) plus the inner calls.
  void CollectKeys(const BodyNode& node, std::vector<std::string>* out) const {
    switch (node.kind) {
      case BodyKind::kTrue:
      case BodyKind::kFail:
      case BodyKind::kCut:
        return;
      case BodyKind::kCall:
        out->push_back(GoalKey(node.goal));
        return;
      case BodyKind::kSetPred: {
        TermRef g = store_->Deref(node.goal);
        std::string key = NameOf(store_->pred_id(g));
        key += '|';
        key += reader::WriteTerm(*store_, store_->arg(g, 0));
        key += '|';
        key += reader::WriteTerm(*store_, store_->arg(g, 2));
        out->push_back(std::move(key));
        CollectKeys(*node.children[0], out);
        return;
      }
      case BodyKind::kCatch: {
        // Opaque: one key from the catcher pattern plus the inner calls
        // (the reorderer never rearranges inside catch/3, but callees may
        // be renamed by unfolding).
        TermRef g = store_->Deref(node.goal);
        std::string key = NameOf(store_->pred_id(g));
        key += '|';
        key += reader::WriteTerm(*store_, store_->arg(g, 1));
        out->push_back(std::move(key));
        for (const auto& child : node.children) CollectKeys(*child, out);
        return;
      }
      case BodyKind::kConj:
      case BodyKind::kDisj:
      case BodyKind::kIfThenElse:
      case BodyKind::kNeg:
        for (const auto& child : node.children) CollectKeys(*child, out);
        return;
    }
  }

  /// True if the goal is pinned: the reorderer promises not to move it
  /// relative to other pinned goals (side-effect built-ins and calls to
  /// fixed predicates).
  bool IsPinned(const std::string& key) const {
    auto it = pinned_keys_.find(key);
    return it != pinned_keys_.end();
  }

  void NotePinned(const BodyNode& node) {
    std::vector<TermRef> goals;
    analysis::CollectCalledGoals(*store_, node, &goals);
    for (TermRef goal : goals) {
      TermRef g = store_->Deref(goal);
      if (!store_->IsCallable(g)) continue;
      PredId callee = MapCallee(store_->pred_id(g));
      const std::string& bare = store_->symbols().Name(callee.name);
      bool pinned = analysis::IsSideEffectBuiltin(bare, callee.arity) ||
                    (in_.fixity != nullptr && in_.original->Has(callee) &&
                     in_.fixity->IsFixed(callee));
      if (pinned) pinned_keys_.insert(GoalKey(g));
    }
  }

  static int CountCuts(const BodyNode& node) {
    int n = node.kind == BodyKind::kCut ? 1 : 0;
    for (const auto& child : node.children) n += CountCuts(*child);
    return n;
  }

  /// `(ground(A), ... -> Optimistic ; Normal)` — the §V-D run-time guard
  /// wrapper. Returns the normal branch and exposes the optimistic one.
  const BodyNode* StripGuard(const BodyNode& body,
                             const BodyNode** optimistic) const {
    *optimistic = nullptr;
    if (body.kind != BodyKind::kIfThenElse) return &body;
    std::vector<TermRef> cond_goals;
    analysis::CollectCalledGoals(*store_, *body.children[0], &cond_goals);
    if (cond_goals.empty()) return &body;
    for (TermRef goal : cond_goals) {
      TermRef g = store_->Deref(goal);
      if (store_->tag(g) != Tag::kStruct || store_->arity(g) != 1 ||
          store_->symbols().Name(store_->symbol(g)) != "ground") {
        return &body;
      }
    }
    *optimistic = body.children[1].get();
    return body.children[2].get();
  }

  /// Structural equality of original vs transformed term, tolerating only
  /// the version renaming of callable functors. Leaves compare by identity
  /// (the emitter reuses the original TermRefs for everything it does not
  /// rebuild).
  bool EqualModuloVersions(TermRef a, TermRef b) const {
    a = store_->Deref(a);
    b = store_->Deref(b);
    if (a == b) return true;
    if (store_->tag(a) != store_->tag(b)) return false;
    switch (store_->tag(a)) {
      case Tag::kVar:
        return false;  // distinct refs = distinct variables
      case Tag::kInt:
        return store_->int_value(a) == store_->int_value(b);
      case Tag::kFloat:
        return store_->float_value(a) == store_->float_value(b);
      case Tag::kAtom:
      case Tag::kStruct: {
        if (store_->arity(a) != store_->arity(b)) return false;
        PredId pa = store_->pred_id(a);
        if (pa != MapCallee(store_->pred_id(b))) return false;
        for (uint32_t i = 0; i < store_->arity(a); ++i) {
          if (!EqualModuloVersions(store_->arg(a, i), store_->arg(b, i))) {
            return false;
          }
        }
        return true;
      }
    }
    return false;
  }

  /// Body-tree equality modulo version renaming. Comparing trees rather
  /// than raw terms tolerates the emitter's normalizations (`false` ->
  /// `fail`, `not` -> `\+`, `call(G)` unwrapping) that preserve meaning.
  bool EqualTree(const BodyNode& a, const BodyNode& b) const {
    if (a.kind != b.kind || a.children.size() != b.children.size()) {
      return false;
    }
    if (a.kind == BodyKind::kCall) {
      return EqualModuloVersions(a.goal, b.goal);
    }
    if (a.kind == BodyKind::kSetPred) {
      TermRef ga = store_->Deref(a.goal);
      TermRef gb = store_->Deref(b.goal);
      if (store_->pred_id(ga) != store_->pred_id(gb) ||
          !EqualModuloVersions(store_->arg(ga, 0), store_->arg(gb, 0)) ||
          !EqualModuloVersions(store_->arg(ga, 2), store_->arg(gb, 2))) {
        return false;
      }
    }
    for (size_t i = 0; i < a.children.size(); ++i) {
      if (!EqualTree(*a.children[i], *b.children[i])) return false;
    }
    return true;
  }

  // ---- PL101: clause preservation ------------------------------------------

  struct BodyShape {
    std::vector<std::string> sequence;  // goal keys, execution order
    std::vector<std::string> sorted;    // the multiset
    std::vector<std::string> pinned;    // pinned subsequence, in order
    int cuts = 0;
  };

  BodyShape ShapeOf(const BodyNode& body) const {
    BodyShape s;
    CollectKeys(body, &s.sequence);
    s.sorted = s.sequence;
    std::sort(s.sorted.begin(), s.sorted.end());
    for (const std::string& key : s.sequence) {
      if (IsPinned(key)) s.pinned.push_back(key);
    }
    s.cuts = CountCuts(body);
    return s;
  }

  static bool SameShape(const BodyShape& a, const BodyShape& b) {
    return a.sorted == b.sorted && a.pinned == b.pinned && a.cuts == b.cuts;
  }

  void CheckVersion(const VersionInfo& v) {
    const std::string& original_name = store_->symbols().Name(v.pred.name);
    PredId vid = v.pred;
    if (v.version_name != original_name) {
      vid = PredId{store_->symbols().Intern(v.version_name), v.pred.arity};
      // A version merged into a structurally identical twin leaves no
      // clauses of its own; the twin is checked under its own entry.
      if (!in_.transformed->Has(vid)) return;
    } else if (!in_.transformed->Has(vid)) {
      return;  // PL103 already reported
    }
    const auto& orig_clauses = in_.original->ClausesOf(v.pred);
    const auto& trans_clauses = in_.transformed->ClausesOf(vid);
    const std::string where = NameOf(vid);
    CheckBodyModes(v, vid, trans_clauses);

    if (in_.no_reorder.count(v.pred) > 0) {
      if (orig_clauses.size() != trans_clauses.size()) {
        Report("PL101", Severity::kError, {}, where,
               prore::StrFormat(
                   "no-reorder predicate changed clause count: %zu -> %zu",
                   orig_clauses.size(), trans_clauses.size()));
        return;
      }
      for (size_t i = 0; i < orig_clauses.size(); ++i) {
        bool same = EqualModuloVersions(orig_clauses[i].head,
                                        trans_clauses[i].head);
        if (same) {
          auto ta = analysis::ParseBody(*store_, orig_clauses[i].body);
          auto tb = analysis::ParseBody(*store_, trans_clauses[i].body);
          if (ta.ok() != tb.ok()) {
            same = false;
          } else if (ta.ok()) {
            same = EqualTree(*ta.value(), *tb.value());
          }
        }
        if (!same) {
          Report("PL101", Severity::kError,
                 orig_clauses[i].span, where,
                 prore::StrFormat("no-reorder predicate: clause %zu is not "
                                  "identical to the original",
                                  i + 1));
        }
      }
      return;
    }

    // Reorderable predicate: match clauses by head (the emitter reuses the
    // original head argument TermRefs), then require each body to keep its
    // goal multiset, cut count and pinned-goal order.
    for (const Clause& clause : orig_clauses) {
      auto body = analysis::ParseBody(*store_, clause.body);
      if (body.ok()) NotePinned(*body.value());
    }
    // Written (not ref-identity) keys, like GoalKey: emitted heads reuse
    // the original argument TermRefs so both render equally, and a
    // re-parsed program (the analysis cache re-validating an adopted
    // entry) still matches as long as variables keep their source names.
    // Colliding keys are fine — the shape check below disambiguates.
    auto head_key = [this](TermRef head) {
      TermRef h = store_->Deref(head);
      std::string key;
      for (uint32_t i = 0; i < store_->arity(h); ++i) {
        key += reader::WriteTerm(*store_, store_->arg(h, i));
        key += ',';
      }
      return key;
    };
    std::multimap<std::string, size_t> by_head;
    std::vector<BodyShape> orig_shapes(orig_clauses.size());
    std::vector<bool> orig_ok(orig_clauses.size(), false);
    for (size_t i = 0; i < orig_clauses.size(); ++i) {
      auto body = analysis::ParseBody(*store_, orig_clauses[i].body);
      if (!body.ok()) continue;
      orig_shapes[i] = ShapeOf(*body.value());
      orig_ok[i] = true;
      by_head.emplace(head_key(orig_clauses[i].head), i);
    }
    std::vector<bool> consumed(orig_clauses.size(), false);
    for (size_t t = 0; t < trans_clauses.size(); ++t) {
      auto body = analysis::ParseBody(*store_, trans_clauses[t].body);
      if (!body.ok()) {
        Report("PL101", Severity::kError, {}, where,
               prore::StrFormat("clause %zu: transformed body is not "
                                "analyzable: %s",
                                t + 1, body.status().ToString().c_str()));
        continue;
      }
      const BodyNode* optimistic = nullptr;
      const BodyNode* normal = StripGuard(*body.value(), &optimistic);
      BodyShape shape = ShapeOf(*normal);
      auto [lo, hi] = by_head.equal_range(head_key(trans_clauses[t].head));
      bool matched = false;
      bool any_candidate = false;
      for (auto it = lo; it != hi; ++it) {
        size_t i = it->second;
        if (consumed[i] || !orig_ok[i]) continue;
        any_candidate = true;
        if (!SameShape(orig_shapes[i], shape)) continue;
        if (optimistic != nullptr) {
          BodyShape opt_shape = ShapeOf(*optimistic);
          if (!SameShape(orig_shapes[i], opt_shape)) continue;
        }
        consumed[i] = true;
        matched = true;
        break;
      }
      if (!matched) {
        Report("PL101", Severity::kError, {}, where,
               any_candidate
                   ? prore::StrFormat(
                         "clause %zu does not preserve its original body "
                         "(goals lost or duplicated, cut count changed, "
                         "or a pinned goal moved)",
                         t + 1)
                   : prore::StrFormat(
                         "clause %zu has no matching original clause",
                         t + 1));
      }
    }
    for (size_t i = 0; i < orig_clauses.size(); ++i) {
      if (orig_ok[i] && !consumed[i]) {
        Report("PL101", Severity::kError, orig_clauses[i].span, where,
               prore::StrFormat("original clause %zu is missing from the "
                                "transformed predicate",
                                i + 1));
      }
    }
  }

  // ---- PL100: legality of transformed bodies -------------------------------

  void CheckBodyModes(const VersionInfo& v, const PredId& vid,
                      const std::vector<Clause>& clauses) {
    if (in_.oracle == nullptr) return;
    if (v.mode.size() != v.pred.arity) return;
    const std::string where = NameOf(vid);
    // The check is differential: walk the *original* clauses under the
    // same input mode first, collecting the callees whose demands the
    // original program already cannot prove (the oracle is conservative —
    // e.g. it cannot see that findall/3 grounds its result). Only
    // violations the transformation introduced are reported.
    baseline_.clear();
    collecting_baseline_ = true;
    for (const Clause& clause : in_.original->ClausesOf(v.pred)) {
      auto body = analysis::ParseBody(*store_, clause.body);
      if (!body.ok()) continue;
      AbstractEnv env =
          analysis::EnvFromHead(*store_, store_->Deref(clause.head), v.mode);
      WalkModes(*body.value(), &env, where);
    }
    collecting_baseline_ = false;
    for (const Clause& clause : clauses) {
      auto body = analysis::ParseBody(*store_, clause.body);
      if (!body.ok()) continue;  // PL101 reported it
      AbstractEnv env =
          analysis::EnvFromHead(*store_, store_->Deref(clause.head), v.mode);
      WalkModes(*body.value(), &env, where);
    }
  }

  /// Collects the instantiation facts a guard conjunction establishes:
  /// ground/1 grounds its argument's variables in the then-branch;
  /// '$var_test'/1 means "is an unbound variable" in the then-branch and
  /// "is bound" in the else-branch. Returns false for ordinary conditions.
  bool GuardFacts(const BodyNode& cond, std::vector<TermRef>* ground_args,
                  std::vector<TermRef>* var_args) const {
    switch (cond.kind) {
      case BodyKind::kConj:
        for (const auto& child : cond.children) {
          if (!GuardFacts(*child, ground_args, var_args)) return false;
        }
        return true;
      case BodyKind::kCall: {
        TermRef g = store_->Deref(cond.goal);
        if (store_->tag(g) != Tag::kStruct || store_->arity(g) != 1) {
          return false;
        }
        const std::string& name = store_->symbols().Name(store_->symbol(g));
        if (name == "ground") {
          ground_args->push_back(store_->arg(g, 0));
          return true;
        }
        if (name == "$var_test") {
          var_args->push_back(store_->arg(g, 0));
          return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  void WalkModes(const BodyNode& node, AbstractEnv* env,
                 const std::string& where) {
    switch (node.kind) {
      case BodyKind::kTrue:
      case BodyKind::kFail:
      case BodyKind::kCut:
        return;
      case BodyKind::kConj:
        for (const auto& child : node.children) {
          WalkModes(*child, env, where);
        }
        return;
      case BodyKind::kDisj: {
        AbstractEnv left = *env, right = *env;
        WalkModes(*node.children[0], &left, where);
        WalkModes(*node.children[1], &right, where);
        *env = AbstractEnv::Join(left, right);
        return;
      }
      case BodyKind::kIfThenElse: {
        AbstractEnv then_env = *env, else_env = *env;
        std::vector<TermRef> ground_args, var_args;
        if (GuardFacts(*node.children[0], &ground_args, &var_args)) {
          // The guard's own goals are instantiation tests — legal in any
          // mode — so only their refinement matters.
          for (TermRef a : ground_args) {
            std::vector<TermRef> vars;
            store_->CollectVars(a, &vars);
            for (TermRef var : vars) {
              then_env.Set(store_->var_id(var), VarState::kGround);
            }
          }
          for (TermRef a : var_args) {
            TermRef t = store_->Deref(a);
            if (store_->tag(t) == Tag::kVar) {
              then_env.Set(store_->var_id(t), VarState::kFree);
              // else-branch: the argument is bound (nonvar), though not
              // necessarily ground.
              if (else_env.Get(store_->var_id(t)) == VarState::kFree) {
                else_env.Set(store_->var_id(t), VarState::kUnknown);
              }
            }
          }
        } else {
          WalkModes(*node.children[0], &then_env, where);
        }
        WalkModes(*node.children[1], &then_env, where);
        WalkModes(*node.children[2], &else_env, where);
        *env = AbstractEnv::Join(then_env, else_env);
        return;
      }
      case BodyKind::kNeg: {
        AbstractEnv scratch = *env;
        WalkModes(*node.children[0], &scratch, where);
        return;
      }
      case BodyKind::kSetPred: {
        AbstractEnv scratch = *env;
        WalkModes(*node.children[0], &scratch, where);
        TermRef g = store_->Deref(node.goal);
        std::vector<TermRef> vars;
        store_->CollectVars(store_->arg(g, 2), &vars);
        for (TermRef var : vars) {
          if (env->Get(store_->var_id(var)) == VarState::kFree) {
            env->Set(store_->var_id(var), VarState::kUnknown);
          }
        }
        return;
      }
      case BodyKind::kCatch: {
        AbstractEnv goal_env = *env, rec_env = *env;
        WalkModes(*node.children[0], &goal_env, where);
        TermRef g = store_->Deref(node.goal);
        std::vector<TermRef> catcher_vars;
        store_->CollectVars(store_->arg(g, 1), &catcher_vars);
        for (TermRef var : catcher_vars) {
          if (rec_env.Get(store_->var_id(var)) == VarState::kFree) {
            rec_env.Set(store_->var_id(var), VarState::kUnknown);
          }
        }
        WalkModes(*node.children[1], &rec_env, where);
        *env = AbstractEnv::Join(goal_env, rec_env);
        return;
      }
      case BodyKind::kCall: {
        CheckCall(node.goal, *env, where);
        AdvanceCall(node.goal, env);
        return;
      }
    }
  }

  void CheckCall(TermRef goal, const AbstractEnv& env,
                 const std::string& where) {
    TermRef g = store_->Deref(goal);
    if (!store_->IsCallable(g)) return;
    PredId callee = store_->pred_id(g);
    const std::string& bare = store_->symbols().Name(callee.name);
    if (bare == "=" && callee.arity == 2) return;
    Mode call_mode = env.CallModeOf(*store_, g);

    auto it = by_name_.find(bare);
    if (it != by_name_.end() && it->second->pred.arity == callee.arity) {
      if (collecting_baseline_) return;  // originals never call versions
      // Direct call to a specialized version: every '+' the version
      // assumes must be provably instantiated here.
      const Mode& assumed = it->second->mode;
      for (size_t i = 0; i < assumed.size() && i < call_mode.size(); ++i) {
        if (assumed[i] == ModeItem::kPlus &&
            call_mode[i] != ModeItem::kPlus) {
          Report("PL100", Severity::kError, SpanOf(g), where,
                 prore::StrFormat(
                     "call to %s assumes argument %zu instantiated "
                     "(mode %s) but the call mode is %s",
                     NameOf(callee).c_str(), i + 1,
                     analysis::ModeString(assumed).c_str(),
                     analysis::ModeString(call_mode).c_str()));
        }
      }
      return;
    }
    if (in_.original->Has(callee)) {
      // A call through the original name reaches the dispatcher, whose
      // run-time tests select a safe version — mode-legal by design.
      // Coverage (PL103) already guarantees the name still resolves.
      return;
    }
    bool illegal = false;
    const char* what = nullptr;
    const auto& builtin_pairs =
        in_.oracle->builtin_modes().PairsFor(bare, callee.arity);
    if (!builtin_pairs.empty()) {
      illegal = !in_.oracle->builtin_modes().IsLegalCall(bare, callee.arity,
                                                         call_mode);
      what = "built-in %s called in illegal mode %s";
    } else if (in_.modes != nullptr && in_.modes->legal_table.Has(callee)) {
      illegal = !in_.modes->legal_table.IsLegalCall(callee, call_mode);
      what = "call to %s in mode %s matches none of its legal modes";
    }
    if (!illegal) return;
    if (collecting_baseline_) {
      baseline_.insert(NameOf(callee));
      return;
    }
    if (baseline_.count(NameOf(callee)) > 0) return;
    Report("PL100", Severity::kError, SpanOf(g), where,
           prore::StrFormat(what, NameOf(callee).c_str(),
                            analysis::ModeString(call_mode).c_str()));
  }

  void AdvanceCall(TermRef goal, AbstractEnv* env) {
    TermRef g = store_->Deref(goal);
    if (!store_->IsCallable(g)) return;
    PredId callee = store_->pred_id(g);
    const std::string& bare = store_->symbols().Name(callee.name);
    if (bare == "=" && callee.arity == 2) {
      env->ApplyUnification(*store_, store_->arg(g, 0), store_->arg(g, 1));
      return;
    }
    Mode call_mode = env->CallModeOf(*store_, g);
    Mode output = in_.oracle->Output(MapCallee(callee), call_mode);
    env->ApplyCallOutput(*store_, g, output);
  }

  // ---- PL102: dispatcher shape ---------------------------------------------

  void CheckDispatchers() {
    for (const PredId& pred : dispatched_) {
      if (!in_.transformed->Has(pred)) continue;  // PL103 reported
      const std::string where = NameOf(pred);
      const auto& clauses = in_.transformed->ClausesOf(pred);
      if (clauses.size() != 1) {
        Report("PL102", Severity::kError, {}, where,
               prore::StrFormat(
                   "dispatcher must be a single clause, found %zu",
                   clauses.size()));
        continue;
      }
      TermRef head = store_->Deref(clauses[0].head);
      std::vector<TermRef> head_args(store_->arity(head));
      bool head_ok = true;
      std::set<TermRef> distinct;
      for (uint32_t i = 0; i < store_->arity(head); ++i) {
        head_args[i] = store_->Deref(store_->arg(head, i));
        if (store_->tag(head_args[i]) != Tag::kVar ||
            !distinct.insert(head_args[i]).second) {
          head_ok = false;
        }
      }
      if (!head_ok) {
        Report("PL102", Severity::kError, {}, where,
               "dispatcher head must be distinct variables");
        continue;
      }
      auto body = analysis::ParseBody(*store_, clauses[0].body);
      if (!body.ok()) {
        Report("PL102", Severity::kError, {}, where,
               "dispatcher body is not analyzable: " +
                   body.status().ToString());
        continue;
      }
      size_t min_plus = SIZE_MAX;
      for (const VersionInfo* v : by_pred_[pred]) {
        min_plus = std::min(min_plus, PlusCount(v->mode));
      }
      // -1 untested, 0 tested-unbound, 1 tested-bound, per argument.
      std::vector<int> path(head_args.size(), -1);
      CheckDispatchNode(*body.value(), pred, head_args, min_plus, &path,
                        where);
    }
  }

  void CheckDispatchNode(const BodyNode& node, const PredId& pred,
                         const std::vector<TermRef>& head_args,
                         size_t min_plus, std::vector<int>* path,
                         const std::string& where) {
    if (node.kind == BodyKind::kCall) {
      TermRef g = store_->Deref(node.goal);
      if (!store_->IsCallable(g)) {
        Report("PL102", Severity::kError, {}, where,
               "dispatcher leaf is not a callable goal");
        return;
      }
      PredId callee = store_->pred_id(g);
      const std::string& bare = store_->symbols().Name(callee.name);
      if (callee == pred) {
        Report("PL102", Severity::kError, {}, where,
               "dispatcher calls itself");
        return;
      }
      auto it = by_name_.find(bare);
      if (it == by_name_.end() || it->second->pred != pred) {
        Report("PL102", Severity::kError, {}, where,
               prore::StrFormat("dispatcher targets %s, which is not a "
                                "version of this predicate",
                                NameOf(callee).c_str()));
        return;
      }
      if (!in_.transformed->Has(callee)) {
        Report("PL102", Severity::kError, {}, where,
               prore::StrFormat("dispatcher targets missing predicate %s",
                                NameOf(callee).c_str()));
        return;
      }
      for (uint32_t i = 0; i < head_args.size(); ++i) {
        if (store_->arity(g) != head_args.size() ||
            store_->Deref(store_->arg(g, i)) != head_args[i]) {
          Report("PL102", Severity::kError, {}, where,
                 "dispatcher leaf does not pass the head arguments through");
          return;
        }
      }
      // The leaf must fit the var-test path, except for the designed
      // fallback: when no version matches a path, the least demanding
      // version takes it (its head unification re-checks at run time).
      const Mode& assumed = it->second->mode;
      bool compatible = true;
      for (size_t i = 0; i < assumed.size() && i < path->size(); ++i) {
        if (assumed[i] == ModeItem::kPlus && (*path)[i] != 1) {
          compatible = false;
        }
      }
      if (!compatible && PlusCount(assumed) != min_plus) {
        Report("PL102", Severity::kError, {}, where,
               prore::StrFormat(
                   "dispatcher routes a path to %s (mode %s) that does not "
                   "establish its assumptions",
                   NameOf(callee).c_str(),
                   analysis::ModeString(assumed).c_str()));
      }
      return;
    }
    if (node.kind == BodyKind::kIfThenElse) {
      const BodyNode& cond = *node.children[0];
      TermRef g = store_->Deref(cond.goal);
      int arg_index = -1;
      if (cond.kind == BodyKind::kCall && store_->tag(g) == Tag::kStruct &&
          store_->arity(g) == 1 &&
          store_->symbols().Name(store_->symbol(g)) == "$var_test") {
        TermRef tested = store_->Deref(store_->arg(g, 0));
        for (size_t i = 0; i < head_args.size(); ++i) {
          if (head_args[i] == tested) {
            arg_index = static_cast<int>(i);
            break;
          }
        }
      }
      if (arg_index < 0) {
        Report("PL102", Severity::kError, {}, where,
               "dispatcher condition is not a '$var_test' on a head "
               "argument");
        return;
      }
      int saved = (*path)[arg_index];
      (*path)[arg_index] = 0;  // then: unbound
      CheckDispatchNode(*node.children[1], pred, head_args, min_plus, path,
                        where);
      (*path)[arg_index] = 1;  // else: bound
      CheckDispatchNode(*node.children[2], pred, head_args, min_plus, path,
                        where);
      (*path)[arg_index] = saved;
      return;
    }
    Report("PL102", Severity::kError, {}, where,
           "dispatcher body has an unexpected shape (expected nested "
           "'$var_test' conditionals over version calls)");
  }

  TermStore* store_;
  const ReorderCheckInput& in_;
  DiagnosticSink sink_;
  std::set<std::string> seen_;
  std::unordered_map<std::string, const VersionInfo*> by_name_;
  std::unordered_map<PredId, std::vector<const VersionInfo*>,
                     term::PredIdHash>
      by_pred_;
  analysis::PredSet dispatched_;
  std::set<std::string> pinned_keys_;
  /// Callees whose demands the original program already failed to prove
  /// under the version mode being checked; not re-reported (PL100 is
  /// differential — it flags what the transformation *introduced*).
  std::set<std::string> baseline_;
  bool collecting_baseline_ = false;
};

}  // namespace

std::vector<Diagnostic> ValidateReorder(TermStore* store,
                                        const ReorderCheckInput& input) {
  Validator validator(store, input);
  return validator.Run();
}

}  // namespace prore::lint
