#include "lint/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/str_util.h"

namespace prore::lint {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out;
  if (span.known()) {
    out += prore::StrFormat("%d:%d: ", span.line, span.column);
  }
  out += SeverityName(severity);
  out += ": ";
  out += code;
  out += ": ";
  out += message;
  if (!pred.empty()) {
    out += " [";
    out += pred;
    out += "]";
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += prore::StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Diagnostic::ToJson() const {
  std::string out = "{\"code\":";
  AppendJsonString(&out, code);
  out += ",\"severity\":";
  AppendJsonString(&out, SeverityName(severity));
  out += prore::StrFormat(",\"line\":%d,\"column\":%d", span.line,
                          span.column);
  out += ",\"pred\":";
  AppendJsonString(&out, pred);
  out += ",\"message\":";
  AppendJsonString(&out, message);
  out += "}";
  return out;
}

size_t DiagnosticSink::CountAtLeast(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity >= s) ++n;
  }
  return n;
}

void DiagnosticSink::Sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.span.line, a.span.column, a.code,
                                     a.pred, a.message) <
                            std::tie(b.span.line, b.span.column, b.code,
                                     b.pred, b.message);
                   });
}

std::string RenderText(const std::vector<Diagnostic>& diags,
                       std::string_view file) {
  std::string out;
  for (const Diagnostic& d : diags) {
    if (!file.empty()) {
      out += file;
      out += ":";
    }
    out += d.ToString();
    out += "\n";
  }
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diags,
                       std::string_view file) {
  std::string out = "{\"file\":";
  AppendJsonString(&out, file);
  out += ",\"diagnostics\":[";
  for (size_t i = 0; i < diags.size(); ++i) {
    if (i) out += ",";
    out += diags[i].ToJson();
  }
  size_t errors = 0, warnings = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
  }
  out += prore::StrFormat("],\"errors\":%zu,\"warnings\":%zu}", errors,
                          warnings);
  return out;
}

std::string RenderSarif(
    const std::vector<std::pair<std::string, std::vector<Diagnostic>>>&
        file_diags) {
  // Rule metadata is keyed by code; first-seen order keeps the ruleIndex
  // assignment deterministic across runs.
  std::vector<std::string> rules;
  auto rule_index = [&rules](const std::string& code) {
    for (size_t i = 0; i < rules.size(); ++i) {
      if (rules[i] == code) return i;
    }
    rules.push_back(code);
    return rules.size() - 1;
  };

  std::string results;
  bool first_result = true;
  for (const auto& [file, diags] : file_diags) {
    for (const Diagnostic& d : diags) {
      if (!first_result) results += ",";
      first_result = false;
      size_t idx = rule_index(d.code);
      results += "{\"ruleId\":";
      AppendJsonString(&results, d.code);
      results += prore::StrFormat(",\"ruleIndex\":%zu,\"level\":", idx);
      AppendJsonString(&results, SeverityName(d.severity));
      results += ",\"message\":{\"text\":";
      std::string text = d.message;
      if (!d.pred.empty()) text += " [" + d.pred + "]";
      AppendJsonString(&results, text);
      results += "},\"locations\":[{\"physicalLocation\":{"
                 "\"artifactLocation\":{\"uri\":";
      AppendJsonString(&results, file);
      // SARIF regions are 1-based; clamp unknown spans (line 0) to 1.
      results += prore::StrFormat(
          "},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}",
          d.span.line > 0 ? d.span.line : 1,
          d.span.column > 0 ? d.span.column : 1);
    }
  }

  std::string out =
      "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"prolint\",\"informationUri\":"
      "\"https://example.invalid/prore\",\"rules\":[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i) out += ",";
    out += "{\"id\":";
    AppendJsonString(&out, rules[i]);
    out += "}";
  }
  out += "]}},\"results\":[";
  out += results;
  out += "]}]}";
  return out;
}

Diagnostic FromParseStatus(const prore::Status& status) {
  Diagnostic d;
  d.code = "PL000";
  d.severity = Severity::kError;
  d.message = status.ToString();
  // Parser/lexer messages embed "line <L> column <C>" or "line <L>".
  const std::string& m = status.message();
  size_t pos = m.rfind("line ");
  if (pos != std::string::npos) {
    int line = 0, column = 0;
    if (std::sscanf(m.c_str() + pos, "line %d column %d", &line, &column) >=
            1 &&
        line > 0) {
      d.span.line = line;
      d.span.column = column > 0 ? column : 1;
    }
  }
  return d;
}

}  // namespace prore::lint
