#include "lint/lint.h"

#include <algorithm>
#include <optional>

namespace prore::lint {

const LintPass* PassRegistry::Find(const std::string& name_or_code) const {
  for (const auto& pass : passes_) {
    if (name_or_code == pass->name() || name_or_code == pass->code()) {
      return pass.get();
    }
  }
  return nullptr;
}

prore::Result<std::vector<Diagnostic>> Linter::Run(
    const term::TermStore& store, const reader::Program& program) const {
  DiagnosticSink sink;
  LintContext ctx;
  ctx.store = &store;
  ctx.program = &program;

  // Shared analyses. Each failure downgrades the context instead of
  // aborting the lint: the structural passes still run.
  std::optional<analysis::Declarations> decls;
  std::optional<analysis::CallGraph> graph;
  std::optional<analysis::FixityResult> fixity;
  std::optional<analysis::ModeAnalysis> modes;
  std::unique_ptr<analysis::LegalityOracle> oracle;
  std::optional<analysis::absint::AbsintResult> absint;

  auto note_unavailable = [&sink](const char* what, const prore::Status& st) {
    sink.Report("PL000", Severity::kNote, reader::SourceSpan{}, "",
                std::string(what) + " analysis unavailable: " + st.ToString());
  };

  if (auto d = analysis::ParseDeclarations(store, program); d.ok()) {
    decls = std::move(d).value();
    ctx.decls = &*decls;
  } else {
    note_unavailable("declaration", d.status());
  }
  if (auto g = analysis::CallGraph::Build(store, program); g.ok()) {
    graph = std::move(g).value();
    ctx.graph = &*graph;
  } else {
    note_unavailable("call-graph", g.status());
  }
  if (ctx.graph != nullptr) {
    if (auto f = analysis::AnalyzeFixity(store, program, *graph); f.ok()) {
      fixity = std::move(f).value();
      ctx.fixity = &*fixity;
    } else {
      note_unavailable("fixity", f.status());
    }
    if (ctx.decls != nullptr) {
      if (auto m = analysis::InferModes(store, program, *graph, *decls);
          m.ok()) {
        modes = std::move(m).value();
        ctx.modes = &*modes;
        oracle = std::make_unique<analysis::LegalityOracle>(
            &store, &program, &*graph, &*modes);
        ctx.oracle = oracle.get();
        if (ctx.fixity != nullptr) {
          // Best-effort: a failing refinement leaves the coarser fixity.
          (void)analysis::RefineSemifixity(store, program, *graph,
                                           oracle.get(), &*fixity);
        }
        if (auto a = analysis::absint::RunAbsint(store, program, *graph,
                                                 *decls, &*modes);
            a.ok()) {
          absint = std::move(a).value();
          ctx.absint = &*absint;
        } else {
          note_unavailable("abstract-interpretation", a.status());
        }
      } else {
        note_unavailable("mode", m.status());
      }
    }
  }

  for (const auto& pass : PassRegistry::Default().passes()) {
    if (!options_.only.empty() &&
        std::none_of(options_.only.begin(), options_.only.end(),
                     [&pass](const std::string& sel) {
                       return sel == pass->name() || sel == pass->code();
                     })) {
      continue;
    }
    pass->Run(ctx, &sink);
  }
  sink.Sort();
  return sink.Take();
}

}  // namespace prore::lint
