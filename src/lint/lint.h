#ifndef PRORE_LINT_LINT_H_
#define PRORE_LINT_LINT_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/absint/absint.h"
#include "analysis/callgraph.h"
#include "analysis/fixity.h"
#include "analysis/mode_inference.h"
#include "analysis/modes.h"
#include "common/result.h"
#include "lint/diagnostic.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::lint {

/// Everything a lint pass may consult. The analyses are optional: building
/// them can fail on programs outside the supported subset (e.g. variable
/// goals), in which case the pointers are null and passes that need them
/// skip — the linter itself reports the analysis failure as a PL000 note.
struct LintContext {
  const term::TermStore* store = nullptr;
  const reader::Program* program = nullptr;
  const analysis::Declarations* decls = nullptr;     // may be null
  const analysis::CallGraph* graph = nullptr;        // may be null
  const analysis::FixityResult* fixity = nullptr;    // may be null
  const analysis::ModeAnalysis* modes = nullptr;     // may be null
  analysis::LegalityOracle* oracle = nullptr;        // may be null
  /// Interprocedural groundness + determinism (analysis/absint); null when
  /// any prerequisite analysis failed or the fixpoint tripped its budget.
  const analysis::absint::AbsintResult* absint = nullptr;
};

/// One analysis pass over a parsed program. Passes are stateless; a pass
/// must not emit the same diagnostic twice (the fuzz suite asserts this).
class LintPass {
 public:
  virtual ~LintPass() = default;
  virtual const char* name() const = 0;         ///< e.g. "singleton-vars"
  virtual const char* code() const = 0;         ///< primary code, "PL001"
  virtual const char* description() const = 0;  ///< one-line summary
  virtual void Run(const LintContext& ctx, DiagnosticSink* sink) const = 0;
};

/// The built-in passes, in registration (= documentation) order.
class PassRegistry {
 public:
  /// The default registry holding every built-in pass.
  static const PassRegistry& Default();

  void Register(std::unique_ptr<LintPass> pass) {
    passes_.push_back(std::move(pass));
  }

  const std::vector<std::unique_ptr<LintPass>>& passes() const {
    return passes_;
  }

  /// Finds a pass by name or by code; nullptr if absent.
  const LintPass* Find(const std::string& name_or_code) const;

 private:
  std::vector<std::unique_ptr<LintPass>> passes_;
};

struct LintOptions {
  /// Restrict to these passes (matched by name or code); empty = all.
  std::vector<std::string> only;
};

/// Runs the registered passes over a parsed program: builds the shared
/// analyses (call graph, fixity, mode inference), tolerating failures, then
/// runs each pass and returns the diagnostics in stable order.
class Linter {
 public:
  explicit Linter(LintOptions options = {}) : options_(std::move(options)) {}

  prore::Result<std::vector<Diagnostic>> Run(
      const term::TermStore& store, const reader::Program& program) const;

 private:
  LintOptions options_;
};

}  // namespace prore::lint

#endif  // PRORE_LINT_LINT_H_
