#ifndef PRORE_LINT_DIAGNOSTIC_H_
#define PRORE_LINT_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "reader/program.h"

namespace prore::lint {

/// How bad a finding is. Errors gate `prolint` (exit code 1); warnings gate
/// only under --werror; notes are informational.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// "note" / "warning" / "error".
const char* SeverityName(Severity s);

/// One finding of a lint pass or of the reorder validator, with a stable
/// machine-readable code (PLxxx), a severity, and a source span (line 0 =
/// unknown, e.g. for terms a transformation synthesized).
struct Diagnostic {
  std::string code;                       ///< stable code, e.g. "PL001"
  Severity severity = Severity::kWarning;
  reader::SourceSpan span;                ///< 1-based; line 0 = unknown
  std::string pred;                       ///< "name/arity" context, or ""
  std::string message;

  /// "12:3: warning: PL001: singleton variable ... [aunt/2]" — the span is
  /// omitted when unknown, the predicate bracket when empty.
  std::string ToString() const;

  /// One JSON object {"code":...,"severity":...,"line":...,...}.
  std::string ToJson() const;

  bool operator==(const Diagnostic&) const = default;
};

/// Collects diagnostics as passes run.
class DiagnosticSink {
 public:
  void Report(Diagnostic d) { diags_.push_back(std::move(d)); }
  void Report(std::string code, Severity severity, reader::SourceSpan span,
              std::string pred, std::string message) {
    diags_.push_back(Diagnostic{std::move(code), severity, span,
                                std::move(pred), std::move(message)});
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::vector<Diagnostic> Take() { return std::move(diags_); }

  size_t CountAtLeast(Severity s) const;
  bool HasErrors() const { return CountAtLeast(Severity::kError) > 0; }

  /// Stable order for output and golden tests: by (line, column, code,
  /// pred, message). Does NOT deduplicate — passes are required not to
  /// emit duplicates (the fuzz suite asserts this).
  void Sort();

 private:
  std::vector<Diagnostic> diags_;
};

/// Renders diagnostics one per line, each prefixed with `file:` when a file
/// name is given.
std::string RenderText(const std::vector<Diagnostic>& diags,
                       std::string_view file);

/// Renders {"file":...,"diagnostics":[...],"errors":N,"warnings":N} —
/// the `prolint --format=json` payload.
std::string RenderJson(const std::vector<Diagnostic>& diags,
                       std::string_view file);

/// Renders one SARIF 2.1.0 log covering all files — the
/// `prolint --format=sarif` payload, suitable for code-scanning upload.
/// Codes (PLxxx) become stable ruleIds; severities map to SARIF levels
/// note/warning/error. Each (file, diagnostics) pair contributes results
/// in a single run.
std::string RenderSarif(
    const std::vector<std::pair<std::string, std::vector<Diagnostic>>>&
        file_diags);

/// Converts a reader failure into a span-annotated diagnostic (code PL000,
/// error). Parser messages embed "at line L column C"; this recovers the
/// span so parse errors report exact source locations.
Diagnostic FromParseStatus(const prore::Status& status);

}  // namespace prore::lint

#endif  // PRORE_LINT_DIAGNOSTIC_H_
