#ifndef PRORE_TERM_SYMBOL_H_
#define PRORE_TERM_SYMBOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace prore::term {

/// An interned atom/functor name. Symbols are small integers valid within
/// one SymbolTable; equal names always intern to the same Symbol, so name
/// comparison is integer comparison.
using Symbol = uint32_t;

/// Interns names to Symbols. A handful of names the engine and reorderer
/// treat specially (',', ':-', '!', ...) are pre-interned with fixed ids.
class SymbolTable {
 public:
  SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the Symbol for `name`, interning it if new.
  Symbol Intern(std::string_view name);

  /// Replaces this table's contents with a copy of `other`, preserving every
  /// Symbol id. Used to seed a private per-worker store from a shared base
  /// so PredIds and Symbols are interchangeable between the two.
  void CloneFrom(const SymbolTable& other);

  /// The name of an interned symbol.
  const std::string& Name(Symbol s) const { return names_[s]; }

  size_t size() const { return names_.size(); }

  // Pre-interned symbols, in interning order (see constructor).
  // clang-format off
  static constexpr Symbol kNil       = 0;   // []
  static constexpr Symbol kDot      = 1;   // '.'  (list cons)
  static constexpr Symbol kComma    = 2;   // ','  (conjunction)
  static constexpr Symbol kSemicolon= 3;   // ';'  (disjunction)
  static constexpr Symbol kArrow    = 4;   // '->' (if-then)
  static constexpr Symbol kNeck     = 5;   // ':-' (clause / directive)
  static constexpr Symbol kCut      = 6;   // '!'
  static constexpr Symbol kTrue     = 7;   // true
  static constexpr Symbol kFail     = 8;   // fail
  static constexpr Symbol kNot      = 9;   // \+
  static constexpr Symbol kCall     = 10;  // call
  static constexpr Symbol kUnify    = 11;  // =
  static constexpr Symbol kCurly    = 12;  // {}
  static constexpr Symbol kMinus    = 13;  // -
  // clang-format on

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> index_;
};

}  // namespace prore::term

#endif  // PRORE_TERM_SYMBOL_H_
