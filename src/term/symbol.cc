#include "term/symbol.h"

#include <cassert>

namespace prore::term {

SymbolTable::SymbolTable() {
  // Order must match the kXxx constants in the header.
  const char* kPredefined[] = {"[]", ".",  ",",    ";",  "->", ":-",  "!",
                               "true", "fail", "\\+", "call", "=", "{}", "-"};
  for (const char* name : kPredefined) Intern(name);
  assert(Intern("[]") == kNil);
  assert(Intern(":-") == kNeck);
  assert(Intern("-") == kMinus);
}

void SymbolTable::CloneFrom(const SymbolTable& other) {
  names_ = other.names_;
  index_ = other.index_;
}

Symbol SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  Symbol s = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), s);
  return s;
}

}  // namespace prore::term
