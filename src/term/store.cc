#include "term/store.h"

#include <bit>
#include <cassert>

namespace prore::term {

TermRef TermStore::NewCell(const Cell& c) {
  if (fail_alloc_countdown_ != 0 && --fail_alloc_countdown_ == 0) {
    throw AllocError("injected term allocation failure");
  }
  if (cell_limit_ != 0 && cells_.size() >= cell_limit_) {
    throw AllocError("term store cell limit reached");
  }
  cells_.push_back(c);
  return static_cast<TermRef>(cells_.size() - 1);
}

void TermStore::AddCellHeadroom(size_t extra) {
  if (cell_limit_ == 0) return;
  size_t want = cells_.size() + extra;
  if (cell_limit_ < want) cell_limit_ = want;
}

TermRef TermStore::MakeVar(std::string_view name_hint) {
  Cell c;
  c.tag = Tag::kVar;
  c.symbol = next_var_id_++;
  c.value = -1;
  TermRef t = NewCell(c);
  if (!name_hint.empty()) var_names_.emplace(c.symbol, std::string(name_hint));
  return t;
}

TermRef TermStore::MakeAtom(Symbol s) {
  Cell c;
  c.tag = Tag::kAtom;
  c.symbol = s;
  return NewCell(c);
}

TermRef TermStore::MakeInt(int64_t value) {
  Cell c;
  c.tag = Tag::kInt;
  c.value = value;
  return NewCell(c);
}

TermRef TermStore::MakeFloat(double value) {
  Cell c;
  c.tag = Tag::kFloat;
  c.value = std::bit_cast<int64_t>(value);
  return NewCell(c);
}

double TermStore::float_value(TermRef t) const {
  return std::bit_cast<double>(cells_[t].value);
}

TermRef TermStore::MakeStruct(Symbol name, std::span<const TermRef> args) {
  assert(!args.empty() && "use MakeAtom for arity-0 terms");
  Cell c;
  c.tag = Tag::kStruct;
  c.symbol = name;
  c.arity = static_cast<uint32_t>(args.size());
  c.value = static_cast<int64_t>(args_.size());
  args_.insert(args_.end(), args.begin(), args.end());
  return NewCell(c);
}

TermRef TermStore::MakeCons(TermRef head, TermRef tail) {
  const TermRef args[] = {head, tail};
  return MakeStruct(SymbolTable::kDot, args);
}

TermRef TermStore::MakeList(std::span<const TermRef> items) {
  TermRef list = MakeNil();
  for (size_t i = items.size(); i-- > 0;) list = MakeCons(items[i], list);
  return list;
}

TermRef TermStore::Deref(TermRef t) const {
  while (true) {
    const Cell& c = cells_[t];
    if (c.tag != Tag::kVar || c.value < 0) return t;
    t = static_cast<TermRef>(c.value);
  }
}

const std::string& TermStore::var_name(TermRef t) const {
  auto it = var_names_.find(cells_[t].symbol);
  return it == var_names_.end() ? empty_name_ : it->second;
}

void TermStore::BindVar(TermRef var, TermRef value) {
  Cell& c = cells_[var];
  assert(c.tag == Tag::kVar && c.value < 0);
  c.value = static_cast<int64_t>(value);
}

void TermStore::ResetVar(TermRef var) {
  Cell& c = cells_[var];
  assert(c.tag == Tag::kVar);
  c.value = -1;
}

TermRef TermStore::Rename(TermRef t,
                          std::unordered_map<uint32_t, TermRef>* var_map) {
  std::unordered_map<uint32_t, TermRef> local;
  if (var_map == nullptr) var_map = &local;
  t = Deref(t);
  switch (tag(t)) {
    case Tag::kVar: {
      uint32_t id = var_id(t);
      auto it = var_map->find(id);
      if (it != var_map->end()) return it->second;
      TermRef fresh = MakeVar();
      var_map->emplace(id, fresh);
      return fresh;
    }
    case Tag::kAtom:
    case Tag::kInt:
    case Tag::kFloat:
      return t;  // Immutable leaves can be shared.
    case Tag::kStruct: {
      std::vector<TermRef> new_args(arity(t));
      bool changed = false;
      for (uint32_t i = 0; i < arity(t); ++i) {
        // Compare against the raw (not dereferenced) argument: if the
        // argument was a bound variable we must not share the original
        // struct, since backtracking may later unbind that variable.
        new_args[i] = Rename(arg(t, i), var_map);
        if (new_args[i] != arg(t, i)) changed = true;
      }
      if (!changed) return t;  // Ground subterm: share it.
      return MakeStruct(symbol(t), new_args);
    }
  }
  return t;
}

TermRef TermStore::RenameSkeleton(TermRef t, uint32_t var_base,
                                  std::vector<TermRef>& regs) {
  // Copy the cell fields up front: cells_ may reallocate while recursing
  // (MakeVar/MakeStruct push new cells).
  const Cell cell = cells_[t];
  switch (cell.tag) {
    case Tag::kVar: {
      assert(cell.value < 0 && "skeleton variables are never bound");
      uint32_t idx = cell.symbol - var_base;
      assert(idx < regs.size());
      TermRef r = regs[idx];
      if (r == kNullTerm) {
        r = MakeVar();
        regs[idx] = r;
      }
      return r;
    }
    case Tag::kAtom:
    case Tag::kInt:
    case Tag::kFloat:
      return t;
    case Tag::kStruct: {
      const size_t scratch_mark = skel_scratch_.size();
      const size_t args_base = static_cast<size_t>(cell.value);
      bool changed = false;
      for (uint32_t i = 0; i < cell.arity; ++i) {
        TermRef a = args_[args_base + i];
        TermRef r = RenameSkeleton(a, var_base, regs);
        changed |= (r != a);
        skel_scratch_.push_back(r);
      }
      TermRef out = t;  // ground subterms are shared, like Rename
      if (changed) {
        out = MakeStruct(
            cell.symbol,
            std::span<const TermRef>(skel_scratch_.data() + scratch_mark,
                                     cell.arity));
      }
      skel_scratch_.resize(scratch_mark);
      return out;
    }
  }
  return t;
}

void TermStore::CloneFrom(const TermStore& src) {
  symbols_.CloneFrom(src.symbols_);
  cells_ = src.cells_;
  args_ = src.args_;
  skel_scratch_.clear();
  high_water_cells_ = src.high_water_cells_;
  next_var_id_ = src.next_var_id_;
  var_names_ = src.var_names_;
}

TermRef TermStore::CopyFrom(const TermStore& src, TermRef t,
                            std::unordered_map<uint32_t, TermRef>* var_map) {
  std::unordered_map<uint32_t, TermRef> local;
  if (var_map == nullptr) var_map = &local;
  t = src.Deref(t);
  switch (src.tag(t)) {
    case Tag::kVar: {
      uint32_t id = src.var_id(t);
      auto it = var_map->find(id);
      if (it != var_map->end()) return it->second;
      TermRef fresh = MakeVar(src.var_name(t));
      var_map->emplace(id, fresh);
      return fresh;
    }
    case Tag::kAtom:
      return MakeAtom(symbols_.Intern(src.symbols().Name(src.symbol(t))));
    case Tag::kInt:
      return MakeInt(src.int_value(t));
    case Tag::kFloat:
      return MakeFloat(src.float_value(t));
    case Tag::kStruct: {
      std::vector<TermRef> new_args(src.arity(t));
      for (uint32_t i = 0; i < src.arity(t); ++i) {
        new_args[i] = CopyFrom(src, src.arg(t, i), var_map);
      }
      return MakeStruct(symbols_.Intern(src.symbols().Name(src.symbol(t))),
                        new_args);
    }
  }
  return kNullTerm;
}

bool TermStore::Equal(TermRef a, TermRef b) const {
  a = Deref(a);
  b = Deref(b);
  if (a == b) return true;
  if (tag(a) != tag(b)) return false;
  switch (tag(a)) {
    case Tag::kVar:
      return false;  // Distinct unbound variables.
    case Tag::kAtom:
      return symbol(a) == symbol(b);
    case Tag::kInt:
      return int_value(a) == int_value(b);
    case Tag::kFloat:
      return float_value(a) == float_value(b);
    case Tag::kStruct: {
      if (symbol(a) != symbol(b) || arity(a) != arity(b)) return false;
      for (uint32_t i = 0; i < arity(a); ++i) {
        if (!Equal(arg(a, i), arg(b, i))) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {
// Standard order rank: Var < Int < Atom < Struct.
int OrderRank(Tag t) {
  switch (t) {
    case Tag::kVar:
      return 0;
    case Tag::kInt:
      return 1;
    case Tag::kFloat:
      return 1;
    case Tag::kAtom:
      return 2;
    case Tag::kStruct:
      return 3;
  }
  return 4;
}
}  // namespace

int TermStore::Compare(TermRef a, TermRef b) const {
  a = Deref(a);
  b = Deref(b);
  if (a == b) return 0;
  int ra = OrderRank(tag(a)), rb = OrderRank(tag(b));
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 1) {
    // Numbers compare by value; on numeric equality a float precedes an
    // integer (ISO standard order of terms).
    double x = tag(a) == Tag::kInt ? static_cast<double>(int_value(a))
                                   : float_value(a);
    double y = tag(b) == Tag::kInt ? static_cast<double>(int_value(b))
                                   : float_value(b);
    if (x < y) return -1;
    if (x > y) return 1;
    if (tag(a) == tag(b)) return 0;
    return tag(a) == Tag::kFloat ? -1 : 1;
  }
  switch (tag(a)) {
    case Tag::kVar:
      return var_id(a) < var_id(b) ? -1 : (var_id(a) == var_id(b) ? 0 : 1);
    case Tag::kInt:
    case Tag::kFloat:
      // Unreachable: numbers (rank 1) were fully handled above.
      return 0;
    case Tag::kAtom: {
      int c = symbols_.Name(symbol(a)).compare(symbols_.Name(symbol(b)));
      return c < 0 ? -1 : (c == 0 ? 0 : 1);
    }
    case Tag::kStruct: {
      if (arity(a) != arity(b)) return arity(a) < arity(b) ? -1 : 1;
      int c = symbols_.Name(symbol(a)).compare(symbols_.Name(symbol(b)));
      if (c != 0) return c < 0 ? -1 : 1;
      for (uint32_t i = 0; i < arity(a); ++i) {
        int ci = Compare(arg(a, i), arg(b, i));
        if (ci != 0) return ci;
      }
      return 0;
    }
  }
  return 0;
}

bool TermStore::IsGround(TermRef t) const {
  t = Deref(t);
  switch (tag(t)) {
    case Tag::kVar:
      return false;
    case Tag::kAtom:
    case Tag::kInt:
    case Tag::kFloat:
      return true;
    case Tag::kStruct:
      for (uint32_t i = 0; i < arity(t); ++i) {
        if (!IsGround(arg(t, i))) return false;
      }
      return true;
  }
  return true;
}

void TermStore::CollectVars(TermRef t, std::vector<TermRef>* out) const {
  t = Deref(t);
  switch (tag(t)) {
    case Tag::kVar: {
      for (TermRef v : *out) {
        if (v == t) return;
      }
      out->push_back(t);
      return;
    }
    case Tag::kAtom:
    case Tag::kInt:
    case Tag::kFloat:
      return;
    case Tag::kStruct:
      for (uint32_t i = 0; i < arity(t); ++i) CollectVars(arg(t, i), out);
      return;
  }
}

void TermStore::Truncate(const Mark& mark) {
  assert(mark.cells <= cells_.size() && mark.args <= args_.size());
  if (cells_.size() > high_water_cells_) high_water_cells_ = cells_.size();
  cells_.resize(mark.cells);
  args_.resize(mark.args);
}

}  // namespace prore::term
