#ifndef PRORE_TERM_STORE_H_
#define PRORE_TERM_STORE_H_

#include <cstdint>
#include <new>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "term/symbol.h"

namespace prore::term {

/// Index of a term cell within a TermStore. Terms are cheap handles; all
/// structure lives in the store.
using TermRef = uint32_t;

/// Sentinel for "no term".
inline constexpr TermRef kNullTerm = 0xFFFFFFFFu;

/// The runtime term shapes.
enum class Tag : uint8_t {
  kVar,    ///< Logic variable; bound or unbound.
  kAtom,   ///< Constant symbol, e.g. foo, [], ','.
  kInt,    ///< 64-bit integer.
  kFloat,  ///< 64-bit IEEE double.
  kStruct  ///< Compound term name(arg1, ..., argN), N >= 1.
};

/// A predicate identity: name/arity, e.g. append/3.
struct PredId {
  Symbol name = 0;
  uint32_t arity = 0;

  bool operator==(const PredId&) const = default;
};

struct PredIdHash {
  size_t operator()(const PredId& p) const {
    // splitmix64 finalizer over the full (name, arity) pair. The obvious
    // (name << 8) ^ arity drops the symbol's top bits and folds arity >= 256
    // into the name byte.
    uint64_t x = (static_cast<uint64_t>(p.name) << 32) | p.arity;
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// Thrown by TermStore when cell allocation fails — either the configured
/// cell limit (SetCellLimit) was reached or an injected failure fired
/// (FailAllocAfter). Derives from std::bad_alloc so generic OOM handlers
/// catch it, but carries a message distinguishing the cause. The engine
/// catches it at the solve loop and re-raises it as a catchable
/// `resource_error(memory)` ball instead of letting it escape a worker
/// thread.
class AllocError : public std::bad_alloc {
 public:
  explicit AllocError(const char* what) : what_(what) {}
  const char* what() const noexcept override { return what_; }

 private:
  const char* what_;
};

/// Arena of term cells. Terms are immutable once created, except that an
/// unbound kVar cell may be bound (and later reset during backtracking —
/// the engine's trail records which ones to reset).
///
/// The store grows monotonically; Watermark()/Truncate() let the engine
/// reclaim everything a query allocated once its answers have been copied
/// out, which is how C-Prolog-era systems reclaimed heap on completion.
class TermStore {
 public:
  TermStore() = default;
  TermStore(const TermStore&) = delete;
  TermStore& operator=(const TermStore&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // ---- Construction -------------------------------------------------------

  /// A fresh unbound variable. `name_hint` is used only for printing;
  /// pass empty for anonymous/internal variables (printed _G<n>).
  TermRef MakeVar(std::string_view name_hint = "");
  TermRef MakeAtom(Symbol s);
  TermRef MakeAtom(std::string_view name) {
    return MakeAtom(symbols_.Intern(name));
  }
  TermRef MakeInt(int64_t value);
  TermRef MakeFloat(double value);
  /// name(args...); arity must be >= 1 (use MakeAtom for arity 0).
  TermRef MakeStruct(Symbol name, std::span<const TermRef> args);
  TermRef MakeStruct(std::string_view name, std::span<const TermRef> args) {
    return MakeStruct(symbols_.Intern(name), args);
  }

  /// '.'(head, tail) — list cons cell.
  TermRef MakeCons(TermRef head, TermRef tail);
  /// [] as an atom.
  TermRef MakeNil() { return MakeAtom(SymbolTable::kNil); }
  /// Builds a proper list from `items`.
  TermRef MakeList(std::span<const TermRef> items);

  // ---- Inspection (all operate on dereferenced terms) ---------------------

  /// Follows variable-binding chains to the representative term.
  TermRef Deref(TermRef t) const;

  Tag tag(TermRef t) const { return cells_[t].tag; }
  /// Atom symbol or struct functor name.
  Symbol symbol(TermRef t) const { return cells_[t].symbol; }
  int64_t int_value(TermRef t) const { return cells_[t].value; }
  double float_value(TermRef t) const;
  uint32_t arity(TermRef t) const {
    return cells_[t].tag == Tag::kStruct ? cells_[t].arity : 0;
  }
  TermRef arg(TermRef t, uint32_t i) const {
    return args_[static_cast<size_t>(cells_[t].value) + i];
  }
  /// Sequence number of a variable (stable id for printing/maps).
  uint32_t var_id(TermRef t) const { return cells_[t].symbol; }
  /// Print name hint for a variable ("" if anonymous).
  const std::string& var_name(TermRef t) const;

  /// PredId of an atom or struct (callable term). t must be dereferenced.
  PredId pred_id(TermRef t) const {
    return PredId{cells_[t].symbol, arity(t)};
  }

  bool IsUnboundVar(TermRef t) const {
    const Cell& c = cells_[t];
    return c.tag == Tag::kVar && c.value < 0;
  }
  bool IsNil(TermRef t) const {
    t = Deref(t);
    return tag(t) == Tag::kAtom && symbol(t) == SymbolTable::kNil;
  }
  bool IsCons(TermRef t) const {
    t = Deref(t);
    return tag(t) == Tag::kStruct && symbol(t) == SymbolTable::kDot &&
           arity(t) == 2;
  }
  /// True if t is an atom or a compound term (a callable goal shape).
  bool IsCallable(TermRef t) const {
    t = Deref(t);
    return tag(t) == Tag::kAtom || tag(t) == Tag::kStruct;
  }

  // ---- Variable binding (engine-controlled) --------------------------------

  /// Binds unbound variable `var` to `value`. Caller must trail it.
  void BindVar(TermRef var, TermRef value);
  /// Undoes BindVar (used when unwinding the trail).
  void ResetVar(TermRef var);

  // ---- Whole-term operations ----------------------------------------------

  /// Structural copy of `t` with every distinct unbound variable replaced
  /// by a fresh one. `var_map`, if given, records old-var-id -> new term and
  /// lets several terms (head + body of one clause) share renamings.
  TermRef Rename(TermRef t,
                 std::unordered_map<uint32_t, TermRef>* var_map = nullptr);

  /// Replaces this store's contents with a deep copy of `src` (cells, args,
  /// symbols, variable names and counter). Afterwards every TermRef valid in
  /// `src` denotes the identical term here, so a compiled Database built
  /// against `src` can be executed against the copy — each engine worker
  /// clones the frozen snapshot arena as its private, bindable heap.
  void CloneFrom(const TermStore& src);

  /// Seeds this (empty) store's symbol table with a copy of `src`'s, so
  /// Symbols and PredIds are interchangeable between the two stores without
  /// copying any term cells. The per-group pipeline workers use this:
  /// predicate sets computed on the shared store stay valid in the worker's.
  void AdoptSymbols(const TermStore& src) {
    symbols_.CloneFrom(src.symbols_);
  }

  /// Copies `t` (a term of `src`, dereferenced on the fly) into this store.
  /// Symbols are re-interned by name, so the stores need not agree on ids.
  /// `var_map` maps src var id -> local term and lets several terms (head +
  /// body of one clause) share variables; pass nullptr for a private map.
  TermRef CopyFrom(const TermStore& src, TermRef t,
                   std::unordered_map<uint32_t, TermRef>* var_map = nullptr);

  /// The id the next MakeVar will receive. Clause-skeleton compilation uses
  /// this to record the dense id range a Rename pass produced.
  uint32_t next_var_id() const { return next_var_id_; }

  /// Renames a compiled clause skeleton through a flat register file: the
  /// skeleton's variables carry dense ids in [var_base, var_base +
  /// regs.size()) and must all be unbound (guaranteed by skeleton
  /// compilation — skeleton terms are never unified directly). regs[i] is
  /// the fresh variable for skeleton variable var_base + i, kNullTerm until
  /// first use. Unlike Rename this performs no hashing and, after warm-up,
  /// no heap allocation beyond the term cells themselves.
  TermRef RenameSkeleton(TermRef t, uint32_t var_base,
                         std::vector<TermRef>& regs);

  /// Structural equality (==/2): variables equal only if identical.
  bool Equal(TermRef a, TermRef b) const;

  /// Standard order of terms (@</2): Var < Int < Atom < Struct;
  /// atoms alphabetically; structs by arity, then name, then args.
  /// Returns <0, 0, >0.
  int Compare(TermRef a, TermRef b) const;

  /// True if t contains no unbound variables.
  bool IsGround(TermRef t) const;

  /// Appends the distinct unbound variables of t, in first-occurrence order.
  void CollectVars(TermRef t, std::vector<TermRef>* out) const;

  // ---- Heap management -----------------------------------------------------

  /// Snapshot of the store's allocation state.
  struct Mark {
    size_t cells = 0;
    size_t args = 0;
  };

  /// Current allocation state; pass to Truncate to free later allocations.
  Mark Watermark() const { return Mark{cells_.size(), args_.size()}; }
  /// Frees everything allocated after `mark` was taken. No live term may
  /// reference the freed cells.
  void Truncate(const Mark& mark);

  size_t NumCells() const { return cells_.size(); }

  /// Caps the arena at `limit` cells; the allocation that would grow past
  /// it throws AllocError. 0 disables the cap (default). The limit is a
  /// robustness hook, not an accounting tool — the engine's
  /// max_heap_cells budget trips first on the cooperative path; this
  /// backstop catches allocations between budget checks.
  void SetCellLimit(size_t limit) { cell_limit_ = limit; }
  size_t cell_limit() const { return cell_limit_; }

  /// Raises a configured limit so at least `extra` more cells fit. The
  /// engine calls this before building a resource_error(memory) ball —
  /// the same re-arm-with-headroom idiom the call budget uses so the
  /// error handler itself has room to run. No-op when no limit is set.
  void AddCellHeadroom(size_t extra);

  /// Arms a single-shot injected failure: the `nth` NewCell from now
  /// (1-based) throws AllocError, then the trigger disarms itself —
  /// error handling after the trip allocates freely. 0 disarms. The chaos
  /// harness uses this as its deterministic OOM channel.
  void FailAllocAfter(uint64_t nth) { fail_alloc_countdown_ = nth; }

  /// Largest cell count seen since the last ResetHighWater (Truncate keeps
  /// it alive across reclamation). The engine reports per-query peak heap
  /// usage from this.
  size_t HighWaterCells() const {
    return high_water_cells_ > cells_.size() ? high_water_cells_
                                             : cells_.size();
  }
  void ResetHighWater() { high_water_cells_ = cells_.size(); }

 private:
  struct Cell {
    Tag tag;
    uint32_t arity = 0;   // kStruct: argument count.
    Symbol symbol = 0;    // kAtom/kStruct: name. kVar: var sequence id.
    int64_t value = 0;    // kInt: value. kStruct: args_ offset.
                          // kVar: binding (TermRef) or -1 if unbound.
  };

  TermRef NewCell(const Cell& c);

  SymbolTable symbols_;
  std::vector<Cell> cells_;
  std::vector<TermRef> args_;  // argument blocks for kStruct cells
  /// Argument scratch stack for RenameSkeleton (reused across calls so the
  /// per-struct argument buffer costs no allocation after warm-up).
  std::vector<TermRef> skel_scratch_;
  size_t high_water_cells_ = 0;
  size_t cell_limit_ = 0;            ///< 0 = uncapped
  uint64_t fail_alloc_countdown_ = 0;  ///< 0 = disarmed; 1 = next throws
  uint32_t next_var_id_ = 0;
  std::unordered_map<uint32_t, std::string> var_names_;
  std::string empty_name_;
};

}  // namespace prore::term

#endif  // PRORE_TERM_STORE_H_
