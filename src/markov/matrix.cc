#include "markov/matrix.h"

#include <cassert>
#include <cmath>

namespace prore::markov {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < rows_ * cols_; ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

prore::Result<Matrix> Matrix::Inverse() const {
  if (rows_ != cols_) {
    return prore::Status::InvalidArgument("Inverse: matrix not square");
  }
  size_t n = rows_;
  Matrix a = *this;
  Matrix inv = Identity(n);
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.At(r, col)) > std::fabs(a.At(pivot, col))) pivot = r;
    }
    // Threshold near the underflow limit: fundamental matrices of chains
    // with p close to 1 have legitimately tiny determinants (the visit
    // counts blow up but stay representable); only an (almost) exactly
    // zero pivot means structural singularity.
    if (std::fabs(a.At(pivot, col)) < 1e-200) {
      return prore::Status::InvalidArgument("Inverse: singular matrix");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(a.At(col, j), a.At(pivot, j));
        std::swap(inv.At(col, j), inv.At(pivot, j));
      }
    }
    double d = a.At(col, col);
    for (size_t j = 0; j < n; ++j) {
      a.At(col, j) /= d;
      inv.At(col, j) /= d;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double f = a.At(r, col);
      if (f == 0.0) continue;
      for (size_t j = 0; j < n; ++j) {
        a.At(r, j) -= f * a.At(col, j);
        inv.At(r, j) -= f * inv.At(col, j);
      }
    }
  }
  return inv;
}

bool Matrix::AlmostEqual(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace prore::markov
