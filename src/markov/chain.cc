#include "markov/chain.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace prore::markov {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

prore::Status ValidateGoals(std::span<const GoalStats> goals) {
  for (const GoalStats& g : goals) {
    if (g.success_prob < 0.0 || g.success_prob > 1.0) {
      return prore::Status::InvalidArgument(
          "goal success probability outside [0,1]");
    }
    if (g.cost < 0.0) {
      return prore::Status::InvalidArgument("negative goal cost");
    }
  }
  return prore::Status::OK();
}
}  // namespace

Matrix SingleSolutionTransitionMatrix(std::span<const GoalStats> goals) {
  // Paper Fig. 4 layout: state 0 = S, state 1 = F (both absorbing),
  // states 2..n+1 = the goals in order.
  size_t n = goals.size();
  Matrix p(n + 2, n + 2);
  p.At(0, 0) = 1.0;
  p.At(1, 1) = 1.0;
  for (size_t i = 0; i < n; ++i) {
    size_t row = 2 + i;
    double pi = goals[i].success_prob;
    // Forward on success.
    if (i + 1 < n) {
      p.At(row, row + 1) = pi;
    } else {
      p.At(row, 0) = pi;  // last goal -> S
    }
    // Backward on failure.
    if (i > 0) {
      p.At(row, row - 1) = 1.0 - pi;
    } else {
      p.At(row, 1) = 1.0 - pi;  // first goal -> F
    }
  }
  return p;
}

Matrix AllSolutionsTransitionMatrix(std::span<const GoalStats> goals) {
  // Paper Fig. 5 layout: state 0 = F (absorbing), states 1..n = goals,
  // state n+1 = S (transient: S -> last goal with probability 1).
  size_t n = goals.size();
  Matrix p(n + 2, n + 2);
  p.At(0, 0) = 1.0;
  for (size_t i = 0; i < n; ++i) {
    size_t row = 1 + i;
    double pi = goals[i].success_prob;
    p.At(row, row + 1) = pi;            // forward (last goal -> S)
    p.At(row, row - 1) = 1.0 - pi;      // backward (first goal -> F)
  }
  if (n > 0) p.At(n + 1, n) = 1.0;      // S -> last goal
  return p;
}

std::vector<double> ClosedFormAllVisits(std::span<const GoalStats> goals) {
  size_t n = goals.size();
  std::vector<double> v(n + 1, 0.0);
  double num = 1.0;    // prod_{j<i} p_j
  double denom = 1.0;  // prod_{j<=i} (1-p_j)
  for (size_t i = 0; i < n; ++i) {
    double q = 1.0 - goals[i].success_prob;
    denom *= q;
    v[i] = denom == 0.0 ? kInf : num / denom;
    num *= goals[i].success_prob;
  }
  // v_S = expected number of solutions = prod p_j / prod (1-p_j).
  v[n] = denom == 0.0 ? (num == 0.0 ? 0.0 : kInf) : num / denom;
  return v;
}

double ClosedFormAllSolutionsCost(std::span<const GoalStats> goals) {
  std::vector<double> v = ClosedFormAllVisits(goals);
  double cost = 0.0;
  for (size_t i = 0; i < goals.size(); ++i) {
    if (std::isinf(v[i])) {
      if (goals[i].cost > 0.0) return kInf;
      continue;
    }
    cost += goals[i].cost * v[i];
  }
  return cost;
}

prore::Result<ChainAnalysis> AnalyzeClauseBody(
    std::span<const GoalStats> goals) {
  PRORE_RETURN_IF_ERROR(ValidateGoals(goals));
  ChainAnalysis out;
  size_t n = goals.size();
  if (n == 0) {
    out.success_prob = 1.0;
    out.expected_solutions = 1.0;
    return out;
  }

  // ---- Single-solution chain: Q is n x n over the goal states. ----
  Matrix q(n, n);
  for (size_t i = 0; i < n; ++i) {
    double pi = goals[i].success_prob;
    if (i + 1 < n) q.At(i, i + 1) = pi;
    if (i > 0) q.At(i, i - 1) = 1.0 - pi;
  }
  PRORE_ASSIGN_OR_RETURN(Matrix fundamental,
                         Matrix::Identity(n).Subtract(q).Inverse());
  out.visits_single.resize(n);
  out.cost_single = 0.0;
  for (size_t i = 0; i < n; ++i) {
    out.visits_single[i] = fundamental.At(0, i);
    out.cost_single += goals[i].cost * out.visits_single[i];
  }
  // Success probability: absorb in S (reached from the last goal).
  out.success_prob = fundamental.At(0, n - 1) * goals[n - 1].success_prob;

  // ---- All-solutions chain: transient states are the goals plus S. ----
  bool certain_goal = false;
  for (const GoalStats& g : goals) {
    if (g.success_prob >= 1.0) certain_goal = true;
  }
  if (certain_goal) {
    // The chain cannot absorb: a p=1 goal bounces the walk forever. The
    // memoryless model degenerates; report the closed-form infinities.
    out.visits_all = ClosedFormAllVisits(goals);
    out.expected_solutions = out.visits_all[n];
    out.cost_all_solutions = ClosedFormAllSolutionsCost(goals);
    out.cost_per_solution =
        std::isinf(out.expected_solutions) ? kInf : out.cost_all_solutions;
    return out;
  }
  size_t m = n + 1;  // goals + S
  Matrix qa(m, m);
  for (size_t i = 0; i < n; ++i) {
    double pi = goals[i].success_prob;
    qa.At(i, i + 1) = pi;                  // forward; last goal -> S
    if (i > 0) qa.At(i, i - 1) = 1.0 - pi;  // backward
  }
  qa.At(n, n - 1) = 1.0;  // S -> last goal
  auto na = Matrix::Identity(m).Subtract(qa).Inverse();
  if (na.ok()) {
    out.visits_all.resize(m);
    out.cost_all_solutions = 0.0;
    for (size_t i = 0; i < m; ++i) out.visits_all[i] = na->At(0, i);
    for (size_t i = 0; i < n; ++i) {
      out.cost_all_solutions += goals[i].cost * out.visits_all[i];
    }
    out.expected_solutions = out.visits_all[n];
  } else {
    // Long chains of near-certain goals make the fundamental matrix
    // numerically singular (visit counts ~ prod 1/(1-p) overflow the
    // elimination); the closed form is exact there.
    out.visits_all = ClosedFormAllVisits(goals);
    out.expected_solutions = out.visits_all[n];
    out.cost_all_solutions = ClosedFormAllSolutionsCost(goals);
  }
  out.cost_per_solution = out.expected_solutions > 0.0
                              ? out.cost_all_solutions / out.expected_solutions
                              : kInf;
  return out;
}

double FirstSuccessCost(std::span<const double> success_prob,
                        std::span<const double> cost) {
  double total = 0.0;
  double prefix_cost = 0.0;
  double all_fail_before = 1.0;
  for (size_t k = 0; k < success_prob.size(); ++k) {
    prefix_cost += cost[k];
    total += all_fail_before * success_prob[k] * prefix_cost;
    all_fail_before *= 1.0 - success_prob[k];
  }
  return total;
}

double SequentialFailureCost(std::span<const double> fail_prob,
                             std::span<const double> cost) {
  // Same recurrence with failure in the driving role.
  return FirstSuccessCost(fail_prob, cost);
}

std::vector<size_t> OrderByRatioDesc(std::span<const double> numerator,
                                     std::span<const double> cost) {
  std::vector<size_t> idx(numerator.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    double ra = cost[a] > 0 ? numerator[a] / cost[a] : kInf;
    double rb = cost[b] > 0 ? numerator[b] / cost[b] : kInf;
    return ra > rb;
  });
  return idx;
}

}  // namespace prore::markov
