#ifndef PRORE_MARKOV_MATRIX_H_
#define PRORE_MARKOV_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace prore::markov {

/// Small dense row-major matrix of doubles — just enough linear algebra for
/// the fundamental-matrix computation N = (I - Q)^{-1} of an absorbing
/// Markov chain (clause bodies have at most a few dozen goals, so dense
/// Gauss-Jordan is the right tool).
class Matrix {
 public:
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  Matrix Multiply(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;

  /// Gauss-Jordan inverse with partial pivoting; InvalidArgument if the
  /// matrix is singular (or not square).
  prore::Result<Matrix> Inverse() const;

  bool AlmostEqual(const Matrix& other, double tol = 1e-9) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace prore::markov

#endif  // PRORE_MARKOV_MATRIX_H_
