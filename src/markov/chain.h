#ifndef PRORE_MARKOV_CHAIN_H_
#define PRORE_MARKOV_CHAIN_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "markov/matrix.h"

namespace prore::markov {

/// Per-goal statistics feeding the clause-body chain (paper §VI-A):
/// the probability the goal succeeds when called, and its expected cost
/// in predicate calls.
struct GoalStats {
  double success_prob = 0.5;
  double cost = 1.0;
};

/// Everything the reorderer needs to know about one ordering of a clause
/// body, derived from its absorbing Markov chains (Figs. 4 and 5).
struct ChainAnalysis {
  /// P(body delivers at least one solution) — from the single-solution
  /// chain, the probability of absorbing in S rather than F.
  double success_prob = 0.0;
  /// Expected cost until first absorption (one solution or failure).
  double cost_single = 0.0;
  /// Expected total cost of exhausting the body (all-solutions chain,
  /// Fig. 5). +infinity if the chain cannot absorb (some p_i == 1).
  double cost_all_solutions = 0.0;
  /// Expected number of solutions (mean visits to S in the Fig. 5 chain).
  double expected_solutions = 0.0;
  /// cost_all_solutions / expected_solutions (the paper's c_multiple);
  /// +infinity when no solutions are expected.
  double cost_per_solution = 0.0;
  /// Mean visits to each goal state, single-solution chain (row of N).
  std::vector<double> visits_single;
  /// Mean visits to each goal state, all-solutions chain.
  std::vector<double> visits_all;
};

/// Builds and solves both chains for a clause body with the given goals,
/// in order, via the fundamental matrix N = (I-Q)^{-1}.
/// Probabilities outside [0,1] are InvalidArgument; an empty body yields
/// success_prob 1 and zero costs.
prore::Result<ChainAnalysis> AnalyzeClauseBody(std::span<const GoalStats> goals);

/// Closed-form visit counts for the all-solutions chain (the paper's "tidy
/// form"): v_i = prod_{j<i} p_j / prod_{j<=i} (1-p_j). Returns +infinity
/// entries when some p_j == 1. Index n (one past the goals) is v_S, the
/// expected number of solutions.
std::vector<double> ClosedFormAllVisits(std::span<const GoalStats> goals);

/// Closed-form expected cost of exhausting the body: sum c_i * v_i.
double ClosedFormAllSolutionsCost(std::span<const GoalStats> goals);

// ---- The paper's §III ordering formulas (Figs. 1 and 2) --------------------

/// Fig. 1 model: expected cost until the first clause of a predicate
/// succeeds, trying clauses left to right with independent success
/// probabilities. Cost accrues for every clause tried.
///   sum_k [ prod_{j<k}(1-p_j) ] * p_k * [ sum_{j<=k} c_j ]
double FirstSuccessCost(std::span<const double> success_prob,
                        std::span<const double> cost);

/// Fig. 2 model: expected cost of one left-to-right pass over a clause
/// body ending at the first failing goal.
///   sum_k [ prod_{j<k}(1-q_j) ] * q_k * [ sum_{j<=k} c_j ]
double SequentialFailureCost(std::span<const double> fail_prob,
                             std::span<const double> cost);

/// Indices 0..n-1 sorted by decreasing ratio[i]/cost[i] — the Li & Wah
/// optimal ordering rule (p/c for clauses of an OR-node, q/c for goals of
/// an AND-node).
std::vector<size_t> OrderByRatioDesc(std::span<const double> numerator,
                                     std::span<const double> cost);

/// Builds the explicit transition matrix of the single-solution chain
/// (Fig. 4 layout: state 0 = S, state 1 = F, states 2.. = goals) or the
/// all-solutions chain (Fig. 5: state 0 = F absorbing, 1.. = goals,
/// last = S transient). Exposed for tests and the bench that reproduces
/// the paper's P_k matrices.
Matrix SingleSolutionTransitionMatrix(std::span<const GoalStats> goals);
Matrix AllSolutionsTransitionMatrix(std::span<const GoalStats> goals);

}  // namespace prore::markov

#endif  // PRORE_MARKOV_CHAIN_H_
