#include "core/goal_order.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

#include "engine/builtins.h"
#include "markov/chain.h"

namespace prore::core {

using analysis::AbstractEnv;
using analysis::BodyKind;
using analysis::BodyNode;
using analysis::Mode;
using analysis::VarState;
using term::PredId;
using term::TermRef;
using term::TermStore;

std::vector<uint32_t> GoalOrderSearch::CulpritVars(const BodyNode& node) const {
  std::vector<uint32_t> out;
  for (TermRef v : analysis::ModeSensitiveVars(*store_, node, *fixity_)) {
    out.push_back(store_->var_id(v));
  }
  return out;
}

std::vector<SemifixConstraint> GoalOrderSearch::OriginalSignatures(
    const std::vector<const BodyNode*>& elements,
    const AbstractEnv& start_env) {
  std::vector<SemifixConstraint> sigs(elements.size());
  auto eval = costs_->EvaluateSequence(elements, start_env);
  // Recompute states element by element (EvaluateSequence gives only the
  // final env), so walk again.
  AbstractEnv env = start_env;
  for (size_t i = 0; i < elements.size(); ++i) {
    for (uint32_t var : CulpritVars(*elements[i])) {
      sigs[i].required.emplace_back(var, env.Get(var));
    }
    // All variables of the element: the at-least-original fallback rule.
    std::vector<TermRef> vars;
    store_->CollectVars(elements[i]->goal, &vars);
    for (TermRef v : vars) {
      uint32_t id = store_->var_id(v);
      sigs[i].original_states.emplace_back(id, env.Get(id));
    }
    // Advance the environment exactly the way candidate evaluation does.
    std::vector<const BodyNode*> single{elements[i]};
    auto step = costs_->EvaluateSequence(single, env);
    if (step.ok()) env = step->env_after;
  }
  (void)eval;
  return sigs;
}

bool GoalOrderSearch::SatisfiesConstraint(const SemifixConstraint& c,
                                          const AbstractEnv& env) const {
  for (const auto& [var, state] : c.required) {
    if (env.Get(var) != state) return false;
  }
  return true;
}

namespace {
int InstRank(VarState s) {
  switch (s) {
    case VarState::kFree:
      return 0;
    case VarState::kUnknown:
      return 1;
    case VarState::kGround:
      return 2;
  }
  return 0;
}
}  // namespace

bool GoalOrderSearch::AtLeastOriginal(const SemifixConstraint& c,
                                      const AbstractEnv& env) const {
  for (const auto& [var, state] : c.original_states) {
    if (InstRank(env.Get(var)) < InstRank(state)) return false;
  }
  return true;
}

prore::Result<OrderResult> GoalOrderSearch::FindBestOrder(
    const std::vector<const BodyNode*>& elements,
    const AbstractEnv& start_env) {
  OrderResult result;
  result.order = elements;
  auto original = costs_->EvaluateSequence(elements, start_env);
  if (!original.ok()) return original.status();
  result.cost_all = original->chain.cost_all_solutions;
  result.original_cost = result.cost_all;
  if (elements.size() < 2) return result;

  std::vector<SemifixConstraint> sigs = OriginalSignatures(elements,
                                                           start_env);
  prore::Result<OrderResult> candidate(result);
  if (options_.warren_heuristic) {
    candidate = WarrenGreedy(elements, start_env, sigs);
  } else if (elements.size() <= options_.exhaustive_threshold) {
    candidate = Exhaustive(elements, start_env, sigs);
  } else if (options_.use_astar) {
    candidate = AStar(elements, start_env, sigs);
  } else {
    return result;  // too large; keep original
  }
  if (!candidate.ok()) return candidate.status();
  // Accept only a strict improvement over the original order.
  if (candidate->cost_all + 1e-9 < result.cost_all) {
    candidate->original_cost = result.original_cost;
    candidate->changed = candidate->order != elements;
    return *candidate;
  }
  result.nodes_considered = candidate->nodes_considered;
  return result;
}

prore::Result<OrderResult> GoalOrderSearch::Exhaustive(
    const std::vector<const BodyNode*>& elements,
    const AbstractEnv& start_env,
    const std::vector<SemifixConstraint>& sigs) {
  OrderResult best;
  best.cost_all = std::numeric_limits<double>::infinity();
  size_t considered = 0;

  std::vector<const BodyNode*> prefix;
  std::vector<bool> used(elements.size(), false);

  // A kResourceExhausted evaluation (cost-model watchdog) must abort the
  // whole search, not be skipped like an ordinary illegal candidate.
  prore::Status trip;

  // DFS over legal prefixes; evaluate complete orders.
  std::function<void(const AbstractEnv&)> recurse =
      [&](const AbstractEnv& env) {
        if (!trip.ok()) return;
        if (prefix.size() == elements.size()) {
          ++considered;
          // Placement checks during the DFS already established legality
          // (oracle-proven or at-least-original).
          auto eval = costs_->EvaluateSequence(prefix, start_env);
          if (!eval.ok()) {
            if (eval.status().code() ==
                prore::StatusCode::kResourceExhausted) {
              trip = eval.status();
            }
            return;
          }
          double cost = eval->chain.cost_all_solutions;
          if (cost < best.cost_all) {
            best.cost_all = cost;
            best.order = prefix;
          }
          return;
        }
        for (size_t i = 0; i < elements.size(); ++i) {
          if (used[i]) continue;
          if (!trip.ok()) return;
          // Legality + semifixity at this placement. Legal means: the
          // oracle proves every call's demands, OR the element sees all
          // its variables at least as instantiated as in the original
          // order (upward closure).
          std::vector<const BodyNode*> single{elements[i]};
          auto step = costs_->EvaluateSequence(single, env);
          if (!step.ok()) {
            if (step.status().code() ==
                prore::StatusCode::kResourceExhausted) {
              trip = step.status();
            }
            continue;
          }
          if (!step->legal && !AtLeastOriginal(sigs[i], env)) continue;
          if (!SatisfiesConstraint(sigs[i], env)) continue;
          used[i] = true;
          prefix.push_back(elements[i]);
          recurse(step->env_after);
          prefix.pop_back();
          used[i] = false;
        }
      };
  recurse(start_env);
  if (!trip.ok()) return trip;
  best.nodes_considered = considered;
  if (!std::isfinite(best.cost_all)) {
    // No legal complete order found; signal "keep original" via +inf cost.
    best.order = elements;
  }
  return best;
}

prore::Result<OrderResult> GoalOrderSearch::AStar(
    const std::vector<const BodyNode*>& elements,
    const AbstractEnv& start_env,
    const std::vector<SemifixConstraint>& sigs) {
  struct Node {
    double f;  // closed-form all-solutions cost of the prefix (admissible)
    std::vector<size_t> prefix;
    AbstractEnv env;
    std::vector<markov::GoalStats> stats;
    bool operator>(const Node& o) const { return f > o.f; }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> open;
  open.push(Node{0.0, {}, start_env, {}});
  size_t expansions = 0;
  OrderResult best;
  best.cost_all = std::numeric_limits<double>::infinity();
  best.order = elements;

  while (!open.empty() && expansions < options_.max_expansions) {
    Node node = open.top();
    open.pop();
    ++expansions;
    if (node.prefix.size() == elements.size()) {
      // First complete node popped is optimal (admissible heuristic).
      best.cost_all = node.f;
      best.order.clear();
      for (size_t i : node.prefix) best.order.push_back(elements[i]);
      break;
    }
    for (size_t i = 0; i < elements.size(); ++i) {
      if (std::find(node.prefix.begin(), node.prefix.end(), i) !=
          node.prefix.end()) {
        continue;
      }
      std::vector<const BodyNode*> single{elements[i]};
      auto step = costs_->EvaluateSequence(single, node.env);
      if (!step.ok()) {
        if (step.status().code() == prore::StatusCode::kResourceExhausted) {
          return step.status();  // watchdog trip aborts the search
        }
        continue;
      }
      if (!step->legal && !AtLeastOriginal(sigs[i], node.env)) continue;
      if (!SatisfiesConstraint(sigs[i], node.env)) continue;
      Node next;
      next.prefix = node.prefix;
      next.prefix.push_back(i);
      next.env = step->env_after;
      next.stats = node.stats;
      next.stats.push_back(step->goal_stats[0]);
      next.f = markov::ClosedFormAllSolutionsCost(next.stats);
      open.push(std::move(next));
    }
  }
  best.nodes_considered = expansions;
  return best;
}

prore::Result<OrderResult> GoalOrderSearch::WarrenGreedy(
    const std::vector<const BodyNode*>& elements,
    const AbstractEnv& start_env,
    const std::vector<SemifixConstraint>& sigs) {
  // Warren's method: at each step pick the legal goal with the smallest
  // "alternatives multiplier" — the expected number of clause-head matches
  // for the goal's current mode (tests score below 1, generators above).
  OrderResult result;
  AbstractEnv env = start_env;
  std::vector<bool> used(elements.size(), false);
  for (size_t step_no = 0; step_no < elements.size(); ++step_no) {
    double best_factor = std::numeric_limits<double>::infinity();
    size_t best_i = elements.size();
    AbstractEnv best_env;
    for (size_t i = 0; i < elements.size(); ++i) {
      if (used[i]) continue;
      std::vector<const BodyNode*> single{elements[i]};
      auto step = costs_->EvaluateSequence(single, env);
      if (!step.ok()) {
        if (step.status().code() == prore::StatusCode::kResourceExhausted) {
          return step.status();  // watchdog trip aborts the search
        }
        continue;
      }
      if (!step->legal && !AtLeastOriginal(sigs[i], env)) continue;
      if (!SatisfiesConstraint(sigs[i], env)) continue;
      double factor;
      const BodyNode* node = elements[i];
      if (node->kind == BodyKind::kCall) {
        TermRef goal = store_->Deref(node->goal);
        PredId id = store_->pred_id(goal);
        Mode mode = env.CallModeOf(*store_, goal);
        factor = costs_->ExpectedMatches(id, mode);
        if (factor == 0.0) factor = step->goal_stats[0].success_prob;
      } else {
        factor = step->goal_stats[0].success_prob;
      }
      if (factor < best_factor) {
        best_factor = factor;
        best_i = i;
        best_env = step->env_after;
      }
    }
    if (best_i == elements.size()) {
      // Stuck (no legal placement); keep original.
      result.order = elements;
      auto eval = costs_->EvaluateSequence(elements, start_env);
      result.cost_all = eval.ok() ? eval->chain.cost_all_solutions
                                  : std::numeric_limits<double>::infinity();
      return result;
    }
    used[best_i] = true;
    result.order.push_back(elements[best_i]);
    env = best_env;
  }
  auto eval = costs_->EvaluateSequence(result.order, start_env);
  result.cost_all = eval.ok() ? eval->chain.cost_all_solutions
                              : std::numeric_limits<double>::infinity();
  result.nodes_considered = elements.size() * elements.size();
  return result;
}

}  // namespace prore::core
