#ifndef PRORE_CORE_EVALUATION_H_
#define PRORE_CORE_EVALUATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "engine/machine.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::core {

/// Measured outcome of running the same workload against the original and
/// the reordered program (the paper's Tables II–IV methodology).
struct ComparisonResult {
  uint64_t original_calls = 0;
  uint64_t reordered_calls = 0;
  size_t original_answers = 0;
  size_t reordered_answers = 0;
  /// Same multiset of answers (set-equivalence, §II)?
  bool set_equivalent = true;
  uint64_t queries_run = 0;

  double Ratio() const {
    return reordered_calls == 0
               ? 1.0
               : static_cast<double>(original_calls) /
                     static_cast<double>(reordered_calls);
  }
};

/// Runs workloads against an original/reordered program pair, counting
/// predicate calls and checking set-equivalence of the answer multisets.
class Evaluator {
 public:
  Evaluator(term::TermStore* store, const reader::Program& original,
            const reader::Program& reordered,
            engine::SolveOptions solve_options = engine::SolveOptions());

  prore::Status Init();

  /// Runs one query (text without the trailing dot) to exhaustion on both
  /// programs.
  prore::Result<ComparisonResult> CompareQuery(const std::string& query_text);

  /// Runs a batch of queries, accumulating calls and answers.
  prore::Result<ComparisonResult> CompareQueries(
      const std::vector<std::string>& goals);

  /// Table II methodology: calls name/arity in the given mode string
  /// (e.g. "(+,-)"), one query per combination of `universe` constants in
  /// the '+' positions — mode (-,-) is 1 call, (+,-) is |U| calls, (+,+)
  /// is |U|^2 calls.
  prore::Result<ComparisonResult> CompareMode(
      const std::string& name, uint32_t arity, const std::string& mode,
      const std::vector<std::string>& universe);

 private:
  term::TermStore* store_;
  const reader::Program& original_;
  const reader::Program& reordered_;
  engine::SolveOptions solve_options_;
  engine::Database original_db_;
  engine::Database reordered_db_;
  bool initialized_ = false;
};

}  // namespace prore::core

#endif  // PRORE_CORE_EVALUATION_H_
