#ifndef PRORE_CORE_PIPELINE_H_
#define PRORE_CORE_PIPELINE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/watchdog.h"
#include "core/analysis_cache.h"
#include "core/disjunction.h"
#include "core/fault.h"
#include "core/reorderer.h"
#include "core/unfold.h"
#include "lint/diagnostic.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::core {

/// The degradation ladder, descended one rung at a time when a predicate's
/// transform fails its fault boundary (thrown exception, non-ok Status,
/// error-severity validator diagnostic, or watchdog trip). The bottom rung
/// is unconditional: identity emission copies the original clauses
/// verbatim and runs no analysis-driven decisions on that predicate, so it
/// is always reachable and always succeeds.
enum class LadderLevel {
  kFull = 0,             ///< unfold + factor + clause & goal order + modes
  kNoUnfold = 1,         ///< exempt from unfold/factor; reorder fully
  kClauseOrderOnly = 2,  ///< clause order only; body and name untouched
  kIdentity = 3,         ///< original clauses, bit-for-bit
};

/// Stable lowercase name: "full", "no-unfold", "clause-order-only",
/// "identity".
const char* LadderLevelName(LadderLevel level);

struct PipelineOptions {
  ReorderOptions reorder;
  /// Parallelism over SCC dependency groups. 0 = the classic whole-program
  /// pipeline (one Reorderer over everything, callers priced against their
  /// already-reordered callees). N >= 1 = the sharded pipeline: the call
  /// graph is condensed into dependency groups (analysis::DependencyGroups)
  /// and each group is transformed independently on a pool of N worker
  /// threads, against a private copy of its dependency cone with the cone
  /// pinned to identity. Group construction and the merge are fully
  /// deterministic, so --jobs=N output is bit-identical to --jobs=1 (N only
  /// changes wall-clock). jobs=1 runs the same sharded code path inline.
  size_t jobs = 0;
  /// Predicates that enter the degradation ladder at kIdentity and stay
  /// there: emitted verbatim, never blamed, calls to them never renamed.
  /// The sharded pipeline pins each group's dependency cone this way.
  analysis::PredSet pinned_identity;
  /// Run the unfolding pre-pass (prore --unfold).
  bool unfold = false;
  UnfoldOptions unfold_options;
  /// Run disjunction factoring (prore --factor).
  bool factor = false;
  /// Budget for mode inference (0 fields = unlimited).
  prore::WatchdogBudget inference_watchdog;
  /// Budget for cost-model evaluation (0 fields = unlimited); covers the
  /// goal-order search transitively.
  prore::WatchdogBudget cost_watchdog;
  /// Budget for the abstract-interpretation fixpoints (0 fields =
  /// unlimited). A trip does not quarantine a predicate: the whole stage
  /// is disabled (reorder.absint = false) and the run retried — absint is
  /// an accuracy upgrade, not a correctness requirement.
  prore::WatchdogBudget absint_watchdog;
  /// Whole-pipeline retry cap; 0 = automatic (enough for every predicate
  /// to descend the full ladder, plus slack).
  size_t max_runs = 0;
  /// Transform-stage fault injection (tests only).
  const TransformFaultPlan* fault = nullptr;
  /// Cancellation/deadline scope for the whole run: checked before every
  /// pipeline attempt and threaded into every analysis watchdog. A cancel
  /// or an expired deadline lands the remaining work on the identity
  /// program (recorded in PipelineReport::global_trigger) — the output
  /// stays complete and correct, just unoptimized.
  prore::ExecContext exec;
  /// Transient-fault retry policy: a predicate whose fault classifies as
  /// transient (watchdog trip, deadline brush, OOM) is retried with
  /// bounded exponential backoff up to retry.max_retries() times before
  /// being demoted a ladder rung. Deterministic faults (validator
  /// findings, crashes) skip straight to demotion. max_attempts = 1
  /// disables retries. Configurable via --retry-attempts on prore/prored.
  prore::RetryPolicy retry;
  /// Content-addressed reuse of per-group transform results, keyed by the
  /// group's content hash over the SCC condensation (clause hashes plus
  /// callee-group hashes; analysis/content_hash.h). Null = no caching.
  /// Setting a cache forces the sharded path even when jobs == 0 (the
  /// classic whole-program pipeline prices callers against reordered
  /// callees and is not group-decomposable). Hits are re-validated with
  /// the PL100-PL103 checks before being trusted; a failed validation
  /// invalidates the entry and recomputes. Only clean (non-degraded)
  /// groups are inserted.
  AnalysisCache* cache = nullptr;
  /// Salt folded into every content hash; callers fingerprint the
  /// transform options here so entries produced under different options
  /// never collide. (prored derives it from the request's option set.)
  uint64_t cache_salt = 0;
  /// Sharded runs only: as soon as one group degrades, cancel the sibling
  /// groups (pending tasks dropped, running ones interrupted through
  /// their ExecContext) instead of burning them to completion. Used by
  /// `prore --strict`, where any degradation already means exit 3 — so
  /// sibling results cannot change the outcome. Off by default because
  /// early-stopping makes jobs=N output depend on completion timing.
  bool stop_on_degrade = false;
};

/// Per-predicate outcome in the PipelineReport.
struct PredOutcome {
  term::PredId pred;
  std::string name;  ///< "name/arity"
  LadderLevel level = LadderLevel::kFull;
  /// Build attempts for this predicate: 1 + number of demotions.
  int attempts = 1;
  /// Why each demotion happened, in ladder order (status or diagnostic
  /// text, e.g. "PL101: transformed aunt/2 dropped a clause").
  std::vector<std::string> triggers;
  /// Transient-fault retries burned before the outcome settled (0 or 1
  /// under the default RetryPolicy). Retries also appear in `attempts`
  /// and leave a "retry (transient): ..." trigger.
  int retries = 0;
  /// Classification of the predicate's last fault — "transient",
  /// "deterministic", or "" when it never faulted.
  std::string fault_class;
  bool clauses_changed = false;
  bool goals_changed = false;
};

/// Structured account of a guarded run: who ended at which ladder level,
/// after how many attempts, triggered by what. Rendered as text (for
/// stderr) or JSON (stable field order, machine-checkable).
struct PipelineReport {
  /// One entry per original predicate, in program order.
  std::vector<PredOutcome> preds;
  /// Whole-pipeline attempts (1 = clean first pass).
  int runs = 1;
  /// Non-empty when a global (unattributable) failure forced the whole
  /// program to identity — e.g. a mode-inference watchdog trip during
  /// setup, or an attempt-budget blowout.
  std::string global_trigger;
  /// Stage-level fallbacks (recorded once, not per predicate): a failure
  /// inside unfold/factor disables that whole stage for the rest of the
  /// run rather than blaming a predicate.
  bool unfold_disabled = false;
  std::string unfold_trigger;
  bool factor_disabled = false;
  std::string factor_trigger;
  bool absint_disabled = false;
  std::string absint_trigger;

  /// Analysis-cache accounting for this run (sharded path with a cache
  /// only; all zero otherwise). Deliberately NOT part of ToText/ToJson:
  /// the rendered report describes the transformation, which is identical
  /// whether a group was recomputed or replayed from cache — keeping the
  /// counters out is what makes cache-hit responses bit-identical to cold
  /// ones. Consumers that want them (tests, prored stats) read the fields.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Hits whose validation failed (corrupt entry); also counted as misses.
  size_t cache_rejected = 0;

  /// True if any predicate ended below kFull (or a stage was disabled).
  bool degraded() const;
  /// Number of predicates below kFull.
  size_t quarantined() const;

  std::string ToText() const;
  std::string ToJson() const;
};

struct PipelineResult {
  reader::Program program;
  /// Reorderer reports from the final (successful) run.
  std::vector<PredModeReport> reports;
  /// Diagnostics from the final run (notes and warnings; error-severity
  /// findings have been consumed as quarantine triggers by then).
  std::vector<lint::Diagnostic> diagnostics;
  /// DumpAbsint text from the final run (sharded: per-group sections, in
  /// deterministic merge order). Empty when absint was off or disabled.
  std::string absint_report;
  PipelineReport report;
};

/// The self-healing optimization pipeline. Runs unfold/factor/reorder under
/// a per-predicate fault boundary: any failure attributed to a predicate
/// demotes it one rung on the degradation ladder and re-runs; global
/// failures (analysis watchdog trips during setup) fall back to the
/// identity program. The result therefore always contains every predicate
/// — healthy ones transformed, quarantined ones at their recorded rung —
/// and Run() only returns an error for malformed input (not for any
/// transform failure).
class GuardedPipeline {
 public:
  GuardedPipeline(term::TermStore* store, PipelineOptions options = {})
      : store_(store), options_(std::move(options)) {}

  prore::Result<PipelineResult> Run(const reader::Program& original);

 private:
  /// The classic single-threaded whole-program pipeline (jobs == 0).
  prore::Result<PipelineResult> RunWhole(const reader::Program& original);
  /// The dependency-group-sharded pipeline (jobs >= 1): independent groups
  /// transformed concurrently, each inside its own fault boundary with its
  /// own watchdog deadlines, merged deterministically.
  prore::Result<PipelineResult> RunSharded(const reader::Program& original);

  /// The guaranteed bottom: a verbatim copy of the program.
  reader::Program CopyProgram(const reader::Program& original) const;

  /// Parses and self-verifies one cached group entry against the owned
  /// members' original clauses (PL100-PL103 validator, minus the checks
  /// that need the producing run's analyses). On success the parsed
  /// fragment (terms interned in the main store) lands in *out_frag.
  bool TryAdoptCachedGroup(const GroupCacheEntry& entry,
                           const std::vector<term::PredId>& members,
                           const reader::Program& original,
                           reader::Program* out_frag);

  term::TermStore* store_;
  PipelineOptions options_;
};

}  // namespace prore::core

#endif  // PRORE_CORE_PIPELINE_H_
