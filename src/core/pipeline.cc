#include "core/pipeline.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "analysis/content_hash.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "core/restrictions.h"
#include "lint/validate.h"
#include "reader/parser.h"
#include "reader/writer.h"

namespace prore::core {

using term::PredId;

const char* LadderLevelName(LadderLevel level) {
  switch (level) {
    case LadderLevel::kFull:
      return "full";
    case LadderLevel::kNoUnfold:
      return "no-unfold";
    case LadderLevel::kClauseOrderOnly:
      return "clause-order-only";
    case LadderLevel::kIdentity:
      return "identity";
  }
  return "unknown";
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += prore::StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

bool PipelineReport::degraded() const {
  if (unfold_disabled || factor_disabled || absint_disabled ||
      !global_trigger.empty()) {
    return true;
  }
  return quarantined() > 0;
}

size_t PipelineReport::quarantined() const {
  size_t n = 0;
  for (const PredOutcome& p : preds) {
    if (p.level != LadderLevel::kFull) ++n;
  }
  return n;
}

std::string PipelineReport::ToText() const {
  std::string out = prore::StrFormat(
      "pipeline: %d run%s, %zu of %zu predicate%s quarantined\n", runs,
      runs == 1 ? "" : "s", quarantined(), preds.size(),
      preds.size() == 1 ? "" : "s");
  if (!global_trigger.empty()) {
    out += "  GLOBAL fallback to identity: " + global_trigger + "\n";
  }
  if (unfold_disabled) {
    out += "  unfold stage disabled: " + unfold_trigger + "\n";
  }
  if (factor_disabled) {
    out += "  factor stage disabled: " + factor_trigger + "\n";
  }
  if (absint_disabled) {
    out += "  absint stage disabled: " + absint_trigger + "\n";
  }
  for (const PredOutcome& p : preds) {
    if (p.level == LadderLevel::kFull) continue;
    out += prore::StrFormat("  %s: %s after %d attempt%s", p.name.c_str(),
                            LadderLevelName(p.level), p.attempts,
                            p.attempts == 1 ? "" : "s");
    if (!p.fault_class.empty()) {
      out += prore::StrFormat(" (%s fault, %d retr%s)",
                              p.fault_class.c_str(), p.retries,
                              p.retries == 1 ? "y" : "ies");
    }
    out += "\n";
    for (const std::string& t : p.triggers) {
      out += "    - " + t + "\n";
    }
  }
  return out;
}

std::string PipelineReport::ToJson() const {
  std::string out = prore::StrFormat(
      "{\"runs\":%d,\"degraded\":%s,\"quarantined\":%zu", runs,
      degraded() ? "true" : "false", quarantined());
  out += ",\"global_trigger\":";
  AppendJsonString(&out, global_trigger);
  out += prore::StrFormat(",\"unfold_disabled\":%s",
                          unfold_disabled ? "true" : "false");
  out += ",\"unfold_trigger\":";
  AppendJsonString(&out, unfold_trigger);
  out += prore::StrFormat(",\"factor_disabled\":%s",
                          factor_disabled ? "true" : "false");
  out += ",\"factor_trigger\":";
  AppendJsonString(&out, factor_trigger);
  out += prore::StrFormat(",\"absint_disabled\":%s",
                          absint_disabled ? "true" : "false");
  out += ",\"absint_trigger\":";
  AppendJsonString(&out, absint_trigger);
  out += ",\"preds\":[";
  for (size_t i = 0; i < preds.size(); ++i) {
    const PredOutcome& p = preds[i];
    if (i) out += ",";
    out += "{\"pred\":";
    AppendJsonString(&out, p.name);
    out += ",\"level\":";
    AppendJsonString(&out, LadderLevelName(p.level));
    out += prore::StrFormat(
        ",\"attempts\":%d,\"retries\":%d,\"fault_class\":", p.attempts,
        p.retries);
    AppendJsonString(&out, p.fault_class);
    out += prore::StrFormat(
        ",\"clauses_changed\":%s,\"goals_changed\":%s",
        p.clauses_changed ? "true" : "false",
        p.goals_changed ? "true" : "false");
    out += ",\"triggers\":[";
    for (size_t j = 0; j < p.triggers.size(); ++j) {
      if (j) out += ",";
      AppendJsonString(&out, p.triggers[j]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

bool GuardedPipeline::TryAdoptCachedGroup(
    const GroupCacheEntry& entry, const std::vector<PredId>& members,
    const reader::Program& original, reader::Program* out_frag) {
  auto frag = reader::ParseProgramText(store_, entry.program_text);
  if (!frag.ok()) return false;

  // Self-verification on every hit: hold the cached output to the same
  // structural standard the reorderer used when producing it. The original
  // side is just the owned members' clauses (the cone was pinned identity
  // and is emitted by its own groups). Mode/oracle checks need the
  // producing run's analyses and are skipped; PL101 (clause preservation),
  // PL102 (dispatcher shape) and PL103 (coverage) catch any torn,
  // truncated, or cross-wired entry.
  reader::Program orig_sub;
  for (const PredId& p : members) {
    for (const reader::Clause& c : original.ClausesOf(p)) {
      orig_sub.AddClause(*store_, c);
    }
  }
  lint::ReorderCheckInput check;
  check.original = &orig_sub;
  check.transformed = &*frag;
  for (const GroupCacheEntry::Report& r : entry.reports) {
    auto mode = analysis::ModeFromString(r.mode);
    if (!mode.ok()) return false;
    check.versions.push_back(lint::VersionInfo{
        PredId{store_->symbols().Intern(r.pred_name), r.arity},
        std::move(*mode), r.version_name});
  }
  std::vector<lint::Diagnostic> findings;
  try {
    findings = lint::ValidateReorder(store_, check);
  } catch (const std::exception&) {
    return false;
  }
  for (const lint::Diagnostic& d : findings) {
    if (d.severity == lint::Severity::kError) return false;
  }
  *out_frag = std::move(*frag);
  return true;
}

reader::Program GuardedPipeline::CopyProgram(
    const reader::Program& original) const {
  reader::Program out;
  for (const PredId& pred : original.pred_order()) {
    for (const reader::Clause& clause : original.ClausesOf(pred)) {
      out.AddClause(*store_, clause);
    }
  }
  for (term::TermRef d : original.directives()) out.AddDirective(d);
  return out;
}

prore::Result<PipelineResult> GuardedPipeline::Run(
    const reader::Program& original) {
  // A cache implies the sharded (group-decomposed) path: the classic
  // whole-program pipeline prices callers against their already-reordered
  // callees, which per-group cache entries cannot reproduce.
  return (options_.jobs == 0 && options_.cache == nullptr)
             ? RunWhole(original)
             : RunSharded(original);
}

prore::Result<PipelineResult> GuardedPipeline::RunWhole(
    const reader::Program& original) {
  const std::vector<PredId> preds = original.pred_order();

  std::unordered_map<PredId, LadderLevel, term::PredIdHash> levels;
  std::unordered_map<PredId, int, term::PredIdHash> attempts;
  std::unordered_map<PredId, std::vector<std::string>, term::PredIdHash>
      triggers;
  std::unordered_map<PredId, int, term::PredIdHash> retries_used;
  std::unordered_map<PredId, prore::FaultClass, term::PredIdHash>
      fault_classes;
  for (const PredId& p : preds) {
    levels[p] = options_.pinned_identity.count(p) > 0 ? LadderLevel::kIdentity
                                                      : LadderLevel::kFull;
    attempts[p] = 1;
  }

  bool unfold_enabled = options_.unfold;
  bool factor_enabled = options_.factor;
  bool absint_enabled = options_.reorder.absint;
  PipelineReport report;

  // One rung per predicate per run, plus stage disables and one transient
  // retry per predicate, bounds the loop; the cap is slack on top of
  // that, never the expected exit path.
  const size_t max_runs =
      options_.max_runs != 0 ? options_.max_runs : 4 * preds.size() + 8;

  // Demotes one rung; false if already at the bottom.
  auto demote = [&](const PredId& pred, const std::string& why) -> bool {
    LadderLevel level = levels[pred];
    if (level == LadderLevel::kIdentity) return false;
    LadderLevel next;
    switch (level) {
      case LadderLevel::kFull:
        // Without an unfold/factor stage the kNoUnfold rung is a no-op
        // retry of kFull; skip straight to clause-order-only.
        next = (unfold_enabled || factor_enabled)
                   ? LadderLevel::kNoUnfold
                   : LadderLevel::kClauseOrderOnly;
        break;
      case LadderLevel::kNoUnfold:
        next = LadderLevel::kClauseOrderOnly;
        break;
      default:
        next = LadderLevel::kIdentity;
        break;
    }
    levels[pred] = next;
    ++attempts[pred];
    triggers[pred].push_back(why);
    return true;
  };

  auto fill_pred_outcomes =
      [&](const std::vector<PredModeReport>* final_reports) {
        report.preds.clear();
        for (const PredId& p : preds) {
          PredOutcome o;
          o.pred = p;
          o.name = reader::PredName(*store_, p);
          o.level = levels[p];
          o.attempts = attempts[p];
          o.triggers = triggers[p];
          auto rit = retries_used.find(p);
          if (rit != retries_used.end()) o.retries = rit->second;
          auto fit = fault_classes.find(p);
          if (fit != fault_classes.end() &&
              fit->second != prore::FaultClass::kNone) {
            o.fault_class = prore::FaultClassName(fit->second);
          }
          if (final_reports != nullptr) {
            for (const PredModeReport& r : *final_reports) {
              if (r.pred == p) {
                o.clauses_changed = o.clauses_changed || r.clauses_changed;
                o.goals_changed = o.goals_changed || r.goals_changed;
              }
            }
          }
          report.preds.push_back(std::move(o));
        }
      };

  auto identity_fallback = [&](const std::string& why)
      -> prore::Result<PipelineResult> {
    report.global_trigger = why;
    for (const PredId& p : preds) levels[p] = LadderLevel::kIdentity;
    fill_pred_outcomes(nullptr);
    PipelineResult result;
    result.program = CopyProgram(original);
    result.report = std::move(report);
    return result;
  };

  for (size_t run = 1; run <= max_runs; ++run) {
    report.runs = static_cast<int>(run);

    // A cancelled or past-deadline context stops starting new attempts;
    // what has been decided so far is discarded in favor of the always-
    // correct identity program, with the reason on record.
    if (prore::Status ctx = options_.exec.Check(); !ctx.ok()) {
      return identity_fallback(ctx.ToString());
    }

    analysis::PredSet no_unfold;
    analysis::PredSet clause_only;
    analysis::PredSet identity;
    for (const auto& [pred, level] : levels) {
      if (level >= LadderLevel::kNoUnfold) no_unfold.insert(pred);
      if (level == LadderLevel::kClauseOrderOnly) clause_only.insert(pred);
      if (level == LadderLevel::kIdentity) identity.insert(pred);
    }

    // ---- Stage 1: unfold / factor pre-passes -------------------------
    // A failure here is rarely attributable to one predicate, so the
    // fallback is coarser: disable the whole stage and re-run.
    const reader::Program* working = &original;
    reader::Program unfolded_storage, factored_storage;
    if (unfold_enabled) {
      UnfoldOptions uo = options_.unfold_options;
      uo.skip = no_unfold;
      prore::Status st;
      try {
        auto r = UnfoldProgram(store_, *working, uo);
        if (r.ok()) {
          unfolded_storage = std::move(r).value();
          working = &unfolded_storage;
        } else {
          st = r.status();
        }
      } catch (const std::exception& e) {
        st = prore::Status::Internal(
            prore::StrFormat("uncaught exception in unfold: %s", e.what()));
      }
      if (!st.ok()) {
        unfold_enabled = false;
        report.unfold_disabled = true;
        report.unfold_trigger = st.ToString();
        continue;
      }
    }
    if (factor_enabled) {
      prore::Status st;
      try {
        auto r = FactorDisjunctions(store_, *working, nullptr, &no_unfold);
        if (r.ok()) {
          factored_storage = std::move(r).value();
          working = &factored_storage;
        } else {
          st = r.status();
        }
      } catch (const std::exception& e) {
        st = prore::Status::Internal(
            prore::StrFormat("uncaught exception in factor: %s", e.what()));
      }
      if (!st.ok()) {
        factor_enabled = false;
        report.factor_disabled = true;
        report.factor_trigger = st.ToString();
        continue;
      }
    }

    // ---- Stage 2: the reorderer under its fault boundary -------------
    ReorderOptions ro = options_.reorder;
    ro.clause_order_only = clause_only;
    ro.identity_preds = identity;
    ro.cost_watchdog = options_.cost_watchdog;
    ro.inference.watchdog = options_.inference_watchdog;
    ro.absint = absint_enabled;
    ro.absint_watchdog = options_.absint_watchdog;
    ro.exec = options_.exec;
    if (options_.fault != nullptr) ro.fault = options_.fault;
    PredId blamed{};
    bool have_blame = false;
    auto user_cb = options_.reorder.on_pred_error;
    ro.on_pred_error = [&](const PredId& p, const prore::Status& st) {
      blamed = p;
      have_blame = true;
      if (user_cb) user_cb(p, st);
    };

    prore::Result<ReorderResult> rr = ReorderResult{};
    try {
      rr = Reorderer(store_, ro).Run(*working);
    } catch (const std::exception& e) {
      rr = prore::Status::Internal(
          prore::StrFormat("uncaught exception in reorderer: %s", e.what()));
    }

    if (!rr.ok()) {
      // An absint watchdog trip is a stage failure, not a predicate's
      // fault: drop the stage (baseline estimates) and retry instead of
      // descending the ladder or falling to identity.
      if (absint_enabled &&
          rr.status().code() == prore::StatusCode::kResourceExhausted &&
          rr.status().error_term() == "resource_error(watchdog(absint))") {
        absint_enabled = false;
        report.absint_disabled = true;
        report.absint_trigger = rr.status().ToString();
        continue;
      }
      const prore::FaultClass fc =
          prore::ClassifyFaultStatus(rr.status());
      // Cancellation and an expired global deadline are not predicate
      // faults — retrying or demoting cannot outrun them. Land on the
      // identity program immediately.
      if (fc == prore::FaultClass::kCancelled ||
          rr.status().error_term() == "resource_error(deadline_exceeded)") {
        return identity_fallback(rr.status().ToString());
      }
      if (have_blame && levels.count(blamed) > 0) {
        fault_classes[blamed] = fc;
        // Transient faults (watchdog trips, OOM) get one retry with
        // backoff at the same ladder rung before demotion: the failure
        // may have been scheduling noise or a contended sibling shard.
        if (fc == prore::FaultClass::kTransient && options_.retry.enabled() &&
            retries_used[blamed] < options_.retry.max_retries() &&
            levels[blamed] != LadderLevel::kIdentity) {
          ++retries_used[blamed];
          ++attempts[blamed];
          triggers[blamed].push_back("retry (transient): " +
                                     rr.status().ToString());
          if (!prore::BackoffSleep(options_.retry.ToBackoff(),
                                   retries_used[blamed], options_.exec)
                   .ok()) {
            return identity_fallback(options_.exec.Check().ToString());
          }
          continue;
        }
        if (demote(blamed, rr.status().ToString())) continue;
      }
      // Unattributable (setup/analysis failure, e.g. a mode-inference
      // watchdog trip) or an identity build failed (which must not
      // happen): the only safe landing is the identity program.
      return identity_fallback(rr.status().ToString());
    }

    // ---- Stage 3: validator diagnostics as quarantine triggers -------
    // Map version names back to original predicates so a finding against
    // aunt_iu/2 demotes aunt/2.
    std::unordered_map<std::string, PredId> owner;
    for (const PredModeReport& r : rr->reports) {
      owner.emplace(
          prore::StrFormat("%s/%u", r.version_name.c_str(), r.pred.arity),
          r.pred);
      owner.emplace(reader::PredName(*store_, r.pred), r.pred);
    }
    bool demoted_any = false;
    for (const lint::Diagnostic& d : rr->diagnostics) {
      if (d.severity != lint::Severity::kError) continue;
      auto it = owner.find(d.pred);
      std::string why = d.code + ": " + d.message;
      // Validator findings reproduce on identical input: deterministic,
      // never retried.
      if (it != owner.end()) {
        fault_classes[it->second] = prore::FaultClass::kDeterministic;
      }
      if (it == owner.end() || levels.count(it->second) == 0 ||
          !demote(it->second, why)) {
        // No predicate to blame (or it is already at identity, which
        // self-validates — a contradiction): identity for everything.
        return identity_fallback(why);
      }
      demoted_any = true;
    }
    if (demoted_any) continue;

    // ---- Success ------------------------------------------------------
    fill_pred_outcomes(&rr->reports);
    PipelineResult result;
    result.program = std::move(rr->program);
    result.reports = std::move(rr->reports);
    result.diagnostics = std::move(rr->diagnostics);
    result.absint_report = std::move(rr->absint_report);
    result.report = std::move(report);
    return result;
  }

  return identity_fallback(
      prore::StrFormat("attempt budget exhausted after %zu runs",
                       max_runs));
}

prore::Result<PipelineResult> GuardedPipeline::RunSharded(
    const reader::Program& original) {
  // Condensation and the caller->callee restriction analysis run once, on
  // the calling thread, over the whole program. If either fails, the
  // whole-program path's fault machinery produces the right fallback.
  auto graph = analysis::CallGraph::Build(*store_, original);
  if (!graph.ok()) return RunWhole(original);
  auto frozen = FrozenDescendants(*store_, original, *graph);
  if (!frozen.ok()) return RunWhole(original);
  const analysis::DependencyGroups dg =
      analysis::ComputeDependencyGroups(*graph);
  if (dg.size() <= 1) return RunWhole(original);

  const std::vector<PredId>& preds = original.pred_order();
  analysis::PredSet all_preds(preds.begin(), preds.end());
  std::unordered_map<PredId, size_t, term::PredIdHash> source_pos;
  for (size_t i = 0; i < preds.size(); ++i) source_pos.emplace(preds[i], i);
  // "name/arity" -> owning group, to route merged diagnostics.
  std::unordered_map<std::string, size_t> owner_group;
  for (const PredId& p : preds) {
    owner_group.emplace(reader::PredName(*store_, p), dg.group_of.at(p));
  }

  struct GroupRun {
    term::TermStore store;  ///< private arena; symbols adopted from main
    /// Non-ok until the task actually runs: a task dropped by
    /// cancellation (or lost to a worker exception) must land its group
    /// on the identity merge path, not silently contribute an empty
    /// program.
    prore::Result<PipelineResult> result =
        prore::Status::Cancelled("group task never ran");
    analysis::PredSet members;
    size_t min_pos = 0;  ///< earliest source position of a member
  };
  std::vector<GroupRun> runs(dg.size());
  for (size_t gi = 0; gi < dg.size(); ++gi) {
    GroupRun& gr = runs[gi];
    gr.members.insert(dg.groups[gi].begin(), dg.groups[gi].end());
    gr.min_pos = preds.size();
    for (const PredId& p : dg.groups[gi]) {
      gr.min_pos = std::min(gr.min_pos, source_pos.at(p));
    }
  }

  // ---- Cache lookup --------------------------------------------------
  // Runs before any worker starts: adopting a hit parses its rendered
  // clauses into the main store, which is single-threaded. A hit that
  // fails the PL100-PL103 re-validation is invalidated and recomputed —
  // corruption costs a recompute, never correctness.
  analysis::ContentHashes hashes;
  std::vector<std::shared_ptr<const GroupCacheEntry>> hits(dg.size());
  std::vector<reader::Program> hit_programs(dg.size());
  size_t cache_hits = 0, cache_misses = 0, cache_rejected = 0;
  if (options_.cache != nullptr) {
    hashes = analysis::ComputeContentHashes(*store_, original, dg, &*frozen,
                                            options_.cache_salt);
    for (size_t gi = 0; gi < dg.size(); ++gi) {
      auto entry = options_.cache->Lookup(hashes.group_hash[gi]);
      if (entry == nullptr) {
        ++cache_misses;
        continue;
      }
      if (TryAdoptCachedGroup(*entry, dg.groups[gi], original,
                              &hit_programs[gi])) {
        hits[gi] = std::move(entry);
        ++cache_hits;
      } else {
        options_.cache->Invalidate(hashes.group_hash[gi]);
        ++cache_rejected;
        ++cache_misses;
      }
    }
  }

  std::string out_of_band_failure;

  // Sibling-shard interruption: every group task runs under a child
  // cancellation scope of the pipeline's own context, so (a) a caller's
  // cancel propagates into every in-flight group's analyses, and (b)
  // stop_on_degrade can cancel the siblings from inside a task the
  // moment one group degrades (prore --strict: the exit code is already
  // decided, finishing the other shards buys nothing).
  prore::CancellationSource group_cancel(options_.exec.token);
  const prore::ExecContext group_exec =
      options_.exec.WithToken(group_cancel.token());

  // One task per group. Each task owns a private TermStore whose symbol
  // table is a copy of the main one (so PredIds carry over), copies its
  // dependency cone in, and runs the complete whole-program pipeline over
  // that subprogram with the cone pinned to identity. Groups share nothing
  // mutable: watchdog deadlines, fault boundaries and the degradation
  // ladder all live inside the task.
  auto run_group = [&](size_t gi) {
    GroupRun& gr = runs[gi];
    if (group_cancel.Cancelled()) return;  // keep the never-ran status
    try {
      gr.store.AdoptSymbols(*store_);
      analysis::PredSet cone;
      for (size_t d : dg.TransitiveDeps(gi)) {
        cone.insert(dg.groups[d].begin(), dg.groups[d].end());
      }
      reader::Program sub;
      for (const PredId& p : preds) {
        if (gr.members.count(p) == 0 && cone.count(p) == 0) continue;
        for (const reader::Clause& c : original.ClausesOf(p)) {
          std::unordered_map<uint32_t, term::TermRef> vars;
          reader::Clause copy;
          copy.head = gr.store.CopyFrom(*store_, c.head, &vars);
          copy.body = gr.store.CopyFrom(*store_, c.body, &vars);
          sub.AddClause(gr.store, copy);
        }
      }
      // Declarations (legal modes etc.) may concern any predicate; copy
      // them all and let each group pick out what it needs.
      for (term::TermRef d : original.directives()) {
        sub.AddDirective(gr.store.CopyFrom(*store_, d));
      }

      PipelineOptions po = options_;
      po.jobs = 0;
      // The cache is a property of the sharded orchestration, not of the
      // per-group transform: an inner pipeline that inherited it would
      // route back into RunSharded and recurse without end.
      po.cache = nullptr;
      po.pinned_identity = std::move(cone);
      po.exec = group_exec;
      // Cut-freezing flows caller -> callee, so a subprogram cannot see
      // that an outside caller guards a member with a cut; inject the
      // whole-program answer. Version names must be free program-wide.
      po.reorder.extra_frozen = *frozen;
      po.reorder.reserved_preds = all_preds;
      gr.result = GuardedPipeline(&gr.store, std::move(po)).Run(sub);
      if (options_.stop_on_degrade && gr.result.ok() &&
          gr.result->report.degraded()) {
        group_cancel.RequestCancel(prore::StrFormat(
            "sibling group %zu degraded under stop_on_degrade", gi));
      }
    } catch (const std::exception& e) {
      gr.result = prore::Status::Internal(prore::StrFormat(
          "uncaught exception in pipeline group: %s", e.what()));
    }
  };

  // jobs == 1 uses the inline pool: same code path, same task order, no
  // threads — which is what makes --jobs=N bit-identical to --jobs=1.
  // The pool shares the group cancellation scope: once it fires, queued
  // group tasks are dropped without starting (their groups merge as
  // identity via the never-ran status).
  {
    prore::ThreadPool pool(options_.jobs <= 1 ? 0 : options_.jobs,
                           group_cancel.token());
    for (size_t gi = 0; gi < dg.size(); ++gi) {
      if (hits[gi] != nullptr) continue;  // replayed from cache at merge
      pool.Submit([&run_group, gi] { run_group(gi); });
    }
    try {
      pool.Wait();
    } catch (const std::exception& e) {
      // A non-std exception escaped run_group's own boundary. The groups
      // it killed keep their never-ran status and merge as identity;
      // record the first cause globally.
      out_of_band_failure = prore::StrFormat(
          "pipeline worker exception: %s", e.what());
    } catch (...) {
      out_of_band_failure = "pipeline worker exception (non-std)";
    }
  }

  // Deterministic merge: groups ordered by their earliest member's source
  // position (completion order plays no part), each contributing only the
  // predicates it owns — the pinned cone copies are dropped, and calls into
  // them route to the owning group's own output under the original names.
  std::vector<size_t> order(dg.size());
  for (size_t gi = 0; gi < dg.size(); ++gi) order[gi] = gi;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return runs[a].min_pos < runs[b].min_pos;
  });

  PipelineResult out;
  PipelineReport& rep = out.report;
  std::unordered_map<PredId, PredOutcome, term::PredIdHash> outcomes;

  auto owned_by = [&](const PredId& p, size_t gi) {
    auto it = dg.group_of.find(p);
    return it == dg.group_of.end() || it->second == gi;
  };

  for (size_t gi : order) {
    GroupRun& gr = runs[gi];
    if (hits[gi] != nullptr) {
      // Replay the validated cache entry. Its clauses were parsed into the
      // main store during adoption, so they splice in directly; everything
      // else is rebuilt from the entry's name/arity serialization. The
      // writer/parser round-trip is a fixed point for parsed variable
      // names, so this merge renders bit-identical to the cold run that
      // produced the entry.
      const GroupCacheEntry& e = *hits[gi];
      rep.runs = std::max(rep.runs, e.runs);
      for (const PredId& p : hit_programs[gi].pred_order()) {
        for (const reader::Clause& c : hit_programs[gi].ClausesOf(p)) {
          out.program.AddClause(*store_, c);
        }
      }
      for (const GroupCacheEntry::Report& r : e.reports) {
        PredModeReport pmr;
        pmr.pred = PredId{store_->symbols().Intern(r.pred_name), r.arity};
        pmr.mode = std::move(analysis::ModeFromString(r.mode)).value();
        pmr.version_name = r.version_name;
        pmr.clauses_changed = r.clauses_changed;
        pmr.goals_changed = r.goals_changed;
        pmr.predicted_original_cost = r.predicted_original_cost;
        pmr.predicted_new_cost = r.predicted_new_cost;
        out.reports.push_back(std::move(pmr));
      }
      for (const lint::Diagnostic& d : e.diagnostics) {
        out.diagnostics.push_back(d);
      }
      if (!e.absint_report.empty()) {
        out.absint_report +=
            prore::StrFormat("== group %zu ==\n", gi) + e.absint_report;
      }
      for (const GroupCacheEntry::Outcome& oe : e.outcomes) {
        PredOutcome o;
        o.pred = PredId{store_->symbols().Intern(oe.pred_name), oe.arity};
        o.name = prore::StrFormat("%s/%u", oe.pred_name.c_str(), oe.arity);
        o.level = static_cast<LadderLevel>(oe.level);
        o.attempts = oe.attempts;
        o.retries = oe.retries;
        o.fault_class = oe.fault_class;
        o.triggers = oe.triggers;
        o.clauses_changed = oe.clauses_changed;
        o.goals_changed = oe.goals_changed;
        outcomes.emplace(o.pred, std::move(o));
      }
      continue;
    }
    if (!gr.result.ok()) {
      // The inner pipeline only errors on malformed input, which a
      // well-formed subprogram rules out — but if it happens, land the
      // group on identity so the merged program stays complete.
      std::string why = gr.result.status().ToString();
      for (const PredId& p : preds) {
        if (gr.members.count(p) == 0) continue;
        for (const reader::Clause& c : original.ClausesOf(p)) {
          out.program.AddClause(*store_, c);
        }
        PredOutcome o;
        o.pred = p;
        o.name = reader::PredName(*store_, p);
        o.level = LadderLevel::kIdentity;
        o.attempts = 1;
        o.triggers.push_back(why);
        outcomes.emplace(p, std::move(o));
      }
      if (rep.global_trigger.empty()) {
        rep.global_trigger = prore::StrFormat("group %zu: %s", gi,
                                              why.c_str());
      }
      continue;
    }

    PipelineResult& pr = *gr.result;
    rep.runs = std::max(rep.runs, pr.report.runs);
    if (pr.report.unfold_disabled && !rep.unfold_disabled) {
      rep.unfold_disabled = true;
      rep.unfold_trigger = pr.report.unfold_trigger;
    }
    if (pr.report.factor_disabled && !rep.factor_disabled) {
      rep.factor_disabled = true;
      rep.factor_trigger = pr.report.factor_trigger;
    }
    if (pr.report.absint_disabled && !rep.absint_disabled) {
      rep.absint_disabled = true;
      rep.absint_trigger = pr.report.absint_trigger;
    }
    if (!pr.report.global_trigger.empty() && rep.global_trigger.empty()) {
      rep.global_trigger = prore::StrFormat(
          "group %zu: %s", gi, pr.report.global_trigger.c_str());
    }

    // Only clean groups are worth caching: every owned member must have
    // settled at kFull with no stage disables and no global fallback. The
    // pinned cone members sit at kIdentity by design; they are emitted by
    // their own groups and don't count against this group's cleanliness.
    bool cacheable = options_.cache != nullptr && !pr.report.unfold_disabled &&
                     !pr.report.factor_disabled &&
                     !pr.report.absint_disabled &&
                     pr.report.global_trigger.empty();
    if (cacheable) {
      for (const PredOutcome& o : pr.report.preds) {
        if (gr.members.count(o.pred) > 0 && o.level != LadderLevel::kFull) {
          cacheable = false;
          break;
        }
      }
    }
    GroupCacheEntry entry;

    for (const PredId& p : pr.program.pred_order()) {
      if (!owned_by(p, gi)) continue;  // pinned cone copy — owner emits it
      for (const reader::Clause& c : pr.program.ClausesOf(p)) {
        std::unordered_map<uint32_t, term::TermRef> vars;
        reader::Clause copy;
        copy.head = store_->CopyFrom(gr.store, c.head, &vars);
        copy.body = store_->CopyFrom(gr.store, c.body, &vars);
        out.program.AddClause(*store_, copy);
        if (cacheable) {
          // Rendered from the MAIN-store copy, after the same CopyFrom the
          // cold merge output went through — so replaying the entry
          // reproduces the cold run's text exactly.
          entry.program_text += reader::WriteClause(*store_, copy);
          entry.program_text += '\n';
        }
      }
    }
    for (const PredModeReport& r : pr.reports) {
      if (!owned_by(r.pred, gi)) continue;
      out.reports.push_back(r);
      if (cacheable) {
        GroupCacheEntry::Report cr;
        cr.pred_name = store_->symbols().Name(r.pred.name);
        cr.arity = r.pred.arity;
        cr.mode = analysis::ModeString(r.mode);
        cr.version_name = r.version_name;
        cr.clauses_changed = r.clauses_changed;
        cr.goals_changed = r.goals_changed;
        cr.predicted_original_cost = r.predicted_original_cost;
        cr.predicted_new_cost = r.predicted_new_cost;
        entry.reports.push_back(std::move(cr));
      }
    }
    for (const lint::Diagnostic& d : pr.diagnostics) {
      auto it = owner_group.find(d.pred);
      if (it != owner_group.end() && it->second != gi) continue;
      out.diagnostics.push_back(d);
      if (cacheable) entry.diagnostics.push_back(d);
    }
    if (!pr.absint_report.empty()) {
      out.absint_report +=
          prore::StrFormat("== group %zu ==\n", gi) + pr.absint_report;
      if (cacheable) entry.absint_report = pr.absint_report;
    }
    for (const PredOutcome& o : pr.report.preds) {
      if (dg.group_of.count(o.pred) > 0 && dg.group_of.at(o.pred) == gi) {
        outcomes.emplace(o.pred, o);
        if (cacheable) {
          GroupCacheEntry::Outcome oe;
          oe.pred_name = store_->symbols().Name(o.pred.name);
          oe.arity = o.pred.arity;
          oe.level = static_cast<int>(o.level);
          oe.attempts = o.attempts;
          oe.retries = o.retries;
          oe.fault_class = o.fault_class;
          oe.triggers = o.triggers;
          oe.clauses_changed = o.clauses_changed;
          oe.goals_changed = o.goals_changed;
          entry.outcomes.push_back(std::move(oe));
        }
      }
    }
    if (cacheable) {
      entry.runs = pr.report.runs;
      options_.cache->Insert(hashes.group_hash[gi], std::move(entry));
    }
  }

  if (!out_of_band_failure.empty() && rep.global_trigger.empty()) {
    rep.global_trigger = out_of_band_failure;
  }
  rep.cache_hits = cache_hits;
  rep.cache_misses = cache_misses;
  rep.cache_rejected = cache_rejected;
  for (term::TermRef d : original.directives()) out.program.AddDirective(d);
  for (const PredId& p : preds) {
    auto it = outcomes.find(p);
    if (it != outcomes.end()) {
      rep.preds.push_back(std::move(it->second));
    } else {
      PredOutcome o;  // defensive: a group somehow skipped this predicate
      o.pred = p;
      o.name = reader::PredName(*store_, p);
      rep.preds.push_back(std::move(o));
    }
  }
  return out;
}

}  // namespace prore::core
