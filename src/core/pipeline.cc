#include "core/pipeline.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/str_util.h"
#include "reader/writer.h"

namespace prore::core {

using term::PredId;

const char* LadderLevelName(LadderLevel level) {
  switch (level) {
    case LadderLevel::kFull:
      return "full";
    case LadderLevel::kNoUnfold:
      return "no-unfold";
    case LadderLevel::kClauseOrderOnly:
      return "clause-order-only";
    case LadderLevel::kIdentity:
      return "identity";
  }
  return "unknown";
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += prore::StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

bool PipelineReport::degraded() const {
  if (unfold_disabled || factor_disabled || !global_trigger.empty()) {
    return true;
  }
  return quarantined() > 0;
}

size_t PipelineReport::quarantined() const {
  size_t n = 0;
  for (const PredOutcome& p : preds) {
    if (p.level != LadderLevel::kFull) ++n;
  }
  return n;
}

std::string PipelineReport::ToText() const {
  std::string out = prore::StrFormat(
      "pipeline: %d run%s, %zu of %zu predicate%s quarantined\n", runs,
      runs == 1 ? "" : "s", quarantined(), preds.size(),
      preds.size() == 1 ? "" : "s");
  if (!global_trigger.empty()) {
    out += "  GLOBAL fallback to identity: " + global_trigger + "\n";
  }
  if (unfold_disabled) {
    out += "  unfold stage disabled: " + unfold_trigger + "\n";
  }
  if (factor_disabled) {
    out += "  factor stage disabled: " + factor_trigger + "\n";
  }
  for (const PredOutcome& p : preds) {
    if (p.level == LadderLevel::kFull) continue;
    out += prore::StrFormat("  %s: %s after %d attempt%s\n", p.name.c_str(),
                            LadderLevelName(p.level), p.attempts,
                            p.attempts == 1 ? "" : "s");
    for (const std::string& t : p.triggers) {
      out += "    - " + t + "\n";
    }
  }
  return out;
}

std::string PipelineReport::ToJson() const {
  std::string out = prore::StrFormat(
      "{\"runs\":%d,\"degraded\":%s,\"quarantined\":%zu", runs,
      degraded() ? "true" : "false", quarantined());
  out += ",\"global_trigger\":";
  AppendJsonString(&out, global_trigger);
  out += prore::StrFormat(",\"unfold_disabled\":%s",
                          unfold_disabled ? "true" : "false");
  out += ",\"unfold_trigger\":";
  AppendJsonString(&out, unfold_trigger);
  out += prore::StrFormat(",\"factor_disabled\":%s",
                          factor_disabled ? "true" : "false");
  out += ",\"factor_trigger\":";
  AppendJsonString(&out, factor_trigger);
  out += ",\"preds\":[";
  for (size_t i = 0; i < preds.size(); ++i) {
    const PredOutcome& p = preds[i];
    if (i) out += ",";
    out += "{\"pred\":";
    AppendJsonString(&out, p.name);
    out += ",\"level\":";
    AppendJsonString(&out, LadderLevelName(p.level));
    out += prore::StrFormat(
        ",\"attempts\":%d,\"clauses_changed\":%s,\"goals_changed\":%s",
        p.attempts, p.clauses_changed ? "true" : "false",
        p.goals_changed ? "true" : "false");
    out += ",\"triggers\":[";
    for (size_t j = 0; j < p.triggers.size(); ++j) {
      if (j) out += ",";
      AppendJsonString(&out, p.triggers[j]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

reader::Program GuardedPipeline::CopyProgram(
    const reader::Program& original) const {
  reader::Program out;
  for (const PredId& pred : original.pred_order()) {
    for (const reader::Clause& clause : original.ClausesOf(pred)) {
      out.AddClause(*store_, clause);
    }
  }
  for (term::TermRef d : original.directives()) out.AddDirective(d);
  return out;
}

prore::Result<PipelineResult> GuardedPipeline::Run(
    const reader::Program& original) {
  const std::vector<PredId> preds = original.pred_order();

  std::unordered_map<PredId, LadderLevel, term::PredIdHash> levels;
  std::unordered_map<PredId, int, term::PredIdHash> attempts;
  std::unordered_map<PredId, std::vector<std::string>, term::PredIdHash>
      triggers;
  for (const PredId& p : preds) {
    levels[p] = LadderLevel::kFull;
    attempts[p] = 1;
  }

  bool unfold_enabled = options_.unfold;
  bool factor_enabled = options_.factor;
  PipelineReport report;

  // One rung per predicate per run, plus stage disables, bounds the loop;
  // the cap is slack on top of that, never the expected exit path.
  const size_t max_runs =
      options_.max_runs != 0 ? options_.max_runs : 3 * preds.size() + 8;

  // Demotes one rung; false if already at the bottom.
  auto demote = [&](const PredId& pred, const std::string& why) -> bool {
    LadderLevel level = levels[pred];
    if (level == LadderLevel::kIdentity) return false;
    LadderLevel next;
    switch (level) {
      case LadderLevel::kFull:
        // Without an unfold/factor stage the kNoUnfold rung is a no-op
        // retry of kFull; skip straight to clause-order-only.
        next = (unfold_enabled || factor_enabled)
                   ? LadderLevel::kNoUnfold
                   : LadderLevel::kClauseOrderOnly;
        break;
      case LadderLevel::kNoUnfold:
        next = LadderLevel::kClauseOrderOnly;
        break;
      default:
        next = LadderLevel::kIdentity;
        break;
    }
    levels[pred] = next;
    ++attempts[pred];
    triggers[pred].push_back(why);
    return true;
  };

  auto fill_pred_outcomes =
      [&](const std::vector<PredModeReport>* final_reports) {
        report.preds.clear();
        for (const PredId& p : preds) {
          PredOutcome o;
          o.pred = p;
          o.name = reader::PredName(*store_, p);
          o.level = levels[p];
          o.attempts = attempts[p];
          o.triggers = triggers[p];
          if (final_reports != nullptr) {
            for (const PredModeReport& r : *final_reports) {
              if (r.pred == p) {
                o.clauses_changed = o.clauses_changed || r.clauses_changed;
                o.goals_changed = o.goals_changed || r.goals_changed;
              }
            }
          }
          report.preds.push_back(std::move(o));
        }
      };

  auto identity_fallback = [&](const std::string& why)
      -> prore::Result<PipelineResult> {
    report.global_trigger = why;
    for (const PredId& p : preds) levels[p] = LadderLevel::kIdentity;
    fill_pred_outcomes(nullptr);
    PipelineResult result;
    result.program = CopyProgram(original);
    result.report = std::move(report);
    return result;
  };

  for (size_t run = 1; run <= max_runs; ++run) {
    report.runs = static_cast<int>(run);

    analysis::PredSet no_unfold;
    analysis::PredSet clause_only;
    analysis::PredSet identity;
    for (const auto& [pred, level] : levels) {
      if (level >= LadderLevel::kNoUnfold) no_unfold.insert(pred);
      if (level == LadderLevel::kClauseOrderOnly) clause_only.insert(pred);
      if (level == LadderLevel::kIdentity) identity.insert(pred);
    }

    // ---- Stage 1: unfold / factor pre-passes -------------------------
    // A failure here is rarely attributable to one predicate, so the
    // fallback is coarser: disable the whole stage and re-run.
    const reader::Program* working = &original;
    reader::Program unfolded_storage, factored_storage;
    if (unfold_enabled) {
      UnfoldOptions uo = options_.unfold_options;
      uo.skip = no_unfold;
      prore::Status st;
      try {
        auto r = UnfoldProgram(store_, *working, uo);
        if (r.ok()) {
          unfolded_storage = std::move(r).value();
          working = &unfolded_storage;
        } else {
          st = r.status();
        }
      } catch (const std::exception& e) {
        st = prore::Status::Internal(
            prore::StrFormat("uncaught exception in unfold: %s", e.what()));
      }
      if (!st.ok()) {
        unfold_enabled = false;
        report.unfold_disabled = true;
        report.unfold_trigger = st.ToString();
        continue;
      }
    }
    if (factor_enabled) {
      prore::Status st;
      try {
        auto r = FactorDisjunctions(store_, *working, nullptr, &no_unfold);
        if (r.ok()) {
          factored_storage = std::move(r).value();
          working = &factored_storage;
        } else {
          st = r.status();
        }
      } catch (const std::exception& e) {
        st = prore::Status::Internal(
            prore::StrFormat("uncaught exception in factor: %s", e.what()));
      }
      if (!st.ok()) {
        factor_enabled = false;
        report.factor_disabled = true;
        report.factor_trigger = st.ToString();
        continue;
      }
    }

    // ---- Stage 2: the reorderer under its fault boundary -------------
    ReorderOptions ro = options_.reorder;
    ro.clause_order_only = clause_only;
    ro.identity_preds = identity;
    ro.cost_watchdog = options_.cost_watchdog;
    ro.inference.watchdog = options_.inference_watchdog;
    if (options_.fault != nullptr) ro.fault = options_.fault;
    PredId blamed{};
    bool have_blame = false;
    auto user_cb = options_.reorder.on_pred_error;
    ro.on_pred_error = [&](const PredId& p, const prore::Status& st) {
      blamed = p;
      have_blame = true;
      if (user_cb) user_cb(p, st);
    };

    prore::Result<ReorderResult> rr = ReorderResult{};
    try {
      rr = Reorderer(store_, ro).Run(*working);
    } catch (const std::exception& e) {
      rr = prore::Status::Internal(
          prore::StrFormat("uncaught exception in reorderer: %s", e.what()));
    }

    if (!rr.ok()) {
      if (have_blame && levels.count(blamed) > 0 &&
          demote(blamed, rr.status().ToString())) {
        continue;
      }
      // Unattributable (setup/analysis failure, e.g. a mode-inference
      // watchdog trip) or an identity build failed (which must not
      // happen): the only safe landing is the identity program.
      return identity_fallback(rr.status().ToString());
    }

    // ---- Stage 3: validator diagnostics as quarantine triggers -------
    // Map version names back to original predicates so a finding against
    // aunt_iu/2 demotes aunt/2.
    std::unordered_map<std::string, PredId> owner;
    for (const PredModeReport& r : rr->reports) {
      owner.emplace(
          prore::StrFormat("%s/%u", r.version_name.c_str(), r.pred.arity),
          r.pred);
      owner.emplace(reader::PredName(*store_, r.pred), r.pred);
    }
    bool demoted_any = false;
    for (const lint::Diagnostic& d : rr->diagnostics) {
      if (d.severity != lint::Severity::kError) continue;
      auto it = owner.find(d.pred);
      std::string why = d.code + ": " + d.message;
      if (it == owner.end() || levels.count(it->second) == 0 ||
          !demote(it->second, why)) {
        // No predicate to blame (or it is already at identity, which
        // self-validates — a contradiction): identity for everything.
        return identity_fallback(why);
      }
      demoted_any = true;
    }
    if (demoted_any) continue;

    // ---- Success ------------------------------------------------------
    fill_pred_outcomes(&rr->reports);
    PipelineResult result;
    result.program = std::move(rr->program);
    result.reports = std::move(rr->reports);
    result.diagnostics = std::move(rr->diagnostics);
    result.report = std::move(report);
    return result;
  }

  return identity_fallback(
      prore::StrFormat("attempt budget exhausted after %zu runs",
                       max_runs));
}

}  // namespace prore::core
