#include "core/analysis_cache.h"

#include <utility>

namespace prore::core {

std::shared_ptr<const GroupCacheEntry> AnalysisCache::Lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.entry;
}

void AnalysisCache::Insert(uint64_t key, GroupCacheEntry entry) {
  auto shared = std::make_shared<const GroupCacheEntry>(std::move(entry));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.insertions;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.entry = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (entries_.size() >= max_entries_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::move(shared), lru_.begin()});
}

void AnalysisCache::Invalidate(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  ++stats_.invalidations;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

bool AnalysisCache::CorruptForTest(
    uint64_t key, const std::function<void(GroupCacheEntry*)>& mutate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  GroupCacheEntry copy = *it->second.entry;
  mutate(&copy);
  it->second.entry = std::make_shared<const GroupCacheEntry>(std::move(copy));
  return true;
}

std::vector<uint64_t> AnalysisCache::KeysForTest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<uint64_t>(lru_.begin(), lru_.end());
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace prore::core
