#ifndef PRORE_CORE_ANALYSIS_CACHE_H_
#define PRORE_CORE_ANALYSIS_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "lint/diagnostic.h"

namespace prore::core {

/// One cached per-dependency-group transform result, keyed by the group's
/// content hash (analysis/content_hash.h). Everything is stored as plain
/// values — rendered clause text, name/arity strings, mode strings — so an
/// entry is valid across requests whose TermStores (and hence TermRefs and
/// Symbol ids) differ. The canonical writer/parser round-trip is a fixed
/// point (variables re-render under their parsed names), which is what
/// makes a cache-hit merge bit-identical to the cold run that produced the
/// entry.
///
/// Only clean groups are cached: a group that degraded, tripped a
/// watchdog, or disabled a stage recomputes every time — caching a
/// transient fault would pin it.
struct GroupCacheEntry {
  /// Rendered clauses of the group's owned predicates (members plus their
  /// specialized versions and dispatchers), in merge emission order.
  std::string program_text;

  /// Per-(pred, mode) reorderer reports, serialized by name.
  struct Report {
    std::string pred_name;  ///< bare name, no arity suffix
    uint32_t arity = 0;
    std::string mode;  ///< ModeString form, e.g. "(+,-)"
    std::string version_name;
    bool clauses_changed = false;
    bool goals_changed = false;
    double predicted_original_cost = 0.0;
    double predicted_new_cost = 0.0;
  };
  std::vector<Report> reports;

  /// Per-predicate pipeline outcomes for the owned members.
  struct Outcome {
    std::string pred_name;
    uint32_t arity = 0;
    int level = 0;  ///< LadderLevel as int
    int attempts = 1;
    int retries = 0;
    std::string fault_class;
    std::vector<std::string> triggers;
    bool clauses_changed = false;
    bool goals_changed = false;
  };
  std::vector<Outcome> outcomes;

  /// Diagnostics attributed to owned predicates (notes/warnings only —
  /// error findings would have quarantined the group, which is not cached).
  std::vector<lint::Diagnostic> diagnostics;

  /// Per-group absint dump, without the "== group N ==" header (group
  /// numbering belongs to the current run, not the entry).
  std::string absint_report;

  /// Whole-group pipeline attempts recorded by the producing run.
  int runs = 1;
};

/// A bounded, thread-safe, LRU content-hash cache of per-group transform
/// results. Lookups and insertions are cheap (one mutex, hash map + LRU
/// list); entries are shared_ptr-immutable so a hit can be read without
/// holding the lock while a concurrent insert evicts.
///
/// The cache is self-verifying at the consumer: the pipeline re-runs the
/// PL100-PL103 reorder validator over every hit's parsed output before
/// trusting it, and calls Invalidate() on failure — a corrupt entry
/// degrades to a recompute, never to wrong output.
class AnalysisCache {
 public:
  explicit AnalysisCache(size_t max_entries = 1024)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  /// The entry for `key`, or null. A hit refreshes LRU recency.
  std::shared_ptr<const GroupCacheEntry> Lookup(uint64_t key);

  /// Inserts (or replaces) the entry for `key`, evicting the least
  /// recently used entry when full.
  void Insert(uint64_t key, GroupCacheEntry entry);

  /// Drops the entry for `key` (validator-rejected hit). No-op if absent.
  void Invalidate(uint64_t key);

  /// Test hook: applies `mutate` to a private copy of the entry for `key`
  /// and stores the mutated copy, simulating corruption. Returns false if
  /// the key is absent.
  bool CorruptForTest(uint64_t key,
                      const std::function<void(GroupCacheEntry*)>& mutate);

  /// Test hook: every resident key, most recently used first.
  std::vector<uint64_t> KeysForTest() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  size_t size() const;

 private:
  struct Slot {
    std::shared_ptr<const GroupCacheEntry> entry;
    std::list<uint64_t>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t max_entries_;
  std::unordered_map<uint64_t, Slot> entries_;
  std::list<uint64_t> lru_;  ///< front = most recent
  Stats stats_;
};

}  // namespace prore::core

#endif  // PRORE_CORE_ANALYSIS_CACHE_H_
