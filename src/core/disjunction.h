#ifndef PRORE_CORE_DISJUNCTION_H_
#define PRORE_CORE_DISJUNCTION_H_

#include "analysis/callgraph.h"
#include "common/result.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::core {

/// Statistics of one factoring run.
struct FactorStats {
  size_t hoisted_prefix = 0;  ///< goals pulled out before a disjunction
  size_t hoisted_suffix = 0;  ///< goals pulled out after a disjunction
  size_t merged_clauses = 0;  ///< clause pairs merged into a disjunction
};

/// The paper's §IV-D.2 disjunction transformations:
///
///  1. *Hoisting*: "if we can move duplicate mobile goals in each half to
///     the front or back of their halves, we can replace them with one
///     goal outside the disjunction" — `(g, A ; g, B)` becomes
///     `g, (A ; B)` when `g` is structurally identical in both halves
///     (same variables), mobile, and not a cut.
///
///  2. *Clause merging*: "we can also, side-effects permitting, make two
///     clauses that share initial goals into a single disjunctive clause,
///     so that the initial goals run only once" — adjacent clauses with
///     identical heads and a shared mobile prefix become one clause with
///     a disjunction of the remainders. (Only applied to cut-free,
///     side-effect-free clause pairs; preserves answer order, hence
///     set-equivalence.)
///
/// Both transformations reduce repeated work by themselves and expose more
/// mobility to the reorderer. Returns a new program over the same store.
/// `skip` (optional) lists predicates to pass through verbatim — the
/// guarded pipeline's quarantine set.
prore::Result<reader::Program> FactorDisjunctions(
    term::TermStore* store, const reader::Program& program,
    FactorStats* stats = nullptr, const analysis::PredSet* skip = nullptr);

}  // namespace prore::core

#endif  // PRORE_CORE_DISJUNCTION_H_
