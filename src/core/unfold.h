#ifndef PRORE_CORE_UNFOLD_H_
#define PRORE_CORE_UNFOLD_H_

#include <cstdint>

#include "analysis/callgraph.h"
#include "common/result.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::core {

/// Options for the unfolding transformation (the paper's §VIII future-work
/// item, after Tamaki & Sato): "replacing [goals] with the goals of the
/// clauses of the predicates they call might greatly increase the
/// possibilities for reordering, especially when clauses of a program are
/// short".
struct UnfoldOptions {
  /// Repeat unfolding this many times (each round may expose new
  /// single-clause calls).
  size_t max_rounds = 2;
  /// Do not grow a clause body beyond this many top-level goals.
  size_t max_body_goals = 10;
  /// Leave entry points callable: predicates still reachable keep their
  /// definitions; unfolding only rewrites call sites.
  bool keep_definitions = true;
  /// Predicates exempt from unfolding (the guarded pipeline's quarantine):
  /// they are never inlined into callers, and their own clauses are copied
  /// verbatim instead of being rewritten.
  analysis::PredSet skip;
};

/// Unfolds calls to predicates that can be inlined without changing
/// set-equivalence or side-effect order:
///   - exactly one clause (no clause choice to collapse),
///   - not recursive,
///   - clause body free of cuts (inlining would change the cut's scope).
/// Head unification is performed at transformation time on a fresh copy of
/// both the caller clause and the callee clause; if the head cannot unify,
/// the goal is replaced by `fail`.
///
/// The result is a new program over the same store (the originals are
/// untouched). Run the Reorderer on the result to exploit the extra
/// mobility.
prore::Result<reader::Program> UnfoldProgram(term::TermStore* store,
                                             const reader::Program& program,
                                             const UnfoldOptions& options =
                                                 UnfoldOptions());

}  // namespace prore::core

#endif  // PRORE_CORE_UNFOLD_H_
