#ifndef PRORE_CORE_CLAUSE_ORDER_H_
#define PRORE_CORE_CLAUSE_ORDER_H_

#include <vector>

#include "analysis/fixity.h"
#include "analysis/modes.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::core {

struct ClauseOrderResult {
  /// Permutation: new position k holds original clause order[k].
  std::vector<size_t> order;
  bool changed = false;
  /// Expected first-success cost before/after (the Fig. 1 objective).
  double original_cost = 0.0;
  double new_cost = 0.0;
};

/// Reorders the clauses of `id` for calls in `mode` by decreasing p/c
/// (Li & Wah, §III-A), under the §IV restrictions: clauses containing a
/// clause-level cut or a fixed (side-effecting) goal are barriers — they
/// keep their positions and nothing moves across them.
prore::Result<ClauseOrderResult> OrderClauses(
    const term::TermStore& store, const reader::Program& program,
    const term::PredId& id, const analysis::Mode& mode,
    cost::CostModel* costs, const analysis::FixityResult& fixity);

}  // namespace prore::core

#endif  // PRORE_CORE_CLAUSE_ORDER_H_
