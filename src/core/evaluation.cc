#include "core/evaluation.h"

#include <algorithm>

#include "analysis/modes.h"
#include "common/str_util.h"
#include "reader/parser.h"

namespace prore::core {

using term::TermRef;
using term::TermStore;

Evaluator::Evaluator(TermStore* store, const reader::Program& original,
                     const reader::Program& reordered,
                     engine::SolveOptions solve_options)
    : store_(store),
      original_(original),
      reordered_(reordered),
      solve_options_(solve_options) {}

prore::Status Evaluator::Init() {
  PRORE_ASSIGN_OR_RETURN(original_db_,
                         engine::Database::Build(store_, original_));
  PRORE_ASSIGN_OR_RETURN(reordered_db_,
                         engine::Database::Build(store_, reordered_));
  initialized_ = true;
  return prore::Status::OK();
}

prore::Result<ComparisonResult> Evaluator::CompareQueries(
    const std::vector<std::string>& goals) {
  if (!initialized_) PRORE_RETURN_IF_ERROR(Init());
  ComparisonResult out;
  engine::Machine original_machine(store_, &original_db_, solve_options_);
  engine::Machine reordered_machine(store_, &reordered_db_, solve_options_);
  std::vector<std::string> original_answers, reordered_answers;
  for (const std::string& text : goals) {
    ++out.queries_run;
    // Parse twice so the two runs do not share variables.
    PRORE_ASSIGN_OR_RETURN(reader::ReadTerm q1,
                           reader::ParseQueryText(store_, text + "."));
    PRORE_ASSIGN_OR_RETURN(auto a1,
                           original_machine.SolveToStrings(q1.term, q1.term));
    PRORE_ASSIGN_OR_RETURN(reader::ReadTerm q2,
                           reader::ParseQueryText(store_, text + "."));
    PRORE_ASSIGN_OR_RETURN(auto a2,
                           reordered_machine.SolveToStrings(q2.term, q2.term));
    original_answers.insert(original_answers.end(), a1.begin(), a1.end());
    reordered_answers.insert(reordered_answers.end(), a2.begin(), a2.end());
  }
  out.original_calls = original_machine.total_metrics().TotalCalls();
  out.reordered_calls = reordered_machine.total_metrics().TotalCalls();
  out.original_answers = original_answers.size();
  out.reordered_answers = reordered_answers.size();
  std::sort(original_answers.begin(), original_answers.end());
  std::sort(reordered_answers.begin(), reordered_answers.end());
  out.set_equivalent = original_answers == reordered_answers;
  return out;
}

prore::Result<ComparisonResult> Evaluator::CompareQuery(
    const std::string& query_text) {
  return CompareQueries({query_text});
}

prore::Result<ComparisonResult> Evaluator::CompareMode(
    const std::string& name, uint32_t arity, const std::string& mode,
    const std::vector<std::string>& universe) {
  PRORE_ASSIGN_OR_RETURN(analysis::Mode m, analysis::ModeFromString(mode));
  if (m.size() != arity) {
    return prore::Status::InvalidArgument(
        "mode string arity does not match predicate arity");
  }
  std::vector<size_t> plus_positions;
  for (size_t i = 0; i < m.size(); ++i) {
    if (m[i] == analysis::ModeItem::kPlus) plus_positions.push_back(i);
  }
  if (!plus_positions.empty() && universe.empty()) {
    return prore::Status::InvalidArgument(
        "CompareMode: '+' positions require a non-empty universe");
  }
  // Every combination of universe constants over the '+' positions.
  std::vector<std::string> goals;
  std::vector<size_t> idx(plus_positions.size(), 0);
  while (true) {
    std::string goal = name;
    if (arity > 0) {
      goal += "(";
      size_t plus_seen = 0;
      for (uint32_t i = 0; i < arity; ++i) {
        if (i > 0) goal += ",";
        if (m[i] == analysis::ModeItem::kPlus) {
          goal += universe[idx[plus_seen]];
          ++plus_seen;
        } else {
          goal += prore::StrFormat("V%u", i);
        }
      }
      goal += ")";
    }
    goals.push_back(goal);
    // Advance the odometer.
    size_t k = 0;
    for (; k < idx.size(); ++k) {
      if (++idx[k] < universe.size()) break;
      idx[k] = 0;
    }
    if (idx.empty() || k == idx.size()) break;
  }
  return CompareQueries(goals);
}

}  // namespace prore::core
