#ifndef PRORE_CORE_GOAL_ORDER_H_
#define PRORE_CORE_GOAL_ORDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/body.h"
#include "analysis/fixity.h"
#include "analysis/modes.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "term/store.h"

namespace prore::core {

struct GoalOrderOptions {
  /// Up to this many mobile elements, try every legal permutation;
  /// above it, use A* best-first search (paper §VI-A.3, after Smith &
  /// Genesereth).
  size_t exhaustive_threshold = 6;
  /// If false and the segment exceeds the threshold, keep the original
  /// order (instead of A*).
  bool use_astar = true;
  /// Ablation: order greedily by Warren's alternatives factor instead of
  /// minimizing the Markov-chain cost.
  bool warren_heuristic = false;
  /// Safety valve for A*.
  size_t max_expansions = 200000;
};

/// A semifixity constraint on one element: when the element executes, each
/// listed culprit variable must be in the same abstract state it had in the
/// original order (§IV-C: "preserve the modes of such predicates under
/// reordering").
struct SemifixConstraint {
  std::vector<std::pair<uint32_t, analysis::VarState>> required;
  /// Snapshot of ALL variables of the element in the original order. A
  /// placement where every variable is at least as instantiated as here is
  /// legal even when the oracle cannot prove it: the element's calls are
  /// then at least as instantiated as in the original program, which ran
  /// legally by assumption (upward closure of legality). This is what lets
  /// a clause calling an undeclared recursive predicate still reorder —
  /// goals may move *before* it only if they do not starve it of bindings.
  std::vector<std::pair<uint32_t, analysis::VarState>> original_states;
};

/// The outcome of ordering one segment.
struct OrderResult {
  std::vector<const analysis::BodyNode*> order;
  double cost_all = 0.0;      ///< predicted all-solutions cost of the order
  double original_cost = 0.0; ///< same metric for the original order
  bool changed = false;
  size_t nodes_considered = 0;  ///< permutations tried / A* expansions
};

/// Finds the cheapest legal order of `elements` starting from `start_env`.
/// The original order is always an acceptable fallback — a candidate wins
/// only if it is legal, satisfies every semifixity constraint, and has a
/// strictly lower predicted cost.
class GoalOrderSearch {
 public:
  GoalOrderSearch(const term::TermStore* store, cost::CostModel* costs,
                  const analysis::FixityResult* fixity,
                  GoalOrderOptions options)
      : store_(store), costs_(costs), fixity_(fixity), options_(options) {}

  prore::Result<OrderResult> FindBestOrder(
      const std::vector<const analysis::BodyNode*>& elements,
      const analysis::AbstractEnv& start_env);

  /// Culprit variables of one element (built-in table, semifixed user
  /// predicates, negation/set-predicates are semifixed in all their
  /// variables). Exposed for tests.
  std::vector<uint32_t> CulpritVars(const analysis::BodyNode& node) const;

 private:
  /// Records, for each element, the abstract state each culprit variable
  /// has when the element runs in the *original* order.
  std::vector<SemifixConstraint> OriginalSignatures(
      const std::vector<const analysis::BodyNode*>& elements,
      const analysis::AbstractEnv& start_env);

  bool SatisfiesConstraint(const SemifixConstraint& c,
                           const analysis::AbstractEnv& env) const;

  /// True if every variable of the element is at least as instantiated as
  /// it was in the original order (ground >= unknown >= free).
  bool AtLeastOriginal(const SemifixConstraint& c,
                       const analysis::AbstractEnv& env) const;

  prore::Result<OrderResult> Exhaustive(
      const std::vector<const analysis::BodyNode*>& elements,
      const analysis::AbstractEnv& start_env,
      const std::vector<SemifixConstraint>& sigs);
  prore::Result<OrderResult> AStar(
      const std::vector<const analysis::BodyNode*>& elements,
      const analysis::AbstractEnv& start_env,
      const std::vector<SemifixConstraint>& sigs);
  prore::Result<OrderResult> WarrenGreedy(
      const std::vector<const analysis::BodyNode*>& elements,
      const analysis::AbstractEnv& start_env,
      const std::vector<SemifixConstraint>& sigs);

  const term::TermStore* store_;
  cost::CostModel* costs_;
  const analysis::FixityResult* fixity_;
  GoalOrderOptions options_;
};

}  // namespace prore::core

#endif  // PRORE_CORE_GOAL_ORDER_H_
