#ifndef PRORE_CORE_RESTRICTIONS_H_
#define PRORE_CORE_RESTRICTIONS_H_

#include <memory>
#include <vector>

#include "analysis/body.h"
#include "analysis/callgraph.h"
#include "analysis/fixity.h"
#include "common/result.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::core {

/// A maximal run of mutually-permutable body elements, ending at an
/// immobile barrier (Table I): a fixed goal, a cut, or the end of the
/// clause. Elements inside `frozen` segments keep their source order
/// (goals before a cut, premises of if-then-else).
struct Segment {
  std::vector<const analysis::BodyNode*> elements;  ///< permutable, in order
  const analysis::BodyNode* barrier = nullptr;  ///< immobile element after
                                                ///< the run (may be null)
  bool frozen = false;  ///< order must be preserved even inside the run
};

/// The mobility structure of one clause body's top-level sequence.
struct ClausePlan {
  std::vector<Segment> segments;
  bool has_cut = false;  ///< clause carries a (clause-level) cut
};

/// Splits the top-level sequence of `body` into segments (paper §IV):
///  - goals calling fixed predicates and side-effect built-ins are
///    barriers (they keep their position; nothing crosses them);
///  - everything up to and including the last top-level cut is frozen;
///  - other elements (calls, negations, disjunctions, if-then-elses,
///    set-predicates) are mobile within their segment.
prore::Result<ClausePlan> PlanClause(const term::TermStore& store,
                                     const analysis::BodyNode& body,
                                     const analysis::FixityResult& fixity,
                                     const analysis::CallGraph& graph);

/// True if `node` must act as a barrier: a call to a fixed predicate or a
/// side-effect built-in, or a control construct containing one.
bool IsImmobile(const term::TermStore& store, const analysis::BodyNode& node,
                const analysis::FixityResult& fixity);

/// Predicates whose *internal* order must not change because a goal that
/// (transitively) calls them appears before a cut somewhere in the program:
/// reordering them could change the first answer the cut commits to
/// (§IV-D.1 — preserving set-equivalence).
prore::Result<analysis::PredSet> FrozenDescendants(
    const term::TermStore& store, const reader::Program& program,
    const analysis::CallGraph& graph);

}  // namespace prore::core

#endif  // PRORE_CORE_RESTRICTIONS_H_
