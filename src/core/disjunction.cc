#include "core/disjunction.h"

#include <unordered_map>
#include <vector>

#include "analysis/body.h"
#include "analysis/callgraph.h"
#include "analysis/fixity.h"
#include "term/symbol.h"

namespace prore::core {

using analysis::BodyKind;
using term::PredId;
using term::SymbolTable;
using term::Tag;
using term::TermRef;
using term::TermStore;

namespace {

std::vector<TermRef> Conjuncts(const TermStore& store, TermRef body) {
  std::vector<TermRef> out;
  TermRef cur = store.Deref(body);
  while (store.tag(cur) == Tag::kStruct &&
         store.symbol(cur) == SymbolTable::kComma && store.arity(cur) == 2) {
    out.push_back(store.Deref(store.arg(cur, 0)));
    cur = store.Deref(store.arg(cur, 1));
  }
  out.push_back(cur);
  return out;
}

TermRef BuildConj(TermStore* store, const std::vector<TermRef>& goals) {
  if (goals.empty()) return store->MakeAtom(SymbolTable::kTrue);
  TermRef body = goals.back();
  for (size_t i = goals.size() - 1; i-- > 0;) {
    const TermRef args[] = {goals[i], body};
    body = store->MakeStruct(SymbolTable::kComma, args);
  }
  return body;
}

bool IsTrueAtom(const TermStore& store, TermRef t) {
  t = store.Deref(t);
  return store.tag(t) == Tag::kAtom &&
         store.symbol(t) == SymbolTable::kTrue;
}

/// Mobile for factoring purposes: not a cut, not a control construct, not
/// a fixed goal.
bool MobileGoal(const TermStore& store, TermRef goal,
                const analysis::FixityResult& fixity) {
  goal = store.Deref(goal);
  if (!store.IsCallable(goal)) return false;
  term::Symbol sym = store.symbol(goal);
  if (sym == SymbolTable::kCut || sym == SymbolTable::kComma ||
      sym == SymbolTable::kSemicolon || sym == SymbolTable::kArrow) {
    return false;
  }
  PredId id = store.pred_id(goal);
  if (fixity.IsFixed(id)) return false;
  if (analysis::IsSideEffectBuiltin(store.symbols().Name(id.name),
                                    id.arity)) {
    return false;
  }
  return true;
}

/// α-equivalence of two terms, building a variable bijection.
bool VariantMatch(const TermStore& store, TermRef a, TermRef b,
                  std::unordered_map<uint32_t, TermRef>* b_to_a,
                  std::unordered_map<uint32_t, uint32_t>* a_taken) {
  a = store.Deref(a);
  b = store.Deref(b);
  Tag ta = store.tag(a), tb = store.tag(b);
  if (ta != tb) return false;
  switch (ta) {
    case Tag::kVar: {
      uint32_t bid = store.var_id(b);
      uint32_t aid = store.var_id(a);
      auto it = b_to_a->find(bid);
      if (it != b_to_a->end()) {
        return store.Deref(it->second) == a;
      }
      // Bijection: a must not already be the image of another b-var.
      auto taken = a_taken->find(aid);
      if (taken != a_taken->end() && taken->second != bid) return false;
      b_to_a->emplace(bid, a);
      a_taken->emplace(aid, bid);
      return true;
    }
    case Tag::kAtom:
      return store.symbol(a) == store.symbol(b);
    case Tag::kInt:
      return store.int_value(a) == store.int_value(b);
    case Tag::kFloat:
      return store.float_value(a) == store.float_value(b);
    case Tag::kStruct: {
      if (store.symbol(a) != store.symbol(b) ||
          store.arity(a) != store.arity(b)) {
        return false;
      }
      for (uint32_t i = 0; i < store.arity(a); ++i) {
        if (!VariantMatch(store, store.arg(a, i), store.arg(b, i), b_to_a,
                          a_taken)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

/// Substitutes variables per `map` (var id -> replacement term).
TermRef Substitute(TermStore* store, TermRef t,
                   const std::unordered_map<uint32_t, TermRef>& map) {
  t = store->Deref(t);
  switch (store->tag(t)) {
    case Tag::kVar: {
      auto it = map.find(store->var_id(t));
      return it == map.end() ? t : it->second;
    }
    case Tag::kAtom:
    case Tag::kInt:
    case Tag::kFloat:
      return t;
    case Tag::kStruct: {
      std::vector<TermRef> args(store->arity(t));
      bool changed = false;
      for (uint32_t i = 0; i < store->arity(t); ++i) {
        args[i] = Substitute(store, store->arg(t, i), map);
        if (args[i] != store->Deref(store->arg(t, i))) changed = true;
      }
      if (!changed) return t;
      return store->MakeStruct(store->symbol(t), args);
    }
  }
  return t;
}

/// Hoists shared prefix/suffix goals out of disjunctions within one body
/// term. Recurses into nested bodies.
TermRef HoistInBody(TermStore* store, TermRef body,
                    const analysis::FixityResult& fixity,
                    FactorStats* stats) {
  body = store->Deref(body);
  if (store->tag(body) != Tag::kStruct) return body;
  term::Symbol sym = store->symbol(body);
  uint32_t arity = store->arity(body);

  if (sym == SymbolTable::kComma && arity == 2) {
    std::vector<TermRef> goals = Conjuncts(*store, body);
    for (TermRef& g : goals) g = HoistInBody(store, g, fixity, stats);
    return BuildConj(store, goals);
  }
  if (sym == SymbolTable::kSemicolon && arity == 2) {
    TermRef left = store->Deref(store->arg(body, 0));
    TermRef right = store->Deref(store->arg(body, 1));
    // If-then-else is not a plain disjunction; recurse only.
    if (store->tag(left) == Tag::kStruct &&
        store->symbol(left) == SymbolTable::kArrow) {
      return body;
    }
    left = HoistInBody(store, left, fixity, stats);
    right = HoistInBody(store, right, fixity, stats);
    std::vector<TermRef> lg = Conjuncts(*store, left);
    std::vector<TermRef> rg = Conjuncts(*store, right);

    std::vector<TermRef> prefix, suffix;
    // Shared mobile prefix with identical terms (same variables).
    while (!lg.empty() && !rg.empty() && store->Equal(lg.front(), rg.front()) &&
           MobileGoal(*store, lg.front(), fixity)) {
      prefix.push_back(lg.front());
      lg.erase(lg.begin());
      rg.erase(rg.begin());
      ++stats->hoisted_prefix;
    }
    // Shared mobile suffix.
    while (!lg.empty() && !rg.empty() && store->Equal(lg.back(), rg.back()) &&
           MobileGoal(*store, lg.back(), fixity)) {
      suffix.insert(suffix.begin(), lg.back());
      lg.pop_back();
      rg.pop_back();
      ++stats->hoisted_suffix;
    }
    if (prefix.empty() && suffix.empty()) {
      const TermRef args[] = {BuildConj(store, lg), BuildConj(store, rg)};
      return store->MakeStruct(SymbolTable::kSemicolon, args);
    }
    const TermRef disj_args[] = {BuildConj(store, lg), BuildConj(store, rg)};
    TermRef inner = store->MakeStruct(SymbolTable::kSemicolon, disj_args);
    std::vector<TermRef> out = prefix;
    out.push_back(inner);
    out.insert(out.end(), suffix.begin(), suffix.end());
    return BuildConj(store, out);
  }
  return body;
}

}  // namespace

prore::Result<reader::Program> FactorDisjunctions(TermStore* store,
                                                  const reader::Program&
                                                      program,
                                                  FactorStats* stats,
                                                  const analysis::PredSet*
                                                      skip) {
  FactorStats local;
  if (stats == nullptr) stats = &local;
  PRORE_ASSIGN_OR_RETURN(auto graph,
                         analysis::CallGraph::Build(*store, program));
  PRORE_ASSIGN_OR_RETURN(auto fixity,
                         analysis::AnalyzeFixity(*store, program, graph));

  reader::Program out;
  for (const PredId& pred : program.pred_order()) {
    const auto& clauses = program.ClausesOf(pred);
    if (skip != nullptr && skip->count(pred) > 0) {
      // Quarantined predicate: clauses pass through untouched.
      for (const reader::Clause& clause : clauses) {
        out.AddClause(*store, clause);
      }
      continue;
    }
    std::vector<reader::Clause> merged;
    for (size_t i = 0; i < clauses.size(); ++i) {
      reader::Clause current = clauses[i];
      // Try merging with following adjacent variant-headed clauses.
      while (i + 1 < clauses.size() && !fixity.IsFixed(pred)) {
        const reader::Clause& next = clauses[i + 1];
        std::unordered_map<uint32_t, TermRef> b_to_a;
        std::unordered_map<uint32_t, uint32_t> a_taken;
        if (!VariantMatch(*store, current.head, next.head, &b_to_a,
                          &a_taken)) {
          break;
        }
        // Cut-free on both sides.
        auto tree1 = analysis::ParseBody(*store, current.body);
        auto tree2 = analysis::ParseBody(*store, next.body);
        if (!tree1.ok() || !tree2.ok() ||
            analysis::ContainsClauseCut(**tree1) ||
            analysis::ContainsClauseCut(**tree2)) {
          break;
        }
        std::vector<TermRef> g1 = Conjuncts(*store, current.body);
        TermRef body2 = Substitute(store, next.body, b_to_a);
        std::vector<TermRef> g2 = Conjuncts(*store, body2);
        // Shared mobile prefix?
        size_t shared = 0;
        while (shared < g1.size() && shared < g2.size() &&
               store->Equal(g1[shared], g2[shared]) &&
               MobileGoal(*store, g1[shared], fixity)) {
          ++shared;
        }
        if (shared == 0 || IsTrueAtom(*store, g1[0])) break;
        // Build: head :- shared..., ( rest1 ; rest2 ).
        std::vector<TermRef> rest1(g1.begin() + shared, g1.end());
        std::vector<TermRef> rest2(g2.begin() + shared, g2.end());
        const TermRef disj_args[] = {BuildConj(store, rest1),
                                     BuildConj(store, rest2)};
        TermRef disj = store->MakeStruct(SymbolTable::kSemicolon, disj_args);
        std::vector<TermRef> new_body(g1.begin(), g1.begin() + shared);
        new_body.push_back(disj);
        current.body = BuildConj(store, new_body);
        ++stats->merged_clauses;
        ++i;  // consumed the next clause
      }
      // Hoist shared goals out of any disjunctions in the body.
      current.body = HoistInBody(store, current.body, fixity, stats);
      merged.push_back(current);
    }
    for (const reader::Clause& clause : merged) {
      out.AddClause(*store, clause);
    }
  }
  for (TermRef d : program.directives()) out.AddDirective(d);
  return out;
}

}  // namespace prore::core
