#ifndef PRORE_CORE_FAULT_H_
#define PRORE_CORE_FAULT_H_

#include <cstdint>
#include <functional>

#include "analysis/callgraph.h"
#include "common/status.h"
#include "term/store.h"

namespace prore::core {

/// Deterministic fault injection for the *transform* side of the system,
/// the counterpart of engine/fault.h's run-time FaultInjector. Tests use it
/// to sabotage individual predicates' builds so the guarded pipeline
/// (core/pipeline.h) can be shown quarantining them, and to plant real
/// miscompiles the validator / differential harness must catch.
///
/// Plans are consulted by the reorderer when ReorderOptions::fault is set;
/// a null plan (the default) costs one pointer test per stage.
struct TransformFaultPlan {
  /// Consulted at the entry of each per-predicate transform stage
  /// ("build", "clause_order", "goal_order", "emit"). Returning a non-OK
  /// status aborts that predicate's build with that status — exactly the
  /// shape of a real internal failure. May also throw, to model crashes.
  std::function<prore::Status(const term::PredId& pred, const char* stage)>
      stage_error;

  /// After emitting these predicates' clauses, silently drop the last one
  /// (when more than one), simulating a miscompile that only the validator
  /// (PL101/PL103) or the orig-vs-reordered differential can detect. Not
  /// applied to identity-level emissions, whose clauses are copied
  /// verbatim by construction.
  analysis::PredSet drop_last_clause;

  /// Number of times any part of the plan fired (for test assertions).
  mutable uint64_t fired = 0;

  /// Runs stage_error for (pred, stage), counting firings.
  prore::Status Check(const term::PredId& pred, const char* stage) const {
    if (!stage_error) return prore::Status::OK();
    prore::Status st = stage_error(pred, stage);
    if (!st.ok()) ++fired;
    return st;
  }
};

}  // namespace prore::core

#endif  // PRORE_CORE_FAULT_H_
