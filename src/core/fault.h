#ifndef PRORE_CORE_FAULT_H_
#define PRORE_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "analysis/callgraph.h"
#include "common/status.h"
#include "term/store.h"

namespace prore::core {

/// Deterministic fault injection for the *transform* side of the system,
/// the counterpart of engine/fault.h's run-time FaultInjector. Tests use it
/// to sabotage individual predicates' builds so the guarded pipeline
/// (core/pipeline.h) can be shown quarantining them, and to plant real
/// miscompiles the validator / differential harness must catch.
///
/// Plans are consulted by the reorderer when ReorderOptions::fault is set;
/// a null plan (the default) costs one pointer test per stage.
struct TransformFaultPlan {
  /// Consulted at the entry of each per-predicate transform stage
  /// ("build", "clause_order", "goal_order", "emit"). Returning a non-OK
  /// status aborts that predicate's build with that status — exactly the
  /// shape of a real internal failure. May also throw, to model crashes.
  std::function<prore::Status(const term::PredId& pred, const char* stage)>
      stage_error;

  /// After emitting these predicates' clauses, silently drop the last one
  /// (when more than one), simulating a miscompile that only the validator
  /// (PL101/PL103) or the orig-vs-reordered differential can detect. Not
  /// applied to identity-level emissions, whose clauses are copied
  /// verbatim by construction.
  analysis::PredSet drop_last_clause;

  /// Number of times any part of the plan fired (for test assertions).
  /// Atomic because one plan may be shared by several pipeline groups
  /// running on worker threads.
  mutable std::atomic<uint64_t> fired{0};

  TransformFaultPlan() = default;
  // The atomic would otherwise delete copying; plans are plain test
  // fixtures, so copy the counter by value.
  TransformFaultPlan(const TransformFaultPlan& o)
      : stage_error(o.stage_error),
        drop_last_clause(o.drop_last_clause),
        fired(o.fired.load()) {}
  TransformFaultPlan& operator=(const TransformFaultPlan& o) {
    stage_error = o.stage_error;
    drop_last_clause = o.drop_last_clause;
    fired = o.fired.load();
    return *this;
  }

  /// Runs stage_error for (pred, stage), counting firings.
  prore::Status Check(const term::PredId& pred, const char* stage) const {
    if (!stage_error) return prore::Status::OK();
    prore::Status st = stage_error(pred, stage);
    if (!st.ok()) ++fired;
    return st;
  }
};

}  // namespace prore::core

#endif  // PRORE_CORE_FAULT_H_
