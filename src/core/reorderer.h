#ifndef PRORE_CORE_REORDERER_H_
#define PRORE_CORE_REORDERER_H_

#include <functional>
#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/mode_inference.h"
#include "analysis/modes.h"
#include "common/result.h"
#include "common/watchdog.h"
#include "core/fault.h"
#include "core/goal_order.h"
#include "lint/diagnostic.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::core {

/// Configuration of the whole reordering system (paper Fig. 3).
struct ReorderOptions {
  GoalOrderOptions goal_search;
  analysis::InferenceOptions inference;
  /// Reorder clauses within predicates by decreasing p/c (§III-A).
  bool reorder_clauses = true;
  /// Reorder goals within clause bodies (§III-B, §VI).
  bool reorder_goals = true;
  /// Generate one version of each predicate per calling mode, with a
  /// var/nonvar dispatcher under the original name (§VII, Fig. 7).
  bool specialize_modes = true;
  /// §V-D run-time tests: when a clause would reorder better under the
  /// assumption that its head arguments are instantiated, emit
  /// `( ground(A1), ... -> reordered ; original )` — "if the variables
  /// pass the tests, we use the new order and gain efficiency; if they
  /// fail, we use the original order and lose only the cost of the
  /// tests". Most useful with specialize_modes off.
  bool runtime_guards = false;
  /// Emit a guard only when the optimistic order is predicted at least
  /// this much cheaper (ratio of all-solutions costs).
  double guard_min_gain = 1.15;
  /// Reorder recursive predicates only when the user declared their legal
  /// modes (`:- legal_mode(...)`), the paper's §IV-D.7 position: "we assume
  /// for now that the programmer declares a predicate recursive and
  /// provides necessary information".
  bool reorder_recursive_only_if_declared = true;
  /// Dispatchers enumerate 2^arity branches; skip beyond this arity.
  uint32_t max_dispatch_arity = 6;
  /// Cap on generated versions per predicate.
  size_t max_versions_per_pred = 64;
  /// Run the reorder validator (lint/validate.h) over the transformed
  /// program and report its findings in ReorderResult::diagnostics. The
  /// optimizer thereby verifies its own output on every run.
  bool validate_output = true;
  /// Run the interprocedural abstract interpretation (analysis/absint/)
  /// during setup: groundness success patterns tighten the inferred mode
  /// table before legality is decided (expanding the legal-reordering
  /// set), and determinism bounds clamp the cost model's expected solution
  /// counts. Off = the paper-baseline estimates — the --no-absint ablation
  /// and the GuardedPipeline's fallback after an absint watchdog trip.
  bool absint = true;
  /// Step/wall-clock budget for the absint fixpoints (0 fields =
  /// unlimited); a trip aborts Run with kResourceExhausted carrying
  /// resource_error(watchdog(absint)), which the GuardedPipeline maps to
  /// an absint-disabled re-run instead of quarantining a predicate.
  prore::WatchdogBudget absint_watchdog;

  // ---- Guarded-pipeline controls (core/pipeline.h) ----------------------

  /// Predicates restricted to clause reordering: no goal reordering, no
  /// mode specialization (one version under the original name), and their
  /// bodies are left textually intact (callees keep original names).
  analysis::PredSet clause_order_only;
  /// Predicates emitted verbatim (the identity transform): original
  /// clauses bit-for-bit under the original name, never specialized, and
  /// calls to them anywhere are never renamed.
  analysis::PredSet identity_preds;
  /// Additional predicates to treat as cut-frozen, unioned with the
  /// FrozenDescendants analysis of the input program. The sharded pipeline
  /// computes frozen descendants over the WHOLE program and injects them
  /// here, because the property flows caller -> callee: a per-group
  /// subprogram cannot see that some outside caller guards a group member
  /// with a cut.
  analysis::PredSet extra_frozen;
  /// Predicate identities (by name/arity) that exist elsewhere in the full
  /// program even though this Run's input does not define them. Version
  /// naming probes these in addition to the input program, so per-group
  /// shards never mint a version name that collides with another group's
  /// predicate.
  analysis::PredSet reserved_preds;
  /// Invoked when building a predicate's version fails, just before the
  /// error propagates out of Run — the guarded pipeline uses it to learn
  /// which predicate to quarantine.
  std::function<void(const term::PredId&, const prore::Status&)>
      on_pred_error;
  /// Step/wall-clock budget for cost-model evaluation (0 = unlimited); a
  /// trip aborts the run with kResourceExhausted attributed to the
  /// predicate being built. Covers the goal-order search transitively.
  prore::WatchdogBudget cost_watchdog;
  /// Recorded execution profile to feed the cost model (not owned; must
  /// outlive the Run). Null = pure static model. Build one from a profile
  /// file with profile::BuildEmpirical, which performs the content-hash
  /// staleness check — predicates whose clauses changed since recording
  /// are dropped there, so whatever arrives here is safe to apply.
  const cost::EmpiricalProfile* profile = nullptr;
  /// Transform-stage fault injection (tests only); null = disabled.
  const TransformFaultPlan* fault = nullptr;
  /// Cancellation/deadline scope for the whole Run: threaded into every
  /// analysis watchdog (mode inference, absint, cost model) and checked
  /// at Run entry, so a cancelled or past-deadline context aborts with
  /// kCancelled / kResourceExhausted instead of starting new work.
  prore::ExecContext exec;
};

/// Per-(predicate, mode) account of what the reorderer did.
struct PredModeReport {
  term::PredId pred;
  analysis::Mode mode;
  std::string version_name;
  bool clauses_changed = false;
  bool goals_changed = false;
  /// Model-predicted all-solutions cost of the predicate's bodies before
  /// and after (sums over clauses; heuristic units of "calls").
  double predicted_original_cost = 0.0;
  double predicted_new_cost = 0.0;
};

struct ReorderResult {
  reader::Program program;  ///< transformed program (versions + dispatchers)
  std::vector<PredModeReport> reports;
  analysis::ModeAnalysis modes;  ///< the inference results used
  /// Structured diagnostics: the reorderer's own notes (PL21x) plus, when
  /// ReorderOptions::validate_output is on, the reorder validator's
  /// findings (PL1xx). An error-severity entry means the transformation
  /// failed self-verification. Render with Diagnostic::ToString().
  std::vector<lint::Diagnostic> diagnostics;
  /// DumpAbsint text when ReorderOptions::absint ran (for --report).
  std::string absint_report;
};

/// The reordering system: ties together the restriction analyses (§IV),
/// the legal-mode machinery (§V) and the Markov-chain order search (§VI)
/// into a source-to-source transformation preserving set-equivalence.
class Reorderer {
 public:
  explicit Reorderer(term::TermStore* store,
                     ReorderOptions options = ReorderOptions())
      : store_(store), options_(options) {}

  /// Transforms `original`. The result program answers the same queries
  /// (same answer sets, possibly different order); queries must go through
  /// the original predicate names, which become dispatchers when
  /// specialization is on.
  prore::Result<ReorderResult> Run(const reader::Program& original);

  /// Name of the specialized version of `id` for `mode`, e.g. aunt_iu.
  static std::string VersionName(const term::TermStore& store,
                                 const term::PredId& id,
                                 const analysis::Mode& mode);

 private:
  term::TermStore* store_;
  ReorderOptions options_;
};

}  // namespace prore::core

#endif  // PRORE_CORE_REORDERER_H_
