#include "core/clause_order.h"

#include <algorithm>

#include "analysis/body.h"
#include "core/restrictions.h"
#include "markov/chain.h"

namespace prore::core {

using analysis::BodyNode;
using term::PredId;
using term::Tag;
using term::TermRef;
using term::TermStore;

prore::Result<ClauseOrderResult> OrderClauses(
    const TermStore& store, const reader::Program& program, const PredId& id,
    const analysis::Mode& mode, cost::CostModel* costs,
    const analysis::FixityResult& fixity) {
  const auto& clauses = program.ClausesOf(id);
  ClauseOrderResult result;
  result.order.resize(clauses.size());
  for (size_t i = 0; i < clauses.size(); ++i) result.order[i] = i;
  if (clauses.size() < 2) return result;

  // Recorded profile, if armed: measured per-clause success rates replace
  // the Warren-style head-match estimate (the cost model guards index
  // alignment — clauses.size() must match what was recorded).
  const cost::EmpiricalPredStats* emp = costs->EmpiricalFor(id);
  const bool emp_clauses =
      emp != nullptr && emp->clauses.size() == clauses.size();

  std::vector<double> p(clauses.size()), c(clauses.size());
  std::vector<bool> barrier(clauses.size(), false);
  for (size_t i = 0; i < clauses.size(); ++i) {
    const reader::Clause& clause = clauses[i];
    double match = costs->HeadMatchProb(id, clause.head, mode);
    TermRef body = store.Deref(clause.body);
    bool is_fact = store.tag(body) == Tag::kAtom &&
                   store.symbol(body) == term::SymbolTable::kTrue;
    double p_body = 1.0, c_body = 0.0;
    if (!is_fact) {
      PRORE_ASSIGN_OR_RETURN(auto tree, analysis::ParseBody(store, body));
      if (analysis::ContainsClauseCut(*tree) ||
          IsImmobile(store, *tree, fixity)) {
        barrier[i] = true;
      }
      analysis::AbstractEnv env =
          analysis::EnvFromHead(store, clause.head, mode);
      std::vector<const BodyNode*> seq;
      if (tree->kind == analysis::BodyKind::kConj) {
        for (const auto& child : tree->children) seq.push_back(child.get());
      } else {
        seq.push_back(tree.get());
      }
      auto eval = costs->EvaluateSequence(seq, env);
      if (!eval.ok() &&
          eval.status().code() == prore::StatusCode::kResourceExhausted) {
        // A watchdog trip must reach the pipeline's fault boundary, not
        // silently default this clause's estimate.
        return eval.status();
      }
      if (eval.ok()) {
        p_body = eval->chain.success_prob;
        c_body = eval->chain.cost_single;
      }
    }
    p[i] = std::min(1.0, match * p_body);
    // Small floor so a zero-cost fact still sorts by probability.
    c[i] = std::max(0.01, match * c_body + 0.01);
    if (emp_clauses && emp->clauses[i].tries > 0) {
      p[i] = std::min(1.0, emp->clauses[i].success_prob);
      c[i] = std::max(0.01, emp->clauses[i].match_prob * c_body + 0.01);
    }
  }

  result.original_cost = markov::FirstSuccessCost(p, c);

  // Reorder within maximal runs of non-barrier clauses by decreasing p/c.
  std::vector<size_t> new_order;
  size_t run_start = 0;
  auto flush_run = [&](size_t end) {  // [run_start, end)
    if (end > run_start) {
      std::vector<double> rp, rc;
      std::vector<size_t> run;
      for (size_t k = run_start; k < end; ++k) {
        run.push_back(k);
        rp.push_back(p[k]);
        rc.push_back(c[k]);
      }
      for (size_t pos : markov::OrderByRatioDesc(rp, rc)) {
        new_order.push_back(run[pos]);
      }
    }
  };
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (barrier[i]) {
      flush_run(i);
      new_order.push_back(i);
      run_start = i + 1;
    }
  }
  flush_run(clauses.size());

  std::vector<double> np, nc;
  for (size_t k : new_order) {
    np.push_back(p[k]);
    nc.push_back(c[k]);
  }
  result.new_cost = markov::FirstSuccessCost(np, nc);
  if (result.new_cost + 1e-12 < result.original_cost) {
    result.changed = new_order != result.order;
    result.order = new_order;
  } else {
    result.new_cost = result.original_cost;
  }
  return result;
}

}  // namespace prore::core
