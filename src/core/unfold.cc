#include "core/unfold.h"

#include <vector>

#include "analysis/body.h"
#include "analysis/callgraph.h"
#include "term/symbol.h"

namespace prore::core {

using analysis::BodyKind;
using analysis::BodyNode;
using term::PredId;
using term::SymbolTable;
using term::Tag;
using term::TermRef;
using term::TermStore;

namespace {

/// Transformation-time unification with an undo trail (no engine needed —
/// both sides are freshly renamed copies, so permanent bindings on success
/// are exactly the substitution we want baked into the emitted clause).
bool UnifyStatic(TermStore* store, TermRef a, TermRef b,
                 std::vector<TermRef>* trail) {
  a = store->Deref(a);
  b = store->Deref(b);
  if (a == b) return true;
  if (store->tag(a) == Tag::kVar) {
    store->BindVar(a, b);
    trail->push_back(a);
    return true;
  }
  if (store->tag(b) == Tag::kVar) {
    store->BindVar(b, a);
    trail->push_back(b);
    return true;
  }
  if (store->tag(a) != store->tag(b)) return false;
  switch (store->tag(a)) {
    case Tag::kAtom:
      return store->symbol(a) == store->symbol(b);
    case Tag::kInt:
      return store->int_value(a) == store->int_value(b);
    case Tag::kFloat:
      return store->float_value(a) == store->float_value(b);
    case Tag::kStruct: {
      if (store->symbol(a) != store->symbol(b) ||
          store->arity(a) != store->arity(b)) {
        return false;
      }
      for (uint32_t i = 0; i < store->arity(a); ++i) {
        if (!UnifyStatic(store, store->arg(a, i), store->arg(b, i), trail)) {
          return false;
        }
      }
      return true;
    }
    case Tag::kVar:
      return false;  // unreachable
  }
  return false;
}

void Unwind(TermStore* store, std::vector<TermRef>* trail, size_t mark) {
  while (trail->size() > mark) {
    store->ResetVar(trail->back());
    trail->pop_back();
  }
}

class Unfolder {
 public:
  Unfolder(TermStore* store, const reader::Program& program,
           const analysis::CallGraph& graph, const UnfoldOptions& options)
      : store_(store), program_(program), graph_(graph), options_(options) {}

  prore::Status DecideCandidates() {
    for (const PredId& pred : program_.pred_order()) {
      if (options_.skip.count(pred) > 0) continue;
      if (graph_.IsRecursive(pred)) continue;
      const auto& clauses = program_.ClausesOf(pred);
      if (clauses.size() != 1) continue;
      PRORE_ASSIGN_OR_RETURN(auto body,
                             analysis::ParseBody(*store_, clauses[0].body));
      if (ContainsCutAnywhere(*body)) continue;
      unfoldable_.insert(pred);
    }
    return prore::Status::OK();
  }

  bool IsUnfoldable(const PredId& id) const {
    return unfoldable_.count(id) > 0;
  }

  /// Rewrites one clause (must already be a fresh renamed copy): inlines
  /// unfoldable calls at every conjunction level. Returns the new body.
  prore::Result<TermRef> RewriteBody(TermRef body, size_t* budget) {
    body = store_->Deref(body);
    if (store_->tag(body) == Tag::kStruct) {
      term::Symbol sym = store_->symbol(body);
      uint32_t arity = store_->arity(body);
      if (sym == SymbolTable::kComma && arity == 2) {
        PRORE_ASSIGN_OR_RETURN(TermRef left,
                               RewriteBody(store_->arg(body, 0), budget));
        PRORE_ASSIGN_OR_RETURN(TermRef right,
                               RewriteBody(store_->arg(body, 1), budget));
        const TermRef args[] = {left, right};
        return store_->MakeStruct(SymbolTable::kComma, args);
      }
      if ((sym == SymbolTable::kSemicolon || sym == SymbolTable::kArrow) &&
          arity == 2) {
        // Do not unfold inside the committed premise of an if-then-else;
        // disjunction halves are fine.
        if (sym == SymbolTable::kSemicolon) {
          PRORE_ASSIGN_OR_RETURN(TermRef left,
                                 RewriteBody(store_->arg(body, 0), budget));
          PRORE_ASSIGN_OR_RETURN(TermRef right,
                                 RewriteBody(store_->arg(body, 1), budget));
          const TermRef args[] = {left, right};
          return store_->MakeStruct(sym, args);
        }
        PRORE_ASSIGN_OR_RETURN(TermRef then_part,
                               RewriteBody(store_->arg(body, 1), budget));
        const TermRef args[] = {store_->arg(body, 0), then_part};
        return store_->MakeStruct(sym, args);
      }
      if ((sym == SymbolTable::kNot ||
           store_->symbols().Name(sym) == "not") &&
          arity == 1) {
        PRORE_ASSIGN_OR_RETURN(TermRef inner,
                               RewriteBody(store_->arg(body, 0), budget));
        const TermRef args[] = {inner};
        return store_->MakeStruct(sym, args);
      }
    }
    // A plain goal: unfold?
    if (!store_->IsCallable(body)) return body;
    PredId callee = store_->pred_id(body);
    if (!IsUnfoldable(callee) || *budget == 0) return body;
    const reader::Clause& clause = program_.ClausesOf(callee)[0];
    std::unordered_map<uint32_t, TermRef> var_map;
    TermRef head_copy = store_->Rename(clause.head, &var_map);
    TermRef body_copy = store_->Rename(clause.body, &var_map);
    std::vector<TermRef> trail;
    if (!UnifyStatic(store_, body, head_copy, &trail)) {
      Unwind(store_, &trail, 0);
      return store_->MakeAtom(SymbolTable::kFail);
    }
    // Bindings stay: they are the substitution. Budget accounts for the
    // inlined goals.
    --*budget;
    return body_copy;
  }

 private:
  static bool ContainsCutAnywhere(const BodyNode& node) {
    if (node.kind == BodyKind::kCut) return true;
    for (const auto& child : node.children) {
      if (ContainsCutAnywhere(*child)) return true;
    }
    return false;
  }

  TermStore* store_;
  const reader::Program& program_;
  const analysis::CallGraph& graph_;
  const UnfoldOptions& options_;
  analysis::PredSet unfoldable_;
};

size_t CountTopGoals(const TermStore& store, TermRef body) {
  body = store.Deref(body);
  if (store.tag(body) == Tag::kStruct &&
      store.symbol(body) == SymbolTable::kComma && store.arity(body) == 2) {
    // Count both sides: earlier unfolding rounds leave conjunctions nested
    // on the left as well as the right.
    return CountTopGoals(store, store.arg(body, 0)) +
           CountTopGoals(store, store.arg(body, 1));
  }
  return 1;
}

}  // namespace

prore::Result<reader::Program> UnfoldProgram(TermStore* store,
                                             const reader::Program& program,
                                             const UnfoldOptions& options) {
  reader::Program current;
  // Start from a verbatim copy.
  for (const PredId& pred : program.pred_order()) {
    for (const auto& clause : program.ClausesOf(pred)) {
      current.AddClause(*store, clause);
    }
  }
  for (TermRef d : program.directives()) current.AddDirective(d);

  for (size_t round = 0; round < options.max_rounds; ++round) {
    PRORE_ASSIGN_OR_RETURN(auto graph,
                           analysis::CallGraph::Build(*store, current));
    Unfolder unfolder(store, current, graph, options);
    PRORE_RETURN_IF_ERROR(unfolder.DecideCandidates());

    reader::Program next;
    bool changed = false;
    for (const PredId& pred : current.pred_order()) {
      if (options.skip.count(pred) > 0) {
        // Quarantined predicate: clauses pass through untouched.
        for (const auto& clause : current.ClausesOf(pred)) {
          next.AddClause(*store, clause);
        }
        continue;
      }
      for (const auto& clause : current.ClausesOf(pred)) {
        // Fresh copy of the whole clause so transformation-time bindings
        // never leak into the input program's terms.
        std::unordered_map<uint32_t, TermRef> var_map;
        reader::Clause copy;
        copy.head = store->Rename(clause.head, &var_map);
        copy.body = store->Rename(clause.body, &var_map);
        size_t current_goals = CountTopGoals(*store, copy.body);
        size_t budget = options.max_body_goals > current_goals
                            ? options.max_body_goals - current_goals
                            : 0;
        PRORE_ASSIGN_OR_RETURN(TermRef new_body,
                               unfolder.RewriteBody(copy.body, &budget));
        if (!store->Equal(new_body, copy.body)) changed = true;
        copy.body = new_body;
        next.AddClause(*store, copy);
      }
    }
    for (TermRef d : current.directives()) next.AddDirective(d);
    current = std::move(next);
    if (!changed) break;
  }
  return current;
}

}  // namespace prore::core
