#include "core/reorderer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cmath>
#include <functional>
#include <map>
#include <memory>

#include "analysis/absint/absint.h"
#include "analysis/body.h"
#include "analysis/callgraph.h"
#include "analysis/fixity.h"
#include "common/str_util.h"
#include "core/clause_order.h"
#include "core/restrictions.h"
#include "cost/cost_model.h"
#include "engine/builtins.h"
#include "lint/validate.h"
#include "reader/writer.h"

namespace prore::core {

using analysis::AbstractEnv;
using analysis::BodyKind;
using analysis::BodyNode;
using analysis::Mode;
using analysis::ModeItem;
using term::PredId;
using term::SymbolTable;
using term::Tag;
using term::TermRef;
using term::TermStore;

std::string Reorderer::VersionName(const TermStore& store, const PredId& id,
                                   const Mode& mode) {
  return store.symbols().Name(id.name) + "_" + analysis::ModeSuffix(mode);
}

namespace {

/// Weakens '?' to '-' : safe (legality is upward-closed in instantiation)
/// and gives the specializer a concrete {+,-} version to call.
Mode Weaken(const Mode& mode) {
  Mode out = mode;
  for (ModeItem& m : out) {
    if (m == ModeItem::kAny) m = ModeItem::kMinus;
  }
  return out;
}

class Pipeline {
 public:
  Pipeline(TermStore* store, const reader::Program& original,
           const ReorderOptions& options)
      : store_(store), original_(original), options_(options) {}

  prore::Result<ReorderResult> Run();

 private:
  struct Version {
    PredId pred;
    Mode mode;
    std::string name;
    std::vector<reader::Clause> clauses;
    bool clauses_changed = false;
    bool goals_changed = false;
    double predicted_original_cost = 0.0;
    double predicted_new_cost = 0.0;
    bool emitted_under_original_name = false;
  };

  prore::Status Setup();
  prore::Status ProcessQueue();
  std::string EnsureVersion(const PredId& pred, const Mode& mode);
  prore::Status BuildVersion(const PredId& pred, const Mode& mode,
                             Version* out);

  bool AllowReorder(const PredId& pred) const;

  // Phase A: reorder a body tree (no renaming).
  prore::Result<std::unique_ptr<BodyNode>> ReorderNode(const BodyNode& node,
                                                       AbstractEnv* env,
                                                       bool allow,
                                                       bool* changed);
  prore::Result<std::unique_ptr<BodyNode>> ReorderSeq(const BodyNode& node,
                                                      AbstractEnv* env,
                                                      bool allow,
                                                      bool* changed);
  // Phase B: emit a term from a (reordered) tree, renaming user goals to
  // mode-specialized versions.
  prore::Result<TermRef> EmitNode(const BodyNode& node, AbstractEnv* env,
                                  bool rename);
  prore::Result<TermRef> EmitSeq(const BodyNode& node, AbstractEnv* env,
                                 bool rename);
  TermRef RenameGoal(TermRef goal, const AbstractEnv& env);

  // Dispatchers and output assembly.
  void ComputeAliases();
  std::string ResolveAlias(std::string name) const;
  TermRef RewriteAliases(TermRef t);
  std::string TargetFor(const PredId& pred, const Mode& combo) const;
  prore::Status EmitDispatcher(const PredId& pred, reader::Program* out);
  prore::Result<reader::Program> Assemble();

  std::string Key(const PredId& id, const Mode& mode) const {
    return store_->symbols().Name(id.name) + "/" +
           std::to_string(id.arity) + ":" + analysis::ModeSuffix(mode);
  }

  TermStore* store_;
  const reader::Program& original_;
  ReorderOptions options_;

  analysis::Declarations decls_;
  analysis::CallGraph graph_;
  analysis::FixityResult fixity_;
  analysis::PredSet frozen_;
  analysis::ModeAnalysis modes_;
  std::unique_ptr<analysis::absint::AbsintResult> absint_;
  std::unique_ptr<analysis::LegalityOracle> oracle_;
  std::unique_ptr<cost::CostModel> costs_;
  std::unique_ptr<GoalOrderSearch> search_;

  std::map<std::string, Version> versions_;     // key -> version
  std::vector<std::string> pending_;            // keys awaiting processing
  std::unordered_map<PredId, std::vector<std::string>, term::PredIdHash>
      versions_of_;                             // pred -> keys, in order
  std::unordered_map<PredId, size_t, term::PredIdHash> scc_rank_;
  std::unordered_map<std::string, std::string> alias_;  // name -> canonical
  std::vector<PredModeReport> reports_;
  std::vector<lint::Diagnostic> diagnostics_;
};

prore::Status Pipeline::Setup() {
  PRORE_ASSIGN_OR_RETURN(decls_,
                         analysis::ParseDeclarations(*store_, original_));
  PRORE_ASSIGN_OR_RETURN(graph_,
                         analysis::CallGraph::Build(*store_, original_));
  PRORE_ASSIGN_OR_RETURN(fixity_,
                         analysis::AnalyzeFixity(*store_, original_, graph_));
  PRORE_ASSIGN_OR_RETURN(frozen_,
                         FrozenDescendants(*store_, original_, graph_));
  frozen_.insert(options_.extra_frozen.begin(), options_.extra_frozen.end());
  analysis::InferenceOptions inference_opts = options_.inference;
  inference_opts.exec = options_.exec;
  PRORE_ASSIGN_OR_RETURN(
      modes_, analysis::InferModes(*store_, original_, graph_, decls_,
                                   inference_opts));
  if (options_.absint) {
    analysis::absint::AbsintOptions ao;
    ao.watchdog = options_.absint_watchdog;
    ao.exec = options_.exec;
    PRORE_ASSIGN_OR_RETURN(
        auto absint, analysis::absint::RunAbsint(*store_, original_, graph_,
                                                 decls_, &modes_, ao));
    absint_ =
        std::make_unique<analysis::absint::AbsintResult>(std::move(absint));
    // Fold the groundness success patterns into the guarantee table before
    // the oracle captures it: '?' slots the local fixpoint left behind can
    // become '+'/'-' here, which admits orderings legality would otherwise
    // reject. legal_table is left alone — absint proves outputs, not that
    // an input mode is legal for a recursive predicate.
    analysis::absint::TightenModes(*store_, absint_->groundness,
                                   &modes_.table);
  }
  oracle_ = std::make_unique<analysis::LegalityOracle>(store_, &original_,
                                                       &graph_, &modes_);
  PRORE_RETURN_IF_ERROR(analysis::RefineSemifixity(
      *store_, original_, graph_, oracle_.get(), &fixity_));
  costs_ = std::make_unique<cost::CostModel>(store_, &original_, &graph_,
                                             &decls_, oracle_.get());
  if (absint_ != nullptr) costs_->SetDeterminism(&absint_->determinism);
  if (options_.profile != nullptr) costs_->SetEmpirical(options_.profile);
  costs_->ArmWatchdog(options_.cost_watchdog, options_.exec);
  search_ = std::make_unique<GoalOrderSearch>(store_, costs_.get(), &fixity_,
                                              options_.goal_search);
  size_t rank = 0;
  for (const auto& scc : graph_.SccsBottomUp()) {
    for (const PredId& p : scc) scc_rank_[p] = rank;
    ++rank;
  }
  // Declared-recursive predicates join the analysis's recursive set via
  // the declarations; the call graph already found the structural ones.
  return prore::Status::OK();
}

bool Pipeline::AllowReorder(const PredId& pred) const {
  if (options_.identity_preds.count(pred) > 0) return false;
  if (frozen_.count(pred) > 0) return false;
  if (fixity_.IsFixed(pred)) return false;
  if (graph_.IsRecursive(pred) &&
      options_.reorder_recursive_only_if_declared &&
      !decls_.legal_modes.Has(pred)) {
    return false;
  }
  return true;
}

std::string Pipeline::EnsureVersion(const PredId& pred, const Mode& mode) {
  std::string name = Reorderer::VersionName(*store_, pred, mode);
  // Defensive: a user predicate may already carry a version-style name
  // (someone ran the reorderer's output through it again, or just likes
  // the suffix). Probe until free.
  auto taken = [&](const std::string& n) {
    PredId id{store_->symbols().Intern(n), pred.arity};
    if (id == pred) return false;
    return original_.Has(id) || options_.reserved_preds.count(id) > 0;
  };
  while (taken(name)) name += "_v";
  std::string key = Key(pred, mode);
  if (versions_.count(key) == 0) {
    auto& list = versions_of_[pred];
    if (list.size() >= options_.max_versions_per_pred) {
      return store_->symbols().Name(pred.name);  // fall back to dispatcher
    }
    Version v;
    v.pred = pred;
    v.mode = mode;
    v.name = name;  // possibly collision-adjusted
    versions_.emplace(key, std::move(v));
    list.push_back(key);
    pending_.push_back(key);
  }
  return name;
}

prore::Status Pipeline::ProcessQueue() {
  while (!pending_.empty()) {
    // Bottom-up: lowest SCC rank first, so callers price reordered callees.
    size_t best = 0;
    for (size_t i = 1; i < pending_.size(); ++i) {
      if (scc_rank_[versions_[pending_[i]].pred] <
          scc_rank_[versions_[pending_[best]].pred]) {
        best = i;
      }
    }
    std::string key = pending_[best];
    pending_.erase(pending_.begin() + best);
    Version& v = versions_[key];
    // Fault boundary: a version build that throws or fails is attributed
    // to its predicate via on_pred_error before the error propagates, so
    // the guarded pipeline (core/pipeline.h) knows whom to quarantine.
    prore::Status st;
    try {
      st = BuildVersion(v.pred, v.mode, &v);
    } catch (const std::exception& e) {
      st = prore::Status::Internal(
          prore::StrFormat("uncaught exception while building %s: %s",
                           reader::PredName(*store_, v.pred).c_str(),
                           e.what()));
    }
    if (!st.ok()) {
      if (options_.on_pred_error) options_.on_pred_error(v.pred, st);
      return st;
    }
  }
  return prore::Status::OK();
}

prore::Result<std::unique_ptr<BodyNode>> Pipeline::ReorderNode(
    const BodyNode& node, AbstractEnv* env, bool allow, bool* changed) {
  auto clone = std::make_unique<BodyNode>();
  clone->kind = node.kind;
  clone->goal = node.goal;
  switch (node.kind) {
    case BodyKind::kTrue:
    case BodyKind::kFail:
    case BodyKind::kCut:
    case BodyKind::kCall:
      costs_->AdvanceEnv(node, env);
      return clone;
    case BodyKind::kConj:
      return ReorderSeq(node, env, allow, changed);
    case BodyKind::kDisj: {
      AbstractEnv left = *env, right = *env;
      PRORE_ASSIGN_OR_RETURN(auto l,
                             ReorderSeq(*node.children[0], &left, allow,
                                        changed));
      PRORE_ASSIGN_OR_RETURN(auto r,
                             ReorderSeq(*node.children[1], &right, allow,
                                        changed));
      clone->children.push_back(std::move(l));
      clone->children.push_back(std::move(r));
      *env = AbstractEnv::Join(left, right);
      return clone;
    }
    case BodyKind::kIfThenElse: {
      AbstractEnv then_env = *env, else_env = *env;
      // The premise is immobile (§IV-D.3) — no reordering inside it.
      PRORE_ASSIGN_OR_RETURN(auto c,
                             ReorderSeq(*node.children[0], &then_env,
                                        /*allow=*/false, changed));
      PRORE_ASSIGN_OR_RETURN(auto t,
                             ReorderSeq(*node.children[1], &then_env, allow,
                                        changed));
      PRORE_ASSIGN_OR_RETURN(auto e,
                             ReorderSeq(*node.children[2], &else_env, allow,
                                        changed));
      clone->children.push_back(std::move(c));
      clone->children.push_back(std::move(t));
      clone->children.push_back(std::move(e));
      *env = AbstractEnv::Join(then_env, else_env);
      return clone;
    }
    case BodyKind::kNeg: {
      AbstractEnv scratch = *env;
      PRORE_ASSIGN_OR_RETURN(auto inner,
                             ReorderSeq(*node.children[0], &scratch, allow,
                                        changed));
      clone->children.push_back(std::move(inner));
      return clone;
    }
    case BodyKind::kSetPred: {
      AbstractEnv scratch = *env;
      PRORE_ASSIGN_OR_RETURN(auto inner,
                             ReorderSeq(*node.children[0], &scratch, allow,
                                        changed));
      clone->children.push_back(std::move(inner));
      costs_->AdvanceEnv(node, env);
      return clone;
    }
    case BodyKind::kCatch: {
      // Opaque control construct: never permute inside catch/3 — moving a
      // goal across the protection boundary changes which exceptions the
      // catcher sees (clone with allow=false, like the ITE premise).
      AbstractEnv goal_env = *env, rec_env = *env;
      PRORE_ASSIGN_OR_RETURN(auto goal_n,
                             ReorderSeq(*node.children[0], &goal_env,
                                        /*allow=*/false, changed));
      PRORE_ASSIGN_OR_RETURN(auto rec_n,
                             ReorderSeq(*node.children[1], &rec_env,
                                        /*allow=*/false, changed));
      clone->children.push_back(std::move(goal_n));
      clone->children.push_back(std::move(rec_n));
      costs_->AdvanceEnv(node, env);
      return clone;
    }
  }
  return clone;
}

prore::Result<std::unique_ptr<BodyNode>> Pipeline::ReorderSeq(
    const BodyNode& node, AbstractEnv* env, bool allow, bool* changed) {
  PRORE_ASSIGN_OR_RETURN(ClausePlan plan,
                         PlanClause(*store_, node, fixity_, graph_));
  std::vector<std::unique_ptr<BodyNode>> out_children;
  for (const Segment& segment : plan.segments) {
    std::vector<const BodyNode*> order = segment.elements;
    if (allow && !segment.frozen && options_.reorder_goals &&
        order.size() > 1) {
      PRORE_ASSIGN_OR_RETURN(OrderResult r,
                             search_->FindBestOrder(order, *env));
      if (r.changed) *changed = true;
      order = r.order;
    }
    for (const BodyNode* el : order) {
      PRORE_ASSIGN_OR_RETURN(auto n, ReorderNode(*el, env, allow, changed));
      out_children.push_back(std::move(n));
    }
    if (segment.barrier != nullptr) {
      PRORE_ASSIGN_OR_RETURN(auto b,
                             ReorderNode(*segment.barrier, env, allow,
                                         changed));
      out_children.push_back(std::move(b));
    }
  }
  if (out_children.size() == 1) return std::move(out_children[0]);
  auto conj = std::make_unique<BodyNode>();
  conj->kind = BodyKind::kConj;
  conj->goal = node.goal;
  conj->children = std::move(out_children);
  return conj;
}

TermRef Pipeline::RenameGoal(TermRef goal, const AbstractEnv& env) {
  goal = store_->Deref(goal);
  PredId id = store_->pred_id(goal);
  if (!options_.specialize_modes) return goal;
  if (!original_.Has(id)) return goal;  // built-in or library predicate
  if (id.arity == 0 || id.arity > options_.max_dispatch_arity) return goal;
  // Quarantined callees keep their original, unspecialized entry point.
  if (options_.identity_preds.count(id) > 0 ||
      options_.clause_order_only.count(id) > 0) {
    return goal;
  }
  Mode mode = Weaken(env.CallModeOf(*store_, goal));
  if (!oracle_->IsLegalCall(id, mode)) {
    // The weakened static mode is not provably safe; route through the
    // dispatcher, whose run-time var tests pick a safe version (§V-D).
    return goal;
  }
  std::string name = EnsureVersion(id, mode);
  if (name == store_->symbols().Name(id.name)) return goal;
  term::Symbol sym = store_->symbols().Intern(name);
  if (store_->arity(goal) == 0) return store_->MakeAtom(sym);
  std::vector<TermRef> args(store_->arity(goal));
  for (uint32_t i = 0; i < store_->arity(goal); ++i) {
    args[i] = store_->arg(goal, i);
  }
  return store_->MakeStruct(sym, args);
}

prore::Result<TermRef> Pipeline::EmitSeq(const BodyNode& node,
                                         AbstractEnv* env, bool rename) {
  std::vector<TermRef> parts;
  if (node.kind == BodyKind::kConj) {
    for (const auto& child : node.children) {
      PRORE_ASSIGN_OR_RETURN(TermRef t, EmitNode(*child, env, rename));
      parts.push_back(t);
    }
  } else {
    PRORE_ASSIGN_OR_RETURN(TermRef t, EmitNode(node, env, rename));
    parts.push_back(t);
  }
  if (parts.empty()) return store_->MakeAtom(SymbolTable::kTrue);
  TermRef body = parts.back();
  for (size_t i = parts.size() - 1; i-- > 0;) {
    const TermRef args[] = {parts[i], body};
    body = store_->MakeStruct(SymbolTable::kComma, args);
  }
  return body;
}

prore::Result<TermRef> Pipeline::EmitNode(const BodyNode& node,
                                          AbstractEnv* env, bool rename) {
  switch (node.kind) {
    case BodyKind::kTrue:
      return store_->MakeAtom(SymbolTable::kTrue);
    case BodyKind::kFail:
      return store_->MakeAtom(SymbolTable::kFail);
    case BodyKind::kCut:
      return store_->MakeAtom(SymbolTable::kCut);
    case BodyKind::kCall: {
      TermRef renamed = rename ? RenameGoal(node.goal, *env)
                               : store_->Deref(node.goal);
      costs_->AdvanceEnv(node, env);
      return renamed;
    }
    case BodyKind::kConj:
      return EmitSeq(node, env, rename);
    case BodyKind::kDisj: {
      AbstractEnv left = *env, right = *env;
      PRORE_ASSIGN_OR_RETURN(TermRef l,
                             EmitSeq(*node.children[0], &left, rename));
      PRORE_ASSIGN_OR_RETURN(TermRef r,
                             EmitSeq(*node.children[1], &right, rename));
      *env = AbstractEnv::Join(left, right);
      const TermRef args[] = {l, r};
      return store_->MakeStruct(SymbolTable::kSemicolon, args);
    }
    case BodyKind::kIfThenElse: {
      AbstractEnv then_env = *env, else_env = *env;
      PRORE_ASSIGN_OR_RETURN(TermRef c,
                             EmitSeq(*node.children[0], &then_env, rename));
      PRORE_ASSIGN_OR_RETURN(TermRef t,
                             EmitSeq(*node.children[1], &then_env, rename));
      PRORE_ASSIGN_OR_RETURN(TermRef e,
                             EmitSeq(*node.children[2], &else_env, rename));
      *env = AbstractEnv::Join(then_env, else_env);
      const TermRef ite_args[] = {c, t};
      TermRef ite = store_->MakeStruct(SymbolTable::kArrow, ite_args);
      // Preserve a bare if-then (no else in the source).
      TermRef orig = store_->Deref(node.goal);
      bool bare = store_->tag(orig) == Tag::kStruct &&
                  store_->symbol(orig) == SymbolTable::kArrow;
      if (bare) return ite;
      const TermRef args[] = {ite, e};
      return store_->MakeStruct(SymbolTable::kSemicolon, args);
    }
    case BodyKind::kNeg: {
      AbstractEnv scratch = *env;
      PRORE_ASSIGN_OR_RETURN(TermRef inner,
                             EmitSeq(*node.children[0], &scratch, rename));
      const TermRef args[] = {inner};
      return store_->MakeStruct(SymbolTable::kNot, args);
    }
    case BodyKind::kSetPred: {
      AbstractEnv scratch = *env;
      PRORE_ASSIGN_OR_RETURN(TermRef inner,
                             EmitSeq(*node.children[0], &scratch, rename));
      TermRef goal = store_->Deref(node.goal);
      const TermRef args[] = {store_->arg(goal, 0), inner,
                              store_->arg(goal, 2)};
      TermRef rebuilt = store_->MakeStruct(store_->symbol(goal), args);
      costs_->AdvanceEnv(node, env);
      return rebuilt;
    }
    case BodyKind::kCatch: {
      // Rebuild catch(Goal, Catcher, Recovery) verbatim (goals emitted in
      // place, never renamed: a mode-specialized version may commit to a
      // different clause order, changing which exception escapes first).
      AbstractEnv goal_env = *env, rec_env = *env;
      PRORE_ASSIGN_OR_RETURN(TermRef inner,
                             EmitSeq(*node.children[0], &goal_env,
                                     /*rename=*/false));
      PRORE_ASSIGN_OR_RETURN(TermRef recovery,
                             EmitSeq(*node.children[1], &rec_env,
                                     /*rename=*/false));
      TermRef goal = store_->Deref(node.goal);
      const TermRef args[] = {inner, store_->arg(goal, 1), recovery};
      TermRef rebuilt = store_->MakeStruct(store_->symbol(goal), args);
      costs_->AdvanceEnv(node, env);
      return rebuilt;
    }
  }
  return store_->MakeAtom(SymbolTable::kTrue);
}

prore::Status Pipeline::BuildVersion(const PredId& pred, const Mode& mode,
                                     Version* out) {
  bool allow = AllowReorder(pred);
  const bool clause_only = options_.clause_order_only.count(pred) > 0;
  const bool allow_goals = allow && !clause_only;
  const auto& clauses = original_.ClausesOf(pred);

  // Identity level of the degradation ladder: the original clauses are
  // reused verbatim (same TermRefs — bit-identical emission), under the
  // original name, with no analysis-driven decisions in the path. It runs
  // no transform stages, so it is also exempt from fault injection —
  // identity must stay reachable under any fault plan.
  if (options_.identity_preds.count(pred) > 0) {
    out->clauses = clauses;
    out->emitted_under_original_name = true;
    out->predicted_original_cost = costs_->StatsFor(pred, mode).cost_all;
    out->predicted_new_cost = out->predicted_original_cost;
    PredModeReport report;
    report.pred = pred;
    report.mode = mode;
    report.version_name = store_->symbols().Name(pred.name);
    report.predicted_original_cost = out->predicted_original_cost;
    report.predicted_new_cost = out->predicted_new_cost;
    reports_.push_back(report);
    return prore::Status::OK();
  }

  if (options_.fault != nullptr) {
    PRORE_RETURN_IF_ERROR(options_.fault->Check(pred, "build"));
  }

  // Stats of the original, for the report (memoize before overriding).
  cost::PredModeStats original_stats = costs_->StatsFor(pred, mode);
  out->predicted_original_cost = original_stats.cost_all;

  // Clause order.
  std::vector<size_t> clause_order(clauses.size());
  for (size_t i = 0; i < clause_order.size(); ++i) clause_order[i] = i;
  if (allow && options_.reorder_clauses) {
    if (options_.fault != nullptr) {
      PRORE_RETURN_IF_ERROR(options_.fault->Check(pred, "clause_order"));
    }
    PRORE_ASSIGN_OR_RETURN(
        ClauseOrderResult co,
        OrderClauses(*store_, original_, pred, mode, costs_.get(), fixity_));
    clause_order = co.order;
    out->clauses_changed = co.changed;
  }

  // Goal order per clause: phase A (reorder trees), stats, phase B (emit).
  struct ReorderedClause {
    TermRef head;
    std::unique_ptr<BodyNode> tree;  // null for facts
    /// §V-D run-time guard: a better order valid when the head arguments
    /// are ground at run time; emitted as
    /// `( ground(A1),... -> optimistic ; normal )`.
    std::unique_ptr<BodyNode> optimistic_tree;
  };
  bool want_guards =
      options_.runtime_guards && allow_goals && options_.reorder_goals &&
      std::any_of(mode.begin(), mode.end(),
                  [](ModeItem m) { return m != ModeItem::kPlus; });
  if (options_.fault != nullptr && allow_goals && options_.reorder_goals) {
    PRORE_RETURN_IF_ERROR(options_.fault->Check(pred, "goal_order"));
  }
  std::vector<ReorderedClause> reordered;
  bool goals_changed = false;
  for (size_t idx : clause_order) {
    const reader::Clause& clause = clauses[idx];
    ReorderedClause rc;
    rc.head = store_->Deref(clause.head);
    TermRef body = store_->Deref(clause.body);
    bool is_fact = store_->tag(body) == Tag::kAtom &&
                   store_->symbol(body) == SymbolTable::kTrue;
    if (!is_fact) {
      PRORE_ASSIGN_OR_RETURN(auto tree, analysis::ParseBody(*store_, body));
      AbstractEnv env = analysis::EnvFromHead(*store_, rc.head, mode);
      PRORE_ASSIGN_OR_RETURN(rc.tree,
                             ReorderSeq(*tree, &env, allow_goals,
                                        &goals_changed));
      if (want_guards) {
        // Reorder again under the all-instantiated assumption; keep the
        // result only if it is a different order with a markedly better
        // predicted cost under that assumption.
        Mode optimistic(pred.arity, ModeItem::kPlus);
        PRORE_ASSIGN_OR_RETURN(auto tree2,
                               analysis::ParseBody(*store_, body));
        AbstractEnv opt_env =
            analysis::EnvFromHead(*store_, rc.head, optimistic);
        bool opt_changed = false;
        PRORE_ASSIGN_OR_RETURN(auto opt_tree,
                               ReorderSeq(*tree2, &opt_env, allow_goals,
                                          &opt_changed));
        if (opt_changed) {
          auto cost_of = [&](const BodyNode& t)
              -> prore::Result<double> {
            AbstractEnv e = analysis::EnvFromHead(*store_, rc.head,
                                                  optimistic);
            std::vector<const BodyNode*> seq;
            if (t.kind == BodyKind::kConj) {
              for (const auto& child : t.children) seq.push_back(child.get());
            } else {
              seq.push_back(&t);
            }
            PRORE_ASSIGN_OR_RETURN(auto eval, costs_->EvaluateSequence(seq, e));
            return eval.chain.cost_all_solutions;
          };
          PRORE_ASSIGN_OR_RETURN(double normal_cost, cost_of(*rc.tree));
          PRORE_ASSIGN_OR_RETURN(double opt_cost, cost_of(*opt_tree));
          if (opt_cost * options_.guard_min_gain < normal_cost) {
            rc.optimistic_tree = std::move(opt_tree);
            goals_changed = true;
          }
        }
      }
    }
    reordered.push_back(std::move(rc));
  }
  out->goals_changed = goals_changed;

  // Stats of the reordered version: combine clauses exactly the way the
  // cost model does for the original.
  {
    std::vector<double> clause_p, clause_c;
    double fail_all = 1.0, sols = 0.0, cost_all = 1.0;
    for (const ReorderedClause& rc : reordered) {
      double match = costs_->HeadMatchProb(pred, rc.head, mode);
      double p_body = 1.0, c_single = 0.0, c_all = 0.0, body_sols = 1.0;
      if (rc.tree != nullptr) {
        AbstractEnv env = analysis::EnvFromHead(*store_, rc.head, mode);
        std::vector<const BodyNode*> seq;
        if (rc.tree->kind == BodyKind::kConj) {
          for (const auto& child : rc.tree->children) {
            seq.push_back(child.get());
          }
        } else {
          seq.push_back(rc.tree.get());
        }
        auto eval = costs_->EvaluateSequence(seq, env);
        if (!eval.ok() &&
            eval.status().code() == prore::StatusCode::kResourceExhausted) {
          return eval.status();  // watchdog trip: abort, don't mis-estimate
        }
        if (eval.ok()) {
          p_body = std::min(1.0, eval->chain.success_prob);
          c_single = eval->chain.cost_single;
          c_all = std::isfinite(eval->chain.cost_all_solutions)
                      ? eval->chain.cost_all_solutions
                      : 1e12;
          body_sols = std::min(1e9, eval->chain.expected_solutions);
        }
      }
      clause_p.push_back(std::min(1.0, match * p_body));
      clause_c.push_back(std::max(0.0, match * c_single));
      fail_all *= 1.0 - std::min(1.0, match * p_body);
      sols += match * body_sols;
      cost_all += match * c_all;
    }
    cost::PredModeStats stats;
    stats.success_prob = std::min(1.0, std::max(0.0, 1.0 - fail_all));
    stats.expected_solutions = sols;
    stats.cost_single =
        1.0 + cost::ExpectedSingleCallCost(clause_p, clause_c);
    stats.cost_all = std::min(1e12, cost_all);
    out->predicted_new_cost = stats.cost_all;
    costs_->SetOverride(pred, mode, stats);
  }

  // Phase B: emit clause terms with goal renaming.
  if (options_.fault != nullptr) {
    PRORE_RETURN_IF_ERROR(options_.fault->Check(pred, "emit"));
  }
  term::Symbol version_sym = store_->symbols().Intern(out->name);
  bool rename = options_.specialize_modes && !clause_only;
  bool keep_name = !options_.specialize_modes || pred.arity == 0 ||
                   pred.arity > options_.max_dispatch_arity || clause_only;
  out->emitted_under_original_name = keep_name;
  for (size_t i = 0; i < reordered.size(); ++i) {
    const ReorderedClause& rc = reordered[i];
    reader::Clause emitted;
    if (keep_name) {
      emitted.head = rc.head;
    } else if (pred.arity == 0) {
      emitted.head = store_->MakeAtom(version_sym);
    } else {
      std::vector<TermRef> args(pred.arity);
      for (uint32_t a = 0; a < pred.arity; ++a) {
        args[a] = store_->arg(rc.head, a);
      }
      emitted.head = store_->MakeStruct(version_sym, args);
    }
    if (rc.tree == nullptr) {
      emitted.body = store_->MakeAtom(SymbolTable::kTrue);
    } else {
      AbstractEnv env = analysis::EnvFromHead(*store_, rc.head, mode);
      PRORE_ASSIGN_OR_RETURN(emitted.body, EmitSeq(*rc.tree, &env, rename));
      if (rc.optimistic_tree != nullptr) {
        // ( ground(A1), ... -> optimistic-order ; normal-order ).
        Mode optimistic(pred.arity, ModeItem::kPlus);
        AbstractEnv opt_env =
            analysis::EnvFromHead(*store_, rc.head, optimistic);
        PRORE_ASSIGN_OR_RETURN(TermRef opt_body,
                               EmitSeq(*rc.optimistic_tree, &opt_env,
                                       rename));
        term::Symbol ground_sym = store_->symbols().Intern("ground");
        TermRef guard = term::kNullTerm;
        for (uint32_t a = pred.arity; a-- > 0;) {
          if (mode[a] == ModeItem::kPlus) continue;  // already assumed
          const TermRef test_args[] = {store_->arg(rc.head, a)};
          TermRef test = store_->MakeStruct(ground_sym, test_args);
          if (guard == term::kNullTerm) {
            guard = test;
          } else {
            const TermRef conj_args[] = {test, guard};
            guard = store_->MakeStruct(SymbolTable::kComma, conj_args);
          }
        }
        if (guard != term::kNullTerm) {
          const TermRef ite_args[] = {guard, opt_body};
          TermRef ite = store_->MakeStruct(SymbolTable::kArrow, ite_args);
          const TermRef disj_args[] = {ite, emitted.body};
          emitted.body = store_->MakeStruct(SymbolTable::kSemicolon,
                                            disj_args);
        }
      }
    }
    out->clauses.push_back(emitted);
  }

  if (options_.fault != nullptr && out->clauses.size() > 1 &&
      options_.fault->drop_last_clause.count(pred) > 0) {
    out->clauses.pop_back();  // planted miscompile (see core/fault.h)
    ++options_.fault->fired;
  }

  PredModeReport report;
  report.pred = pred;
  report.mode = mode;
  report.version_name = keep_name ? store_->symbols().Name(pred.name)
                                  : out->name;
  report.clauses_changed = out->clauses_changed;
  report.goals_changed = out->goals_changed;
  report.predicted_original_cost = out->predicted_original_cost;
  report.predicted_new_cost = out->predicted_new_cost;
  reports_.push_back(report);
  return prore::Status::OK();
}

void Pipeline::ComputeAliases() {
  // Versions of the same predicate whose clause text is identical modulo
  // the version name collapse into one (the paper: "the reorderer produces
  // only one or two distinct versions" in many cases).
  reader::WriteOptions wopts;
  wopts.var_names = false;
  // Iterate to a fixpoint: two versions may become identical only after
  // their callees' versions have merged (g_iu calls f_iu, g_uu calls f_uu;
  // once f_iu == f_uu the g versions merge too).
  // The loop is bounded — each round merges at least one version — but a
  // belt-and-braces cap keeps a merge-logic bug from hanging the build;
  // stopping early only leaves duplicate versions in the output.
  bool alias_changed = true;
  size_t rounds = 0;
  const size_t max_rounds = versions_.size() + 8;
  while (alias_changed && rounds++ < max_rounds) {
    alias_changed = false;
  for (auto& [pred, keys] : versions_of_) {
    std::map<std::string, std::string> canonical_by_text;
    for (const std::string& key : keys) {
      Version& v = versions_[key];
      if (v.emitted_under_original_name) continue;
      if (alias_.count(v.name) > 0) continue;  // already merged away
      std::string text;
      for (const reader::Clause& clause : v.clauses) {
        reader::Clause resolved = clause;
        resolved.body = RewriteAliases(clause.body);
        std::string t = reader::WriteClause(*store_, resolved, wopts);
        // Normalize self-references.
        size_t pos;
        while ((pos = t.find(v.name)) != std::string::npos) {
          t.replace(pos, v.name.size(), "$SELF");
        }
        text += t;
        text.push_back('\n');
      }
      // Normalize variable numbering (_G<id> differs between otherwise
      // identical versions): rename to V<k> in first-occurrence order.
      {
        std::string normalized;
        std::map<std::string, std::string> var_names;
        for (size_t i = 0; i < text.size();) {
          if (text[i] == '_' && i + 1 < text.size() && text[i + 1] == 'G') {
            size_t j = i + 2;
            while (j < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[j]))) {
              ++j;
            }
            std::string var = text.substr(i, j - i);
            std::string fresh_name = "V";
            fresh_name += std::to_string(var_names.size());
            auto [vit, fresh] = var_names.emplace(var,
                                                  std::move(fresh_name));
            (void)fresh;
            normalized += vit->second;
            i = j;
          } else {
            normalized.push_back(text[i]);
            ++i;
          }
        }
        text = std::move(normalized);
      }
      auto [it, inserted] = canonical_by_text.emplace(text, v.name);
      if (!inserted) {
        alias_[v.name] = it->second;
        alias_changed = true;
      }
    }
  }
  }
  if (alias_changed) {
    diagnostics_.push_back(lint::Diagnostic{
        "PL211", lint::Severity::kNote, {}, "",
        prore::StrFormat("alias fixpoint stopped after %zu rounds; some "
                         "duplicate versions were kept",
                         max_rounds)});
  }
}

/// Follows alias chains to the surviving canonical name: the fixpoint loop
/// of ComputeAliases can merge A into B in one round and B into C in a
/// later one, so a single map lookup may land on a name that was itself
/// merged away.
std::string Pipeline::ResolveAlias(std::string name) const {
  auto it = alias_.find(name);
  while (it != alias_.end()) {
    name = it->second;
    it = alias_.find(name);
  }
  return name;
}

TermRef Pipeline::RewriteAliases(TermRef t) {
  t = store_->Deref(t);
  switch (store_->tag(t)) {
    case Tag::kVar:
    case Tag::kInt:
    case Tag::kFloat:
      return t;
    case Tag::kAtom: {
      const std::string& name = store_->symbols().Name(store_->symbol(t));
      std::string canonical = ResolveAlias(name);
      if (canonical == name) return t;
      return store_->MakeAtom(store_->symbols().Intern(canonical));
    }
    case Tag::kStruct: {
      std::vector<TermRef> args(store_->arity(t));
      bool changed = false;
      for (uint32_t i = 0; i < store_->arity(t); ++i) {
        args[i] = RewriteAliases(store_->arg(t, i));
        if (args[i] != store_->Deref(store_->arg(t, i))) changed = true;
      }
      term::Symbol sym = store_->symbol(t);
      const std::string& name = store_->symbols().Name(sym);
      std::string canonical = ResolveAlias(name);
      if (canonical != name) {
        sym = store_->symbols().Intern(canonical);
        changed = true;
      }
      if (!changed) return t;
      return store_->MakeStruct(sym, args);
    }
  }
  return t;
}

std::string Pipeline::TargetFor(const PredId& pred, const Mode& combo) const {
  const auto it = versions_of_.find(pred);
  if (it == versions_of_.end()) return store_->symbols().Name(pred.name);
  std::string exact = Reorderer::VersionName(*store_, pred, combo);
  std::string best_name;
  int best_matches = -1;
  std::string least_demanding;
  int least_plus = 1 << 20;
  for (const std::string& key : it->second) {
    const Version& v = versions_.at(key);
    if (v.name == exact) return v.name;
    // Compatible: every '+' the version assumes is '+' in the combo.
    bool compatible = true;
    int matches = 0, plus = 0;
    for (size_t i = 0; i < combo.size(); ++i) {
      if (v.mode[i] == ModeItem::kPlus) {
        ++plus;
        if (combo[i] == ModeItem::kPlus) {
          ++matches;
        } else {
          compatible = false;
        }
      }
    }
    if (compatible && matches > best_matches) {
      best_matches = matches;
      best_name = v.name;
    }
    if (plus < least_plus) {
      least_plus = plus;
      least_demanding = v.name;
    }
  }
  if (!best_name.empty()) return best_name;
  if (!least_demanding.empty()) return least_demanding;
  return store_->symbols().Name(pred.name);
}

prore::Status Pipeline::EmitDispatcher(const PredId& pred,
                                       reader::Program* out) {
  // P(X1..Xn) :- ( var(X1) -> ( var(X2) -> P_uu(..) ; P_ui(..) )
  //              ; ( var(X2) -> P_iu(..) ; P_ii(..) ) ).
  std::vector<TermRef> args(pred.arity);
  for (uint32_t i = 0; i < pred.arity; ++i) {
    args[i] = store_->MakeVar(prore::StrFormat("X%u", i + 1));
  }
  // The tag test is free in the paper's cost model ("the Prolog engine
  // needs merely to test two tag bits"); '$var_test'/1 behaves like var/1
  // but is not counted as a call by the engine.
  term::Symbol var_sym = store_->symbols().Intern("$var_test");

  std::function<TermRef(uint32_t, Mode&)> build =
      [&](uint32_t i, Mode& combo) -> TermRef {
    if (i == pred.arity) {
      // Resolve aliases at dispatch time too.
      std::string target = ResolveAlias(TargetFor(pred, combo));
      term::Symbol sym = store_->symbols().Intern(target);
      if (pred.arity == 0) return store_->MakeAtom(sym);
      return store_->MakeStruct(sym, args);
    }
    const TermRef test_args[] = {args[i]};
    TermRef test = store_->MakeStruct(var_sym, test_args);
    combo.push_back(ModeItem::kMinus);
    TermRef then_branch = build(i + 1, combo);
    combo.back() = ModeItem::kPlus;
    TermRef else_branch = build(i + 1, combo);
    combo.pop_back();
    const TermRef ite_args[] = {test, then_branch};
    TermRef ite = store_->MakeStruct(SymbolTable::kArrow, ite_args);
    const TermRef disj_args[] = {ite, else_branch};
    return store_->MakeStruct(SymbolTable::kSemicolon, disj_args);
  };

  // If every {+,-} combination dispatches to the same version, skip the
  // tag tests entirely (the common case after deduplication).
  std::string single_target;
  bool all_same = true;
  {
    uint32_t combos = 1u << pred.arity;
    for (uint32_t bits = 0; bits < combos && all_same; ++bits) {
      Mode m(pred.arity);
      for (uint32_t i = 0; i < pred.arity; ++i) {
        m[i] = (bits >> i) & 1 ? ModeItem::kPlus : ModeItem::kMinus;
      }
      std::string target = ResolveAlias(TargetFor(pred, m));
      if (bits == 0) {
        single_target = target;
      } else if (target != single_target) {
        all_same = false;
      }
    }
  }

  Mode combo;
  reader::Clause dispatcher;
  dispatcher.head = pred.arity == 0
                        ? store_->MakeAtom(pred.name)
                        : store_->MakeStruct(pred.name, args);
  if (all_same) {
    term::Symbol sym = store_->symbols().Intern(single_target);
    dispatcher.body = pred.arity == 0 ? store_->MakeAtom(sym)
                                      : store_->MakeStruct(sym, args);
  } else {
    dispatcher.body = build(0, combo);
  }
  if (!out->AddClause(*store_, dispatcher)) {
    return prore::Status::Internal("dispatcher head not callable");
  }
  return prore::Status::OK();
}

prore::Result<reader::Program> Pipeline::Assemble() {
  reader::Program out;
  for (const PredId& pred : original_.pred_order()) {
    auto it = versions_of_.find(pred);
    if (it == versions_of_.end()) {
      // Untouched predicate (shouldn't happen; defensive copy).
      for (const reader::Clause& clause : original_.ClausesOf(pred)) {
        out.AddClause(*store_, clause);
      }
      continue;
    }
    bool any_specialized = false;
    for (const std::string& key : it->second) {
      Version& v = versions_.at(key);
      if (!v.emitted_under_original_name &&
          alias_.count(v.name) > 0) {
        continue;  // merged into its canonical twin
      }
      if (!v.emitted_under_original_name) any_specialized = true;
      for (reader::Clause clause : v.clauses) {
        clause.body = RewriteAliases(clause.body);
        if (!out.AddClause(*store_, clause)) {
          return prore::Status::Internal("bad clause head in version");
        }
      }
      if (v.emitted_under_original_name) break;  // one version is enough
    }
    if (any_specialized) {
      PRORE_RETURN_IF_ERROR(EmitDispatcher(pred, &out));
    }
  }
  for (TermRef d : original_.directives()) out.AddDirective(d);
  return out;
}

prore::Result<ReorderResult> Pipeline::Run() {
  PRORE_RETURN_IF_ERROR(Setup());

  // Seed versions.
  for (const PredId& pred : original_.pred_order()) {
    if (!options_.specialize_modes || pred.arity == 0 ||
        pred.arity > options_.max_dispatch_arity ||
        options_.identity_preds.count(pred) > 0 ||
        options_.clause_order_only.count(pred) > 0) {
      // Single version under the original name, ordered for the weakest
      // assumption (all-'?') so any call stays legal. Quarantined
      // predicates (identity / clause-order-only) always take this path.
      EnsureVersion(pred, Mode(pred.arity, ModeItem::kAny));
      continue;
    }
    uint32_t combos = 1u << pred.arity;
    size_t added = 0;
    for (uint32_t bits = 0; bits < combos; ++bits) {
      Mode m(pred.arity);
      for (uint32_t i = 0; i < pred.arity; ++i) {
        m[i] = (bits >> i) & 1 ? ModeItem::kPlus : ModeItem::kMinus;
      }
      if (!oracle_->IsLegalCall(pred, m)) continue;
      EnsureVersion(pred, m);
      ++added;
    }
    if (added == 0) {
      diagnostics_.push_back(lint::Diagnostic{
          "PL210", lint::Severity::kNote, {},
          reader::PredName(*store_, pred),
          "no legal {+,-} mode; emitting the predicate unspecialized"});
      EnsureVersion(pred, Mode(pred.arity, ModeItem::kAny));
    }
  }

  PRORE_RETURN_IF_ERROR(ProcessQueue());
  if (options_.specialize_modes) ComputeAliases();

  ReorderResult result;
  PRORE_ASSIGN_OR_RETURN(result.program, Assemble());

  if (options_.validate_output) {
    lint::ReorderCheckInput check;
    check.original = &original_;
    check.transformed = &result.program;
    for (const PredModeReport& report : reports_) {
      check.versions.push_back(
          lint::VersionInfo{report.pred, report.mode, report.version_name});
    }
    check.modes = &modes_;
    check.oracle = oracle_.get();
    check.fixity = &fixity_;
    for (const PredId& pred : original_.pred_order()) {
      if (!AllowReorder(pred)) check.no_reorder.insert(pred);
    }
    std::vector<lint::Diagnostic> findings =
        lint::ValidateReorder(store_, check);
    diagnostics_.insert(diagnostics_.end(),
                        std::make_move_iterator(findings.begin()),
                        std::make_move_iterator(findings.end()));
  }

  result.reports = std::move(reports_);
  result.modes = std::move(modes_);
  result.diagnostics = std::move(diagnostics_);
  if (absint_ != nullptr) {
    result.absint_report = analysis::absint::DumpAbsint(*absint_);
  }
  return result;
}

}  // namespace

prore::Result<ReorderResult> Reorderer::Run(const reader::Program& original) {
  // A cancelled or past-deadline context never starts new work; mid-run
  // interruption happens inside the analyses via their watchdogs.
  PRORE_RETURN_IF_ERROR(options_.exec.Check());
  Pipeline pipeline(store_, original, options_);
  return pipeline.Run();
}

}  // namespace prore::core
