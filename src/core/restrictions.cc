#include "core/restrictions.h"

#include <deque>

namespace prore::core {

using analysis::BodyKind;
using analysis::BodyNode;
using analysis::CallGraph;
using analysis::FixityResult;
using analysis::PredSet;
using term::PredId;
using term::TermRef;
using term::TermStore;

bool IsImmobile(const TermStore& store, const BodyNode& node,
                const FixityResult& fixity) {
  switch (node.kind) {
    case BodyKind::kTrue:
    case BodyKind::kFail:
      return false;
    case BodyKind::kCut:
      return true;
    case BodyKind::kCall: {
      PredId id = store.pred_id(store.Deref(node.goal));
      if (fixity.IsFixed(id)) return true;
      return analysis::IsSideEffectBuiltin(store.symbols().Name(id.name),
                                           id.arity);
    }
    case BodyKind::kNeg:
    case BodyKind::kSetPred:
      // Mobile as a unit unless something inside has side-effects.
      return IsImmobile(store, *node.children[0], fixity);
    case BodyKind::kCatch:
      // catch/3 is an opaque control construct: moving it changes which
      // goals execute under its protection, so it is always a barrier.
      return true;
    case BodyKind::kConj:
    case BodyKind::kDisj:
    case BodyKind::kIfThenElse:
      for (const auto& child : node.children) {
        if (IsImmobile(store, *child, fixity)) return true;
      }
      return false;
  }
  return false;
}

prore::Result<ClausePlan> PlanClause(const TermStore& store,
                                     const BodyNode& body,
                                     const FixityResult& fixity,
                                     const CallGraph& graph) {
  (void)graph;
  ClausePlan plan;
  std::vector<const BodyNode*> sequence;
  if (body.kind == BodyKind::kConj) {
    for (const auto& child : body.children) sequence.push_back(child.get());
  } else {
    sequence.push_back(&body);
  }

  // Find the last top-level cut: everything up to it is frozen.
  size_t freeze_until = 0;  // number of leading elements that are frozen
  for (size_t i = 0; i < sequence.size(); ++i) {
    if (sequence[i]->kind == BodyKind::kCut) {
      plan.has_cut = true;
      freeze_until = i + 1;
    }
  }

  if (freeze_until > 0) {
    Segment frozen;
    frozen.frozen = true;
    for (size_t i = 0; i + 1 < freeze_until; ++i) {
      frozen.elements.push_back(sequence[i]);
    }
    frozen.barrier = sequence[freeze_until - 1];  // the cut itself
    plan.segments.push_back(std::move(frozen));
  }

  Segment current;
  for (size_t i = freeze_until; i < sequence.size(); ++i) {
    const BodyNode* node = sequence[i];
    if (IsImmobile(store, *node, fixity)) {
      current.barrier = node;
      plan.segments.push_back(std::move(current));
      current = Segment();
    } else {
      current.elements.push_back(node);
    }
  }
  if (!current.elements.empty() || plan.segments.empty()) {
    plan.segments.push_back(std::move(current));
  }
  return plan;
}

prore::Result<PredSet> FrozenDescendants(const TermStore& store,
                                         const reader::Program& program,
                                         const CallGraph& graph) {
  PredSet seeds;
  for (const PredId& pred : graph.Preds()) {
    for (const reader::Clause& clause : program.ClausesOf(pred)) {
      PRORE_ASSIGN_OR_RETURN(auto body, analysis::ParseBody(store,
                                                            clause.body));
      // Collect user-predicate goals occurring before a top-level cut and
      // inside if-then-else conditions (also committed regions).
      std::vector<const BodyNode*> sequence;
      if (body->kind == BodyKind::kConj) {
        for (const auto& child : body->children) {
          sequence.push_back(child.get());
        }
      } else {
        sequence.push_back(body.get());
      }
      size_t last_cut = 0;
      for (size_t i = 0; i < sequence.size(); ++i) {
        if (sequence[i]->kind == BodyKind::kCut) last_cut = i + 1;
      }
      auto seed_goals = [&](const BodyNode& node) {
        std::vector<TermRef> goals;
        analysis::CollectCalledGoals(store, node, &goals);
        for (TermRef g : goals) {
          seeds.insert(store.pred_id(store.Deref(g)));
        }
      };
      if (last_cut > 0) {
        // Elements before the last cut (the cut is at index last_cut - 1).
        for (size_t i = 0; i + 1 < last_cut; ++i) seed_goals(*sequence[i]);
      }
      // If-then-else conditions commit like cuts.
      std::deque<const BodyNode*> work;
      work.push_back(body.get());
      while (!work.empty()) {
        const BodyNode* n = work.front();
        work.pop_front();
        if (n->kind == BodyKind::kIfThenElse) {
          seed_goals(*n->children[0]);
        }
        for (const auto& child : n->children) work.push_back(child.get());
      }
    }
  }
  // Close over descendants.
  PredSet frozen;
  std::deque<PredId> work(seeds.begin(), seeds.end());
  while (!work.empty()) {
    PredId p = work.front();
    work.pop_front();
    if (!frozen.insert(p).second) continue;
    for (const PredId& callee : graph.Callees(p)) {
      if (frozen.count(callee) == 0) work.push_back(callee);
    }
  }
  return frozen;
}

}  // namespace prore::core
