#include "profile/profile.h"

#include <algorithm>
#include <cmath>

#include "analysis/callgraph.h"
#include "analysis/content_hash.h"
#include "common/json.h"
#include "common/str_util.h"

namespace prore::profile {

namespace {

/// Counts travel as JSON numbers (doubles on the wire), so the exact
/// range is the double-integer range; anything bigger must be a corrupt
/// file, not a real execution count.
constexpr double kMaxCount = 9007199254740992.0;  // 2^53

std::string HashToHex(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

bool HexToHash(const std::string& s, uint64_t* out) {
  if (s.size() != 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

std::string PredKey(const term::TermStore& store, const term::PredId& id) {
  return store.symbols().Name(id.name) + "/" + std::to_string(id.arity);
}

/// Splits "name/arity". Prolog atoms may contain '/' themselves
/// (quoted), so the *last* slash separates the arity.
bool SplitPredKey(const std::string& key, std::string* name,
                  uint32_t* arity) {
  size_t slash = key.rfind('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= key.size()) {
    return false;
  }
  uint64_t a = 0;
  for (size_t i = slash + 1; i < key.size(); ++i) {
    char c = key[i];
    if (c < '0' || c > '9') return false;
    a = a * 10 + static_cast<uint64_t>(c - '0');
    if (a > 0xFFFFFFFFull) return false;
  }
  *name = key.substr(0, slash);
  *arity = static_cast<uint32_t>(a);
  return true;
}

/// Reads one non-negative integer count field; `where` names it in
/// errors ("predicate \"p/2\": ports.call").
prore::Status ReadCount(const JsonValue& obj, const char* field,
                        const std::string& where, uint64_t* out) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr) {
    *out = 0;  // absent counts read as zero (forward/backward compat)
    return prore::Status::OK();
  }
  if (!v->is_number()) {
    return prore::Status::InvalidArgument(prore::StrFormat(
        "profile: %s.%s must be a number", where.c_str(), field));
  }
  double d = v->number_value();
  if (d < 0) {
    return prore::Status::InvalidArgument(prore::StrFormat(
        "profile: %s.%s is negative (%g); counts cannot be negative — "
        "the file is corrupt, re-record it",
        where.c_str(), field, d));
  }
  if (d > kMaxCount || d != std::floor(d)) {
    return prore::Status::InvalidArgument(prore::StrFormat(
        "profile: %s.%s is not an exact non-negative integer (%g)",
        where.c_str(), field, d));
  }
  *out = static_cast<uint64_t>(d);
  return prore::Status::OK();
}

JsonValue PortsToJson(const engine::PortCounts& p) {
  JsonValue o = JsonValue::Object();
  o.Set("call", JsonValue::Number(static_cast<double>(p.call)));
  o.Set("exit", JsonValue::Number(static_cast<double>(p.exit)));
  o.Set("redo", JsonValue::Number(static_cast<double>(p.redo)));
  o.Set("fail", JsonValue::Number(static_cast<double>(p.fail)));
  o.Set("succ", JsonValue::Number(static_cast<double>(p.succ)));
  return o;
}

double Rate(uint64_t num, uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

prore::Result<PredHashMap> ComputeProfileHashes(
    const term::TermStore& store, const reader::Program& program) {
  PRORE_ASSIGN_OR_RETURN(analysis::CallGraph graph,
                         analysis::CallGraph::Build(store, program));
  analysis::DependencyGroups groups =
      analysis::ComputeDependencyGroups(graph);
  // Salt 0, no frozen set: a pure content hash, identical for the same
  // clauses no matter which tool computes it (the profile's staleness key
  // must not depend on reorder options or pipeline state).
  analysis::ContentHashes hashes =
      analysis::ComputeContentHashes(store, program, groups, nullptr, 0);
  return std::move(hashes.pred_hash);
}

ProfileData FromCollector(const term::TermStore& store,
                          const reader::Program& program,
                          const engine::ProfileCollector& collector,
                          const PredHashMap& hashes) {
  ProfileData data;
  for (const auto& [id, counts] : collector.preds()) {
    PredProfile p;
    p.ports = counts.ports;
    p.clauses = counts.clauses;
    auto hit = hashes.find(id);
    if (hit != hashes.end() && program.Has(id)) {
      p.content_hash = hit->second;
      // Pad to the full clause count: untried clauses carry zeros, but
      // merge and staleness logic need the recorded shape to equal the
      // program's shape.
      size_t n = program.ClausesOf(id).size();
      if (p.clauses.size() < n) p.clauses.resize(n);
    }
    data.preds.emplace(PredKey(store, id), std::move(p));
  }
  for (const auto& [id, counts] : collector.builtins()) {
    PredProfile p;
    p.builtin = true;
    p.ports = counts.ports;
    data.preds.emplace(PredKey(store, id), std::move(p));
  }
  return data;
}

std::string ToJson(const ProfileData& data) {
  JsonValue root = JsonValue::Object();
  root.Set("format", JsonValue::String(kFormatName));
  root.Set("version", JsonValue::Number(kFormatVersion));
  root.Set("runs", JsonValue::Number(static_cast<double>(data.runs)));
  JsonValue preds = JsonValue::Array();
  for (const auto& [key, p] : data.preds) {
    JsonValue o = JsonValue::Object();
    o.Set("pred", JsonValue::String(key));
    if (p.builtin) {
      o.Set("builtin", JsonValue::Bool(true));
    } else {
      o.Set("hash", JsonValue::String(HashToHex(p.content_hash)));
    }
    o.Set("ports", PortsToJson(p.ports));
    if (!p.clauses.empty()) {
      JsonValue cs = JsonValue::Array();
      for (const engine::ClauseCounts& c : p.clauses) {
        JsonValue co = JsonValue::Object();
        co.Set("try", JsonValue::Number(static_cast<double>(c.tries)));
        co.Set("enter", JsonValue::Number(static_cast<double>(c.entries)));
        co.Set("first_exit",
               JsonValue::Number(static_cast<double>(c.first_exits)));
        co.Set("exit", JsonValue::Number(static_cast<double>(c.exits)));
        cs.push_back(std::move(co));
      }
      o.Set("clauses", std::move(cs));
    }
    preds.push_back(std::move(o));
  }
  root.Set("predicates", std::move(preds));
  return root.Dump();
}

prore::Result<ProfileData> FromJson(std::string_view text) {
  PRORE_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  if (!root.is_object()) {
    return prore::Status::InvalidArgument(
        "profile: top level must be a JSON object");
  }
  const JsonValue* format = root.Find("format");
  if (format == nullptr || !format->is_string() ||
      format->string_value() != kFormatName) {
    return prore::Status::InvalidArgument(prore::StrFormat(
        "profile: missing or unrecognized \"format\" (expected \"%s\") — "
        "is this really a profile file?",
        kFormatName));
  }
  const JsonValue* version = root.Find("version");
  if (version == nullptr || !version->is_number() ||
      version->number_value() != kFormatVersion) {
    return prore::Status::InvalidArgument(prore::StrFormat(
        "profile: unsupported version %s (this build reads version %d); "
        "re-record the profile with a matching build",
        version != nullptr && version->is_number()
            ? std::to_string(static_cast<long long>(version->number_value()))
                  .c_str()
            : "<missing>",
        kFormatVersion));
  }
  ProfileData data;
  PRORE_RETURN_IF_ERROR(ReadCount(root, "runs", "document", &data.runs));
  if (root.Find("runs") == nullptr) data.runs = 1;
  const JsonValue* preds = root.Find("predicates");
  if (preds == nullptr || !preds->is_array()) {
    return prore::Status::InvalidArgument(
        "profile: missing \"predicates\" array");
  }
  for (const JsonValue& entry : preds->array()) {
    if (!entry.is_object()) {
      return prore::Status::InvalidArgument(
          "profile: predicates[] entries must be objects");
    }
    const JsonValue* key = entry.Find("pred");
    if (key == nullptr || !key->is_string()) {
      return prore::Status::InvalidArgument(
          "profile: predicates[] entry lacks a \"pred\" string");
    }
    std::string name;
    uint32_t arity = 0;
    if (!SplitPredKey(key->string_value(), &name, &arity)) {
      return prore::Status::InvalidArgument(prore::StrFormat(
          "profile: malformed predicate indicator \"%s\" (want "
          "name/arity)",
          key->string_value().c_str()));
    }
    const std::string where =
        prore::StrFormat("predicate \"%s\"", key->string_value().c_str());
    if (data.preds.count(key->string_value()) > 0) {
      return prore::Status::InvalidArgument(prore::StrFormat(
          "profile: duplicate %s — merge runs with Merge(), do not "
          "concatenate entries",
          where.c_str()));
    }
    PredProfile p;
    p.builtin = entry.GetBool("builtin", false);
    const JsonValue* hash = entry.Find("hash");
    if (!p.builtin) {
      if (hash == nullptr || !hash->is_string() ||
          !HexToHash(hash->string_value(), &p.content_hash)) {
        return prore::Status::InvalidArgument(prore::StrFormat(
            "profile: %s lacks a valid \"hash\" (16 lowercase hex "
            "digits); without it staleness cannot be checked",
            where.c_str()));
      }
    }
    const JsonValue* ports = entry.Find("ports");
    if (ports == nullptr || !ports->is_object()) {
      return prore::Status::InvalidArgument(prore::StrFormat(
          "profile: %s lacks a \"ports\" object", where.c_str()));
    }
    const std::string pw = where + ": ports";
    PRORE_RETURN_IF_ERROR(ReadCount(*ports, "call", pw, &p.ports.call));
    PRORE_RETURN_IF_ERROR(ReadCount(*ports, "exit", pw, &p.ports.exit));
    PRORE_RETURN_IF_ERROR(ReadCount(*ports, "redo", pw, &p.ports.redo));
    PRORE_RETURN_IF_ERROR(ReadCount(*ports, "fail", pw, &p.ports.fail));
    PRORE_RETURN_IF_ERROR(ReadCount(*ports, "succ", pw, &p.ports.succ));
    if (p.ports.succ > p.ports.call) {
      return prore::Status::InvalidArgument(prore::StrFormat(
          "profile: %s: succ (%llu) exceeds call (%llu) — a call cannot "
          "succeed more often than it happens; the file is corrupt",
          where.c_str(), static_cast<unsigned long long>(p.ports.succ),
          static_cast<unsigned long long>(p.ports.call)));
    }
    if (const JsonValue* clauses = entry.Find("clauses");
        clauses != nullptr) {
      if (!clauses->is_array()) {
        return prore::Status::InvalidArgument(prore::StrFormat(
            "profile: %s: \"clauses\" must be an array", where.c_str()));
      }
      size_t ci = 0;
      for (const JsonValue& co : clauses->array()) {
        if (!co.is_object()) {
          return prore::Status::InvalidArgument(prore::StrFormat(
              "profile: %s: clauses[%zu] must be an object", where.c_str(),
              ci));
        }
        const std::string cw =
            prore::StrFormat("%s: clauses[%zu]", where.c_str(), ci);
        engine::ClauseCounts c;
        PRORE_RETURN_IF_ERROR(ReadCount(co, "try", cw, &c.tries));
        PRORE_RETURN_IF_ERROR(ReadCount(co, "enter", cw, &c.entries));
        PRORE_RETURN_IF_ERROR(
            ReadCount(co, "first_exit", cw, &c.first_exits));
        PRORE_RETURN_IF_ERROR(ReadCount(co, "exit", cw, &c.exits));
        p.clauses.push_back(c);
        ++ci;
      }
    }
    data.preds.emplace(key->string_value(), std::move(p));
  }
  return data;
}

prore::Result<ProfileData> Merge(const ProfileData& a,
                                 const ProfileData& b) {
  ProfileData out = a;
  out.runs = a.runs + b.runs;
  for (const auto& [key, bp] : b.preds) {
    auto it = out.preds.find(key);
    if (it == out.preds.end()) {
      out.preds.emplace(key, bp);
      continue;
    }
    PredProfile& ap = it->second;
    if (ap.builtin != bp.builtin) {
      return prore::Status::InvalidArgument(prore::StrFormat(
          "profile merge: \"%s\" is a builtin in one input and a user "
          "predicate in the other — the inputs come from different "
          "programs",
          key.c_str()));
    }
    if (ap.content_hash != bp.content_hash) {
      return prore::Status::InvalidArgument(prore::StrFormat(
          "profile merge: \"%s\" was recorded against different clause "
          "content (hash %s vs %s); re-record both inputs against the "
          "current program",
          key.c_str(), HashToHex(ap.content_hash).c_str(),
          HashToHex(bp.content_hash).c_str()));
    }
    if (!ap.clauses.empty() && !bp.clauses.empty() &&
        ap.clauses.size() != bp.clauses.size()) {
      return prore::Status::InvalidArgument(prore::StrFormat(
          "profile merge: \"%s\" has %zu clauses in one input and %zu in "
          "the other; re-record against the current program",
          key.c_str(), ap.clauses.size(), bp.clauses.size()));
    }
    ap.ports.call += bp.ports.call;
    ap.ports.exit += bp.ports.exit;
    ap.ports.redo += bp.ports.redo;
    ap.ports.fail += bp.ports.fail;
    ap.ports.succ += bp.ports.succ;
    if (ap.clauses.size() < bp.clauses.size()) {
      ap.clauses.resize(bp.clauses.size());
    }
    for (size_t i = 0; i < bp.clauses.size(); ++i) {
      ap.clauses[i].tries += bp.clauses[i].tries;
      ap.clauses[i].entries += bp.clauses[i].entries;
      ap.clauses[i].first_exits += bp.clauses[i].first_exits;
      ap.clauses[i].exits += bp.clauses[i].exits;
    }
  }
  return out;
}

prore::Status ValidateAgainstProgram(const term::TermStore& store,
                                     const reader::Program& program,
                                     const ProfileData& data) {
  // Name the program's predicates once; the profile's keys use the same
  // rendering, so this is a plain string-set membership test and needs no
  // interning into the (const) store.
  std::unordered_map<std::string, bool> defined;
  for (const term::PredId& id : program.pred_order()) {
    defined.emplace(PredKey(store, id), true);
  }
  for (const auto& [key, p] : data.preds) {
    if (p.builtin) continue;
    if (defined.count(key) == 0) {
      return prore::Status::InvalidArgument(prore::StrFormat(
          "profile: predicate \"%s\" is not defined by this program — the "
          "profile was recorded against a different program",
          key.c_str()));
    }
  }
  return prore::Status::OK();
}

uint64_t Fingerprint(const ProfileData& data) {
  return analysis::HashBytes(0x70726f66696c6531ull, ToJson(data));
}

std::string ApplyReport::ToText() const {
  std::string out = prore::StrFormat(
      "profile: %zu predicate(s) applied, %zu stale, %zu below sample "
      "floor, %zu unknown",
      applied, stale, low_samples, unknown);
  for (const ApplyOutcome& o : outcomes) {
    switch (o.kind) {
      case ApplyOutcome::Kind::kApplied:
        break;  // the summary line covers the common case
      case ApplyOutcome::Kind::kStale:
        out += prore::StrFormat(
            "\nprofile: %s: clauses changed since recording; using the "
            "static model (re-record to re-enable)",
            o.pred.c_str());
        break;
      case ApplyOutcome::Kind::kLowSamples:
        out += prore::StrFormat(
            "\nprofile: %s: too few recorded calls; using the static "
            "model",
            o.pred.c_str());
        break;
      case ApplyOutcome::Kind::kUnknown:
        out += prore::StrFormat(
            "\nprofile: %s: not defined in this program; entry ignored",
            o.pred.c_str());
        break;
    }
  }
  return out;
}

prore::Result<ApplyReport> BuildEmpirical(term::TermStore* store,
                                          const reader::Program& program,
                                          const ProfileData& data,
                                          const ApplyOptions& options,
                                          cost::EmpiricalProfile* out) {
  PRORE_ASSIGN_OR_RETURN(PredHashMap hashes,
                         ComputeProfileHashes(*store, program));
  ApplyReport report;
  for (const auto& [key, p] : data.preds) {
    std::string name;
    uint32_t arity = 0;
    if (!SplitPredKey(key, &name, &arity)) continue;  // FromJson rejects
    term::PredId id{store->symbols().Intern(name), arity};
    ApplyOutcome outcome;
    outcome.pred = key;
    if (p.builtin) {
      // Builtins have no clauses to go stale; only the sample floor
      // applies.
      if (p.ports.call < options.min_calls) {
        outcome.kind = ApplyOutcome::Kind::kLowSamples;
        ++report.low_samples;
        report.outcomes.push_back(std::move(outcome));
        continue;
      }
      cost::EmpiricalPredStats stats;
      stats.calls = p.ports.call;
      stats.success_prob = Rate(p.ports.succ, p.ports.call);
      stats.expected_solutions = Rate(p.ports.exit, p.ports.call);
      out->builtins[id] = std::move(stats);
      ++report.applied;
      report.outcomes.push_back(std::move(outcome));
      continue;
    }
    if (!program.Has(id)) {
      outcome.kind = ApplyOutcome::Kind::kUnknown;
      ++report.unknown;
      report.outcomes.push_back(std::move(outcome));
      continue;
    }
    auto hit = hashes.find(id);
    if (hit == hashes.end() || hit->second != p.content_hash) {
      outcome.kind = ApplyOutcome::Kind::kStale;
      ++report.stale;
      report.outcomes.push_back(std::move(outcome));
      continue;
    }
    if (p.ports.call < options.min_calls) {
      outcome.kind = ApplyOutcome::Kind::kLowSamples;
      ++report.low_samples;
      report.outcomes.push_back(std::move(outcome));
      continue;
    }
    cost::EmpiricalPredStats stats;
    stats.calls = p.ports.call;
    stats.success_prob = Rate(p.ports.succ, p.ports.call);
    stats.expected_solutions = Rate(p.ports.exit, p.ports.call);
    // The hash matched, so the recorded clause shape is the current one;
    // anything else (e.g. a hand-edited file) keeps whole-pred stats but
    // contributes no per-clause data.
    if (p.clauses.size() == program.ClausesOf(id).size()) {
      for (const engine::ClauseCounts& c : p.clauses) {
        cost::EmpiricalClauseStats cs;
        // Below the per-clause floor, publish tries = 0: consumers fall
        // back to the static estimate for just that clause.
        if (c.tries >= options.min_tries) {
          cs.tries = c.tries;
          cs.match_prob = Rate(c.entries, c.tries);
          cs.success_prob = Rate(c.first_exits, c.tries);
          cs.expected_solutions = Rate(c.exits, c.tries);
        }
        stats.clauses.push_back(cs);
      }
    }
    out->preds[id] = std::move(stats);
    ++report.applied;
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace prore::profile
