#ifndef PRORE_PROFILE_PROFILE_H_
#define PRORE_PROFILE_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "cost/cost_model.h"
#include "engine/profile.h"
#include "reader/program.h"
#include "term/store.h"

/// The persistent, versioned execution-profile format and its two ends:
/// writer (engine ProfileCollector -> stable JSON) and reader (JSON ->
/// cost::EmpiricalProfile, with schema validation, multi-run merging and
/// a content-hash staleness check per predicate). The normative format
/// spec lives in docs/profile-format.md; this header is its
/// implementation.
namespace prore::profile {

/// Bumped on incompatible schema changes; readers reject other versions
/// with an actionable error instead of guessing.
inline constexpr int kFormatVersion = 1;
inline constexpr const char* kFormatName = "prore-profile";

/// One predicate's recorded counts. Counts have the engine's semantics
/// (engine/profile.h): box-model ports plus per-clause try/enter/exit.
struct PredProfile {
  bool builtin = false;
  /// Content hash of the predicate's clauses at record time (salt 0, no
  /// frozen set — see ComputeProfileHashes). 0 for builtins and for
  /// predicates that appeared only dynamically; such entries never pass
  /// the staleness check and are reported, not applied.
  uint64_t content_hash = 0;
  engine::PortCounts ports;
  /// Original clause order at record time; empty for builtins.
  std::vector<engine::ClauseCounts> clauses;
};

/// A parsed (or freshly recorded) profile. Keyed by "name/arity"; an
/// ordered map so ToJson output is byte-stable regardless of how the
/// profile was built — the round-trip tests assert write(parse(j)) == j.
struct ProfileData {
  uint64_t runs = 1;
  std::map<std::string, PredProfile> preds;
};

/// Per-predicate content hashes in the profile keying convention:
/// analysis::ComputeContentHashes over the program's SCC condensation
/// with no frozen set and salt 0 — a pure content hash, so the same
/// clauses always key the same whether recorded by prolog, prore, or the
/// server. Fails only if the program's call graph cannot be built.
using PredHashMap =
    std::unordered_map<term::PredId, uint64_t, term::PredIdHash>;
prore::Result<PredHashMap> ComputeProfileHashes(
    const term::TermStore& store, const reader::Program& program);

/// Snapshots a collector into the persistent format. User predicates
/// present in `program` get their content hash from `hashes` and their
/// clause vector padded to the predicate's clause count (clauses never
/// tried still appear, with zero counts — merge and staleness logic need
/// the full shape); everything else (builtins, dynamically asserted
/// predicates) is recorded with hash 0.
ProfileData FromCollector(const term::TermStore& store,
                          const reader::Program& program,
                          const engine::ProfileCollector& collector,
                          const PredHashMap& hashes);

/// Renders the profile as compact JSON (docs/profile-format.md).
/// Deterministic: equal ProfileData values produce identical bytes.
std::string ToJson(const ProfileData& data);

/// Parses and validates one profile document. Errors are actionable:
/// they name the offending predicate/field and say what to do (re-record
/// for version mismatches, fix the file for corrupt counts). Unknown
/// fields are ignored for forward compatibility.
prore::Result<ProfileData> FromJson(std::string_view text);

/// Merges two profiles (e.g. several recording runs of one program):
/// counts and run totals sum. Fails when the same predicate was recorded
/// against different clause content (hash or clause-count mismatch) —
/// merging those would silently blend incompatible clause indices.
prore::Result<ProfileData> Merge(const ProfileData& a, const ProfileData& b);

/// Strict check that every non-builtin predicate in `data` exists in
/// `program` (the wire-level contract for server loads; file-based CLIs
/// prefer the tolerant BuildEmpirical path, which skips and reports).
prore::Status ValidateAgainstProgram(const term::TermStore& store,
                                     const reader::Program& program,
                                     const ProfileData& data);

/// Stable fingerprint of a profile's entire content — folded into
/// analysis-cache salts so cached reorder results keyed without (or with
/// a different) profile can never be replayed for a profile-fed request.
uint64_t Fingerprint(const ProfileData& data);

struct ApplyOptions {
  /// Predicates with fewer recorded calls fall back to the static model
  /// (a 2-call sample is noise, not a probability).
  uint64_t min_calls = 8;
  /// Clauses with fewer tries keep the static per-clause estimate.
  uint64_t min_tries = 4;
};

/// What happened to each profiled predicate when applying a profile.
struct ApplyOutcome {
  enum class Kind {
    kApplied,     ///< empirical stats now feed the cost model
    kStale,       ///< content hash differs from the current clauses
    kLowSamples,  ///< below ApplyOptions::min_calls
    kUnknown,     ///< predicate not defined in the current program
  };
  std::string pred;  ///< "name/arity"
  Kind kind = Kind::kApplied;
};

struct ApplyReport {
  std::vector<ApplyOutcome> outcomes;
  size_t applied = 0;
  size_t stale = 0;
  size_t low_samples = 0;
  size_t unknown = 0;
  /// One line per non-applied predicate plus a summary, for CLI stderr.
  std::string ToText() const;
};

/// Converts a profile into the cost model's empirical form against the
/// *current* program: per predicate, the content hash must match the
/// program's current hash (stale entries are skipped and reported — a
/// profile recorded against edited clauses is ignored, not misapplied)
/// and the sample floor must be met. `store` is mutable only to intern
/// predicate names that may not appear in this store yet.
prore::Result<ApplyReport> BuildEmpirical(term::TermStore* store,
                                          const reader::Program& program,
                                          const ProfileData& data,
                                          const ApplyOptions& options,
                                          cost::EmpiricalProfile* out);

}  // namespace prore::profile

#endif  // PRORE_PROFILE_PROFILE_H_
