#ifndef PRORE_COMMON_THREAD_POOL_H_
#define PRORE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"

namespace prore {

/// A fixed-size worker pool over one shared task queue. Tasks are plain
/// `void()` thunks. Exceptions escaping a task no longer terminate the
/// process: they are captured and rethrown from the next Wait() —
/// deterministically, first-by-submission-order wins; later ones are
/// logged to stderr and counted (suppressed_exceptions()). The pool stays
/// usable after a throwing Wait(). Tasks should still prefer to own their
/// fault boundaries (the guarded pipeline catches per group); the Wait()
/// rethrow is the backstop that turns "worker died silently" into a
/// visible failure at the join point.
///
/// Submission is allowed from worker threads (a task may enqueue follow-up
/// work); Wait() drains to full quiescence — queue empty AND every running
/// task finished — so it is safe even when tasks fan out.
///
/// A pool constructed with a CancellationToken cooperates with it: once
/// the token is cancelled, queued-but-unstarted tasks are dropped (counted
/// in cancelled_tasks()) and new submissions are refused the same way.
/// Running tasks are never interrupted — cancellation of in-flight work is
/// cooperative, via the ExecContext the task itself carries.
/// CancelPending() gives the same drop-the-queue behavior imperatively.
///
/// With `num_threads == 0` the pool is *inline*: Submit runs the task on
/// the calling thread immediately (capturing exceptions for Wait() all the
/// same). That gives the single-threaded path the exact same code shape
/// (and task order) as the parallel one, which is how the pipeline keeps
/// jobs=1 and jobs=N bit-identical.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads,
                      CancellationToken cancel = CancellationToken());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; runs it inline when the pool has no threads. If the
  /// pool's token is already cancelled the task is dropped (and counted)
  /// instead.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight, then
  /// rethrows the first (by submission order) exception any task raised
  /// since the last Wait(). The error state is consumed: a subsequent
  /// Wait() returns normally and the pool accepts new work.
  void Wait();

  /// Drops every queued-but-unstarted task. Running tasks finish on their
  /// own (interrupt them via their ExecContext). Returns the number
  /// dropped; also accumulated in cancelled_tasks().
  size_t CancelPending();

  /// Tasks dropped before starting (token already cancelled at Submit, or
  /// CancelPending) since construction.
  size_t cancelled_tasks() const;

  /// Task exceptions that lost the first-exception-wins race and were
  /// logged instead of rethrown, since the last Wait().
  size_t suppressed_exceptions() const;

  /// Worker threads owned by the pool (0 = inline mode).
  size_t size() const { return threads_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static size_t HardwareConcurrency();

 private:
  struct Task {
    uint64_t seq;
    std::function<void()> fn;
  };

  void WorkerLoop();
  /// Runs one task, capturing any escaping exception under the error
  /// policy. Called with mu_ NOT held.
  void RunTask(Task task);
  /// Records `error` from task `seq` (first-by-seq wins, losers logged).
  void RecordError(uint64_t seq, std::exception_ptr error);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or shutdown
  std::condition_variable idle_cv_;   ///< signals Wait(): quiescent
  std::deque<Task> queue_;
  size_t in_flight_ = 0;  ///< tasks popped but not yet finished
  bool shutdown_ = false;
  uint64_t next_seq_ = 0;
  std::exception_ptr first_error_;
  uint64_t first_error_seq_ = 0;
  size_t suppressed_exceptions_ = 0;
  size_t cancelled_tasks_ = 0;
  CancellationToken cancel_;
  std::vector<std::thread> threads_;
};

}  // namespace prore

#endif  // PRORE_COMMON_THREAD_POOL_H_
