#ifndef PRORE_COMMON_THREAD_POOL_H_
#define PRORE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prore {

/// A fixed-size worker pool over one shared task queue. Tasks are plain
/// `void()` thunks; exceptions escaping a task terminate the process (tasks
/// own their fault boundaries — the guarded pipeline catches per group, the
/// engine benches catch per client), so keep catch blocks inside the task.
///
/// Submission is allowed from worker threads (a task may enqueue follow-up
/// work); Wait() drains to full quiescence — queue empty AND every running
/// task finished — so it is safe even when tasks fan out.
///
/// With `num_threads == 0` the pool is *inline*: Submit runs the task on
/// the calling thread immediately. That gives the single-threaded path the
/// exact same code shape (and task order) as the parallel one, which is how
/// the pipeline keeps jobs=1 and jobs=N bit-identical.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; runs it inline when the pool has no threads.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight.
  void Wait();

  /// Worker threads owned by the pool (0 = inline mode).
  size_t size() const { return threads_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or shutdown
  std::condition_variable idle_cv_;   ///< signals Wait(): quiescent
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  ///< tasks popped but not yet finished
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace prore

#endif  // PRORE_COMMON_THREAD_POOL_H_
