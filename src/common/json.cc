#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"

namespace prore {

namespace {

class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  prore::Result<JsonValue> Run() {
    JsonValue v;
    PRORE_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  prore::Status Fail(const char* what) const {
    return prore::Status::ParseError(
        prore::StrFormat("json: %s at offset %zu", what, pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  prore::Status ParseValue(JsonValue* out, size_t depth) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        PRORE_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return prore::Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = JsonValue::Bool(true);
          return prore::Status::OK();
        }
        return Fail("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = JsonValue::Bool(false);
          return prore::Status::OK();
        }
        return Fail("bad literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = JsonValue::Null();
          return prore::Status::OK();
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  prore::Status ParseObject(JsonValue* out, size_t depth) {
    if (depth >= max_depth_) return Fail("nesting too deep");
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return prore::Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      PRORE_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue v;
      PRORE_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return prore::Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  prore::Status ParseArray(JsonValue* out, size_t depth) {
    if (depth >= max_depth_) return Fail("nesting too deep");
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return prore::Status::OK();
    while (true) {
      JsonValue v;
      PRORE_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return prore::Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  prore::Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return prore::Status::OK();
      }
      if (c < 0x20) return Fail("unescaped control character");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned cp = 0;
          PRORE_RETURN_IF_ERROR(ParseHex4(&cp));
          // Surrogate pair: decode the low half if present; a lone
          // surrogate degrades to U+FFFD rather than failing the frame.
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            unsigned lo = 0;
            PRORE_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
  }

  prore::Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape");
      }
    }
    *out = v;
    return prore::Status::OK();
  }

  static void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  prore::Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return Fail("malformed number");
    }
    *out = JsonValue::Number(v);
    return prore::Status::OK();
  }

  std::string_view text_;
  size_t max_depth_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string default_value) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value()
                                          : std::move(default_value);
}

double JsonValue::GetNumber(std::string_view key, double default_value) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : default_value;
}

bool JsonValue::GetBool(std::string_view key, bool default_value) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : default_value;
}

prore::Result<JsonValue> JsonValue::Parse(std::string_view text,
                                          size_t max_depth) {
  return Parser(text, max_depth).Run();
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += prore::StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      // Integers (the overwhelmingly common case on this wire) render
      // without a fractional part so replies are byte-stable.
      double intpart = 0;
      if (std::modf(number_, &intpart) == 0.0 && std::abs(number_) < 1e15) {
        *out += prore::StrFormat("%lld", static_cast<long long>(number_));
      } else {
        *out += prore::StrFormat("%.17g", number_);
      }
      return;
    }
    case Kind::kString:
      AppendJsonEscaped(out, string_);
      return;
    case Kind::kArray:
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    case Kind::kObject:
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out->push_back(',');
        AppendJsonEscaped(out, members_[i].first);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

}  // namespace prore
