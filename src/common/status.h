#ifndef PRORE_COMMON_STATUS_H_
#define PRORE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace prore {

/// Error category for a failed operation. The categories mirror the stages
/// of the reordering pipeline so a caller can tell a syntax error in the
/// input program apart from, say, an illegal mode discovered during search.
enum class StatusCode {
  kOk = 0,
  kParseError,       ///< Malformed Prolog source text.
  kTypeError,        ///< A term had the wrong shape (e.g. non-callable goal).
  kInstantiationError,  ///< A built-in demanded a bound argument.
  kExistenceError,   ///< Unknown predicate, symbol, or file.
  kModeError,        ///< A call violated the legal-mode table.
  kInvalidArgument,  ///< Bad argument to a library function.
  kResourceExhausted,  ///< Step/solution/budget limits exceeded.
  kInternal,         ///< Invariant violation inside the library.
  kUnsupported,      ///< Construct outside the supported Prolog subset.
  kEvaluationError,  ///< Arithmetic evaluation error (e.g. zero divisor).
  kPrologThrow,      ///< A Prolog exception (throw/1 ball) left uncaught.
  kCancelled,        ///< Cooperative cancellation via a CancellationToken.
};

/// Returns a stable human-readable name, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing success or failure of an operation.
///
/// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
/// (or a Result<T>, see result.h) instead of throwing. The success path
/// stores no string and is trivially cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status InstantiationError(std::string m) {
    return Status(StatusCode::kInstantiationError, std::move(m));
  }
  static Status ExistenceError(std::string m) {
    return Status(StatusCode::kExistenceError, std::move(m));
  }
  static Status ModeError(std::string m) {
    return Status(StatusCode::kModeError, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status EvaluationError(std::string m) {
    return Status(StatusCode::kEvaluationError, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }

  /// Attaches the canonical text of a structured Prolog error term. For
  /// statuses produced by library code (e.g. arithmetic) this is the ISO
  /// error payload such as "evaluation_error(zero_divisor)"; for statuses
  /// returned from Machine::Solve it is the complete thrown ball, e.g.
  /// "error(type_error(evaluable, foo/1), is/2)".
  Status&& WithErrorTerm(std::string term) && {
    error_term_ = std::move(term);
    return std::move(*this);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Canonical text of the associated Prolog error term, or "" if the
  /// failure has no structured representation (internal errors, parse
  /// errors, ...). See WithErrorTerm.
  const std::string& error_term() const { return error_term_; }
  bool has_error_term() const { return !error_term_.empty(); }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  std::string error_term_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define PRORE_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::prore::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace prore

#endif  // PRORE_COMMON_STATUS_H_
