#include "common/cancellation.h"

#include <limits>
#include <thread>

namespace prore {

int64_t Deadline::RemainingMs() const {
  if (!has_) return std::numeric_limits<int64_t>::max();
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      tp_ - Clock::now());
  return left.count() < 0 ? 0 : left.count();
}

Deadline Deadline::Earlier(const Deadline& a, const Deadline& b) {
  if (a.infinite()) return b;
  if (b.infinite()) return a;
  return a.tp_ <= b.tp_ ? a : b;
}

std::string CancellationToken::reason() const {
  if (node_ == nullptr) return "";
  std::lock_guard<std::mutex> lock(node_->mu);
  return node_->reason;
}

bool CancellationToken::WaitForMs(uint64_t ms) const {
  if (node_ == nullptr) {
    // Nothing can interrupt a null token; plain bounded sleep.
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return false;
  }
  std::unique_lock<std::mutex> lock(node_->mu);
  node_->cv.wait_for(lock, std::chrono::milliseconds(ms), [&] {
    return node_->cancelled.load(std::memory_order_acquire);
  });
  return node_->cancelled.load(std::memory_order_acquire);
}

CancellationSource::CancellationSource()
    : node_(std::make_shared<internal::CancelNode>()) {}

CancellationSource::CancellationSource(const CancellationToken& parent)
    : node_(std::make_shared<internal::CancelNode>()) {
  if (parent.node_ == nullptr) return;
  std::lock_guard<std::mutex> lock(parent.node_->mu);
  if (parent.node_->cancelled.load(std::memory_order_acquire)) {
    node_->reason = parent.node_->reason;
    node_->cancelled.store(true, std::memory_order_release);
    return;
  }
  parent.node_->children.emplace_back(node_);
}

void CancellationSource::RequestCancel(std::string reason) {
  // Collect children under the lock, cancel them outside it: child
  // registration takes the parent lock, so recursing while holding it
  // would order parent->child locks against child->parent registration.
  std::vector<std::weak_ptr<internal::CancelNode>> children;
  {
    std::lock_guard<std::mutex> lock(node_->mu);
    if (node_->cancelled.load(std::memory_order_acquire)) return;
    node_->reason = std::move(reason);
    node_->cancelled.store(true, std::memory_order_release);
    children.swap(node_->children);
    node_->cv.notify_all();
  }
  for (auto& weak : children) {
    if (auto child = weak.lock()) {
      CancellationSource child_source;
      child_source.node_ = std::move(child);
      std::string why;
      {
        std::lock_guard<std::mutex> lock(node_->mu);
        why = node_->reason;
      }
      child_source.RequestCancel(why);
    }
  }
}

Status ExecContext::Check() const {
  if (token.Cancelled()) {
    std::string why = token.reason();
    return Status::Cancelled(why.empty() ? "canceled" : why)
        .WithErrorTerm("canceled");
  }
  if (deadline.Expired()) {
    return Status::ResourceExhausted("deadline exceeded")
        .WithErrorTerm("resource_error(deadline_exceeded)");
  }
  return Status::OK();
}

}  // namespace prore
