#ifndef PRORE_COMMON_JSON_H_
#define PRORE_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace prore {

/// A deliberately small JSON value for the prored wire protocol: parse
/// whole frames from untrusted peers without ever throwing or recursing
/// unboundedly, and dump replies with a stable field order (objects keep
/// insertion order — byte-stable replies are part of the cache
/// bit-identity contract).
///
/// Scope: UTF-8 passthrough (no validation beyond \uXXXX escapes, which
/// are decoded to UTF-8), numbers as double (wire values are counts and
/// millisecond budgets, all well inside the 2^53 exact-integer range),
/// bounded nesting depth, duplicate keys kept (first wins on lookup).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double n) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = n;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<Member>& members() const { return members_; }

  void push_back(JsonValue v) { array_.push_back(std::move(v)); }
  /// Appends; does not replace an existing key (Find returns the first).
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// First member named `key`, or null. Valid only while this value lives.
  const JsonValue* Find(std::string_view key) const;

  // Typed lookups with defaults, for tolerant request decoding.
  std::string GetString(std::string_view key,
                        std::string default_value = "") const;
  double GetNumber(std::string_view key, double default_value = 0) const;
  bool GetBool(std::string_view key, bool default_value = false) const;

  /// Parses one complete JSON document (trailing garbage is an error).
  /// `max_depth` bounds array/object nesting — the parser is iterative on
  /// input but recursive on structure, so depth is the resource to cap.
  static prore::Result<JsonValue> Parse(std::string_view text,
                                        size_t max_depth = 64);

  /// Compact rendering (no whitespace), members in insertion order.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

/// Escapes `s` as a JSON string literal (with quotes) into `out`.
void AppendJsonEscaped(std::string* out, std::string_view s);

}  // namespace prore

#endif  // PRORE_COMMON_JSON_H_
