#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace prore {

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kNone: return "none";
    case FaultClass::kTransient: return "transient";
    case FaultClass::kDeterministic: return "deterministic";
    case FaultClass::kCancelled: return "canceled";
  }
  return "unknown";
}

FaultClass ClassifyFaultStatus(const Status& status) {
  if (status.ok()) return FaultClass::kNone;
  switch (status.code()) {
    case StatusCode::kCancelled:
      return FaultClass::kCancelled;
    case StatusCode::kResourceExhausted:
      // Watchdog trips, deadline expiry, heap/alloc exhaustion: all
      // timing- or load-dependent, all worth one retry.
      return FaultClass::kTransient;
    default:
      return FaultClass::kDeterministic;
  }
}

uint64_t BackoffPolicy::DelayForAttemptMs(int attempt) const {
  if (attempt <= 0) return 0;
  double delay = static_cast<double>(initial_delay_ms) *
                 std::pow(multiplier, attempt - 1);
  double cap = static_cast<double>(max_delay_ms);
  return static_cast<uint64_t>(std::min(delay, cap));
}

Status BackoffSleep(const BackoffPolicy& policy, int attempt,
                    const ExecContext& ctx) {
  PRORE_RETURN_IF_ERROR(ctx.Check());
  uint64_t total = policy.DelayForAttemptMs(attempt);
  // Chunk the sleep so a finite deadline with no cancel token still
  // interrupts promptly (WaitForMs only watches the token).
  while (total > 0) {
    uint64_t chunk = std::min<uint64_t>(total, 10);
    if (ctx.token.WaitForMs(chunk)) return ctx.Check();
    PRORE_RETURN_IF_ERROR(ctx.Check());
    total -= chunk;
  }
  return Status::OK();
}

}  // namespace prore
