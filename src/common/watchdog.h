#ifndef PRORE_COMMON_WATCHDOG_H_
#define PRORE_COMMON_WATCHDOG_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/cancellation.h"
#include "common/status.h"

namespace prore {

/// Budget for a fixpoint analysis (mode inference, cost-model evaluation,
/// alias resolution, ...). Zero means "unlimited" for either axis, so a
/// default-constructed budget is a no-op watchdog.
struct WatchdogBudget {
  uint64_t max_steps = 0;   ///< Abstract work units (0 = unlimited).
  uint64_t timeout_ms = 0;  ///< Wall-clock deadline (0 = unlimited).

  bool enabled() const { return max_steps != 0 || timeout_ms != 0; }
};

/// Step/wall-clock guard for analyses that iterate to fixpoint. The owner
/// calls Step() once per unit of work; when the budget is exceeded the
/// watchdog trips and every subsequent Step() cheaply returns the same
/// kResourceExhausted status, carrying a `resource_error(...)` term in the
/// vocabulary of the engine's budget errors so callers can surface it the
/// same way (catchable, exit code 4, ...).
///
/// The wall budget is a Deadline (always steady_clock), and an armed
/// watchdog also observes its ExecContext: cancellation is checked on
/// every Step (one atomic load) and the context deadline on the clock
/// stride — so every analysis that already steps a watchdog is
/// automatically cancellable with no extra plumbing. Context trips keep
/// their own identities (`canceled`, `resource_error(deadline_exceeded)`)
/// distinct from budget trips (`resource_error(watchdog(what))`).
///
/// The wall clock is only sampled every kClockStride steps to keep Step()
/// cheap on the hot path.
class Watchdog {
 public:
  Watchdog() = default;
  Watchdog(WatchdogBudget budget, std::string what) {
    Arm(budget, std::move(what));
  }

  /// (Re)arms the watchdog: resets the step counter and the wall clock.
  /// `what` names the guarded analysis and appears in the error term,
  /// e.g. "mode_inference" -> resource_error(watchdog(mode_inference)).
  /// `ctx` scopes the guarded work: its token/deadline trip the watchdog
  /// even when the budget itself is unlimited.
  void Arm(WatchdogBudget budget, std::string what, ExecContext ctx = {});

  /// Records `n` units of work. Returns OK while within budget; once the
  /// budget is exceeded, returns (and keeps returning) the trip status.
  Status Step(uint64_t n = 1);

  /// OK while within budget, otherwise the trip status. Does not advance.
  Status Check() const { return trip_status_; }

  bool tripped() const { return !trip_status_.ok(); }
  uint64_t steps() const { return steps_; }
  const WatchdogBudget& budget() const { return budget_; }
  const ExecContext& context() const { return ctx_; }

 private:
  static constexpr uint64_t kClockStride = 1024;

  Status TripBudgetWall(int64_t elapsed_ms);

  WatchdogBudget budget_;
  ExecContext ctx_;
  std::string what_ = "analysis";
  uint64_t steps_ = 0;
  uint64_t next_clock_check_ = kClockStride;
  Status trip_status_;  ///< OK until tripped; then returned forever.
  Deadline wall_;       ///< Budget timeout as a monotonic deadline.
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace prore

#endif  // PRORE_COMMON_WATCHDOG_H_
