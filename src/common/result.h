#ifndef PRORE_COMMON_RESULT_H_
#define PRORE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace prore {

/// Either a value of type T or a failure Status. Analogous to
/// arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<Program> r = Parse(text);
///   if (!r.ok()) return r.status();
///   Program p = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Success. Implicit so `return value;` works.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Failure. Implicit so `return Status::...;` works. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ engaged.
  std::optional<T> value_;
};

/// Unwraps a Result into `lhs`, propagating failure.
#define PRORE_ASSIGN_OR_RETURN(lhs, expr)            \
  auto PRORE_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!PRORE_CONCAT_(_res_, __LINE__).ok())          \
    return PRORE_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(PRORE_CONCAT_(_res_, __LINE__)).value()

#define PRORE_CONCAT_(a, b) PRORE_CONCAT_IMPL_(a, b)
#define PRORE_CONCAT_IMPL_(a, b) a##b

}  // namespace prore

#endif  // PRORE_COMMON_RESULT_H_
