#ifndef PRORE_COMMON_STR_UTIL_H_
#define PRORE_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace prore {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace prore

#endif  // PRORE_COMMON_STR_UTIL_H_
