#ifndef PRORE_COMMON_CANCELLATION_H_
#define PRORE_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace prore {

/// A point on the monotonic clock by which some piece of work must finish.
/// Value type: copy freely, compose with Earlier(). A default-constructed
/// Deadline is infinite (never expires), so threading one through code that
/// was previously unbudgeted costs a single branch.
///
/// Always steady_clock: deadlines must survive NTP adjustments and
/// suspend/resume wall-clock jumps (the Watchdog shares this type for the
/// same reason).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< infinite

  static Deadline Infinite() { return Deadline(); }
  /// Expires `ms` milliseconds from now. AfterMs(0) is already expired —
  /// useful as a deterministic "trip at first check" injection — NOT
  /// unlimited; use Infinite() for that.
  static Deadline AfterMs(uint64_t ms) {
    return At(Clock::now() + std::chrono::milliseconds(ms));
  }
  static Deadline At(Clock::time_point tp) {
    Deadline d;
    d.has_ = true;
    d.tp_ = tp;
    return d;
  }

  bool infinite() const { return !has_; }
  bool Expired() const { return has_ && Clock::now() >= tp_; }
  /// Milliseconds until expiry: 0 when expired, INT64_MAX when infinite.
  int64_t RemainingMs() const;
  /// The time point; only meaningful when !infinite().
  Clock::time_point time_point() const { return tp_; }

  /// The sooner of the two (either may be infinite).
  static Deadline Earlier(const Deadline& a, const Deadline& b);

 private:
  bool has_ = false;
  Clock::time_point tp_{};
};

namespace internal {
/// Shared state of one cancellation scope. The flag is the only thing hot
/// paths touch (one acquire load); reason, children and the waiter CV live
/// behind the mutex and are only used at cancel/registration time.
struct CancelNode {
  std::atomic<bool> cancelled{false};
  std::mutex mu;
  std::condition_variable cv;
  std::string reason;
  std::vector<std::weak_ptr<CancelNode>> children;
};
}  // namespace internal

/// Read side of a cancellation scope. Null tokens (default-constructed)
/// can never be cancelled and cost one pointer test to check. Tokens are
/// cheap to copy (one shared_ptr) and safe to read from any thread.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// False for the null token: no source can ever cancel it.
  bool CanBeCancelled() const { return node_ != nullptr; }

  bool Cancelled() const {
    return node_ != nullptr &&
           node_->cancelled.load(std::memory_order_acquire);
  }

  /// The reason passed to RequestCancel; "" while not cancelled.
  std::string reason() const;

  /// Blocks up to `ms` milliseconds or until cancelled, whichever is
  /// first. Returns true if the token is cancelled (interruptible sleep —
  /// retry backoff uses this so a cancelled pipeline never sits in a
  /// sleep it no longer needs).
  bool WaitForMs(uint64_t ms) const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<internal::CancelNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::CancelNode> node_;
};

/// Write side of a cancellation scope, and the root of the hierarchy:
/// a source constructed from a parent token is cancelled automatically
/// when the parent is (parent -> child propagation, never child ->
/// parent). Thread-safe; RequestCancel is idempotent and the first call
/// wins the reason.
class CancellationSource {
 public:
  /// A fresh root scope.
  CancellationSource();
  /// A child scope: cancelled immediately if `parent` already is,
  /// otherwise registered for propagation. A null parent token yields an
  /// independent root.
  explicit CancellationSource(const CancellationToken& parent);

  void RequestCancel(std::string reason = "canceled");
  bool Cancelled() const { return token().Cancelled(); }
  CancellationToken token() const { return CancellationToken(node_); }

 private:
  std::shared_ptr<internal::CancelNode> node_;
};

/// The execution context threaded through every cancellable layer: engine
/// solve loop, absint/mode-inference/cost-model watchdogs, GuardedPipeline
/// stages, and thread-pool workers. Value type — copying shares the same
/// cancellation scope. A default ExecContext is inert (null token,
/// infinite deadline) and costs one branch at each check point.
struct ExecContext {
  CancellationToken token;
  Deadline deadline;

  /// True when checking can ever fail (non-null token or finite deadline).
  bool active() const {
    return token.CanBeCancelled() || !deadline.infinite();
  }

  /// OK, or the failure this context has reached:
  ///  - cancelled      -> kCancelled, error term `canceled`
  ///  - past deadline  -> kResourceExhausted,
  ///                      error term `resource_error(deadline_exceeded)`
  /// Cancellation wins when both hold (it is the more deliberate signal).
  Status Check() const;

  /// This context with the sooner of the two deadlines.
  ExecContext WithDeadline(const Deadline& d) const {
    ExecContext out = *this;
    out.deadline = Deadline::Earlier(deadline, d);
    return out;
  }
  ExecContext WithToken(const CancellationToken& t) const {
    ExecContext out = *this;
    out.token = t;
    return out;
  }
};

}  // namespace prore

#endif  // PRORE_COMMON_CANCELLATION_H_
