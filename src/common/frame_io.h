#ifndef PRORE_COMMON_FRAME_IO_H_
#define PRORE_COMMON_FRAME_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/cancellation.h"
#include "common/status.h"

namespace prore {

/// Length-prefixed framing over a socket/pipe fd: every frame is a 4-byte
/// big-endian payload length followed by the payload bytes. The reader is
/// defensive by construction — it is the first thing an untrusted peer
/// talks to, so every way a frame can go wrong maps to a distinct event
/// the caller can act on without the process ever seeing a torn buffer:
///
///  - kEof        clean close at a frame boundary (normal connection end)
///  - kTruncated  close mid-prefix or mid-payload (peer died or lied)
///  - kOversized  declared length exceeds max_frame_bytes; nothing past the
///                prefix is read, so the caller can reply and close without
///                buffering an attacker-chosen allocation
///  - kTimeout    first-byte (idle) or whole-frame (slowloris) budget hit
///  - kCancelled  the CancellationToken fired mid-read
///  - kError      errno-level failure (reset, bad fd)
///
/// All waiting is poll()-based in short slices so a cancellation fires
/// within ~50ms even with no fd activity, and the fd never needs to be
/// non-blocking for reads to honor deadlines.
struct FrameIoOptions {
  /// Hard cap on a single frame's payload. Oversized declarations are
  /// rejected before any payload byte is read.
  size_t max_frame_bytes = 8u << 20;
  /// How long to wait for the first byte of the next frame (connection
  /// idle timeout); 0 = forever (until cancel/EOF).
  uint64_t idle_timeout_ms = 0;
  /// Budget for the remainder of a frame once its first byte arrived —
  /// the slowloss/slowloris bound. 0 = unlimited.
  uint64_t frame_timeout_ms = 0;
  CancellationToken cancel;
};

enum class FrameEvent {
  kFrame,      ///< payload holds one complete frame
  kEof,        ///< clean close at a frame boundary
  kTruncated,  ///< close inside a frame
  kOversized,  ///< declared length > max_frame_bytes
  kTimeout,    ///< idle or per-frame deadline hit
  kCancelled,  ///< options.cancel fired
  kError,      ///< errno-level read failure (detail has strerror)
};

/// Stable lowercase name, e.g. "oversized".
const char* FrameEventName(FrameEvent event);

struct FrameReadResult {
  FrameEvent event = FrameEvent::kError;
  std::string payload;  ///< kFrame only
  std::string detail;   ///< diagnostic text for the failure events
};

/// Reads one frame. Never throws; never reads past the end of the frame
/// it returns (kOversized additionally stops right after the prefix).
FrameReadResult ReadFrame(int fd, const FrameIoOptions& options);

/// Writes one frame (prefix + payload), handling partial writes. SIGPIPE
/// is suppressed (MSG_NOSIGNAL; plain write() for non-socket fds). A
/// non-OK status means the connection is unusable: kCancelled (token
/// fired), kResourceExhausted (frame_timeout_ms spent mid-write), or
/// kInternal (peer reset / errno failure).
Status WriteFrame(int fd, std::string_view payload,
                  const FrameIoOptions& options);

}  // namespace prore

#endif  // PRORE_COMMON_FRAME_IO_H_
