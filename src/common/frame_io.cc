#include "common/frame_io.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/str_util.h"

namespace prore {

namespace {

using Clock = std::chrono::steady_clock;

/// Cancellation is checked between poll slices, so a wait never sleeps
/// longer than this without looking at the token.
constexpr uint64_t kPollSliceMs = 50;

/// Milliseconds until `deadline`, clamped to [0, slice]. INT64_MAX acts as
/// "no deadline".
int SliceMs(Clock::time_point deadline, bool has_deadline) {
  if (!has_deadline) return static_cast<int>(kPollSliceMs);
  auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                       deadline - Clock::now())
                       .count();
  if (remaining <= 0) return 0;
  return static_cast<int>(
      std::min<int64_t>(remaining, static_cast<int64_t>(kPollSliceMs)));
}

enum class WaitOutcome { kReady, kTimeout, kCancelled, kError };

/// Polls `fd` for `events` until ready, deadline, or cancellation.
WaitOutcome WaitFd(int fd, short events, Clock::time_point deadline,
                   bool has_deadline, const CancellationToken& cancel,
                   std::string* detail) {
  while (true) {
    if (cancel.Cancelled()) return WaitOutcome::kCancelled;
    if (has_deadline && Clock::now() >= deadline) return WaitOutcome::kTimeout;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, SliceMs(deadline, has_deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      *detail = ::strerror(errno);
      return WaitOutcome::kError;
    }
    if (rc == 0) continue;  // slice elapsed; re-check cancel/deadline
    // Readable/writable includes EOF and error conditions: let the actual
    // read()/send() discover which, so there is exactly one place that
    // interprets errno.
    return WaitOutcome::kReady;
  }
}

/// Reads exactly `len` bytes into `buf`. `got` reports progress on the
/// failure paths (0 got + EOF = clean close; >0 = truncation).
FrameEvent ReadExact(int fd, char* buf, size_t len, size_t* got,
                     Clock::time_point deadline, bool has_deadline,
                     const CancellationToken& cancel, std::string* detail) {
  *got = 0;
  while (*got < len) {
    std::string wait_detail;
    switch (WaitFd(fd, POLLIN, deadline, has_deadline, cancel, &wait_detail)) {
      case WaitOutcome::kReady:
        break;
      case WaitOutcome::kTimeout:
        return FrameEvent::kTimeout;
      case WaitOutcome::kCancelled:
        return FrameEvent::kCancelled;
      case WaitOutcome::kError:
        *detail = std::move(wait_detail);
        return FrameEvent::kError;
    }
    ssize_t n = ::read(fd, buf + *got, len - *got);
    if (n == 0) return *got == 0 ? FrameEvent::kEof : FrameEvent::kTruncated;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      *detail = ::strerror(errno);
      // A reset mid-frame is the network flavor of truncation.
      if (errno == ECONNRESET) {
        return *got == 0 ? FrameEvent::kEof : FrameEvent::kTruncated;
      }
      return FrameEvent::kError;
    }
    *got += static_cast<size_t>(n);
  }
  return FrameEvent::kFrame;
}

}  // namespace

const char* FrameEventName(FrameEvent event) {
  switch (event) {
    case FrameEvent::kFrame:
      return "frame";
    case FrameEvent::kEof:
      return "eof";
    case FrameEvent::kTruncated:
      return "truncated";
    case FrameEvent::kOversized:
      return "oversized";
    case FrameEvent::kTimeout:
      return "timeout";
    case FrameEvent::kCancelled:
      return "cancelled";
    case FrameEvent::kError:
      return "error";
  }
  return "unknown";
}

FrameReadResult ReadFrame(int fd, const FrameIoOptions& options) {
  FrameReadResult out;

  // Phase 1: the first prefix byte, under the idle budget.
  const bool has_idle = options.idle_timeout_ms != 0;
  Clock::time_point idle_deadline =
      Clock::now() + std::chrono::milliseconds(options.idle_timeout_ms);
  char prefix[4];
  size_t got = 0;
  FrameEvent ev = ReadExact(fd, prefix, 1, &got, idle_deadline, has_idle,
                            options.cancel, &out.detail);
  if (ev != FrameEvent::kFrame) {
    out.event = ev;
    return out;
  }

  // Phase 2: everything else, under the per-frame (slowloris) budget.
  const bool has_frame = options.frame_timeout_ms != 0;
  Clock::time_point frame_deadline =
      Clock::now() + std::chrono::milliseconds(options.frame_timeout_ms);
  ev = ReadExact(fd, prefix + 1, 3, &got, frame_deadline, has_frame,
                 options.cancel, &out.detail);
  if (ev != FrameEvent::kFrame) {
    // EOF with a partial prefix already consumed is a truncation.
    out.event = ev == FrameEvent::kEof ? FrameEvent::kTruncated : ev;
    return out;
  }

  uint64_t len = (static_cast<uint64_t>(static_cast<unsigned char>(prefix[0]))
                  << 24) |
                 (static_cast<uint64_t>(static_cast<unsigned char>(prefix[1]))
                  << 16) |
                 (static_cast<uint64_t>(static_cast<unsigned char>(prefix[2]))
                  << 8) |
                 static_cast<uint64_t>(static_cast<unsigned char>(prefix[3]));
  if (len > options.max_frame_bytes) {
    out.event = FrameEvent::kOversized;
    out.detail = StrFormat("declared %llu bytes, limit %zu",
                           static_cast<unsigned long long>(len),
                           options.max_frame_bytes);
    return out;
  }

  out.payload.resize(static_cast<size_t>(len));
  if (len > 0) {
    ev = ReadExact(fd, out.payload.data(), out.payload.size(), &got,
                   frame_deadline, has_frame, options.cancel, &out.detail);
    if (ev != FrameEvent::kFrame) {
      out.payload.clear();
      out.event = ev == FrameEvent::kEof ? FrameEvent::kTruncated : ev;
      return out;
    }
  }
  out.event = FrameEvent::kFrame;
  return out;
}

Status WriteFrame(int fd, std::string_view payload,
                  const FrameIoOptions& options) {
  if (payload.size() > options.max_frame_bytes) {
    return Status::InvalidArgument(
        StrFormat("frame payload %zu exceeds limit %zu", payload.size(),
                  options.max_frame_bytes));
  }
  char prefix[4];
  prefix[0] = static_cast<char>((payload.size() >> 24) & 0xff);
  prefix[1] = static_cast<char>((payload.size() >> 16) & 0xff);
  prefix[2] = static_cast<char>((payload.size() >> 8) & 0xff);
  prefix[3] = static_cast<char>(payload.size() & 0xff);

  const bool has_deadline = options.frame_timeout_ms != 0;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options.frame_timeout_ms);

  auto write_all = [&](const char* buf, size_t len) -> Status {
    size_t sent = 0;
    while (sent < len) {
      std::string detail;
      switch (WaitFd(fd, POLLOUT, deadline, has_deadline, options.cancel,
                     &detail)) {
        case WaitOutcome::kReady:
          break;
        case WaitOutcome::kTimeout:
          return Status::ResourceExhausted("frame write timed out");
        case WaitOutcome::kCancelled:
          return Status::Cancelled("frame write cancelled");
        case WaitOutcome::kError:
          return Status::Internal("frame write poll: " + detail);
      }
      // send() lets us suppress SIGPIPE per call; fall back to write() for
      // non-socket fds (pipes in tests).
      ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) n = ::write(fd, buf + sent, len - sent);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return Status::Internal(StrFormat("frame write: %s",
                                          ::strerror(errno)));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  };

  PRORE_RETURN_IF_ERROR(write_all(prefix, 4));
  return write_all(payload.data(), payload.size());
}

}  // namespace prore
