#include "common/watchdog.h"

#include "common/str_util.h"

namespace prore {

void Watchdog::Arm(WatchdogBudget budget, std::string what, ExecContext ctx) {
  budget_ = budget;
  ctx_ = std::move(ctx);
  what_ = std::move(what);
  steps_ = 0;
  next_clock_check_ = kClockStride;
  trip_status_ = Status::OK();
  start_ = std::chrono::steady_clock::now();
  wall_ = budget_.timeout_ms != 0 ? Deadline::AfterMs(budget_.timeout_ms)
                                  : Deadline::Infinite();
}

Status Watchdog::Step(uint64_t n) {
  if (!trip_status_.ok()) return trip_status_;
  if (!budget_.enabled() && !ctx_.active()) return Status::OK();
  // Cancellation is one acquire load; check it on every step so a cancel
  // lands within one transfer of work, not one clock stride.
  if (ctx_.token.Cancelled()) {
    std::string why = ctx_.token.reason();
    trip_status_ =
        Status::Cancelled(StrFormat("watchdog: %s canceled: %s",
                                    what_.c_str(), why.c_str()))
            .WithErrorTerm("canceled");
    return trip_status_;
  }
  steps_ += n;
  if (budget_.max_steps != 0 && steps_ > budget_.max_steps) {
    trip_status_ =
        Status::ResourceExhausted(
            StrFormat("watchdog: %s exceeded %llu steps (budget %llu)",
                      what_.c_str(),
                      static_cast<unsigned long long>(steps_),
                      static_cast<unsigned long long>(budget_.max_steps)))
            .WithErrorTerm(StrFormat("resource_error(watchdog(%s))",
                                     what_.c_str()));
    return trip_status_;
  }
  if ((!wall_.infinite() || !ctx_.deadline.infinite()) &&
      steps_ >= next_clock_check_) {
    next_clock_check_ = steps_ + kClockStride;
    if (wall_.Expired()) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start_)
              .count();
      return TripBudgetWall(elapsed);
    }
    if (ctx_.deadline.Expired()) {
      trip_status_ =
          Status::ResourceExhausted(
              StrFormat("watchdog: %s hit execution deadline",
                        what_.c_str()))
              .WithErrorTerm("resource_error(deadline_exceeded)");
      return trip_status_;
    }
  }
  return Status::OK();
}

Status Watchdog::TripBudgetWall(int64_t elapsed_ms) {
  trip_status_ =
      Status::ResourceExhausted(
          StrFormat("watchdog: %s exceeded %lld ms (budget %llu ms)",
                    what_.c_str(), static_cast<long long>(elapsed_ms),
                    static_cast<unsigned long long>(budget_.timeout_ms)))
          .WithErrorTerm(
              StrFormat("resource_error(watchdog(%s))", what_.c_str()));
  return trip_status_;
}

}  // namespace prore
