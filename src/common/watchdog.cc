#include "common/watchdog.h"

#include "common/str_util.h"

namespace prore {

void Watchdog::Arm(WatchdogBudget budget, std::string what) {
  budget_ = budget;
  what_ = std::move(what);
  steps_ = 0;
  next_clock_check_ = kClockStride;
  tripped_ = false;
  trip_reason_.clear();
  if (budget_.timeout_ms != 0) start_ = std::chrono::steady_clock::now();
}

Status Watchdog::Step(uint64_t n) {
  if (tripped_) return Trip();
  if (!budget_.enabled()) return Status::OK();
  steps_ += n;
  if (budget_.max_steps != 0 && steps_ > budget_.max_steps) {
    tripped_ = true;
    trip_reason_ = StrFormat("%llu steps (budget %llu)",
                             static_cast<unsigned long long>(steps_),
                             static_cast<unsigned long long>(
                                 budget_.max_steps));
    return Trip();
  }
  if (budget_.timeout_ms != 0 && steps_ >= next_clock_check_) {
    next_clock_check_ = steps_ + kClockStride;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    if (static_cast<uint64_t>(elapsed) > budget_.timeout_ms) {
      tripped_ = true;
      trip_reason_ = StrFormat("%lld ms (budget %llu ms)",
                               static_cast<long long>(elapsed),
                               static_cast<unsigned long long>(
                                   budget_.timeout_ms));
      return Trip();
    }
  }
  return Status::OK();
}

Status Watchdog::Trip() const {
  return Status::ResourceExhausted(
             StrFormat("watchdog: %s exceeded %s", what_.c_str(),
                       trip_reason_.c_str()))
      .WithErrorTerm(StrFormat("resource_error(watchdog(%s))",
                               what_.c_str()));
}

}  // namespace prore
