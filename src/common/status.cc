#include "common/status.h"

namespace prore {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kInstantiationError:
      return "InstantiationError";
    case StatusCode::kExistenceError:
      return "ExistenceError";
    case StatusCode::kModeError:
      return "ModeError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kEvaluationError:
      return "EvaluationError";
    case StatusCode::kPrologThrow:
      return "PrologThrow";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace prore
