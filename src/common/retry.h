#ifndef PRORE_COMMON_RETRY_H_
#define PRORE_COMMON_RETRY_H_

#include <cstdint>

#include "common/cancellation.h"
#include "common/status.h"

namespace prore {

/// How a fault boundary should react to a failure. The pipeline retries
/// only kTransient faults: a watchdog trip or deadline brush may have been
/// caused by scheduling noise or a contended sibling shard, so one bounded
/// retry is cheap insurance before demoting the predicate a ladder rung.
/// Deterministic faults (validator findings, crashes, internal errors)
/// would fail identically on retry, and cancellation must never be
/// retried at all.
enum class FaultClass : uint8_t {
  kNone = 0,          ///< no fault
  kTransient,         ///< timing-dependent: watchdog, deadline, OOM
  kDeterministic,     ///< input-dependent: validator, crash, bad status
  kCancelled,         ///< cooperative cancellation: propagate, never retry
};

const char* FaultClassName(FaultClass c);

/// Classify a non-ok Status from a pipeline stage / fault boundary.
FaultClass ClassifyFaultStatus(const Status& status);

/// Bounded exponential backoff between retries. Defaults are deliberately
/// tiny: the pipeline runs inline in CLIs and tests, so the worst added
/// latency per predicate is max_retries * max_delay_ms.
struct BackoffPolicy {
  int max_retries = 1;
  uint64_t initial_delay_ms = 1;
  double multiplier = 2.0;
  uint64_t max_delay_ms = 50;

  /// Delay before retry `attempt` (1-based), clamped to max_delay_ms.
  uint64_t DelayForAttemptMs(int attempt) const;
};

/// User-facing retry configuration: the total attempt budget and the
/// backoff bounds, threaded from the CLIs (`--retry-attempts=N` on prore
/// and prored) through PipelineOptions down to the per-predicate fault
/// boundary. `max_attempts` counts the first try, so 1 disables retries
/// entirely and 2 is the historical "one retry" behavior. Delays grow
/// exponentially (x2) from base_ms, clamped to max_ms.
struct RetryPolicy {
  int max_attempts = 2;
  uint64_t base_ms = 1;
  uint64_t max_ms = 50;

  bool enabled() const { return max_attempts > 1; }
  /// Retries on top of the first attempt (never negative).
  int max_retries() const { return max_attempts > 1 ? max_attempts - 1 : 0; }
  BackoffPolicy ToBackoff() const {
    return BackoffPolicy{max_retries(), base_ms, 2.0, max_ms};
  }
};

/// Sleeps for the attempt's backoff delay, interruptibly: returns early
/// (with the context's failure status) if the token is cancelled or the
/// deadline expires first — a cancelled pipeline must not sit in a sleep
/// it no longer needs. Returns OK when the full delay elapsed.
Status BackoffSleep(const BackoffPolicy& policy, int attempt,
                    const ExecContext& ctx);

}  // namespace prore

#endif  // PRORE_COMMON_RETRY_H_
