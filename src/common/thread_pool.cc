#include "common/thread_pool.h"

#include <utility>

namespace prore {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

size_t ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace prore
