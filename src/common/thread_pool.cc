#include "common/thread_pool.h"

#include <cstdio>
#include <utility>

namespace prore {

ThreadPool::ThreadPool(size_t num_threads, CancellationToken cancel)
    : cancel_(std::move(cancel)) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (cancel_.Cancelled()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++cancelled_tasks_;
    return;
  }
  if (threads_.empty()) {
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seq = next_seq_++;
    }
    RunTask(Task{seq, std::move(task)});
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{next_seq_++, std::move(task)});
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!threads_.empty()) {
      idle_cv_.wait(lock,
                    [this] { return queue_.empty() && in_flight_ == 0; });
    }
    // Consume the error state so the pool is reusable after the throw;
    // suppressed-exception counts survive for inspection until the next
    // failure cycle begins.
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

size_t ThreadPool::CancelPending() {
  size_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped = queue_.size();
    queue_.clear();
    cancelled_tasks_ += dropped;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  return dropped;
}

size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ThreadPool::cancelled_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_tasks_;
}

size_t ThreadPool::suppressed_exceptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_exceptions_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      if (cancel_.Cancelled()) {
        // Popped after cancellation: drop without running, like
        // CancelPending would have.
        ++cancelled_tasks_;
        if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
        continue;
      }
      ++in_flight_;
    }
    RunTask(std::move(task));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::RunTask(Task task) {
  try {
    task.fn();
  } catch (...) {
    RecordError(task.seq, std::current_exception());
  }
}

void ThreadPool::RecordError(uint64_t seq, std::exception_ptr error) {
  std::exception_ptr loser;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_ == nullptr) {
      first_error_ = std::move(error);
      first_error_seq_ = seq;
      return;
    }
    // Deterministic winner: the earliest-submitted task's exception is
    // the one Wait() rethrows regardless of completion order.
    if (seq < first_error_seq_) {
      loser = std::exchange(first_error_, std::move(error));
      first_error_seq_ = seq;
    } else {
      loser = std::move(error);
    }
    ++suppressed_exceptions_;
  }
  try {
    std::rethrow_exception(loser);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prore: thread_pool: suppressed task exception: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr,
                 "prore: thread_pool: suppressed non-std task exception\n");
  }
}

}  // namespace prore
