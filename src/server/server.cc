#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "analysis/content_hash.h"
#include "common/str_util.h"
#include "lint/lint.h"
#include "reader/parser.h"
#include "reader/writer.h"

namespace prore::server {

namespace {

/// Wire status for a failed Status: the coarse taxonomy clients branch on.
const char* WireStatus(const prore::Status& st) {
  switch (st.code()) {
    case prore::StatusCode::kOk:
      return "ok";
    case prore::StatusCode::kCancelled:
      return "canceled";
    case prore::StatusCode::kParseError:
      return "parse_error";
    case prore::StatusCode::kInvalidArgument:
      return "bad_request";
    case prore::StatusCode::kResourceExhausted:
      // The engine's uncaught-ball term is the whole rendered exception,
      // error(resource_error(deadline_exceeded),deadline) — match the
      // payload inside it, not the exact string.
      return st.error_term().find("resource_error(deadline_exceeded)") !=
                     std::string::npos
                 ? "deadline_exceeded"
                 : "resource_exhausted";
    default:
      return "internal_error";
  }
}

/// Reply envelope: echoes the request's id (verbatim) and op so clients
/// can correlate replies on a pipelined connection.
JsonValue MakeReply(const JsonValue& req, const char* status) {
  JsonValue r = JsonValue::Object();
  const JsonValue* id = req.Find("id");
  if (id != nullptr) r.Set("id", *id);
  std::string op = req.GetString("op");
  if (!op.empty()) r.Set("op", JsonValue::String(std::move(op)));
  r.Set("status", JsonValue::String(status));
  return r;
}

JsonValue ErrorReply(const JsonValue& req, const char* status,
                     std::string message) {
  JsonValue r = MakeReply(req, status);
  r.Set("error", JsonValue::String(std::move(message)));
  return r;
}

JsonValue StatusReply(const JsonValue& req, const prore::Status& st) {
  return ErrorReply(req, WireStatus(st), st.ToString());
}

/// Clamps a JSON number to a uint64 budget; non-numbers and negatives
/// yield `fallback`.
uint64_t BudgetField(const JsonValue& req, std::string_view key,
                     uint64_t fallback) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr || !v->is_number() || v->number_value() < 0) {
    return fallback;
  }
  return static_cast<uint64_t>(v->number_value());
}

/// Request budgets only tighten server budgets (0 = server default).
uint64_t TightenBudget(uint64_t server, uint64_t request) {
  if (request == 0) return server;
  if (server == 0) return request;
  return std::min(server, request);
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_entries) {}

Server::~Server() {
  if (started_.load()) {
    Shutdown("server destroyed");
    Wait();
  }
  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
}

prore::Status Server::Start() {
  if (options_.socket_path.empty() && options_.tcp_port < 0) {
    return prore::Status::InvalidArgument(
        "server needs a unix socket path or a TCP port");
  }
  if (::pipe(wake_pipe_) != 0) {
    return prore::Status::Internal(
        StrFormat("pipe: %s", ::strerror(errno)));
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  if (!options_.socket_path.empty()) {
    struct sockaddr_un addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return prore::Status::InvalidArgument(
          StrFormat("socket path too long (%zu bytes, max %zu)",
                    options_.socket_path.size(), sizeof(addr.sun_path) - 1));
    }
    ::memcpy(addr.sun_path, options_.socket_path.c_str(),
             options_.socket_path.size());
    listen_unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_unix_fd_ < 0) {
      return prore::Status::Internal(
          StrFormat("socket: %s", ::strerror(errno)));
    }
    // A previous run that died hard leaves its socket file behind; a
    // fresh bind is the recovery.
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_unix_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_unix_fd_, 128) != 0) {
      prore::Status st = prore::Status::Internal(StrFormat(
          "bind %s: %s", options_.socket_path.c_str(), ::strerror(errno)));
      CloseFd(&listen_unix_fd_);
      return st;
    }
  }

  if (options_.tcp_port >= 0) {
    listen_tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_tcp_fd_ < 0) {
      CloseFd(&listen_unix_fd_);
      return prore::Status::Internal(
          StrFormat("socket: %s", ::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(listen_tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_tcp_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_tcp_fd_, 128) != 0) {
      prore::Status st = prore::Status::Internal(
          StrFormat("bind 127.0.0.1:%d: %s", options_.tcp_port,
                    ::strerror(errno)));
      CloseFd(&listen_unix_fd_);
      CloseFd(&listen_tcp_fd_);
      return st;
    }
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_tcp_fd_,
                      reinterpret_cast<struct sockaddr*>(&bound),
                      &len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  // Null cancel token on purpose: a pool that drops queued tasks on
  // cancellation would strand the connection threads waiting on their
  // request latches. Instead every admitted task runs, immediately sees
  // its cancelled ExecContext, and returns a structured "canceled" reply.
  pool_ = std::make_unique<prore::ThreadPool>(options_.workers);
  started_.store(true);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return prore::Status::OK();
}

void Server::Shutdown(std::string reason) {
  bool expected = false;
  if (shutdown_.compare_exchange_strong(expected, true)) {
    root_cancel_.RequestCancel(std::move(reason));
  }
  NotifyShutdownAsync();
}

void Server::NotifyShutdownAsync() {
  shutdown_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    char b = 'x';
    // Best-effort, async-signal-safe; the pipe being full is fine (the
    // accept thread is already due to wake).
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  while (true) {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      threads.swap(conn_threads_);
    }
    if (threads.empty()) break;
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
  }
  if (pool_ != nullptr) pool_->Wait();
}

void Server::AcceptLoop() {
  while (!shutting_down()) {
    struct pollfd pfds[3];
    nfds_t n = 0;
    pfds[n].fd = wake_pipe_[0];
    pfds[n].events = POLLIN;
    pfds[n].revents = 0;
    ++n;
    int unix_slot = -1, tcp_slot = -1;
    if (listen_unix_fd_ >= 0) {
      unix_slot = static_cast<int>(n);
      pfds[n].fd = listen_unix_fd_;
      pfds[n].events = POLLIN;
      pfds[n].revents = 0;
      ++n;
    }
    if (listen_tcp_fd_ >= 0) {
      tcp_slot = static_cast<int>(n);
      pfds[n].fd = listen_tcp_fd_;
      pfds[n].events = POLLIN;
      pfds[n].revents = 0;
      ++n;
    }
    int rc = ::poll(pfds, n, 100);
    if (rc < 0 && errno != EINTR) break;
    if (shutting_down()) break;
    if (rc <= 0) continue;

    for (int slot : {unix_slot, tcp_slot}) {
      if (slot < 0 || (pfds[slot].revents & POLLIN) == 0) continue;
      int fd = ::accept4(pfds[slot].fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) continue;
      SetNonBlocking(fd);
      stat_connections_.fetch_add(1, std::memory_order_relaxed);
      if (active_conns_.load(std::memory_order_acquire) >=
          options_.max_connections) {
        // Over the connection cap: one structured frame, then close —
        // the client learns why instead of seeing a silent RST.
        FrameIoOptions io;
        io.frame_timeout_ms = 1000;
        JsonValue r = JsonValue::Object();
        r.Set("status", JsonValue::String("overloaded"));
        r.Set("error", JsonValue::String("connection limit reached"));
        (void)WriteFrame(fd, r.Dump(), io);
        ::close(fd);
        stat_shed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      active_conns_.fetch_add(1, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
    }
  }

  // Drain, phase 1: no new connections, no new cancellable work.
  if (!shutdown_.load()) shutdown_.store(true);
  root_cancel_.RequestCancel("server shutting down");
  CloseFd(&listen_unix_fd_);
  CloseFd(&listen_tcp_fd_);
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

void Server::HandleConnection(int fd) {
  FrameIoOptions io;
  io.max_frame_bytes = options_.max_frame_bytes;
  io.idle_timeout_ms = options_.idle_timeout_ms;
  io.frame_timeout_ms = options_.io_timeout_ms;
  io.cancel = root_cancel_.token();

  // Writes are time-bounded but NOT cancel-bounded: the drain contract is
  // that a reply in progress finishes its frame, and the reply carrying
  // "canceled" to the client necessarily happens after the root token has
  // fired. A stalled peer still can't wedge the drain — frame_timeout_ms
  // caps the write.
  FrameIoOptions write_io = io;
  write_io.cancel = CancellationToken();

  // One writer lock per connection: the connection thread writes final
  // replies, a worker thread streams solve answers — never interleaved
  // mid-frame.
  std::mutex write_mu;
  auto write_frame = [&](const std::string& payload) -> prore::Status {
    std::lock_guard<std::mutex> lock(write_mu);
    return WriteFrame(fd, payload, write_io);
  };
  auto best_effort_reply = [&](const char* status, const std::string& why) {
    JsonValue r = JsonValue::Object();
    r.Set("status", JsonValue::String(status));
    if (!why.empty()) r.Set("error", JsonValue::String(why));
    (void)write_frame(r.Dump());
  };

  bool open = true;
  while (open) {
    FrameReadResult frame = ReadFrame(fd, io);
    switch (frame.event) {
      case FrameEvent::kFrame: {
        stat_frames_.fetch_add(1, std::memory_order_relaxed);
        auto parsed = JsonValue::Parse(frame.payload);
        std::string reply;
        bool close_conn = false;
        if (!parsed.ok() || !parsed->is_object()) {
          // Framing is intact, so the connection can survive a bad
          // payload: structured error, keep reading.
          stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          JsonValue err = JsonValue::Object();
          err.Set("status", JsonValue::String("bad_request"));
          err.Set("error",
                  JsonValue::String(
                      parsed.ok() ? "request must be a JSON object"
                                  : parsed.status().ToString()));
          reply = err.Dump();
        } else {
          reply = HandleRequest(*parsed, write_frame, &close_conn);
        }
        if (!reply.empty() && !write_frame(reply).ok()) open = false;
        if (close_conn) open = false;
        break;
      }
      case FrameEvent::kEof:
        open = false;
        break;
      case FrameEvent::kOversized:
        // The declared payload was never read; resync is impossible.
        stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        best_effort_reply("bad_request", "oversized frame: " + frame.detail);
        open = false;
        break;
      case FrameEvent::kTruncated:
      case FrameEvent::kError:
        stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        open = false;
        break;
      case FrameEvent::kTimeout:
        // Idle or slowloris: tell the peer, then reclaim the thread.
        best_effort_reply("bad_request", "connection timed out");
        open = false;
        break;
      case FrameEvent::kCancelled:
        best_effort_reply("shutting_down", root_cancel_.token().reason());
        open = false;
        break;
    }
  }
  ::close(fd);
  active_conns_.fetch_sub(1, std::memory_order_acq_rel);
}

bool Server::AdmitAndRun(const std::function<void()>& work) {
  // Admission is a single fetch_add race: the queue bound counts running
  // plus waiting heavy requests. Over the line, the request is shed
  // before consuming a pool slot — predictable latency for the admitted.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_queue) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto latch = std::make_shared<Latch>();
  pool_->Submit([&work, latch] {
    work();
    std::lock_guard<std::mutex> lock(latch->mu);
    latch->done = true;
    latch->cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&latch] { return latch->done; });
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

std::string Server::HandleRequest(
    const JsonValue& req,
    const std::function<prore::Status(const std::string&)>& write_frame,
    bool* close_conn) {
  stat_requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string op = req.GetString("op");

  // Control-plane ops run inline on the connection thread so they keep
  // working when the worker pool is saturated — cancel in particular
  // exists to relieve overload, so it must not queue behind it.
  if (op == "ping") {
    stat_completed_.fetch_add(1, std::memory_order_relaxed);
    return MakeReply(req, "ok").Dump();
  }
  if (op == "stats") {
    stat_completed_.fetch_add(1, std::memory_order_relaxed);
    return DoStats(req).Dump();
  }
  if (op == "cancel") {
    stat_completed_.fetch_add(1, std::memory_order_relaxed);
    return DoCancel(req).Dump();
  }
  if (shutting_down()) {
    return ErrorReply(req, "shutting_down", root_cancel_.token().reason())
        .Dump();
  }
  if (op == "shutdown") {
    *close_conn = true;
    NotifyShutdownAsync();
    stat_completed_.fetch_add(1, std::memory_order_relaxed);
    return MakeReply(req, "ok").Dump();
  }
  if (op == "unload") {
    return DoUnload(req).Dump();
  }

  const bool heavy =
      op == "load" || op == "reorder" || op == "lint" || op == "solve";
  if (!heavy) {
    stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(req, "bad_request", "unknown op \"" + op + "\"").Dump();
  }

  // Per-request scope: child of the root (SIGTERM cancels everything),
  // plus the earliest-wins deadline of server default and client budget.
  auto req_cancel =
      std::make_shared<prore::CancellationSource>(root_cancel_.token());
  prore::ExecContext ctx;
  ctx.token = req_cancel->token();
  if (options_.default_deadline_ms != 0) {
    ctx.deadline = prore::Deadline::AfterMs(options_.default_deadline_ms);
  }
  uint64_t budget_ms = BudgetField(req, "budget_ms", 0);
  if (budget_ms != 0) {
    ctx = ctx.WithDeadline(prore::Deadline::AfterMs(budget_ms));
  }

  // Requests that carry an id are cancellable from any connection:
  // {"op":"cancel","target":<id>}. The id's rendered JSON is the key, so
  // string and numeric ids both work.
  std::string reg_key;
  if (const JsonValue* id = req.Find("id"); id != nullptr) {
    reg_key = id->Dump();
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_by_id_[reg_key] = req_cancel;
  }

  JsonValue reply;
  bool client_gone = false;
  const bool admitted = AdmitAndRun([&] {
    try {
      if (op == "load") {
        reply = DoLoad(req, ctx);
      } else if (op == "reorder") {
        reply = DoReorder(req, ctx);
      } else if (op == "lint") {
        reply = DoLint(req, ctx);
      } else {
        reply = DoSolve(req, ctx, write_frame, &client_gone);
      }
    } catch (const std::exception& e) {
      reply = ErrorReply(req, "internal_error",
                         StrFormat("uncaught exception: %s", e.what()));
    } catch (...) {
      reply = ErrorReply(req, "internal_error", "uncaught exception");
    }
  });

  if (!reg_key.empty()) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_by_id_.find(reg_key);
    if (it != inflight_by_id_.end() && it->second == req_cancel) {
      inflight_by_id_.erase(it);
    }
  }

  if (!admitted) {
    stat_shed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorReply(req, "overloaded",
                      StrFormat("admission queue full (%zu in flight)",
                                options_.max_queue))
        .Dump();
  }
  if (req_cancel->Cancelled()) {
    stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  stat_completed_.fetch_add(1, std::memory_order_relaxed);
  if (client_gone) {
    // The peer vanished mid-stream; there is nobody to reply to.
    *close_conn = true;
    return std::string();
  }
  return reply.Dump();
}

std::shared_ptr<Server::Session> Server::FindSession(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

JsonValue Server::DoLoad(const JsonValue& req, const prore::ExecContext& ctx) {
  if (prore::Status st = ctx.Check(); !st.ok()) return StatusReply(req, st);
  const JsonValue* program = req.Find("program");
  if (program == nullptr || !program->is_string()) {
    return ErrorReply(req, "bad_request", "load needs a \"program\" string");
  }
  const std::string session = req.GetString("session", "default");

  auto s = std::make_shared<Session>();
  s->source = program->string_value();
  try {
    term::TermStore store;
    store.SetCellLimit(options_.session_cell_limit);
    auto parsed = reader::ParseProgramText(&store, s->source);
    if (!parsed.ok()) return StatusReply(req, parsed.status());
    auto snapshot = engine::ProgramSnapshot::Compile(store, *parsed);
    if (!snapshot.ok()) return StatusReply(req, snapshot.status());
    s->snapshot = std::move(*snapshot);
    s->preds = parsed->NumPreds();
    s->clauses = parsed->NumClauses();
    if (const JsonValue* prof = req.Find("profile"); prof != nullptr) {
      if (!prof->is_string()) {
        return ErrorReply(req, "bad_request",
                          "\"profile\" must be a profile JSON string");
      }
      auto data = profile::FromJson(prof->string_value());
      if (!data.ok()) {
        return ErrorReply(req, "bad_request",
                          "profile: " + data.status().ToString());
      }
      // Request-supplied profiles are validated strictly: a profile that
      // names predicates this program lacks is a client mix-up worth a
      // hard error, not a silent fallback.
      if (prore::Status st =
              profile::ValidateAgainstProgram(store, *parsed, *data);
          !st.ok()) {
        return ErrorReply(req, "bad_request",
                          "profile: " + st.ToString());
      }
      s->profile =
          std::make_shared<const profile::ProfileData>(std::move(*data));
    } else if (options_.default_profile != nullptr) {
      s->profile = options_.default_profile;
    }
  } catch (const term::AllocError&) {
    return ErrorReply(
        req, "resource_exhausted",
        StrFormat("program exceeds the session cell limit (%zu cells)",
                  options_.session_cell_limit));
  }

  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end() &&
        sessions_.size() >= options_.max_sessions) {
      return ErrorReply(req, "resource_exhausted",
                        StrFormat("session limit reached (%zu)",
                                  options_.max_sessions));
    }
    sessions_[session] = std::move(s);
  }
  JsonValue r = MakeReply(req, "ok");
  r.Set("session", JsonValue::String(session));
  auto loaded = FindSession(session);
  r.Set("preds", JsonValue::Number(static_cast<double>(loaded->preds)));
  r.Set("clauses", JsonValue::Number(static_cast<double>(loaded->clauses)));
  r.Set("profile", JsonValue::Bool(loaded->profile != nullptr));
  return r;
}

JsonValue Server::DoUnload(const JsonValue& req) {
  const std::string session = req.GetString("session", "default");
  size_t erased;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    erased = sessions_.erase(session);
  }
  if (erased == 0) {
    return ErrorReply(req, "not_found",
                      "no session named \"" + session + "\"");
  }
  stat_completed_.fetch_add(1, std::memory_order_relaxed);
  return MakeReply(req, "ok");
}

JsonValue Server::DoReorder(const JsonValue& req,
                            const prore::ExecContext& ctx) {
  auto session = FindSession(req.GetString("session", "default"));
  if (session == nullptr) {
    return ErrorReply(req, "not_found",
                      "load a program into the session first");
  }

  core::PipelineOptions po = options_.pipeline;
  po.exec = ctx;
  po.unfold = req.GetBool("unfold", po.unfold);
  po.factor = req.GetBool("factor", po.factor);
  po.reorder.absint = req.GetBool("absint", po.reorder.absint);
  double jobs = req.GetNumber("jobs", static_cast<double>(
                                          po.jobs == 0 ? 1 : po.jobs));
  po.jobs = static_cast<size_t>(std::clamp(jobs, 0.0, 64.0));
  if (req.GetBool("cache", true)) {
    po.cache = &cache_;
    // Entries are only valid under the exact option set that produced
    // them; fingerprint everything that changes the transform's output.
    uint64_t salt = analysis::HashMix(0x70726f726564u, 1);  // format v1
    auto fold = [&salt](bool b) { salt = analysis::HashMix(salt, b); };
    fold(po.unfold);
    fold(po.factor);
    fold(po.reorder.absint);
    fold(po.reorder.specialize_modes);
    fold(po.reorder.reorder_clauses);
    fold(po.reorder.reorder_goals);
    fold(po.reorder.runtime_guards);
    fold(po.reorder.goal_search.warren_heuristic);
    // A profile changes the cost model's inputs, hence the output: cache
    // entries are only shareable between requests seeing the same profile
    // bytes (or none).
    if (session->profile != nullptr) {
      salt = analysis::HashMix(salt, profile::Fingerprint(*session->profile));
    }
    po.cache_salt = salt;
  }

  term::TermStore store;
  store.SetCellLimit(options_.session_cell_limit);
  try {
    auto program = reader::ParseProgramText(&store, session->source);
    if (!program.ok()) return StatusReply(req, program.status());
    // Symbols are per-store, so the empirical view must be rebuilt against
    // this request's fresh store; stale/under-sampled predicates fall back
    // to the static model inside BuildEmpirical.
    cost::EmpiricalProfile empirical;
    JsonValue profile_report;
    if (session->profile != nullptr) {
      auto applied = profile::BuildEmpirical(&store, *program,
                                             *session->profile,
                                             profile::ApplyOptions(),
                                             &empirical);
      if (!applied.ok()) return StatusReply(req, applied.status());
      po.reorder.profile = &empirical;
      profile_report = JsonValue::Object();
      profile_report.Set("applied", JsonValue::Number(
                                        static_cast<double>(applied->applied)));
      profile_report.Set("stale", JsonValue::Number(
                                      static_cast<double>(applied->stale)));
      profile_report.Set(
          "low_samples",
          JsonValue::Number(static_cast<double>(applied->low_samples)));
      profile_report.Set("unknown", JsonValue::Number(
                                        static_cast<double>(applied->unknown)));
    }
    core::GuardedPipeline pipeline(&store, std::move(po));
    auto result = pipeline.Run(*program);
    if (!result.ok()) return StatusReply(req, result.status());

    JsonValue r = MakeReply(req, "ok");
    r.Set("program",
          JsonValue::String(reader::WriteProgram(store, result->program)));
    r.Set("degraded", JsonValue::Bool(result->report.degraded()));
    // The rendered report is byte-stable and cache-blind (cache counters
    // are deliberately not part of ToJson): a warm reply is bit-identical
    // to the cold reply for the same program and options.
    r.Set("report", JsonValue::String(result->report.ToJson()));
    if (session->profile != nullptr) {
      r.Set("profile", std::move(profile_report));
    }
    return r;
  } catch (const term::AllocError&) {
    return ErrorReply(
        req, "resource_exhausted",
        StrFormat("reorder exceeded the session cell limit (%zu cells)",
                  options_.session_cell_limit));
  }
}

JsonValue Server::DoLint(const JsonValue& req, const prore::ExecContext& ctx) {
  if (prore::Status st = ctx.Check(); !st.ok()) return StatusReply(req, st);
  auto session = FindSession(req.GetString("session", "default"));
  if (session == nullptr) {
    return ErrorReply(req, "not_found",
                      "load a program into the session first");
  }
  term::TermStore store;
  store.SetCellLimit(options_.session_cell_limit);
  try {
    auto program = reader::ParseProgramText(&store, session->source);
    if (!program.ok()) return StatusReply(req, program.status());
    lint::Linter linter;
    auto diags = linter.Run(store, *program);
    if (!diags.ok()) return StatusReply(req, diags.status());

    JsonValue r = MakeReply(req, "ok");
    JsonValue list = JsonValue::Array();
    size_t errors = 0, warnings = 0;
    for (const lint::Diagnostic& d : *diags) {
      JsonValue item = JsonValue::Object();
      item.Set("code", JsonValue::String(d.code));
      item.Set("severity", JsonValue::String(lint::SeverityName(d.severity)));
      item.Set("pred", JsonValue::String(d.pred));
      item.Set("message", JsonValue::String(d.message));
      list.push_back(std::move(item));
      if (d.severity == lint::Severity::kError) ++errors;
      if (d.severity == lint::Severity::kWarning) ++warnings;
    }
    r.Set("diagnostics", std::move(list));
    r.Set("errors", JsonValue::Number(static_cast<double>(errors)));
    r.Set("warnings", JsonValue::Number(static_cast<double>(warnings)));
    return r;
  } catch (const term::AllocError&) {
    return ErrorReply(req, "resource_exhausted",
                      "lint exceeded the session cell limit");
  }
}

JsonValue Server::DoSolve(
    const JsonValue& req, const prore::ExecContext& ctx,
    const std::function<prore::Status(const std::string&)>& write_frame,
    bool* client_gone) {
  auto session = FindSession(req.GetString("session", "default"));
  if (session == nullptr) {
    return ErrorReply(req, "not_found",
                      "load a program into the session first");
  }
  const JsonValue* query = req.Find("query");
  if (query == nullptr || !query->is_string()) {
    return ErrorReply(req, "bad_request", "solve needs a \"query\" string");
  }

  engine::SolveOptions so = options_.solve;
  so.exec = ctx;
  so.max_calls = TightenBudget(so.max_calls,
                               BudgetField(req, "max_calls", 0));
  so.timeout_ms = TightenBudget(so.timeout_ms,
                                BudgetField(req, "timeout_ms", 0));
  so.max_depth = TightenBudget(so.max_depth,
                               BudgetField(req, "max_depth", 0));
  so.max_heap_cells = TightenBudget(so.max_heap_cells,
                                    BudgetField(req, "max_heap_cells", 0));
  uint64_t max_solutions = BudgetField(req, "max_solutions", 0);
  if (max_solutions != 0) {
    so.max_solutions = std::min(so.max_solutions, max_solutions);
  }

  engine::Machine machine(session->snapshot, so);
  auto parsed =
      reader::ParseQueryText(&machine.store(), query->string_value() + ".");
  if (!parsed.ok()) return StatusReply(req, parsed.status());

  // Answers stream one frame each, ahead of the final summary, so a
  // million-solution query never materializes a million-answer reply.
  uint64_t count = 0;
  auto on_solution = [&]() -> bool {
    ++count;
    stat_answers_.fetch_add(1, std::memory_order_relaxed);
    std::string bindings;
    for (const auto& [name, var] : parsed->var_names) {
      if (!bindings.empty()) bindings += ", ";
      bindings += name + " = " + reader::WriteTerm(machine.store(), var);
    }
    if (bindings.empty()) bindings = "true";
    JsonValue a = MakeReply(req, "answer");
    a.Set("answer", JsonValue::String(std::move(bindings)));
    a.Set("n", JsonValue::Number(static_cast<double>(count)));
    if (!write_frame(a.Dump()).ok()) {
      // Peer went away mid-stream: stop the search; its results have no
      // audience. The machine (and its private heap) die with this call.
      *client_gone = true;
      return false;
    }
    return true;
  };

  auto metrics = machine.Solve(parsed->term, on_solution);
  if (*client_gone) return JsonValue();
  if (!metrics.ok()) {
    JsonValue r = StatusReply(req, metrics.status());
    if (auto perr = engine::PrologErrorFromStatus(metrics.status());
        perr.has_value()) {
      r.Set("ball", JsonValue::String(perr->ball));
    }
    return r;
  }
  JsonValue r = MakeReply(req, count > 0 ? "ok" : "failed");
  r.Set("answers", JsonValue::Number(static_cast<double>(count)));
  r.Set("calls",
        JsonValue::Number(static_cast<double>(metrics->TotalCalls())));
  return r;
}

JsonValue Server::DoStats(const JsonValue& req) {
  ServerStatsSnapshot s = Stats();
  JsonValue r = MakeReply(req, "ok");
  JsonValue st = JsonValue::Object();
  auto num = [](uint64_t v) {
    return JsonValue::Number(static_cast<double>(v));
  };
  st.Set("connections", num(s.connections));
  st.Set("frames", num(s.frames));
  st.Set("requests", num(s.requests));
  st.Set("completed", num(s.completed));
  st.Set("shed", num(s.shed));
  st.Set("cancelled", num(s.cancelled));
  st.Set("protocol_errors", num(s.protocol_errors));
  st.Set("answers_streamed", num(s.answers_streamed));
  st.Set("sessions", num(s.sessions));
  st.Set("inflight", num(s.inflight));
  JsonValue cache = JsonValue::Object();
  cache.Set("hits", num(s.cache.hits));
  cache.Set("misses", num(s.cache.misses));
  cache.Set("insertions", num(s.cache.insertions));
  cache.Set("invalidations", num(s.cache.invalidations));
  cache.Set("evictions", num(s.cache.evictions));
  cache.Set("entries", num(s.cache.entries));
  st.Set("cache", std::move(cache));
  r.Set("stats", std::move(st));
  return r;
}

JsonValue Server::DoCancel(const JsonValue& req) {
  const JsonValue* target = req.Find("target");
  if (target == nullptr) {
    return ErrorReply(req, "bad_request", "cancel needs a \"target\" id");
  }
  std::shared_ptr<prore::CancellationSource> source;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_by_id_.find(target->Dump());
    if (it != inflight_by_id_.end()) source = it->second;
  }
  JsonValue r = MakeReply(req, "ok");
  if (source != nullptr) {
    source->RequestCancel("cancelled by client request");
    r.Set("cancelled", JsonValue::Bool(true));
  } else {
    r.Set("cancelled", JsonValue::Bool(false));
  }
  return r;
}

ServerStatsSnapshot Server::Stats() const {
  ServerStatsSnapshot s;
  s.connections = stat_connections_.load(std::memory_order_relaxed);
  s.frames = stat_frames_.load(std::memory_order_relaxed);
  s.requests = stat_requests_.load(std::memory_order_relaxed);
  s.completed = stat_completed_.load(std::memory_order_relaxed);
  s.shed = stat_shed_.load(std::memory_order_relaxed);
  s.cancelled = stat_cancelled_.load(std::memory_order_relaxed);
  s.protocol_errors = stat_protocol_errors_.load(std::memory_order_relaxed);
  s.answers_streamed = stat_answers_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s.sessions = sessions_.size();
  }
  s.cache = cache_.stats();
  return s;
}

}  // namespace prore::server
