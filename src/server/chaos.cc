#include "server/chaos.h"

#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/frame_io.h"
#include "common/str_util.h"
#include "common/json.h"

namespace prore::server {

namespace {

/// SplitMix64: deterministic, seedable, no global state — the whole
/// point is that a CI failure replays from the printed seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

int Connect(const ChaosOptions& options) {
  if (!options.socket_path.empty()) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    struct sockaddr_un addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options.socket_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return -1;
    }
    ::memcpy(addr.sun_path, options.socket_path.c_str(),
             options.socket_path.size());
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.tcp_port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendRaw(int fd, const char* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer closed on us — acceptable in every scenario
    }
    sent += static_cast<size_t>(n);
  }
}

void SendFramed(int fd, std::string_view payload) {
  char prefix[4];
  prefix[0] = static_cast<char>((payload.size() >> 24) & 0xff);
  prefix[1] = static_cast<char>((payload.size() >> 16) & 0xff);
  prefix[2] = static_cast<char>((payload.size() >> 8) & 0xff);
  prefix[3] = static_cast<char>(payload.size() & 0xff);
  SendRaw(fd, prefix, 4);
  SendRaw(fd, payload.data(), payload.size());
}

/// Reads one reply frame with a bounded wait; empty on anything else.
std::string ReadReply(int fd, uint64_t timeout_ms) {
  FrameIoOptions io;
  io.idle_timeout_ms = timeout_ms;
  io.frame_timeout_ms = timeout_ms;
  FrameReadResult r = ReadFrame(fd, io);
  return r.event == FrameEvent::kFrame ? std::move(r.payload) : std::string();
}

/// The liveness check after every scenario: a fresh, polite connection
/// must still get {"status":"ok"} for a ping.
bool ProbeAlive(const ChaosOptions& options, ChaosReport* report) {
  int fd = Connect(options);
  if (fd < 0) return false;
  SendFramed(fd, R"({"op":"ping","id":"probe"})");
  std::string reply = ReadReply(fd, options.probe_timeout_ms);
  ::close(fd);
  if (reply.empty()) return false;
  ++report->replies_received;
  auto parsed = JsonValue::Parse(reply);
  return parsed.ok() && parsed->GetString("status") == "ok";
}

struct Scenario {
  const char* name;
  void (*run)(int fd, Rng& rng, const ChaosOptions& options);
};

void GarbageBytes(int fd, Rng& rng, const ChaosOptions&) {
  size_t len = 1 + rng.Below(512);
  std::string junk(len, '\0');
  for (char& c : junk) c = static_cast<char>(rng.Next() & 0xff);
  // Avoid accidentally declaring a small valid frame: force the first
  // byte high so the prefix decodes to an absurd (oversized) length.
  junk[0] = static_cast<char>(0x80 | (rng.Next() & 0x7f));
  SendRaw(fd, junk.data(), junk.size());
}

void OversizedFrame(int fd, Rng& rng, const ChaosOptions&) {
  char prefix[4] = {0x7f, static_cast<char>(rng.Next() & 0xff),
                    static_cast<char>(rng.Next() & 0xff), 0x01};
  SendRaw(fd, prefix, 4);
}

void TruncatedFrame(int fd, Rng& rng, const ChaosOptions&) {
  std::string payload = R"({"op":"ping"})";
  char prefix[4] = {0, 0, 0, static_cast<char>(payload.size() + 64)};
  SendRaw(fd, prefix, 4);
  // Send a strict prefix of the declared payload, then vanish.
  SendRaw(fd, payload.data(), 1 + rng.Below(payload.size() - 1));
}

void PartialPrefix(int fd, Rng& rng, const ChaosOptions&) {
  char prefix[3] = {0, 0, 0};
  SendRaw(fd, prefix, 1 + rng.Below(3));
}

void SlowDribble(int fd, Rng& rng, const ChaosOptions& options) {
  // A byte at a time with pauses — the slowloris shape, bounded so the
  // harness's wall-clock stays sane. Either the server's frame timeout
  // fires or we hang up first; both must leave the server healthy.
  std::string payload = R"({"op":"ping","id":"slow"})";
  char prefix[4] = {0, 0, 0, static_cast<char>(payload.size())};
  SendRaw(fd, prefix, 4);
  uint64_t budget_ms = options.max_stall_ms;
  uint64_t step_ms = 1 + rng.Below(20);
  for (size_t i = 0; i < payload.size() && budget_ms >= step_ms; ++i) {
    SendRaw(fd, payload.data() + i, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(step_ms));
    budget_ms -= step_ms;
  }
}

void BadJson(int fd, Rng& rng, const ChaosOptions& options) {
  static const char* kPayloads[] = {
      "{",
      "]",
      "{\"op\":",
      "nullnull",
      "{\"op\":\"ping\"",
      "\xff\xfe\xfd",
      "42",               // valid JSON, not an object
      "[1,2,3]",          // ditto
      "{\"op\":1e999}",   // non-finite number
  };
  SendFramed(fd, kPayloads[rng.Below(sizeof(kPayloads) / sizeof(char*))]);
  // Framing stayed intact, so the connection must survive: a follow-up
  // ping on the SAME connection has to work.
  SendFramed(fd, R"({"op":"ping"})");
  (void)ReadReply(fd, options.probe_timeout_ms);  // the bad_request
  (void)ReadReply(fd, options.probe_timeout_ms);  // the pong
}

void DisconnectMidRequest(int fd, Rng& rng, const ChaosOptions&) {
  // A real, heavy request — then hang up without reading the reply.
  std::string req = StrFormat(
      R"x({"op":"solve","id":"gone-%llu","query":"between(1,100,X)"})x",
      static_cast<unsigned long long>(rng.Next()));
  SendFramed(fd, req);
}

void Flood(int fd, Rng& rng, const ChaosOptions& options) {
  size_t n = 8 + rng.Below(24);
  for (size_t i = 0; i < n; ++i) {
    SendFramed(fd, StrFormat(R"({"op":"ping","id":%zu})", i));
  }
  for (size_t i = 0; i < n; ++i) {
    if (ReadReply(fd, options.probe_timeout_ms).empty()) break;
  }
}

void CancelUnknown(int fd, Rng& rng, const ChaosOptions& options) {
  SendFramed(fd, StrFormat(R"({"op":"cancel","target":"ghost-%llu"})",
                           static_cast<unsigned long long>(rng.Next())));
  (void)ReadReply(fd, options.probe_timeout_ms);
}

void UnknownOp(int fd, Rng& rng, const ChaosOptions& options) {
  std::string op(1 + rng.Below(12), '\0');
  for (char& c : op) c = static_cast<char>('a' + rng.Below(26));
  std::string req = "{\"op\":";
  AppendJsonEscaped(&req, op);
  req += "}";
  SendFramed(fd, req);
  (void)ReadReply(fd, options.probe_timeout_ms);
}

void EmptyFrame(int fd, Rng&, const ChaosOptions& options) {
  SendFramed(fd, "");
  (void)ReadReply(fd, options.probe_timeout_ms);
}

constexpr Scenario kScenarios[] = {
    {"garbage_bytes", GarbageBytes},
    {"oversized_frame", OversizedFrame},
    {"truncated_frame", TruncatedFrame},
    {"partial_prefix", PartialPrefix},
    {"slow_dribble", SlowDribble},
    {"bad_json", BadJson},
    {"disconnect_mid_request", DisconnectMidRequest},
    {"flood", Flood},
    {"cancel_unknown", CancelUnknown},
    {"unknown_op", UnknownOp},
    {"empty_frame", EmptyFrame},
};

}  // namespace

std::string ChaosReport::ToString() const {
  std::string out = StrFormat(
      "chaos: %zu scenarios, %zu replies, %zu connect failures, "
      "%zu probe failures\n",
      scenarios_run, replies_received, connect_failures, probe_failures);
  for (const auto& [kind, count] : by_kind) {
    out += StrFormat("  %-24s %zu\n", kind.c_str(), count);
  }
  return out;
}

prore::Result<ChaosReport> RunChaos(const ChaosOptions& options) {
  ChaosReport report;
  if (!ProbeAlive(options, &report)) {
    return prore::Status::Internal(
        "chaos: server unreachable before any scenario ran");
  }
  Rng rng(options.seed);
  for (size_t i = 0; i < options.scenarios; ++i) {
    const Scenario& s =
        kScenarios[rng.Below(sizeof(kScenarios) / sizeof(Scenario))];
    int fd = Connect(options);
    if (fd < 0) {
      // The server may briefly be at its connection cap during floods;
      // the probe below is the real health check.
      ++report.connect_failures;
    } else {
      s.run(fd, rng, options);
      ::close(fd);
    }
    ++report.by_kind[s.name];
    ++report.scenarios_run;
    if (!ProbeAlive(options, &report)) {
      ++report.probe_failures;
    }
  }
  return report;
}

}  // namespace prore::server
