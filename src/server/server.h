#ifndef PRORE_SERVER_SERVER_H_
#define PRORE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/frame_io.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/analysis_cache.h"
#include "core/pipeline.h"
#include "engine/machine.h"
#include "profile/profile.h"
#include "common/json.h"

namespace prore::server {

/// prored's configuration. Every knob has an overload-survival rationale:
/// the server's contract is that no client behavior — malformed frames,
/// floods, slow writers, mid-request disconnects — crashes the process or
/// wedges another client's request; misbehavior costs the misbehaving
/// connection a structured error or a close, nothing more.
struct ServerOptions {
  /// Unix-domain socket path. Empty = TCP only.
  std::string socket_path;
  /// TCP listen port on 127.0.0.1; -1 = no TCP, 0 = ephemeral (the bound
  /// port is reported by Server::tcp_port()).
  int tcp_port = -1;
  /// Worker threads executing heavy requests (reorder/lint/solve/load).
  /// 0 = run them inline on the connection thread (tests).
  size_t workers = 0;
  /// Admission cap: heavy requests running + queued. A request arriving
  /// past the cap is shed immediately with {"status":"overloaded"} —
  /// bounded latency for everyone admitted beats unbounded queueing.
  size_t max_queue = 64;
  /// Simultaneous connections; excess connections get one overloaded
  /// frame and a close.
  size_t max_connections = 256;
  /// Default per-request deadline; the client's budget_ms composes
  /// earliest-wins. 0 = none.
  uint64_t default_deadline_ms = 30'000;
  size_t max_frame_bytes = 8u << 20;
  /// Connection idle limit (time to the next request's first byte).
  uint64_t idle_timeout_ms = 300'000;
  /// Per-frame I/O budget once a frame starts — the slowloris bound.
  uint64_t io_timeout_ms = 10'000;
  /// Term-store cell cap per session (parse + compile); exceeding it
  /// fails the load with resource_exhausted. 0 = uncapped.
  size_t session_cell_limit = 16u << 20;
  size_t max_sessions = 64;
  /// Analysis-cache capacity (per-dependency-group entries).
  size_t cache_entries = 1024;
  /// Base transform options; per-request fields (unfold/factor/absint/
  /// jobs) may be overridden by the request.
  core::PipelineOptions pipeline;
  /// Base solve budgets; per-request fields compose (budgets only
  /// tighten: a request cannot exceed the server's max_calls et al).
  engine::SolveOptions solve;
  /// Default execution profile (prored --profile-in). Attached to every
  /// session loaded without its own "profile" field, WITHOUT the strict
  /// membership validation applied to request-supplied profiles: a
  /// shared default legitimately covers predicates a given session lacks,
  /// and the reorder-time staleness check drops what does not match.
  std::shared_ptr<const profile::ProfileData> default_profile;
};

/// One consistent snapshot of the server's counters ({"op":"stats"}).
struct ServerStatsSnapshot {
  uint64_t connections = 0;
  uint64_t frames = 0;
  uint64_t requests = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t protocol_errors = 0;  ///< bad JSON, oversized/truncated frames
  uint64_t answers_streamed = 0;
  size_t sessions = 0;
  size_t inflight = 0;
  core::AnalysisCache::Stats cache;
};

/// The reorder/lint/query daemon behind `prored`. Speaks the
/// length-prefixed JSON protocol of common/frame_io.h: one JSON object per
/// frame in, one or more JSON objects per frame out ({"status":"answer"}
/// frames stream ahead of a solve's final reply). One thread per
/// connection does framing and parsing; heavy requests are admitted
/// against max_queue and executed on a shared worker pool, each under an
/// ExecContext combining the server's default deadline with the client's
/// budget (earliest wins) and a per-request CancellationSource that
/// {"op":"cancel"} (any connection) or SIGTERM can fire.
///
/// Shutdown([reason]) drains gracefully: stop accepting, fail new
/// requests with shutting_down, cancel in-flight work through the root
/// CancellationSource, and join every thread — replies in progress finish
/// their frame; nothing is killed mid-write.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread.
  prore::Status Start();

  /// Initiates graceful drain (idempotent). Safe from any thread, but NOT
  /// from a signal handler — handlers use NotifyShutdownAsync().
  void Shutdown(std::string reason = "shutdown requested");

  /// Async-signal-safe shutdown trigger: wakes the accept thread, which
  /// performs the actual Shutdown. The only calls made are write(2) on a
  /// pre-opened pipe and an atomic store.
  void NotifyShutdownAsync();

  /// Blocks until the server has fully drained (accept thread and every
  /// connection thread joined, worker pool quiesced).
  void Wait();

  bool shutting_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// The bound TCP port (after Start with tcp_port >= 0), else -1.
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& socket_path() const { return options_.socket_path; }

  ServerStatsSnapshot Stats() const;
  core::AnalysisCache& cache() { return cache_; }

 private:
  struct Session {
    std::string source;
    std::shared_ptr<const engine::ProgramSnapshot> snapshot;
    size_t preds = 0;
    size_t clauses = 0;
    /// Execution profile attached at load ("profile" field or the server
    /// default); reorder rebuilds the empirical cost inputs from it
    /// against each request's fresh store. Null = static model only.
    std::shared_ptr<const profile::ProfileData> profile;
  };

  void AcceptLoop();
  void HandleConnection(int fd);

  /// Dispatches one parsed request. Returns the final reply (already
  /// dumped); streaming ops write their intermediate frames through
  /// `write_frame`. Sets *close_conn to end the connection after the
  /// reply.
  std::string HandleRequest(const JsonValue& req,
                            const std::function<prore::Status(
                                const std::string&)>& write_frame,
                            bool* close_conn);

  /// Admission + execution: runs `work` on the pool (or inline when
  /// workers == 0) if under max_queue; false = shed, work not run.
  bool AdmitAndRun(const std::function<void()>& work);

  JsonValue DoLoad(const JsonValue& req, const prore::ExecContext& ctx);
  JsonValue DoUnload(const JsonValue& req);
  JsonValue DoReorder(const JsonValue& req, const prore::ExecContext& ctx);
  JsonValue DoLint(const JsonValue& req, const prore::ExecContext& ctx);
  JsonValue DoSolve(const JsonValue& req, const prore::ExecContext& ctx,
                    const std::function<prore::Status(const std::string&)>&
                        write_frame,
                    bool* client_gone);
  JsonValue DoStats(const JsonValue& req);
  JsonValue DoCancel(const JsonValue& req);

  std::shared_ptr<Session> FindSession(const std::string& name);

  ServerOptions options_;
  core::AnalysisCache cache_;
  prore::CancellationSource root_cancel_;
  std::unique_ptr<prore::ThreadPool> pool_;

  int listen_unix_fd_ = -1;
  int listen_tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> started_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::atomic<size_t> active_conns_{0};

  mutable std::mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;

  /// In-flight requests by client-chosen id, for {"op":"cancel"}.
  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<prore::CancellationSource>>
      inflight_by_id_;

  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> stat_connections_{0};
  std::atomic<uint64_t> stat_frames_{0};
  std::atomic<uint64_t> stat_requests_{0};
  std::atomic<uint64_t> stat_completed_{0};
  std::atomic<uint64_t> stat_shed_{0};
  std::atomic<uint64_t> stat_cancelled_{0};
  std::atomic<uint64_t> stat_protocol_errors_{0};
  std::atomic<uint64_t> stat_answers_{0};
};

}  // namespace prore::server

#endif  // PRORE_SERVER_SERVER_H_
