#ifndef PRORE_SERVER_CHAOS_H_
#define PRORE_SERVER_CHAOS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"

namespace prore::server {

/// Protocol-level chaos harness for prored. Each scenario opens a
/// connection and misbehaves in one seeded-random way — garbage bytes,
/// truncated or oversized frames, partial length prefixes, slow dribbles,
/// floods, disconnects mid-request, cancels for unknown ids — then a
/// liveness probe (fresh connection, ping, well-formed reply required)
/// verifies the server shrugged it off. The server never sees the seed;
/// the same seed replays the same byte stream, so a failure in CI is
/// reproducible locally with one number.
struct ChaosOptions {
  /// Unix socket to attack (preferred), or TCP port on 127.0.0.1.
  std::string socket_path;
  int tcp_port = -1;
  uint64_t seed = 1;
  size_t scenarios = 100;
  /// Upper bound for the slow-sender scenario's stall, so a run's
  /// wall-clock stays proportional to `scenarios` regardless of the
  /// server's patience.
  uint64_t max_stall_ms = 100;
  /// Reply-read timeout per probe. Generous: a probe timing out is a
  /// finding (server wedged), not a flake.
  uint64_t probe_timeout_ms = 5000;
};

struct ChaosReport {
  size_t scenarios_run = 0;
  size_t connect_failures = 0;
  /// Liveness probes that failed — the server stopped answering
  /// well-formed requests after a scenario. Any nonzero value is a bug.
  size_t probe_failures = 0;
  size_t replies_received = 0;
  std::map<std::string, size_t> by_kind;

  std::string ToString() const;
};

/// Runs `options.scenarios` seeded scenarios; returns the tally. Fails
/// only when the server is unreachable from the start — per-scenario
/// outcomes (including probe failures) are data in the report.
prore::Result<ChaosReport> RunChaos(const ChaosOptions& options);

}  // namespace prore::server

#endif  // PRORE_SERVER_CHAOS_H_
