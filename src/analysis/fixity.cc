#include "analysis/fixity.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "analysis/body.h"
#include "analysis/mode_inference.h"

namespace prore::analysis {

using term::PredId;
using term::Tag;
using term::TermRef;
using term::TermStore;

bool IsSideEffectBuiltin(std::string_view name, uint32_t arity) {
  // I/O predicates of the DEC-10/C-Prolog family (paper §IV-B). We list
  // the classic set even though this engine implements only the write
  // family; the analysis must stay correct if the engine grows.
  if (arity == 0) {
    return name == "nl" || name == "told" || name == "seen" || name == "ttynl";
  }
  if (arity == 1) {
    // throw/1 is pinned like I/O: moving it changes which goals execute
    // before the exception aborts the clause (observable via side effects
    // and via which catcher receives the ball).
    return name == "write" || name == "print" || name == "writeln" ||
           name == "read" || name == "get" || name == "get0" ||
           name == "put" || name == "tab" || name == "see" ||
           name == "tell" || name == "display" ||
           name == "write_canonical" || name == "assert" ||
           name == "asserta" || name == "assertz" || name == "retract" ||
           name == "abolish" || name == "throw";
  }
  return false;
}

std::vector<bool> SemifixedArgsOfBuiltin(std::string_view name,
                                         uint32_t arity) {
  if (arity == 1 &&
      (name == "var" || name == "nonvar" || name == "atom" ||
       name == "atomic" || name == "integer" || name == "float" ||
       name == "number" || name == "compound" || name == "callable" ||
       name == "ground" || name == "is_list")) {
    return {true};
  }
  if (arity == 2 && (name == "==" || name == "\\==" || name == "\\=" ||
                     name == "@<" || name == "@>" || name == "@=<" ||
                     name == "@>=")) {
    return {true, true};
  }
  if (arity == 3 && name == "compare") {
    return {false, true, true};
  }
  return {};
}

namespace {

/// Head-argument instantiation shapes used by the semifixity heuristic.
bool HeadArgIsNonVar(const TermStore& store, TermRef head, uint32_t i) {
  return store.tag(store.Deref(store.arg(head, i))) != Tag::kVar;
}

}  // namespace

prore::Result<FixityResult> AnalyzeFixity(const TermStore& store,
                                          const reader::Program& program,
                                          const CallGraph& graph) {
  FixityResult result;

  // ---- Fixity seeds: clauses calling side-effect built-ins. ----
  for (const PredId& pred : graph.Preds()) {
    for (const PredId& b : graph.BuiltinCallees(pred)) {
      if (IsSideEffectBuiltin(store.symbols().Name(b.name), b.arity)) {
        result.fixed.insert(pred);
        break;
      }
    }
  }

  // ---- Propagate to ancestors: worklist over reverse edges. ----
  // Build reverse adjacency once.
  std::unordered_map<PredId, std::vector<PredId>, term::PredIdHash> callers;
  for (const PredId& caller : graph.Preds()) {
    for (const PredId& callee : graph.Callees(caller)) {
      callers[callee].push_back(caller);
    }
  }
  std::deque<PredId> work(result.fixed.begin(), result.fixed.end());
  while (!work.empty()) {
    PredId p = work.front();
    work.pop_front();
    auto it = callers.find(p);
    if (it == callers.end()) continue;
    for (const PredId& caller : it->second) {
      if (result.fixed.insert(caller).second) work.push_back(caller);
    }
  }

  // ---- Semifixity (paper §IV-C heuristic). ----
  // A predicate is semifixed in position k if some cut-bearing clause has
  // a non-variable head argument at k while the clause set is not uniform
  // there: instantiation of k then decides which clause the cut commits to.
  for (const PredId& pred : graph.Preds()) {
    const auto& clauses = program.ClausesOf(pred);
    if (clauses.size() < 2 || pred.arity == 0) continue;
    std::vector<bool> culprit(pred.arity, false);
    bool any = false;
    for (const reader::Clause& clause : clauses) {
      PRORE_ASSIGN_OR_RETURN(auto body, ParseBody(store, clause.body));
      if (!ContainsClauseCut(*body)) continue;
      for (uint32_t i = 0; i < pred.arity; ++i) {
        if (!HeadArgIsNonVar(store, store.Deref(clause.head), i)) continue;
        // Uniformity check: does any other clause differ at position i?
        for (const reader::Clause& other : clauses) {
          if (&other == &clause) continue;
          TermRef a = store.Deref(store.arg(store.Deref(clause.head), i));
          TermRef b = store.Deref(store.arg(store.Deref(other.head), i));
          if (!store.Equal(a, b)) {
            culprit[i] = true;
            any = true;
            break;
          }
        }
      }
    }
    if (any) result.semifixed_args.emplace(pred, std::move(culprit));
  }

  // ---- Propagate semifixity to ancestors (paper: "semifixity propagates
  // to ancestors if a culprit variable also appears in the head"). ----
  bool changed = true;
  while (changed) {
    changed = false;
    for (const PredId& caller : graph.Preds()) {
      for (const reader::Clause& clause : program.ClausesOf(caller)) {
        PRORE_ASSIGN_OR_RETURN(auto body, ParseBody(store, clause.body));
        std::vector<TermRef> goals;
        CollectCalledGoals(store, *body, &goals);
        TermRef head = store.Deref(clause.head);
        for (TermRef goal : goals) {
          goal = store.Deref(goal);
          PredId callee = store.pred_id(goal);
          auto it = result.semifixed_args.find(callee);
          if (it == result.semifixed_args.end()) continue;
          // Which caller head positions feed a culprit position?
          for (uint32_t ci = 0; ci < callee.arity; ++ci) {
            if (!it->second[ci]) continue;
            std::vector<TermRef> culprit_vars;
            store.CollectVars(store.arg(goal, ci), &culprit_vars);
            for (TermRef v : culprit_vars) {
              for (uint32_t hi = 0; hi < caller.arity; ++hi) {
                std::vector<TermRef> head_vars;
                store.CollectVars(store.arg(head, hi), &head_vars);
                for (TermRef hv : head_vars) {
                  if (hv != v) continue;
                  auto& flags = result.semifixed_args[caller];
                  if (flags.empty()) flags.assign(caller.arity, false);
                  if (!flags[hi]) {
                    flags[hi] = true;
                    changed = true;
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  return result;
}

std::vector<TermRef> ModeSensitiveVars(const TermStore& store,
                                       const BodyNode& node,
                                       const FixityResult& fixity) {
  std::vector<TermRef> out;
  auto add_vars_of = [&](TermRef t) {
    std::vector<TermRef> vars;
    store.CollectVars(t, &vars);
    for (TermRef v : vars) {
      if (std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  };
  switch (node.kind) {
    case BodyKind::kTrue:
    case BodyKind::kFail:
    case BodyKind::kCut:
      return out;
    case BodyKind::kNeg:
    case BodyKind::kSetPred:
    case BodyKind::kCatch:
      add_vars_of(node.goal);
      return out;
    case BodyKind::kConj:
    case BodyKind::kDisj:
    case BodyKind::kIfThenElse:
      for (const auto& child : node.children) {
        for (TermRef v : ModeSensitiveVars(store, *child, fixity)) {
          if (std::find(out.begin(), out.end(), v) == out.end()) {
            out.push_back(v);
          }
        }
      }
      return out;
    case BodyKind::kCall: {
      TermRef goal = store.Deref(node.goal);
      PredId id = store.pred_id(goal);
      std::vector<bool> positions = SemifixedArgsOfBuiltin(
          store.symbols().Name(id.name), id.arity);
      if (positions.empty()) {
        const std::vector<bool>* user = fixity.CulpritArgs(id);
        if (user != nullptr) positions = *user;
      }
      for (uint32_t i = 0; i < id.arity && i < positions.size(); ++i) {
        if (positions[i]) add_vars_of(store.arg(goal, i));
      }
      return out;
    }
  }
  return out;
}

namespace {

/// One semifix-seeding walk over a clause body (original order, weakest
/// input mode): marks head positions whose variables feed a mode-sensitive
/// goal while not yet certainly ground. Returns true if new positions were
/// marked.
bool SeedClause(const TermStore& store, const reader::Clause& clause,
                const PredId& pred, LegalityOracle* oracle,
                FixityResult* result) {
  auto body = ParseBody(store, clause.body);
  if (!body.ok()) return false;
  TermRef head = store.Deref(clause.head);
  // Head variables per position.
  std::vector<std::vector<TermRef>> head_vars(pred.arity);
  for (uint32_t i = 0; i < pred.arity; ++i) {
    store.CollectVars(store.arg(head, i), &head_vars[i]);
  }
  bool changed = false;
  AbstractEnv env =
      EnvFromHead(store, clause.head, Mode(pred.arity, ModeItem::kMinus));

  auto check_culprits = [&](const BodyNode& node, const AbstractEnv& e) {
    for (TermRef v : ModeSensitiveVars(store, node, *result)) {
      if (e.Get(store.var_id(v)) == VarState::kGround) continue;
      for (uint32_t i = 0; i < pred.arity; ++i) {
        if (std::find(head_vars[i].begin(), head_vars[i].end(), v) ==
            head_vars[i].end()) {
          continue;
        }
        auto& flags = result->semifixed_args[pred];
        if (flags.empty()) flags.assign(pred.arity, false);
        if (!flags[i]) {
          flags[i] = true;
          changed = true;
        }
      }
    }
  };

  std::function<void(const BodyNode&, AbstractEnv*)> walk =
      [&](const BodyNode& node, AbstractEnv* e) {
        // Leaves check their culprits at their own execution point;
        // sequences and branches only recurse (a conjunction's culprits
        // must be judged against the environment each child actually sees).
        switch (node.kind) {
          case BodyKind::kConj:
            for (const auto& child : node.children) walk(*child, e);
            return;  // walk already advanced e child by child
          case BodyKind::kDisj: {
            AbstractEnv l = *e, r = *e;
            walk(*node.children[0], &l);
            walk(*node.children[1], &r);
            *e = AbstractEnv::Join(l, r);
            return;
          }
          case BodyKind::kIfThenElse: {
            AbstractEnv t = *e, el = *e;
            walk(*node.children[0], &t);
            walk(*node.children[1], &t);
            walk(*node.children[2], &el);
            *e = AbstractEnv::Join(t, el);
            return;
          }
          case BodyKind::kNeg: {
            check_culprits(node, *e);
            AbstractEnv scratch = *e;
            walk(*node.children[0], &scratch);
            return;
          }
          case BodyKind::kSetPred:
          case BodyKind::kCatch: {
            check_culprits(node, *e);
            for (const auto& child : node.children) {
              AbstractEnv scratch = *e;
              walk(*child, &scratch);
            }
            AdvanceEnvOverNode(store, node, oracle, e);
            return;
          }
          default:
            check_culprits(node, *e);
            AdvanceEnvOverNode(store, node, oracle, e);
            return;
        }
      };
  walk(**body, &env);
  return changed;
}

}  // namespace

prore::Status RefineSemifixity(const TermStore& store,
                               const reader::Program& program,
                               const CallGraph& graph,
                               LegalityOracle* oracle, FixityResult* result) {
  // Iterate to a fixpoint: marking one predicate semifixed can make its
  // callers semifixed in turn (bounded by total argument positions).
  bool changed = true;
  size_t guard = 0;
  while (changed && guard++ < 1000) {
    changed = false;
    for (const PredId& pred : graph.Preds()) {
      for (const reader::Clause& clause : program.ClausesOf(pred)) {
        if (SeedClause(store, clause, pred, oracle, result)) changed = true;
      }
    }
  }
  // Drop all-false entries so IsSemifixed stays meaningful.
  for (auto it = result->semifixed_args.begin();
       it != result->semifixed_args.end();) {
    bool any = std::any_of(it->second.begin(), it->second.end(),
                           [](bool b) { return b; });
    it = any ? std::next(it) : result->semifixed_args.erase(it);
  }
  return prore::Status::OK();
}

}  // namespace prore::analysis
