#ifndef PRORE_ANALYSIS_BODY_H_
#define PRORE_ANALYSIS_BODY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "term/store.h"

namespace prore::analysis {

/// Structural classification of one node of a clause body (paper §IV-D):
/// the control constructs are what restrict goal mobility, so the reorderer
/// works on this tree rather than on the raw term.
enum class BodyKind {
  kCall,        ///< An ordinary goal (user predicate or built-in).
  kTrue,        ///< true/0 (no-op).
  kFail,        ///< fail/0, false/0.
  kCut,         ///< !/0 — freezes everything before it (§IV-D.1).
  kConj,        ///< ','/2 sequence, flattened (children in order).
  kDisj,        ///< ';'/2 — "semipermeable barrier" (§IV-D.2).
  kIfThenElse,  ///< (C -> T ; E) — premise immobile (§IV-D.3).
  kNeg,         ///< \+/1 or not/1 — semifixed wrapper (§IV-D.5).
  kSetPred,     ///< findall/bagof/setof — semifixed wrapper (§IV-D.6).
  kCatch,       ///< catch/3 — opaque control construct; never floated.
};

/// Parsed body tree. kCall/kCut/kTrue/kFail are leaves; kConj has N
/// children; kDisj has 2 (left, right); kIfThenElse has 3 (cond, then,
/// else); kNeg has 1 (the negated conjunction); kSetPred has 1 (the inner
/// conjunction) and keeps `goal` as the whole findall/bagof/setof term;
/// kCatch has 2 (the protected goal and the recovery goal) and keeps `goal`
/// as the whole catch/3 term. The catcher pattern (arg 1) is not a goal and
/// has no child.
struct BodyNode {
  BodyKind kind = BodyKind::kTrue;
  term::TermRef goal = term::kNullTerm;
  std::vector<std::unique_ptr<BodyNode>> children;
};

/// Parses a clause body term into a BodyNode tree. Variable goals and
/// call/1 with a variable argument are Unsupported (the paper forbids
/// variable goals, §I-C). call/1 with a nonvariable argument is unwrapped.
prore::Result<std::unique_ptr<BodyNode>> ParseBody(const term::TermStore& store,
                                                   term::TermRef body);

/// Appends every callable goal the body may execute, including goals inside
/// negation, set-predicates, disjunctions and conditions — the call-graph
/// view of the body.
void CollectCalledGoals(const term::TermStore& store, const BodyNode& node,
                        std::vector<term::TermRef>* out);

/// True if the subtree contains a cut (at any depth that cuts this clause:
/// cuts inside negation/set-predicates are local and do not count).
bool ContainsClauseCut(const BodyNode& node);

}  // namespace prore::analysis

#endif  // PRORE_ANALYSIS_BODY_H_
