#include "analysis/body.h"

#include "term/symbol.h"

namespace prore::analysis {

using term::SymbolTable;
using term::Tag;
using term::TermRef;
using term::TermStore;

namespace {

bool IsSetPredName(const std::string& name, uint32_t arity) {
  return arity == 3 &&
         (name == "findall" || name == "bagof" || name == "setof");
}

prore::Result<std::unique_ptr<BodyNode>> Parse(const TermStore& store,
                                               TermRef t) {
  t = store.Deref(t);
  auto node = std::make_unique<BodyNode>();
  node->goal = t;
  switch (store.tag(t)) {
    case Tag::kVar:
      return prore::Status::Unsupported(
          "variable goal in clause body (forbidden for reordering)");
    case Tag::kInt:
    case Tag::kFloat:
      return prore::Status::TypeError("number as goal");
    case Tag::kAtom: {
      term::Symbol s = store.symbol(t);
      if (s == SymbolTable::kTrue) {
        node->kind = BodyKind::kTrue;
      } else if (s == SymbolTable::kFail ||
                 store.symbols().Name(s) == "false") {
        node->kind = BodyKind::kFail;
      } else if (s == SymbolTable::kCut) {
        node->kind = BodyKind::kCut;
      } else {
        node->kind = BodyKind::kCall;
      }
      return node;
    }
    case Tag::kStruct:
      break;
  }
  term::Symbol s = store.symbol(t);
  uint32_t arity = store.arity(t);
  const std::string& name = store.symbols().Name(s);

  if (s == SymbolTable::kComma && arity == 2) {
    node->kind = BodyKind::kConj;
    // Flatten nested conjunctions into one child list.
    TermRef cur = t;
    while (true) {
      cur = store.Deref(cur);
      if (store.tag(cur) == Tag::kStruct &&
          store.symbol(cur) == SymbolTable::kComma &&
          store.arity(cur) == 2) {
        PRORE_ASSIGN_OR_RETURN(auto child, Parse(store, store.arg(cur, 0)));
        node->children.push_back(std::move(child));
        cur = store.arg(cur, 1);
      } else {
        PRORE_ASSIGN_OR_RETURN(auto child, Parse(store, cur));
        node->children.push_back(std::move(child));
        break;
      }
    }
    return node;
  }
  if (s == SymbolTable::kSemicolon && arity == 2) {
    TermRef left = store.Deref(store.arg(t, 0));
    if (store.tag(left) == Tag::kStruct &&
        store.symbol(left) == SymbolTable::kArrow &&
        store.arity(left) == 2) {
      node->kind = BodyKind::kIfThenElse;
      PRORE_ASSIGN_OR_RETURN(auto cond, Parse(store, store.arg(left, 0)));
      PRORE_ASSIGN_OR_RETURN(auto then_n, Parse(store, store.arg(left, 1)));
      PRORE_ASSIGN_OR_RETURN(auto else_n, Parse(store, store.arg(t, 1)));
      node->children.push_back(std::move(cond));
      node->children.push_back(std::move(then_n));
      node->children.push_back(std::move(else_n));
      return node;
    }
    node->kind = BodyKind::kDisj;
    PRORE_ASSIGN_OR_RETURN(auto l, Parse(store, store.arg(t, 0)));
    PRORE_ASSIGN_OR_RETURN(auto r, Parse(store, store.arg(t, 1)));
    node->children.push_back(std::move(l));
    node->children.push_back(std::move(r));
    return node;
  }
  if (s == SymbolTable::kArrow && arity == 2) {
    // Bare if-then == (C -> T ; fail).
    node->kind = BodyKind::kIfThenElse;
    PRORE_ASSIGN_OR_RETURN(auto cond, Parse(store, store.arg(t, 0)));
    PRORE_ASSIGN_OR_RETURN(auto then_n, Parse(store, store.arg(t, 1)));
    node->children.push_back(std::move(cond));
    node->children.push_back(std::move(then_n));
    auto fail_node = std::make_unique<BodyNode>();
    fail_node->kind = BodyKind::kFail;
    node->children.push_back(std::move(fail_node));
    return node;
  }
  if ((s == SymbolTable::kNot || name == "not") && arity == 1) {
    node->kind = BodyKind::kNeg;
    PRORE_ASSIGN_OR_RETURN(auto inner, Parse(store, store.arg(t, 0)));
    node->children.push_back(std::move(inner));
    return node;
  }
  if (s == SymbolTable::kCall && arity == 1) {
    TermRef inner = store.Deref(store.arg(t, 0));
    if (store.tag(inner) == Tag::kVar) {
      return prore::Status::Unsupported(
          "call/1 with variable argument (forbidden for reordering)");
    }
    return Parse(store, inner);
  }
  if (name == "catch" && arity == 3) {
    // catch(Goal, Catcher, Recovery): Goal and Recovery are goals, the
    // catcher is a pattern. If either goal position is a variable we fall
    // back to treating the whole catch/3 as an opaque call (the engine
    // handles it; the reorderer must not look inside).
    TermRef goal_arg = store.Deref(store.arg(t, 0));
    TermRef recovery_arg = store.Deref(store.arg(t, 2));
    if (store.tag(goal_arg) == Tag::kVar ||
        store.tag(recovery_arg) == Tag::kVar) {
      node->kind = BodyKind::kCall;
      return node;
    }
    node->kind = BodyKind::kCatch;
    PRORE_ASSIGN_OR_RETURN(auto goal_n, Parse(store, goal_arg));
    PRORE_ASSIGN_OR_RETURN(auto recovery_n, Parse(store, recovery_arg));
    node->children.push_back(std::move(goal_n));
    node->children.push_back(std::move(recovery_n));
    return node;
  }
  if (IsSetPredName(name, arity)) {
    node->kind = BodyKind::kSetPred;
    // The second argument is the inner conjunction (strip ^/2 wrappers).
    TermRef inner = store.Deref(store.arg(t, 1));
    while (store.tag(inner) == Tag::kStruct && store.arity(inner) == 2 &&
           store.symbols().Name(store.symbol(inner)) == "^") {
      inner = store.Deref(store.arg(inner, 1));
    }
    if (store.tag(inner) == Tag::kVar) {
      return prore::Status::Unsupported(
          "set-predicate with variable goal argument");
    }
    PRORE_ASSIGN_OR_RETURN(auto child, Parse(store, inner));
    node->children.push_back(std::move(child));
    return node;
  }
  node->kind = BodyKind::kCall;
  return node;
}

}  // namespace

prore::Result<std::unique_ptr<BodyNode>> ParseBody(const TermStore& store,
                                                   TermRef body) {
  return Parse(store, body);
}

void CollectCalledGoals(const TermStore& store, const BodyNode& node,
                        std::vector<TermRef>* out) {
  switch (node.kind) {
    case BodyKind::kCall:
      out->push_back(node.goal);
      return;
    case BodyKind::kTrue:
    case BodyKind::kFail:
    case BodyKind::kCut:
      return;
    case BodyKind::kSetPred:
      out->push_back(node.goal);  // the findall/bagof/setof call itself
      [[fallthrough]];
    case BodyKind::kConj:
    case BodyKind::kDisj:
    case BodyKind::kIfThenElse:
    case BodyKind::kNeg:
    case BodyKind::kCatch:
      for (const auto& child : node.children) {
        CollectCalledGoals(store, *child, out);
      }
      return;
  }
}

bool ContainsClauseCut(const BodyNode& node) {
  switch (node.kind) {
    case BodyKind::kCut:
      return true;
    case BodyKind::kCall:
    case BodyKind::kTrue:
    case BodyKind::kFail:
      return false;
    case BodyKind::kNeg:
    case BodyKind::kSetPred:
    case BodyKind::kCatch:
      return false;  // cuts inside are local
    case BodyKind::kConj:
    case BodyKind::kDisj:
      for (const auto& child : node.children) {
        if (ContainsClauseCut(*child)) return true;
      }
      return false;
    case BodyKind::kIfThenElse:
      // A cut in the condition is local (ISO); cuts in then/else cut the
      // clause.
      return ContainsClauseCut(*node.children[1]) ||
             ContainsClauseCut(*node.children[2]);
  }
  return false;
}

}  // namespace prore::analysis
