#include "analysis/modes.h"

#include <algorithm>

#include "common/str_util.h"

namespace prore::analysis {

using term::PredId;
using term::Tag;
using term::TermRef;
using term::TermStore;

char ModeItemChar(ModeItem m) {
  switch (m) {
    case ModeItem::kPlus:
      return '+';
    case ModeItem::kMinus:
      return '-';
    case ModeItem::kAny:
      return '?';
  }
  return '?';
}

std::string ModeString(const Mode& mode) {
  std::string out = "(";
  for (size_t i = 0; i < mode.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back(ModeItemChar(mode[i]));
  }
  out.push_back(')');
  return out;
}

std::string ModeSuffix(const Mode& mode) {
  // The paper's Fig. 7 naming: i for instantiated, u for uninstantiated.
  // '?' positions get 'a' (any).
  std::string out;
  for (ModeItem m : mode) {
    switch (m) {
      case ModeItem::kPlus:
        out.push_back('i');
        break;
      case ModeItem::kMinus:
        out.push_back('u');
        break;
      case ModeItem::kAny:
        out.push_back('a');
        break;
    }
  }
  return out;
}

prore::Result<Mode> ModeFromString(const std::string& s) {
  Mode mode;
  for (char c : s) {
    switch (c) {
      case '+':
        mode.push_back(ModeItem::kPlus);
        break;
      case '-':
        mode.push_back(ModeItem::kMinus);
        break;
      case '?':
        mode.push_back(ModeItem::kAny);
        break;
      case '(':
      case ')':
      case ',':
      case ' ':
        break;
      default:
        return prore::Status::InvalidArgument(
            prore::StrFormat("bad mode character '%c' in \"%s\"", c,
                             s.c_str()));
    }
  }
  return mode;
}

bool SatisfiesInput(const Mode& call_mode, const Mode& input) {
  if (call_mode.size() != input.size()) return false;
  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i] == ModeItem::kPlus && call_mode[i] != ModeItem::kPlus) {
      return false;
    }
  }
  return true;
}

Mode ApplyOutput(const Mode& call_mode, const Mode& output) {
  Mode out(call_mode.size());
  for (size_t i = 0; i < call_mode.size(); ++i) {
    if (call_mode[i] == ModeItem::kPlus || output[i] == ModeItem::kPlus) {
      out[i] = ModeItem::kPlus;
    } else if (call_mode[i] == ModeItem::kMinus &&
               output[i] == ModeItem::kMinus) {
      out[i] = ModeItem::kMinus;
    } else {
      out[i] = ModeItem::kAny;
    }
  }
  return out;
}

// ---- ModeTable --------------------------------------------------------------

void ModeTable::Add(const PredId& id, const ModePair& pair) {
  auto& list = pairs_[id];
  for (ModePair& existing : list) {
    if (existing.input == pair.input) {
      // Merge: both guarantees hold, take the stronger one pointwise.
      for (size_t i = 0; i < existing.output.size(); ++i) {
        if (pair.output[i] == ModeItem::kPlus) {
          existing.output[i] = ModeItem::kPlus;
        } else if (existing.output[i] != ModeItem::kPlus &&
                   existing.output[i] != pair.output[i]) {
          existing.output[i] = ModeItem::kAny;
        }
      }
      return;
    }
  }
  list.push_back(pair);
}

size_t ModeTable::Tighten(const PredId& id, const ModePair& pair) {
  auto& list = pairs_[id];
  for (ModePair& existing : list) {
    if (existing.input == pair.input) {
      size_t upgraded = 0;
      for (size_t i = 0; i < existing.output.size(); ++i) {
        if (existing.output[i] == ModeItem::kAny &&
            pair.output[i] != ModeItem::kAny) {
          existing.output[i] = pair.output[i];
          ++upgraded;
        }
      }
      return upgraded;
    }
  }
  size_t informative = 0;
  for (ModeItem m : pair.output) {
    if (m != ModeItem::kAny) ++informative;
  }
  list.push_back(pair);
  return informative;
}

const std::vector<ModePair>& ModeTable::PairsFor(const PredId& id) const {
  static const auto& kEmpty = *new std::vector<ModePair>();
  auto it = pairs_.find(id);
  return it == pairs_.end() ? kEmpty : it->second;
}

bool ModeTable::IsLegalCall(const PredId& id, const Mode& call_mode) const {
  for (const ModePair& pair : PairsFor(id)) {
    if (SatisfiesInput(call_mode, pair.input)) return true;
  }
  return false;
}

namespace {
std::optional<Mode> OutputOverPairs(const std::vector<ModePair>& pairs,
                                    const Mode& call_mode) {
  // Each matched pair's guarantee holds, so guarantees combine pointwise
  // by taking the most instantiated ('+' beats '-', '-' only if every
  // matching pair says '-').
  bool any = false;
  Mode combined(call_mode.size(), ModeItem::kMinus);
  for (const ModePair& pair : pairs) {
    if (!SatisfiesInput(call_mode, pair.input)) continue;
    if (!any) {
      combined = pair.output;
      any = true;
      continue;
    }
    for (size_t i = 0; i < combined.size(); ++i) {
      if (pair.output[i] == ModeItem::kPlus) {
        combined[i] = ModeItem::kPlus;
      } else if (combined[i] != ModeItem::kPlus &&
                 combined[i] != pair.output[i]) {
        combined[i] = ModeItem::kAny;
      }
    }
  }
  if (!any) return std::nullopt;
  return ApplyOutput(call_mode, combined);
}
}  // namespace

std::optional<Mode> ModeTable::OutputFor(const PredId& id,
                                         const Mode& call_mode) const {
  return OutputOverPairs(PairsFor(id), call_mode);
}

// ---- BuiltinModes -------------------------------------------------------------

void BuiltinModes::Add(const std::string& name, uint32_t arity,
                       const std::string& input, const std::string& output) {
  auto in = ModeFromString(input);
  auto out = ModeFromString(output);
  pairs_[Key{name, arity}].push_back(
      ModePair{std::move(in).value(), std::move(out).value()});
}

BuiltinModes::BuiltinModes() {
  // Unification: one ground side grounds the other; nothing guaranteed
  // otherwise (the reorderer special-cases =/2 via ApplyUnification).
  Add("=", 2, "(+,?)", "(+,+)");
  Add("=", 2, "(?,+)", "(+,+)");
  Add("=", 2, "(?,?)", "(?,?)");
  Add("\\=", 2, "(?,?)", "(?,?)");
  // Structural comparison: mode-dependent tests, bind nothing.
  for (const char* n : {"==", "\\==", "@<", "@>", "@=<", "@>="}) {
    Add(n, 2, "(?,?)", "(?,?)");
  }
  Add("compare", 3, "(?,?,?)", "(+,?,?)");
  // Type tests: accept anything, bind nothing.
  for (const char* n : {"var", "nonvar", "atom", "integer", "number",
                        "atomic", "compound", "callable", "ground",
                        "is_list"}) {
    Add(n, 1, "(?)", "(?)");
  }
  // Arithmetic demands a ground expression.
  Add("is", 2, "(?,+)", "(+,+)");
  for (const char* n : {"<", ">", "=<", ">=", "=:=", "=\\="}) {
    Add(n, 2, "(+,+)", "(+,+)");
  }
  // Term construction/inspection (paper's functor/3 example, §V-B).
  Add("functor", 3, "(+,?,?)", "(+,+,+)");
  Add("functor", 3, "(?,+,+)", "(?,+,+)");
  Add("arg", 3, "(+,+,?)", "(+,+,?)");
  Add("=..", 2, "(+,?)", "(+,+)");
  Add("=..", 2, "(?,+)", "(?,+)");
  Add("copy_term", 2, "(?,?)", "(?,?)");
  // I/O.
  Add("write", 1, "(?)", "(?)");
  Add("print", 1, "(?)", "(?)");
  Add("writeln", 1, "(?)", "(?)");
  Add("nl", 0, "()", "()");
  Add("tab", 1, "(+)", "(+)");
  // All-solutions predicates: the goal argument must be callable; the
  // collected list is a list of copies (ground only if the template is).
  Add("findall", 3, "(?,+,?)", "(?,+,?)");
  Add("bagof", 3, "(?,+,?)", "(?,+,?)");
  Add("setof", 3, "(?,+,?)", "(?,+,?)");
  Add("sort", 2, "(+,?)", "(+,+)");
  Add("msort", 2, "(+,?)", "(+,+)");
  // Atom/string built-ins.
  Add("atom_length", 2, "(+,?)", "(+,+)");
  Add("atom_codes", 2, "(+,?)", "(+,+)");
  Add("atom_codes", 2, "(?,+)", "(+,+)");
  Add("atom_chars", 2, "(+,?)", "(+,+)");
  Add("atom_chars", 2, "(?,+)", "(+,+)");
  Add("char_code", 2, "(+,?)", "(+,+)");
  Add("char_code", 2, "(?,+)", "(+,+)");
  Add("number_codes", 2, "(+,?)", "(+,+)");
  Add("number_codes", 2, "(?,+)", "(+,+)");
  Add("atom_concat", 3, "(+,+,?)", "(+,+,+)");
  Add("succ", 2, "(+,?)", "(+,+)");
  Add("succ", 2, "(?,+)", "(+,+)");
}

const std::vector<ModePair>& BuiltinModes::PairsFor(const std::string& name,
                                                    uint32_t arity) const {
  static const auto& kEmpty = *new std::vector<ModePair>();
  auto it = pairs_.find(Key{name, arity});
  return it == pairs_.end() ? kEmpty : it->second;
}

bool BuiltinModes::IsLegalCall(const std::string& name, uint32_t arity,
                               const Mode& call_mode) const {
  const auto& pairs = PairsFor(name, arity);
  if (pairs.empty()) return true;  // unknown builtin: no demands recorded
  for (const ModePair& pair : pairs) {
    if (SatisfiesInput(call_mode, pair.input)) return true;
  }
  return false;
}

std::optional<Mode> BuiltinModes::OutputFor(const std::string& name,
                                            uint32_t arity,
                                            const Mode& call_mode) const {
  return OutputOverPairs(PairsFor(name, arity), call_mode);
}

// ---- ModeOfTerm / AbstractEnv --------------------------------------------------

ModeItem ModeOfTerm(const TermStore& store, TermRef t) {
  t = store.Deref(t);
  if (store.tag(t) == Tag::kVar) return ModeItem::kMinus;
  return store.IsGround(t) ? ModeItem::kPlus : ModeItem::kAny;
}

VarState AbstractEnv::Get(uint32_t var_id) const {
  auto it = states_.find(var_id);
  return it == states_.end() ? VarState::kFree : it->second;
}

void AbstractEnv::Set(uint32_t var_id, VarState s) {
  if (s == VarState::kFree) {
    states_.erase(var_id);  // normalize: absent == free
  } else {
    states_[var_id] = s;
  }
}

ModeItem AbstractEnv::ModeOf(const TermStore& store, TermRef t) const {
  t = store.Deref(t);
  if (store.tag(t) == Tag::kVar) {
    switch (Get(store.var_id(t))) {
      case VarState::kGround:
        return ModeItem::kPlus;
      case VarState::kFree:
        return ModeItem::kMinus;
      case VarState::kUnknown:
        return ModeItem::kAny;
    }
  }
  std::vector<TermRef> vars;
  store.CollectVars(t, &vars);
  if (vars.empty()) return ModeItem::kPlus;
  for (TermRef v : vars) {
    if (Get(store.var_id(v)) != VarState::kGround) return ModeItem::kAny;
  }
  return ModeItem::kPlus;
}

Mode AbstractEnv::CallModeOf(const TermStore& store, TermRef goal) const {
  goal = store.Deref(goal);
  Mode mode(store.arity(goal));
  for (uint32_t i = 0; i < store.arity(goal); ++i) {
    mode[i] = ModeOf(store, store.arg(goal, i));
  }
  return mode;
}

void AbstractEnv::ApplyCallOutput(const TermStore& store, TermRef goal,
                                  const Mode& output) {
  goal = store.Deref(goal);
  for (uint32_t i = 0; i < store.arity(goal) && i < output.size(); ++i) {
    std::vector<TermRef> vars;
    store.CollectVars(store.arg(goal, i), &vars);
    for (TermRef v : vars) {
      uint32_t id = store.var_id(v);
      switch (output[i]) {
        case ModeItem::kPlus:
          Set(id, VarState::kGround);
          break;
        case ModeItem::kAny:
          if (Get(id) == VarState::kFree) Set(id, VarState::kUnknown);
          break;
        case ModeItem::kMinus:
          break;  // untouched
      }
    }
  }
}

void AbstractEnv::ApplyUnification(const TermStore& store, TermRef lhs,
                                   TermRef rhs) {
  ModeItem ml = ModeOf(store, lhs);
  ModeItem mr = ModeOf(store, rhs);
  auto ground_side = [&](TermRef t) {
    std::vector<TermRef> vars;
    store.CollectVars(t, &vars);
    for (TermRef v : vars) Set(store.var_id(v), VarState::kGround);
  };
  auto unknown_side = [&](TermRef t) {
    std::vector<TermRef> vars;
    store.CollectVars(t, &vars);
    for (TermRef v : vars) {
      if (Get(store.var_id(v)) == VarState::kFree) {
        Set(store.var_id(v), VarState::kUnknown);
      }
    }
  };
  if (ml == ModeItem::kPlus && mr != ModeItem::kPlus) {
    ground_side(rhs);
  } else if (mr == ModeItem::kPlus && ml != ModeItem::kPlus) {
    ground_side(lhs);
  } else if (ml != ModeItem::kPlus || mr != ModeItem::kPlus) {
    // Neither side ground: the sides alias; anything free may get bound.
    unknown_side(lhs);
    unknown_side(rhs);
  }
}

AbstractEnv AbstractEnv::Join(const AbstractEnv& a, const AbstractEnv& b) {
  AbstractEnv out;
  auto merge = [&](uint32_t id) {
    VarState sa = a.Get(id), sb = b.Get(id);
    out.Set(id, sa == sb ? sa : VarState::kUnknown);
  };
  for (const auto& kv : a.states_) merge(kv.first);
  for (const auto& kv : b.states_) {
    if (a.states_.count(kv.first) == 0) merge(kv.first);
  }
  return out;
}

// ---- Declarations ---------------------------------------------------------------

namespace {
prore::Result<Mode> ModeFromSpecTerm(const TermStore& store, TermRef spec) {
  spec = store.Deref(spec);
  Mode mode;
  for (uint32_t i = 0; i < store.arity(spec); ++i) {
    TermRef a = store.Deref(store.arg(spec, i));
    if (store.tag(a) != Tag::kAtom) {
      return prore::Status::InvalidArgument(
          "mode item must be one of the atoms +, -, ?");
    }
    const std::string& n = store.symbols().Name(store.symbol(a));
    if (n == "+") {
      mode.push_back(ModeItem::kPlus);
    } else if (n == "-") {
      mode.push_back(ModeItem::kMinus);
    } else if (n == "?") {
      mode.push_back(ModeItem::kAny);
    } else {
      return prore::Status::InvalidArgument("bad mode item atom: " + n);
    }
  }
  return mode;
}

prore::Result<PredId> PredIdFromIndicator(const TermStore& store, TermRef t) {
  t = store.Deref(t);
  if (store.tag(t) == Tag::kStruct && store.arity(t) == 2 &&
      store.symbols().Name(store.symbol(t)) == "/") {
    TermRef name = store.Deref(store.arg(t, 0));
    TermRef arity = store.Deref(store.arg(t, 1));
    if (store.tag(name) == Tag::kAtom && store.tag(arity) == Tag::kInt) {
      return PredId{store.symbol(name),
                    static_cast<uint32_t>(store.int_value(arity))};
    }
  }
  return prore::Status::InvalidArgument(
      "expected a name/arity predicate indicator");
}
}  // namespace

prore::Result<Declarations> ParseDeclarations(const TermStore& store,
                                              const reader::Program& program) {
  Declarations decls;
  for (TermRef d : program.directives()) {
    d = store.Deref(d);
    if (store.tag(d) != Tag::kStruct) continue;
    const std::string& name = store.symbols().Name(store.symbol(d));
    uint32_t arity = store.arity(d);
    if (name == "legal_mode" && arity == 2) {
      TermRef in_spec = store.Deref(store.arg(d, 0));
      TermRef out_spec = store.Deref(store.arg(d, 1));
      if (!store.IsCallable(in_spec) || !store.IsCallable(out_spec) ||
          !(store.pred_id(in_spec) == store.pred_id(out_spec))) {
        return prore::Status::InvalidArgument(
            "legal_mode/2: both specs must name the same predicate");
      }
      PRORE_ASSIGN_OR_RETURN(Mode in, ModeFromSpecTerm(store, in_spec));
      PRORE_ASSIGN_OR_RETURN(Mode out, ModeFromSpecTerm(store, out_spec));
      decls.legal_modes.Add(store.pred_id(in_spec), ModePair{in, out});
    } else if (name == "mode" && arity == 1) {
      TermRef spec = store.Deref(store.arg(d, 0));
      if (!store.IsCallable(spec)) {
        return prore::Status::InvalidArgument("mode/1: bad specification");
      }
      PRORE_ASSIGN_OR_RETURN(Mode in, ModeFromSpecTerm(store, spec));
      // DEC-10 style declaration: treat as a legal input mode whose output
      // instantiates nothing beyond the input ('-' may still get bound).
      Mode out(in.size());
      for (size_t i = 0; i < in.size(); ++i) {
        out[i] = in[i] == ModeItem::kPlus ? ModeItem::kPlus : ModeItem::kAny;
      }
      decls.legal_modes.Add(store.pred_id(spec), ModePair{in, out});
    } else if (name == "entry" && arity == 1) {
      PRORE_ASSIGN_OR_RETURN(PredId id,
                             PredIdFromIndicator(store, store.arg(d, 0)));
      decls.entries.push_back(id);
    } else if (name == "recursive" && arity == 1) {
      PRORE_ASSIGN_OR_RETURN(PredId id,
                             PredIdFromIndicator(store, store.arg(d, 0)));
      decls.recursive.push_back(id);
    } else if ((name == "prob" || name == "cost") && arity == 2) {
      PRORE_ASSIGN_OR_RETURN(PredId id,
                             PredIdFromIndicator(store, store.arg(d, 0)));
      TermRef v = store.Deref(store.arg(d, 1));
      double value = 0.0;
      if (store.tag(v) == Tag::kInt) {
        value = static_cast<double>(store.int_value(v));
      } else if (store.tag(v) == Tag::kFloat) {
        value = store.float_value(v);
      } else {
        return prore::Status::InvalidArgument(name +
                                              "/2: value must be a number");
      }
      if (name == "prob") {
        decls.success_probs[id] = value;
      } else {
        decls.costs[id] = value;
      }
    }
    // Other directives are not ours; ignore.
  }
  return decls;
}

}  // namespace prore::analysis
