#include "analysis/content_hash.h"

#include <algorithm>
#include <string>

#include "reader/writer.h"

namespace prore::analysis {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t HashMix(uint64_t seed, uint64_t value) {
  // Non-commutative: Mix(a, b) != Mix(b, a), so sequences hash by order.
  return SplitMix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                            (seed >> 2)));
}

uint64_t HashBytes(uint64_t seed, std::string_view bytes) {
  uint64_t h = HashMix(seed, bytes.size());
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t chunk = 0;
    for (int b = 7; b >= 0; --b) {
      chunk = (chunk << 8) | static_cast<unsigned char>(bytes[i + b]);
    }
    h = HashMix(h, chunk);
  }
  uint64_t tail = 0;
  for (; i < bytes.size(); ++i) {
    tail = (tail << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return HashMix(h, tail);
}

ContentHashes ComputeContentHashes(const term::TermStore& store,
                                   const reader::Program& program,
                                   const DependencyGroups& groups,
                                   const PredSet* frozen, uint64_t salt) {
  ContentHashes out;

  // Whole-program context folded into every group: directives (legal-mode
  // declarations reach any predicate) and the defined-name universe
  // (version naming probes it for collisions). Adding or removing a
  // predicate dirties everything; editing one predicate's clauses does not.
  uint64_t global = HashMix(0x70726f7265646873ull, salt);
  for (term::TermRef d : program.directives()) {
    global = HashBytes(global, reader::WriteTerm(store, d));
  }
  {
    std::vector<std::string> names;
    names.reserve(program.pred_order().size());
    for (const term::PredId& p : program.pred_order()) {
      names.push_back(reader::PredName(store, p));
    }
    std::sort(names.begin(), names.end());
    for (const std::string& n : names) global = HashBytes(global, n);
  }

  for (const term::PredId& p : program.pred_order()) {
    uint64_t h = HashBytes(0x636c61757365ull, reader::PredName(store, p));
    for (const reader::Clause& c : program.ClausesOf(p)) {
      h = HashBytes(h, reader::WriteClause(store, c));
    }
    out.pred_hash.emplace(p, h);
  }

  // Groups are topologically ordered (deps[i] all < i), so one forward
  // pass suffices: a group's hash folds in its direct callee groups'
  // finished hashes, which transitively cover the whole cone. Member and
  // dep hashes are combined order-insensitively (sorted values) so an
  // unrelated edit that shifts Tarjan's emission order cannot cause a
  // spurious miss.
  out.group_hash.resize(groups.size());
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    uint64_t h = global;
    std::vector<uint64_t> parts;
    parts.reserve(groups.groups[gi].size());
    for (const term::PredId& p : groups.groups[gi]) {
      parts.push_back(out.pred_hash.at(p));
    }
    std::sort(parts.begin(), parts.end());
    for (uint64_t part : parts) h = HashMix(h, part);
    std::vector<uint64_t> dep_parts;
    dep_parts.reserve(groups.deps[gi].size());
    for (size_t d : groups.deps[gi]) dep_parts.push_back(out.group_hash[d]);
    std::sort(dep_parts.begin(), dep_parts.end());
    for (uint64_t part : dep_parts) h = HashMix(h, part);

    if (frozen != nullptr && !frozen->empty()) {
      // Frozen status of members and of the cone's predicates changes the
      // group's output (their order is pinned); fold the frozen names in.
      std::vector<std::string> frozen_names;
      auto collect = [&](const std::vector<term::PredId>& preds) {
        for (const term::PredId& p : preds) {
          if (frozen->count(p) > 0) {
            frozen_names.push_back(reader::PredName(store, p));
          }
        }
      };
      collect(groups.groups[gi]);
      for (size_t d : groups.TransitiveDeps(gi)) collect(groups.groups[d]);
      std::sort(frozen_names.begin(), frozen_names.end());
      for (const std::string& n : frozen_names) h = HashBytes(h, n);
    }
    out.group_hash[gi] = h;
  }
  return out;
}

}  // namespace prore::analysis
