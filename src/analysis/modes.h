#ifndef PRORE_ANALYSIS_MODES_H_
#define PRORE_ANALYSIS_MODES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::analysis {

/// Abstract instantiation of one argument position — the paper's
/// three-symbol mode system (§V-C): '+' instantiated, '-' uninstantiated,
/// '?' either / partly instantiated.
enum class ModeItem : uint8_t {
  kPlus,   ///< +  bound (at least the principal functor known)
  kMinus,  ///< -  a free variable
  kAny,    ///< ?  unknown or partly instantiated
};

char ModeItemChar(ModeItem m);

/// A mode tuple, one item per argument.
using Mode = std::vector<ModeItem>;

std::string ModeString(const Mode& mode);          // e.g. "(+,-,?)"
std::string ModeSuffix(const Mode& mode);          // e.g. "iu" / "iua"
prore::Result<Mode> ModeFromString(const std::string& s);  // "(+,-,?)"

/// A legal input mode paired with the output mode a successful call in
/// that input mode guarantees (§V-C: "input and output modes as pairs").
struct ModePair {
  Mode input;
  Mode output;
};

/// True if a call whose argument instantiations are `call_mode` satisfies
/// the demands of legal input mode `input`: every '+' position of `input`
/// must be '+' in the call. '-' and '?' demand nothing — legality is
/// upward-closed in instantiation (a more-instantiated call never loops
/// or errors where a less-instantiated one was legal).
bool SatisfiesInput(const Mode& call_mode, const Mode& input);

/// The instantiation after success: position i is '+' if it was '+' in the
/// call or the pair's output guarantees '+'; '-' only if both agree on '-';
/// otherwise '?'.
Mode ApplyOutput(const Mode& call_mode, const Mode& output);

/// Legal-mode table for the predicates of a program: declared via
/// `:- legal_mode(pred(+,-), pred(+,+)).` directives (input, output),
/// inferred by mode inference, or built in (for library predicates).
class ModeTable {
 public:
  /// Registers a legal (input, output) pair. Duplicate inputs merge by
  /// intersecting output guarantees.
  void Add(const term::PredId& id, const ModePair& pair);

  /// Strengthens the stored output for `pair.input` in place: positions
  /// where the stored guarantee is '?' take the pair's '+'/'-' value;
  /// existing '+'/'-' guarantees are kept. Adds the pair when the input is
  /// new. Returns how many positions got stronger — the upgrade path for
  /// analyses (absint groundness) that prove more than mode inference did.
  size_t Tighten(const term::PredId& id, const ModePair& pair);

  /// All pairs registered for `id` (empty if none — meaning "no information",
  /// not "no legal mode").
  const std::vector<ModePair>& PairsFor(const term::PredId& id) const;

  bool Has(const term::PredId& id) const { return pairs_.count(id) > 0; }

  /// True if `call_mode` satisfies some legal input mode of `id`.
  bool IsLegalCall(const term::PredId& id, const Mode& call_mode) const;

  /// The mode after a successful call: the pointwise meet ('+' only when
  /// guaranteed by every matching pair) over all matching pairs, applied
  /// to the call mode. nullopt if no pair matches.
  std::optional<Mode> OutputFor(const term::PredId& id,
                                const Mode& call_mode) const;

  size_t size() const { return pairs_.size(); }

 private:
  std::unordered_map<term::PredId, std::vector<ModePair>, term::PredIdHash>
      pairs_;
};

/// Demand/output table for built-in predicates: the modes in which each
/// built-in functions, per the paper §V-B ("most built-in predicates have
/// modes in which they cannot function"). Keyed by name/arity.
/// Example: is/2 demands (?,+) and returns (+,+); var/1 accepts (?)
/// returning (?).
class BuiltinModes {
 public:
  BuiltinModes();

  /// Legal pairs for a built-in; empty vector if the built-in is unknown
  /// (treated as demanding nothing).
  const std::vector<ModePair>& PairsFor(const std::string& name,
                                        uint32_t arity) const;

  bool IsLegalCall(const std::string& name, uint32_t arity,
                   const Mode& call_mode) const;
  std::optional<Mode> OutputFor(const std::string& name, uint32_t arity,
                                const Mode& call_mode) const;

 private:
  void Add(const std::string& name, uint32_t arity, const std::string& input,
           const std::string& output);

  struct Key {
    std::string name;
    uint32_t arity;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<std::string>()(k.name) ^ (k.arity * 0x9e3779b9u);
    }
  };
  std::unordered_map<Key, std::vector<ModePair>, KeyHash> pairs_;
};

/// Parses the mode-related directives of a program:
///   :- legal_mode(p(+,-), p(+,+)).       input/output pair
///   :- mode(p(+,-)).                      DEC-10 style; output assumed (+,?)
///   :- entry(p/2).                        entry point hint
///   :- recursive(p/2).                    recursion hint
/// Unknown directives are ignored (they may belong to other tools).
struct Declarations {
  ModeTable legal_modes;
  std::vector<term::PredId> entries;
  std::vector<term::PredId> recursive;
  /// :- prob(p/2, 0.35).  unification/success probability hints
  std::unordered_map<term::PredId, double, term::PredIdHash> success_probs;
  /// :- cost(p/2, 12.5).  cost hints (in calls)
  std::unordered_map<term::PredId, double, term::PredIdHash> costs;
};

prore::Result<Declarations> ParseDeclarations(const term::TermStore& store,
                                              const reader::Program& program);

/// The abstract instantiation of one argument term right now:
/// '+' if ground, '-' if an unbound variable, '?' otherwise. ('+' means
/// *ground* throughout the analyses — the three-symbol system of §V-C/D;
/// the paper's partly-instantiated structures map to '?'.)
ModeItem ModeOfTerm(const term::TermStore& store, term::TermRef t);

/// Abstract state of one clause variable during mode propagation.
enum class VarState : uint8_t {
  kGround,   ///< definitely ground
  kFree,     ///< definitely a free variable
  kUnknown,  ///< anything
};

/// Abstract binding environment: clause-variable id -> state. Variables
/// not present are kFree (fresh body variables start free).
class AbstractEnv {
 public:
  VarState Get(uint32_t var_id) const;
  void Set(uint32_t var_id, VarState s);

  /// The mode of `t` under this environment.
  ModeItem ModeOf(const term::TermStore& store, term::TermRef t) const;

  /// The call mode of every argument of `goal`.
  Mode CallModeOf(const term::TermStore& store, term::TermRef goal) const;

  /// Applies an output mode to the arguments of `goal`: '+' grounds the
  /// argument's variables; '?' downgrades free ones to unknown; '-' leaves
  /// them untouched.
  void ApplyCallOutput(const term::TermStore& store, term::TermRef goal,
                       const Mode& output);

  /// Special-cases =/2: after X = T the two sides share instantiation.
  void ApplyUnification(const term::TermStore& store, term::TermRef lhs,
                        term::TermRef rhs);

  /// Join at a control-flow merge (disjunction / if-then-else): pointwise,
  /// ground⊔ground = ground, free⊔free = free, anything else unknown.
  static AbstractEnv Join(const AbstractEnv& a, const AbstractEnv& b);

  bool operator==(const AbstractEnv&) const = default;

 private:
  std::unordered_map<uint32_t, VarState> states_;
};

}  // namespace prore::analysis

#endif  // PRORE_ANALYSIS_MODES_H_
