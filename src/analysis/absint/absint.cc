#include "analysis/absint/absint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/str_util.h"

namespace prore::analysis::absint {

using term::PredId;
using term::TermStore;

namespace {

void AddSeed(const TermStore& store, std::vector<CallKey>* seeds,
             std::vector<std::string>* seen, const PredId& id,
             const Mode& pattern) {
  std::string key = KeyName(store, id, pattern);
  if (std::find(seen->begin(), seen->end(), key) != seen->end()) return;
  seen->push_back(key);
  seeds->push_back(CallKey{id, pattern});
}

/// The analysis roots: every call pattern mode inference observed (when
/// available), plus the entry-point enumeration it would have used — the
/// same universe of patterns the reorderer's legality checks ask about.
std::vector<CallKey> CollectSeeds(const TermStore& store,
                                  const reader::Program& program,
                                  const CallGraph& graph,
                                  const Declarations& decls,
                                  const ModeAnalysis* modes,
                                  const AbsintOptions& opts) {
  std::vector<CallKey> seeds;
  std::vector<std::string> seen;
  if (modes != nullptr) {
    for (const auto& [id, inputs] : modes->observed_inputs) {
      if (!program.Has(id)) continue;
      for (const Mode& m : inputs) AddSeed(store, &seeds, &seen, id, m);
    }
  }
  const std::vector<PredId>& roots =
      decls.entries.empty() ? graph.EntryPoints() : decls.entries;
  for (const PredId& root : roots) {
    if (!program.Has(root)) continue;
    const auto& declared = decls.legal_modes.PairsFor(root);
    if (!declared.empty()) {
      for (const ModePair& pair : declared) {
        AddSeed(store, &seeds, &seen, root, pair.input);
      }
    } else if (root.arity <= opts.max_enumerated_arity) {
      uint32_t combos = 1u << root.arity;
      for (uint32_t bits = 0; bits < combos; ++bits) {
        Mode m(root.arity);
        for (uint32_t i = 0; i < root.arity; ++i) {
          m[i] = (bits >> i) & 1 ? ModeItem::kPlus : ModeItem::kMinus;
        }
        AddSeed(store, &seeds, &seen, root, m);
      }
    } else {
      AddSeed(store, &seeds, &seen, root, Mode(root.arity, ModeItem::kAny));
    }
  }
  return seeds;
}

}  // namespace

prore::Result<AbsintResult> RunAbsint(const TermStore& store,
                                      const reader::Program& program,
                                      const CallGraph& graph,
                                      const Declarations& decls,
                                      const ModeAnalysis* modes,
                                      const AbsintOptions& opts) {
  AbsintResult result;
  DependencyGroups groups = ComputeDependencyGroups(graph);
  std::vector<CallKey> seeds =
      CollectSeeds(store, program, graph, decls, modes, opts);

  SolverOptions solver_opts;
  solver_opts.widen_after = opts.widen_after;
  solver_opts.max_updates_per_key = opts.max_updates_per_key;
  solver_opts.watchdog = opts.watchdog;
  solver_opts.exec = opts.exec;

  GroundnessDomain ground_domain(&store, &program);
  Solver<GroundnessDomain> ground_solver(&store, &graph, &groups,
                                         &ground_domain, solver_opts);
  PRORE_RETURN_IF_ERROR(ground_solver.Run(seeds));
  result.groundness.by_key = ground_solver.summaries();
  result.groundness.keys = ground_solver.keys();
  result.stats.groundness_keys = ground_solver.stats().keys;
  result.stats.groundness_transfers = ground_solver.stats().transfers;
  result.stats.widenings += ground_solver.stats().widenings;
  result.stats.saturations += ground_solver.stats().saturations;

  DeterminismDomain det_domain(&store, &program, &result.groundness);
  Solver<DeterminismDomain> det_solver(&store, &graph, &groups, &det_domain,
                                       solver_opts);
  PRORE_RETURN_IF_ERROR(det_solver.Run(seeds));
  result.determinism.by_key = det_solver.summaries();
  result.determinism.keys = det_solver.keys();
  result.stats.determinism_keys = det_solver.stats().keys;
  result.stats.determinism_transfers = det_solver.stats().transfers;
  result.stats.widenings += det_solver.stats().widenings;
  result.stats.saturations += det_solver.stats().saturations;

  for (const auto& [key, ck] : result.determinism.keys) {
    (void)key;
    if (!program.Has(ck.pred)) continue;
    if (result.determinism.witnesses.count(ck.pred) > 0) continue;
    result.determinism.witnesses.emplace(ck.pred,
                                         det_domain.WitnessesOf(ck.pred));
  }
  return result;
}

size_t TightenModes(const TermStore& store,
                    const GroundnessSummaries& groundness, ModeTable* table) {
  (void)store;
  size_t upgraded = 0;
  for (const auto& [key, value] : groundness.by_key) {
    if (!value.can_succeed) continue;
    const CallKey& ck = groundness.keys.at(key);
    upgraded += table->Tighten(ck.pred, ModePair{ck.pattern, value.success});
  }
  return upgraded;
}

std::string DumpAbsint(const AbsintResult& result) {
  std::string out = "absint groundness (success patterns):\n";
  for (const auto& [key, value] : result.groundness.by_key) {
    out += prore::StrFormat(
        "  %-28s %s\n", key.c_str(),
        value.can_succeed ? ModeString(value.success).c_str() : "fails");
  }
  out += "absint determinism:\n";
  for (const auto& [key, det] : result.determinism.by_key) {
    out += prore::StrFormat("  %-28s %s\n", key.c_str(), DetName(det));
  }
  out += prore::StrFormat(
      "absint stats: groundness %zu keys / %zu transfers, determinism "
      "%zu keys / %zu transfers, %zu widenings, %zu saturations\n",
      result.stats.groundness_keys, result.stats.groundness_transfers,
      result.stats.determinism_keys, result.stats.determinism_transfers,
      result.stats.widenings, result.stats.saturations);
  return out;
}

}  // namespace prore::analysis::absint
