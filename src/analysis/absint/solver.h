#ifndef PRORE_ANALYSIS_ABSINT_SOLVER_H_
#define PRORE_ANALYSIS_ABSINT_SOLVER_H_

#include <concepts>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/modes.h"
#include "common/result.h"
#include "common/status.h"
#include "common/watchdog.h"
#include "term/store.h"

namespace prore::analysis::absint {

/// One analysis unit: a predicate analyzed under one abstract call pattern
/// (the polyvariance of Le Charlier/Van Hentenryck's generic algorithm —
/// summaries are memoized per (predicate, pattern), not per predicate).
struct CallKey {
  term::PredId pred;
  Mode pattern;
};

/// Canonical memo-table key, e.g. "aunt/2:iu". Doubles as the stable sort
/// order of every dump, so reports are deterministic across runs and jobs.
inline std::string KeyName(const term::TermStore& store, const term::PredId& id,
                           const Mode& pattern) {
  return store.symbols().Name(id.name) + "/" + std::to_string(id.arity) +
         ":" + ModeSuffix(pattern);
}

/// What a Domain's Transfer uses to read callee summaries. Looking a key up
/// registers the dependency edge (caller re-runs when the callee's summary
/// grows) and seeds an optimistic Bottom summary for keys not yet analyzed.
template <typename Value>
using Lookup =
    std::function<const Value&(const term::PredId&, const Mode&)>;

/// An abstract domain pluggable into the Solver: a join-semilattice of
/// per-(predicate, pattern) summaries plus a monotone transfer function.
/// Bottom is the optimistic start, Join accumulates the ascending chain,
/// Widen accelerates it at SCC heads, and Top is the forced finite ceiling
/// (the solver lands there if a summary keeps growing past its iteration
/// budget, so termination never depends on a domain being well-behaved).
template <typename D>
concept Domain = requires(D d, const term::PredId& id, const Mode& pattern,
                          const typename D::Value& a,
                          const typename D::Value& b,
                          const Lookup<typename D::Value>& lookup) {
  typename D::Value;
  { d.Bottom(id, pattern) } -> std::same_as<typename D::Value>;
  { d.Top(id, pattern) } -> std::same_as<typename D::Value>;
  { d.Join(a, b) } -> std::same_as<typename D::Value>;
  { d.Widen(a, b) } -> std::same_as<typename D::Value>;
  { d.Equal(a, b) } -> std::same_as<bool>;
  { d.Transfer(id, pattern, lookup) } ->
      std::same_as<prore::Result<typename D::Value>>;
};

struct SolverOptions {
  /// Join rounds of one key before Widen kicks in at SCC heads.
  size_t widen_after = 4;
  /// Hard per-key update cap; past it the summary jumps to Top. A backstop
  /// far above what the finite domains here need.
  size_t max_updates_per_key = 64;
  /// Whole-solve step budget (one step per Transfer); a trip surfaces as
  /// kResourceExhausted carrying resource_error(watchdog(absint)).
  prore::WatchdogBudget watchdog;
  /// Cancellation/deadline scope threaded into the watchdog.
  prore::ExecContext exec;
};

/// Interprocedural worklist fixpoint solver over the SCC condensation.
/// Keys are processed callees-first (lowest dependency-group rank first;
/// ties in canonical key order, so the iteration is deterministic for a
/// given program regardless of discovery order), new (pred, pattern) keys
/// are created on demand when a Transfer looks them up, and a key is
/// re-queued whenever a summary it read grows. Widening applies at SCC
/// heads (recursive predicates) once a key has been joined `widen_after`
/// times.
template <Domain D>
class Solver {
 public:
  using Value = typename D::Value;

  struct Stats {
    size_t keys = 0;        ///< distinct (pred, pattern) summaries
    size_t transfers = 0;   ///< Transfer evaluations run
    size_t widenings = 0;   ///< Widen applications
    size_t saturations = 0; ///< keys forced to Top by the update cap
  };

  Solver(const term::TermStore* store, const CallGraph* graph,
         const DependencyGroups* groups, D* domain, SolverOptions opts)
      : store_(store),
        graph_(graph),
        groups_(groups),
        domain_(domain),
        opts_(opts) {
    watchdog_.Arm(opts_.watchdog, "absint", opts_.exec);
  }

  /// Runs the fixpoint from `seeds` (plus everything reachable from them).
  prore::Status Run(const std::vector<CallKey>& seeds) {
    for (const CallKey& seed : seeds) Ensure(seed.pred, seed.pattern);
    while (!worklist_.empty()) {
      auto it = worklist_.begin();
      std::string key = it->second;
      worklist_.erase(it);
      queued_.erase(key);
      PRORE_RETURN_IF_ERROR(Update(key));
    }
    stats_.keys = memo_.size();
    return prore::Status::OK();
  }

  /// Summary of (id, pattern); nullptr if the fixpoint never reached it.
  const Value* Find(const term::PredId& id, const Mode& pattern) const {
    auto it = memo_.find(KeyName(*store_, id, pattern));
    return it == memo_.end() ? nullptr : &it->second;
  }

  /// All summaries in canonical key order.
  const std::map<std::string, Value>& summaries() const { return memo_; }
  /// The CallKey behind each canonical key.
  const std::map<std::string, CallKey>& keys() const { return keys_; }
  const Stats& stats() const { return stats_; }

 private:
  /// Dependency-group rank of a predicate; preds outside the program (no
  /// group) rank lowest — their summaries never change, analyze first.
  size_t RankOf(const term::PredId& id) const {
    auto it = groups_->group_of.find(id);
    return it == groups_->group_of.end() ? 0 : it->second + 1;
  }

  const Value& Ensure(const term::PredId& id, const Mode& pattern) {
    std::string key = KeyName(*store_, id, pattern);
    auto it = memo_.find(key);
    if (it == memo_.end()) {
      it = memo_.emplace(key, domain_->Bottom(id, pattern)).first;
      keys_.emplace(key, CallKey{id, pattern});
      Enqueue(key);
    }
    return it->second;
  }

  void Enqueue(const std::string& key) {
    if (!queued_.insert(key).second) return;
    worklist_.emplace(RankOf(keys_.at(key).pred), key);
  }

  prore::Status Update(const std::string& key) {
    PRORE_RETURN_IF_ERROR(watchdog_.Step());
    const CallKey ck = keys_.at(key);
    ++stats_.transfers;
    Lookup<Value> lookup = [this, &key](const term::PredId& callee,
                                        const Mode& pattern) -> const Value& {
      const Value& v = Ensure(callee, pattern);
      dependents_[KeyName(*store_, callee, pattern)].insert(key);
      return v;
    };
    PRORE_ASSIGN_OR_RETURN(Value next,
                           domain_->Transfer(ck.pred, ck.pattern, lookup));
    const Value& old = memo_.at(key);
    size_t& updates = update_count_[key];
    Value merged = domain_->Join(old, next);
    if (updates >= opts_.widen_after && graph_->IsRecursive(ck.pred)) {
      // SCC head on a still-ascending chain: accelerate.
      merged = domain_->Widen(old, merged);
      ++stats_.widenings;
    }
    if (updates >= opts_.max_updates_per_key) {
      merged = domain_->Top(ck.pred, ck.pattern);
      ++stats_.saturations;
    }
    if (domain_->Equal(old, merged)) return prore::Status::OK();
    memo_.at(key) = std::move(merged);
    ++updates;
    auto dep = dependents_.find(key);
    if (dep != dependents_.end()) {
      for (const std::string& d : dep->second) Enqueue(d);
    }
    return prore::Status::OK();
  }

  const term::TermStore* store_;
  const CallGraph* graph_;
  const DependencyGroups* groups_;
  D* domain_;
  SolverOptions opts_;
  prore::Watchdog watchdog_;

  std::map<std::string, Value> memo_;
  std::map<std::string, CallKey> keys_;
  std::map<std::string, std::set<std::string>> dependents_;
  std::map<std::string, size_t> update_count_;
  /// (rank, key) priority worklist: callees-first, canonical within rank.
  std::set<std::pair<size_t, std::string>> worklist_;
  std::set<std::string> queued_;
  Stats stats_;
};

}  // namespace prore::analysis::absint

#endif  // PRORE_ANALYSIS_ABSINT_SOLVER_H_
