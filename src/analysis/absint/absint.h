#ifndef PRORE_ANALYSIS_ABSINT_ABSINT_H_
#define PRORE_ANALYSIS_ABSINT_ABSINT_H_

#include <cstdint>
#include <string>

#include "analysis/absint/determinism.h"
#include "analysis/absint/groundness.h"
#include "analysis/callgraph.h"
#include "analysis/mode_inference.h"
#include "analysis/modes.h"
#include "common/result.h"
#include "common/watchdog.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::analysis::absint {

struct AbsintOptions {
  /// Join rounds per key before widening at SCC heads.
  size_t widen_after = 4;
  /// Per-key update cap (forced Top past it).
  size_t max_updates_per_key = 64;
  /// Entry predicates without declared modes are seeded in every {+,-}
  /// pattern up to this arity (mirrors mode inference).
  uint32_t max_enumerated_arity = 6;
  /// Step/wall-clock budget, armed once per fixpoint (groundness and
  /// determinism each get the full budget; one step per Transfer). Zero
  /// fields disable it; a trip surfaces as kResourceExhausted carrying
  /// resource_error(watchdog(absint)) — the GuardedPipeline's signal to
  /// degrade to a no-absint run.
  prore::WatchdogBudget watchdog;
  /// Cancellation/deadline scope for the fixpoint; observed through the
  /// watchdog on every transfer even when the budget is unlimited.
  prore::ExecContext exec;
};

struct AbsintStats {
  size_t groundness_keys = 0;
  size_t groundness_transfers = 0;
  size_t determinism_keys = 0;
  size_t determinism_transfers = 0;
  size_t widenings = 0;
  size_t saturations = 0;
};

/// Everything the two fixpoints learned, detached from the solvers so it
/// can outlive them and cross thread boundaries by value.
struct AbsintResult {
  GroundnessSummaries groundness;
  DeterminismAnalysis determinism;
  AbsintStats stats;
};

/// Runs the groundness fixpoint, then the determinism fixpoint on top of
/// it, over the SCC condensation of `graph`. Seeds come from `modes`'
/// observed call patterns when available (so every pattern the reorderer
/// will ask about has a summary), falling back to the same entry-point
/// {+,-} enumeration mode inference uses. Deterministic for a given
/// program: the solver orders work by (dependency-group rank, canonical
/// key), independent of hash-map iteration order.
prore::Result<AbsintResult> RunAbsint(const term::TermStore& store,
                                      const reader::Program& program,
                                      const CallGraph& graph,
                                      const Declarations& decls,
                                      const ModeAnalysis* modes,
                                      const AbsintOptions& opts = {});

/// Folds groundness success patterns into `table` via ModeTable::Tighten.
/// Returns the number of argument positions that got a stronger guarantee
/// — each one potentially expands the legal-reordering set.
size_t TightenModes(const term::TermStore& store,
                    const GroundnessSummaries& groundness, ModeTable* table);

/// Deterministic text dump of both analyses (canonical key order), for
/// prore --report and prolint debugging.
std::string DumpAbsint(const AbsintResult& result);

}  // namespace prore::analysis::absint

#endif  // PRORE_ANALYSIS_ABSINT_ABSINT_H_
