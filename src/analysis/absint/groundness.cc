#include "analysis/absint/groundness.h"

#include <utility>

#include "analysis/mode_inference.h"
#include "engine/builtins.h"

namespace prore::analysis::absint {

using term::PredId;
using term::TermRef;
using term::TermStore;

GroundnessDomain::GroundnessDomain(const TermStore* store,
                                   const reader::Program* program)
    : store_(store), program_(program) {
  AddLibraryModes(const_cast<TermStore*>(store), &library_modes_);
}

GroundnessValue GroundnessDomain::Bottom(const PredId& id,
                                         const Mode& /*pattern*/) const {
  // Optimistic: claims everything grounds and nothing succeeds; the
  // fixpoint weakens both upward.
  return {Mode(id.arity, ModeItem::kPlus), false};
}

GroundnessValue GroundnessDomain::Top(const PredId& id,
                                      const Mode& /*pattern*/) const {
  return {Mode(id.arity, ModeItem::kAny), true};
}

GroundnessValue GroundnessDomain::Join(const Value& a, const Value& b) const {
  if (!a.can_succeed) return b;
  if (!b.can_succeed) return a;
  Mode joined(a.success.size());
  for (size_t i = 0; i < a.success.size(); ++i) {
    joined[i] = a.success[i] == b.success[i] ? a.success[i] : ModeItem::kAny;
  }
  return {std::move(joined), true};
}

GroundnessValue GroundnessDomain::Widen(const Value& a, const Value& b) const {
  // Per-position jump to '?' wherever the chain is still moving. The
  // domain is finite (chain length <= arity + 1) so this only shortens
  // convergence, never changes the limit's soundness.
  if (!a.can_succeed) return b;
  if (!b.can_succeed) return a;
  Mode widened(a.success.size());
  for (size_t i = 0; i < a.success.size(); ++i) {
    widened[i] = a.success[i] == b.success[i] ? a.success[i] : ModeItem::kAny;
  }
  return {std::move(widened), true};
}

bool GroundnessDomain::Equal(const Value& a, const Value& b) const {
  return a == b;
}

prore::Result<const std::vector<std::unique_ptr<BodyNode>>*>
GroundnessDomain::BodiesOf(const PredId& id) {
  auto it = bodies_.find(id);
  if (it != bodies_.end()) return &it->second;
  std::vector<std::unique_ptr<BodyNode>> parsed;
  for (const reader::Clause& clause : program_->ClausesOf(id)) {
    PRORE_ASSIGN_OR_RETURN(auto body, ParseBody(*store_, clause.body));
    parsed.push_back(std::move(body));
  }
  return &bodies_.emplace(id, std::move(parsed)).first->second;
}

prore::Result<GroundnessValue> GroundnessDomain::Transfer(
    const PredId& id, const Mode& pattern, const Lookup<Value>& lookup) {
  if (!program_->Has(id)) {
    // Builtin or library predicate: its summary is the static mode table
    // (these never change, so the solver analyzes them exactly once).
    const std::string& name = store_->symbols().Name(id.name);
    std::optional<Mode> out;
    if (engine::LookupBuiltin(name, id.arity) != nullptr) {
      out = builtin_modes_.OutputFor(name, id.arity, pattern);
    } else {
      out = library_modes_.OutputFor(id, pattern);
    }
    return GroundnessValue{
        ApplyOutput(pattern, out.value_or(Mode(id.arity, ModeItem::kAny))),
        true};
  }
  const auto& clauses = program_->ClausesOf(id);
  if (clauses.empty()) {
    // No static clauses — possibly a dynamic predicate filled by assert at
    // run time, so "always fails" would be unsound. Stay at Top.
    return Top(id, pattern);
  }
  PRORE_ASSIGN_OR_RETURN(const auto* bodies, BodiesOf(id));
  GroundnessValue combined = Bottom(id, pattern);
  for (size_t c = 0; c < clauses.size(); ++c) {
    AbstractEnv env = EnvFromHead(*store_, clauses[c].head, pattern);
    bool may_succeed = true;
    PRORE_RETURN_IF_ERROR(
        WalkBody(*(*bodies)[c], &env, &may_succeed, lookup));
    if (!may_succeed) continue;
    TermRef head = store_->Deref(clauses[c].head);
    Mode clause_out(id.arity);
    for (uint32_t i = 0; i < id.arity; ++i) {
      clause_out[i] = env.ModeOf(*store_, store_->arg(head, i));
    }
    combined = Join(combined,
                    GroundnessValue{ApplyOutput(pattern, clause_out), true});
  }
  return combined;
}

prore::Status GroundnessDomain::WalkBody(const BodyNode& node,
                                         AbstractEnv* env, bool* may_succeed,
                                         const Lookup<Value>& lookup) {
  switch (node.kind) {
    case BodyKind::kTrue:
    case BodyKind::kCut:
      return prore::Status::OK();
    case BodyKind::kFail:
      *may_succeed = false;
      return prore::Status::OK();
    case BodyKind::kConj:
      for (const auto& child : node.children) {
        PRORE_RETURN_IF_ERROR(WalkBody(*child, env, may_succeed, lookup));
        if (!*may_succeed) return prore::Status::OK();
      }
      return prore::Status::OK();
    case BodyKind::kDisj: {
      AbstractEnv left = *env;
      AbstractEnv right = *env;
      bool left_ok = true;
      bool right_ok = true;
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[0], &left, &left_ok, lookup));
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[1], &right, &right_ok, lookup));
      // Only branches that can succeed contribute to the merged state.
      if (left_ok && right_ok) {
        *env = AbstractEnv::Join(left, right);
      } else if (left_ok) {
        *env = left;
      } else if (right_ok) {
        *env = right;
      } else {
        *may_succeed = false;
      }
      return prore::Status::OK();
    }
    case BodyKind::kIfThenElse: {
      AbstractEnv then_env = *env;
      AbstractEnv else_env = *env;
      bool then_ok = true;
      bool else_ok = true;
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[0], &then_env, &then_ok, lookup));
      if (then_ok) {
        PRORE_RETURN_IF_ERROR(
            WalkBody(*node.children[1], &then_env, &then_ok, lookup));
      }
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[2], &else_env, &else_ok, lookup));
      if (then_ok && else_ok) {
        *env = AbstractEnv::Join(then_env, else_env);
      } else if (then_ok) {
        *env = then_env;
      } else if (else_ok) {
        *env = else_env;
      } else {
        *may_succeed = false;
      }
      return prore::Status::OK();
    }
    case BodyKind::kNeg: {
      // \+ G binds nothing and succeeds exactly when G fails — which the
      // analysis cannot refute, so it stays a possible success.
      AbstractEnv scratch = *env;
      bool scratch_ok = true;
      return WalkBody(*node.children[0], &scratch, &scratch_ok, lookup);
    }
    case BodyKind::kSetPred: {
      AbstractEnv scratch = *env;
      bool scratch_ok = true;
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[0], &scratch, &scratch_ok, lookup));
      TermRef goal = store_->Deref(node.goal);
      std::vector<TermRef> vars;
      store_->CollectVars(store_->arg(goal, 2), &vars);
      for (TermRef v : vars) {
        if (env->Get(store_->var_id(v)) == VarState::kFree) {
          env->Set(store_->var_id(v), VarState::kUnknown);
        }
      }
      return prore::Status::OK();
    }
    case BodyKind::kCatch: {
      AbstractEnv goal_env = *env;
      bool goal_ok = true;
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[0], &goal_env, &goal_ok, lookup));
      AbstractEnv rec_env = *env;
      bool rec_ok = true;
      TermRef goal = store_->Deref(node.goal);
      std::vector<TermRef> catcher_vars;
      store_->CollectVars(store_->arg(goal, 1), &catcher_vars);
      for (TermRef v : catcher_vars) {
        if (rec_env.Get(store_->var_id(v)) == VarState::kFree) {
          rec_env.Set(store_->var_id(v), VarState::kUnknown);
        }
      }
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[1], &rec_env, &rec_ok, lookup));
      // Even a goal that cannot *succeed* may still throw, so the recovery
      // branch stays reachable regardless of goal_ok.
      if (goal_ok && rec_ok) {
        *env = AbstractEnv::Join(goal_env, rec_env);
      } else if (goal_ok) {
        *env = goal_env;
      } else if (rec_ok) {
        *env = rec_env;
      } else {
        *may_succeed = false;
      }
      return prore::Status::OK();
    }
    case BodyKind::kCall:
      break;
  }

  TermRef goal = store_->Deref(node.goal);
  PredId callee = store_->pred_id(goal);
  const std::string& name = store_->symbols().Name(callee.name);
  if (name == "=" && callee.arity == 2) {
    env->ApplyUnification(*store_, store_->arg(goal, 0),
                          store_->arg(goal, 1));
    return prore::Status::OK();
  }
  Mode call_mode = env->CallModeOf(*store_, goal);
  if (program_->Has(callee)) {
    const GroundnessValue& summary = lookup(callee, call_mode);
    if (!summary.can_succeed) {
      *may_succeed = false;
      return prore::Status::OK();
    }
    env->ApplyCallOutput(*store_, goal, summary.success);
    return prore::Status::OK();
  }
  std::optional<Mode> out;
  if (engine::LookupBuiltin(name, callee.arity) != nullptr) {
    out = builtin_modes_.OutputFor(name, callee.arity, call_mode);
  } else {
    out = library_modes_.OutputFor(callee, call_mode);
  }
  env->ApplyCallOutput(*store_, goal,
                       out.value_or(Mode(callee.arity, ModeItem::kAny)));
  return prore::Status::OK();
}

const GroundnessValue* GroundnessSummaries::Find(const TermStore& store,
                                                 const PredId& id,
                                                 const Mode& pattern) const {
  auto it = by_key.find(KeyName(store, id, pattern));
  return it == by_key.end() ? nullptr : &it->second;
}

namespace {

/// True if every call abstracted by `call_mode` is also abstracted by
/// `pattern` (γ-inclusion): '?' covers anything, '+'/'-' only themselves.
bool PatternCovers(const Mode& pattern, const Mode& call_mode) {
  if (pattern.size() != call_mode.size()) return false;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] != ModeItem::kAny && pattern[i] != call_mode[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<Mode> GroundnessSummaries::SuccessModeFor(
    const TermStore& store, const PredId& id, const Mode& call_mode) const {
  (void)store;
  // Every covering summary is individually a valid guarantee, so combine
  // them by taking the strongest claim per position ('+'/'-' beat '?';
  // contradictions cannot arise from sound summaries, and if one ever did
  // the position just keeps the first claim).
  std::optional<Mode> best;
  for (const auto& [key, ck] : keys) {
    if (!(ck.pred == id)) continue;
    if (!PatternCovers(ck.pattern, call_mode)) continue;
    const GroundnessValue& v = by_key.at(key);
    if (!v.can_succeed) continue;
    Mode applied = ApplyOutput(call_mode, v.success);
    if (!best.has_value()) {
      best = std::move(applied);
      continue;
    }
    for (size_t i = 0; i < best->size(); ++i) {
      if ((*best)[i] == ModeItem::kAny) (*best)[i] = applied[i];
    }
  }
  return best;
}

std::vector<Mode> GroundnessSummaries::PatternsFor(const TermStore& store,
                                                   const PredId& id) const {
  (void)store;
  std::vector<Mode> out;
  for (const auto& [key, ck] : keys) {
    if (ck.pred == id) out.push_back(ck.pattern);
  }
  return out;
}

}  // namespace prore::analysis::absint
