#ifndef PRORE_ANALYSIS_ABSINT_DETERMINISM_H_
#define PRORE_ANALYSIS_ABSINT_DETERMINISM_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/absint/groundness.h"
#include "analysis/absint/solver.h"
#include "analysis/body.h"
#include "analysis/modes.h"
#include "common/result.h"
#include "engine/exclusivity.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::analysis::absint {

/// Solution-count classification of one (predicate, call pattern), ordered
/// by the interval hull lattice over solution counts:
///   failure = [0,0]   det = [1,1]   semidet = [0,1]
///   multi   = [1,inf] nondet = [0,inf]
enum class Det : uint8_t {
  kFailure,
  kDet,
  kSemidet,
  kMulti,
  kNondet,
};

const char* DetName(Det d);  // "failure" / "det" / ...

/// The solution-count interval behind a Det: lo in {0, 1}, hi in
/// {0, 1, kInf} — exactly enough resolution to distinguish the five
/// classes while keeping every operation a table lookup.
struct DetInterval {
  static constexpr int kInf = 2;
  int lo = 0;
  int hi = 0;
};

DetInterval ToInterval(Det d);
Det FromInterval(DetInterval iv);
DetInterval SeqInterval(DetInterval a, DetInterval b);  ///< conjunction
DetInterval AltInterval(DetInterval a, DetInterval b);  ///< disjunction
DetInterval HullInterval(DetInterval a, DetInterval b); ///< either/or
DetInterval Cap01(DetInterval a);  ///< at most one solution survives (cut)
DetInterval Cap0(DetInterval a);   ///< may contribute nothing (head miss)

/// The determinism domain for the absint Solver. Consumes an already
/// solved GroundnessSummaries (nullable — without it every callee output
/// mode is '?') for environment threading, and the engine's head-
/// exclusivity witnesses for the clause-combination rule: clauses proven
/// mutually exclusive under the call pattern contribute max (not sum) of
/// their solution bounds; otherwise a backward recursion applies the cut
/// rule (once a clause-level cut fires, later clauses are discarded).
class DeterminismDomain {
 public:
  using Value = Det;

  DeterminismDomain(const term::TermStore* store,
                    const reader::Program* program,
                    const GroundnessSummaries* groundness);

  Det Bottom(const term::PredId& id, const Mode& pattern) const;
  Det Top(const term::PredId& id, const Mode& pattern) const;
  Det Join(const Det& a, const Det& b) const;
  Det Widen(const Det& a, const Det& b) const;
  bool Equal(const Det& a, const Det& b) const;
  prore::Result<Det> Transfer(const term::PredId& id, const Mode& pattern,
                              const Lookup<Det>& lookup);

  /// True if some exclusivity witness of `id` is fully '+' in `pattern`
  /// (so at most one clause head can match any concrete call).
  bool ExclusiveUnder(const term::PredId& id, const Mode& pattern);

  /// The witnesses computed for `id` (cached; empty if none).
  const std::vector<engine::Witness>& WitnessesOf(const term::PredId& id);

 private:
  struct PredInfo {
    std::vector<std::unique_ptr<BodyNode>> bodies;
    std::vector<bool> has_cut;       ///< clause-level cut anywhere in body
    std::vector<bool> certain_head;  ///< head args all distinct free vars
    std::vector<engine::Witness> witnesses;
  };

  prore::Result<const PredInfo*> InfoOf(const term::PredId& id);

  /// Solution-count interval of `node` under `env`; advances `env` the way
  /// abstract execution would. `lookup` supplies program-callee summaries.
  prore::Result<DetInterval> WalkBody(const BodyNode& node, AbstractEnv* env,
                                      const Lookup<Det>& lookup);

  /// Interval + env update for one builtin/library call.
  DetInterval CallInterval(term::TermRef goal, const term::PredId& callee,
                           const Mode& call_mode);

  const term::TermStore* store_;
  const reader::Program* program_;
  const GroundnessSummaries* groundness_;
  BuiltinModes builtin_modes_;
  ModeTable library_modes_;
  std::unordered_map<term::PredId, PredInfo, term::PredIdHash> info_;
};

/// Published determinism results, detached from the solver.
struct DeterminismAnalysis {
  std::map<std::string, Det> by_key;
  std::map<std::string, CallKey> keys;
  /// Head-exclusivity witnesses per analyzed predicate.
  std::unordered_map<term::PredId, std::vector<engine::Witness>,
                     term::PredIdHash>
      witnesses;

  /// Upper-bound classification of a call with mode `call_mode`: the exact
  /// summary when one exists; otherwise the hull over every analyzed
  /// pattern the call is at least as bound as, with the lower bound dropped
  /// (instantiating a query can only remove solutions, so `hi` transfers
  /// downward but `lo` does not). kNondet when nothing applies.
  Det DetFor(const term::TermStore& store, const term::PredId& id,
             const Mode& call_mode) const;

  /// True if some witness of `id` is fully '+' in `call_mode`.
  bool ExclusiveUnder(const term::PredId& id, const Mode& call_mode) const;
};

}  // namespace prore::analysis::absint

#endif  // PRORE_ANALYSIS_ABSINT_DETERMINISM_H_
