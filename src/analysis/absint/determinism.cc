#include "analysis/absint/determinism.h"

#include <algorithm>
#include <utility>

#include "analysis/mode_inference.h"
#include "engine/builtins.h"

namespace prore::analysis::absint {

using term::PredId;
using term::Tag;
using term::TermRef;
using term::TermStore;

const char* DetName(Det d) {
  switch (d) {
    case Det::kFailure: return "failure";
    case Det::kDet: return "det";
    case Det::kSemidet: return "semidet";
    case Det::kMulti: return "multi";
    case Det::kNondet: return "nondet";
  }
  return "nondet";
}

DetInterval ToInterval(Det d) {
  switch (d) {
    case Det::kFailure: return {0, 0};
    case Det::kDet: return {1, 1};
    case Det::kSemidet: return {0, 1};
    case Det::kMulti: return {1, DetInterval::kInf};
    case Det::kNondet: return {0, DetInterval::kInf};
  }
  return {0, DetInterval::kInf};
}

Det FromInterval(DetInterval iv) {
  if (iv.hi <= 0) return Det::kFailure;
  if (iv.hi == 1) return iv.lo >= 1 ? Det::kDet : Det::kSemidet;
  return iv.lo >= 1 ? Det::kMulti : Det::kNondet;
}

DetInterval SeqInterval(DetInterval a, DetInterval b) {
  DetInterval r;
  r.lo = std::min(1, a.lo * b.lo);
  r.hi = (a.hi == 0 || b.hi == 0) ? 0 : std::min(DetInterval::kInf,
                                                 a.hi * b.hi);
  return r;
}

DetInterval AltInterval(DetInterval a, DetInterval b) {
  return {std::min(1, a.lo + b.lo), std::min(DetInterval::kInf, a.hi + b.hi)};
}

DetInterval HullInterval(DetInterval a, DetInterval b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

DetInterval Cap01(DetInterval a) { return {a.lo, std::min(a.hi, 1)}; }

DetInterval Cap0(DetInterval a) { return {0, a.hi}; }

namespace {

/// Upper-bound classification of one builtin call by name. Everything not
/// listed defaults to nondet — always sound. `throw/1` never *succeeds*,
/// so its solution count is exactly zero (errors are not solutions).
DetInterval BuiltinInterval(const std::string& name, uint32_t arity) {
  static const char* kSemidetNames[] = {
      "<",  ">",  "=<", ">=",  "=:=", "=\\=", "==",  "\\==", "@<",
      "@=<", "@>", "@>=", "=",  "\\=", "var", "nonvar", "atom", "number",
      "integer", "float", "atomic", "compound", "callable", "is_list",
      "ground", "is", "functor", "arg", "succ", "atom_length",
      "atom_concat", "atom_chars", "atom_codes", "char_code",
      "number_codes", "compare", "retract", "memberchk", "forall"};
  static const char* kDetNames[] = {
      "nl", "write", "writeln", "print", "tab", "read", "copy_term",
      "msort", "sort", "assert", "asserta", "assertz", "halt"};
  if (name == "throw" && arity == 1) return {0, 0};
  for (const char* n : kSemidetNames) {
    if (name == n) return {0, 1};
  }
  for (const char* n : kDetNames) {
    if (name == n) return {1, 1};
  }
  return {0, DetInterval::kInf};
}

/// Library predicates (append/3, member/2, ...) when the program does not
/// define them: bounds keyed on how the first (or length-like) argument is
/// instantiated. A ground proper-list first argument makes the list
/// recursions deterministic up to head mismatch.
DetInterval LibraryInterval(const std::string& name, uint32_t arity,
                            const Mode& pattern) {
  auto in = [&](uint32_t i) {
    return i < pattern.size() && pattern[i] == ModeItem::kPlus;
  };
  if (name == "memberchk" || name == "forall") return {0, 1};
  if ((name == "append" && arity == 3 && in(0)) ||
      (name == "reverse" && in(0)) || (name == "last" && in(0)) ||
      (name == "sum_list" && in(0)) || (name == "max_list" && in(0)) ||
      (name == "min_list" && in(0)) ||
      (name == "length" && (in(0) || in(1)))) {
    return {0, 1};
  }
  return {0, DetInterval::kInf};
}

}  // namespace

DeterminismDomain::DeterminismDomain(const TermStore* store,
                                     const reader::Program* program,
                                     const GroundnessSummaries* groundness)
    : store_(store), program_(program), groundness_(groundness) {
  AddLibraryModes(const_cast<TermStore*>(store), &library_modes_);
}

Det DeterminismDomain::Bottom(const PredId& /*id*/,
                              const Mode& /*pattern*/) const {
  return Det::kFailure;
}

Det DeterminismDomain::Top(const PredId& /*id*/,
                           const Mode& /*pattern*/) const {
  return Det::kNondet;
}

Det DeterminismDomain::Join(const Det& a, const Det& b) const {
  return FromInterval(HullInterval(ToInterval(a), ToInterval(b)));
}

Det DeterminismDomain::Widen(const Det& a, const Det& b) const {
  // The lattice has five points and height three; plain join terminates.
  return Join(a, b);
}

bool DeterminismDomain::Equal(const Det& a, const Det& b) const {
  return a == b;
}

prore::Result<const DeterminismDomain::PredInfo*> DeterminismDomain::InfoOf(
    const PredId& id) {
  auto it = info_.find(id);
  if (it != info_.end()) return &it->second;
  PredInfo info;
  std::vector<TermRef> heads;
  for (const reader::Clause& clause : program_->ClausesOf(id)) {
    PRORE_ASSIGN_OR_RETURN(auto body, ParseBody(*store_, clause.body));
    info.has_cut.push_back(ContainsClauseCut(*body));
    info.bodies.push_back(std::move(body));
    TermRef head = store_->Deref(clause.head);
    heads.push_back(head);
    // Certain match: every head argument a distinct free variable (then
    // head unification cannot fail for any call).
    bool certain = true;
    std::vector<uint32_t> seen;
    for (uint32_t i = 0; i < store_->arity(head) && certain; ++i) {
      TermRef a = store_->Deref(store_->arg(head, i));
      if (store_->tag(a) != Tag::kVar) {
        certain = false;
        break;
      }
      uint32_t vid = store_->var_id(a);
      if (std::find(seen.begin(), seen.end(), vid) != seen.end()) {
        certain = false;
      }
      seen.push_back(vid);
    }
    info.certain_head.push_back(certain);
  }
  info.witnesses = engine::ExclusivityWitnesses(*store_, heads, id.arity);
  return &info_.emplace(id, std::move(info)).first->second;
}

bool DeterminismDomain::ExclusiveUnder(const PredId& id,
                                       const Mode& pattern) {
  auto info = InfoOf(id);
  if (!info.ok()) return false;
  for (const engine::Witness& w : (*info)->witnesses) {
    bool covered = true;
    for (uint32_t k : w) {
      if (k >= pattern.size() || pattern[k] != ModeItem::kPlus) {
        covered = false;
        break;
      }
    }
    if (covered && !w.empty()) return true;
    if (w.empty()) return true;  // fewer than two clauses
  }
  return false;
}

const std::vector<engine::Witness>& DeterminismDomain::WitnessesOf(
    const PredId& id) {
  static const std::vector<engine::Witness> kEmpty;
  auto info = InfoOf(id);
  return info.ok() ? (*info)->witnesses : kEmpty;
}

DetInterval DeterminismDomain::CallInterval(TermRef goal,
                                            const PredId& callee,
                                            const Mode& call_mode) {
  (void)goal;
  const std::string& name = store_->symbols().Name(callee.name);
  if (engine::LookupBuiltin(name, callee.arity) != nullptr) {
    return BuiltinInterval(name, callee.arity);
  }
  return LibraryInterval(name, callee.arity, call_mode);
}

prore::Result<DetInterval> DeterminismDomain::WalkBody(
    const BodyNode& node, AbstractEnv* env, const Lookup<Det>& lookup) {
  switch (node.kind) {
    case BodyKind::kTrue:
    case BodyKind::kCut:
      return DetInterval{1, 1};
    case BodyKind::kFail:
      return DetInterval{0, 0};
    case BodyKind::kConj: {
      DetInterval acc{1, 1};
      for (const auto& child : node.children) {
        if (child->kind == BodyKind::kCut) {
          // Once the cut executes only the prefix's first solution
          // survives: A, !, B  ==>  Cap01(A) * B.
          acc = Cap01(acc);
          continue;
        }
        PRORE_ASSIGN_OR_RETURN(DetInterval ci, WalkBody(*child, env, lookup));
        acc = SeqInterval(acc, ci);
        if (acc.hi == 0) return acc;
      }
      return acc;
    }
    case BodyKind::kDisj: {
      AbstractEnv left = *env;
      AbstractEnv right = *env;
      PRORE_ASSIGN_OR_RETURN(DetInterval li,
                             WalkBody(*node.children[0], &left, lookup));
      PRORE_ASSIGN_OR_RETURN(DetInterval ri,
                             WalkBody(*node.children[1], &right, lookup));
      *env = AbstractEnv::Join(left, right);
      // A cut inside a branch makes the sum an over-count, never an
      // under-count — the bound stays sound.
      return AltInterval(li, ri);
    }
    case BodyKind::kIfThenElse: {
      AbstractEnv then_env = *env;
      AbstractEnv else_env = *env;
      PRORE_ASSIGN_OR_RETURN(DetInterval cond,
                             WalkBody(*node.children[0], &then_env, lookup));
      PRORE_ASSIGN_OR_RETURN(DetInterval then_iv,
                             WalkBody(*node.children[1], &then_env, lookup));
      PRORE_ASSIGN_OR_RETURN(DetInterval else_iv,
                             WalkBody(*node.children[2], &else_env, lookup));
      *env = AbstractEnv::Join(then_env, else_env);
      // The condition commits to its first solution; then either the then
      // branch runs (cond succeeded) or the else branch (cond failed).
      return HullInterval(SeqInterval(Cap01(cond), then_iv), else_iv);
    }
    case BodyKind::kNeg: {
      AbstractEnv scratch = *env;
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[0], &scratch, lookup).status());
      return DetInterval{0, 1};
    }
    case BodyKind::kSetPred: {
      AbstractEnv scratch = *env;
      PRORE_RETURN_IF_ERROR(
          WalkBody(*node.children[0], &scratch, lookup).status());
      TermRef goal = store_->Deref(node.goal);
      std::vector<TermRef> vars;
      store_->CollectVars(store_->arg(goal, 2), &vars);
      for (TermRef v : vars) {
        if (env->Get(store_->var_id(v)) == VarState::kFree) {
          env->Set(store_->var_id(v), VarState::kUnknown);
        }
      }
      // findall/3 succeeds exactly once; bagof/setof fail on no solutions.
      const std::string& name = store_->symbols().Name(store_->symbol(goal));
      return name == "findall" ? DetInterval{1, 1} : DetInterval{0, 1};
    }
    case BodyKind::kCatch: {
      AbstractEnv goal_env = *env;
      PRORE_ASSIGN_OR_RETURN(DetInterval gi,
                             WalkBody(*node.children[0], &goal_env, lookup));
      AbstractEnv rec_env = *env;
      TermRef goal = store_->Deref(node.goal);
      std::vector<TermRef> catcher_vars;
      store_->CollectVars(store_->arg(goal, 1), &catcher_vars);
      for (TermRef v : catcher_vars) {
        if (rec_env.Get(store_->var_id(v)) == VarState::kFree) {
          rec_env.Set(store_->var_id(v), VarState::kUnknown);
        }
      }
      PRORE_ASSIGN_OR_RETURN(DetInterval ri,
                             WalkBody(*node.children[1], &rec_env, lookup));
      *env = AbstractEnv::Join(goal_env, rec_env);
      // The goal may yield some solutions and then throw on redo, handing
      // over to the recovery: bound is the sum, floor is zero.
      return DetInterval{0, std::min(DetInterval::kInf, gi.hi + ri.hi)};
    }
    case BodyKind::kCall:
      break;
  }

  TermRef goal = store_->Deref(node.goal);
  PredId callee = store_->pred_id(goal);
  const std::string& name = store_->symbols().Name(callee.name);
  if (name == "=" && callee.arity == 2) {
    env->ApplyUnification(*store_, store_->arg(goal, 0),
                          store_->arg(goal, 1));
    return DetInterval{0, 1};
  }
  Mode call_mode = env->CallModeOf(*store_, goal);
  if (program_->Has(callee)) {
    DetInterval iv = ToInterval(lookup(callee, call_mode));
    // Thread the groundness result (when available) so downstream call
    // modes stay tight; the exact summary first, covering ones second.
    Mode out(callee.arity, ModeItem::kAny);
    if (groundness_ != nullptr) {
      if (const GroundnessValue* g =
              groundness_->Find(*store_, callee, call_mode)) {
        if (!g->can_succeed) return DetInterval{0, 0};
        out = g->success;
      } else if (auto covered =
                     groundness_->SuccessModeFor(*store_, callee, call_mode)) {
        out = *covered;
      }
    }
    env->ApplyCallOutput(*store_, goal, out);
    return iv;
  }
  DetInterval iv = CallInterval(goal, callee, call_mode);
  std::optional<Mode> out;
  if (engine::LookupBuiltin(name, callee.arity) != nullptr) {
    out = builtin_modes_.OutputFor(name, callee.arity, call_mode);
  } else {
    out = library_modes_.OutputFor(callee, call_mode);
  }
  env->ApplyCallOutput(*store_, goal,
                       out.value_or(Mode(callee.arity, ModeItem::kAny)));
  return iv;
}

prore::Result<Det> DeterminismDomain::Transfer(const PredId& id,
                                               const Mode& pattern,
                                               const Lookup<Det>& lookup) {
  if (!program_->Has(id)) {
    const std::string& name = store_->symbols().Name(id.name);
    if (engine::LookupBuiltin(name, id.arity) != nullptr) {
      return FromInterval(BuiltinInterval(name, id.arity));
    }
    return FromInterval(LibraryInterval(name, id.arity, pattern));
  }
  const auto& clauses = program_->ClausesOf(id);
  if (clauses.empty()) {
    // Possibly dynamic: assert may add clauses at run time.
    return Det::kNondet;
  }
  PRORE_ASSIGN_OR_RETURN(const PredInfo* info, InfoOf(id));

  std::vector<DetInterval> body_ivs;
  body_ivs.reserve(clauses.size());
  for (size_t c = 0; c < clauses.size(); ++c) {
    AbstractEnv env = EnvFromHead(*store_, clauses[c].head, pattern);
    PRORE_ASSIGN_OR_RETURN(DetInterval iv,
                           WalkBody(*info->bodies[c], &env, lookup));
    body_ivs.push_back(iv);
  }

  if (ExclusiveUnder(id, pattern)) {
    // At most one clause head can match any concrete call in this
    // pattern: the bound is the worst single clause, and nothing
    // guarantees any head matches.
    int hi = 0;
    for (const DetInterval& iv : body_ivs) hi = std::max(hi, iv.hi);
    return FromInterval({0, hi});
  }

  // General case, right to left: once a clause-level cut executes, later
  // clauses are discarded — so a cut clause contributes max(own bound,
  // rest), a cut-free clause own bound + rest.
  int rest_hi = 0;
  for (size_t c = clauses.size(); c-- > 0;) {
    int hi = Cap0(body_ivs[c]).hi;
    rest_hi = info->has_cut[c] ? std::max(hi, rest_hi)
                               : std::min(DetInterval::kInf, hi + rest_hi);
  }
  // At least one solution only if some clause certainly matches, its body
  // certainly succeeds, and no earlier clause can cut and then fail.
  int lo = 0;
  bool cut_above = false;
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (info->certain_head[c] && body_ivs[c].lo >= 1 && !cut_above) {
      lo = 1;
      break;
    }
    if (info->has_cut[c]) cut_above = true;
  }
  return FromInterval({lo, rest_hi});
}

Det DeterminismAnalysis::DetFor(const TermStore& store, const PredId& id,
                                const Mode& call_mode) const {
  auto exact = by_key.find(KeyName(store, id, call_mode));
  if (exact != by_key.end()) return exact->second;
  DetInterval hull{1, 0};  // empty; replaced by the first match
  bool any = false;
  for (const auto& [key, ck] : keys) {
    if (!(ck.pred == id)) continue;
    // A summary under pattern p bounds every call at least as bound as p
    // from above (instantiating removes solutions); the lower bound does
    // not transfer.
    if (!SatisfiesInput(call_mode, ck.pattern)) continue;
    DetInterval iv = Cap0(ToInterval(by_key.at(key)));
    hull = any ? HullInterval(hull, iv) : iv;
    any = true;
  }
  return any ? FromInterval(hull) : Det::kNondet;
}

bool DeterminismAnalysis::ExclusiveUnder(const PredId& id,
                                         const Mode& call_mode) const {
  auto it = witnesses.find(id);
  if (it == witnesses.end()) return false;
  for (const engine::Witness& w : it->second) {
    bool covered = true;
    for (uint32_t k : w) {
      if (k >= call_mode.size() || call_mode[k] != ModeItem::kPlus) {
        covered = false;
        break;
      }
    }
    if (covered) return true;
  }
  return false;
}

}  // namespace prore::analysis::absint
