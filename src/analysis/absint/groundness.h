#ifndef PRORE_ANALYSIS_ABSINT_GROUNDNESS_H_
#define PRORE_ANALYSIS_ABSINT_GROUNDNESS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/absint/solver.h"
#include "analysis/body.h"
#include "analysis/callgraph.h"
#include "analysis/modes.h"
#include "common/result.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::analysis::absint {

/// Groundness/success-pattern summary of one (predicate, call pattern):
/// the argument modes a *successful* call is guaranteed to leave behind
/// (def-style per-argument approximation), and whether success is possible
/// at all. `can_succeed == false` is the optimistic bottom — "no evidence
/// of success yet" during the fixpoint, "provably always fails" once it
/// stabilizes (the PL200 signal).
struct GroundnessValue {
  Mode success;
  bool can_succeed = false;

  bool operator==(const GroundnessValue&) const = default;
};

/// The groundness domain for the absint Solver. Transfer abstractly runs
/// every clause of the predicate under the call pattern (the same
/// AbstractEnv threading mode inference uses), reading callee success
/// patterns through the solver's memo table instead of a local fixpoint,
/// and joins the per-clause success patterns pointwise. A clause whose
/// body reaches a callee that cannot succeed contributes nothing.
class GroundnessDomain {
 public:
  using Value = GroundnessValue;

  GroundnessDomain(const term::TermStore* store,
                   const reader::Program* program);

  Value Bottom(const term::PredId& id, const Mode& pattern) const;
  Value Top(const term::PredId& id, const Mode& pattern) const;
  Value Join(const Value& a, const Value& b) const;
  Value Widen(const Value& a, const Value& b) const;
  bool Equal(const Value& a, const Value& b) const;
  prore::Result<Value> Transfer(const term::PredId& id, const Mode& pattern,
                                const Lookup<Value>& lookup);

 private:
  /// Abstractly executes `node`, updating `env` and `*may_succeed` (false
  /// once control cannot flow past the node). Callee summaries come from
  /// `lookup` for program predicates, the builtin/library mode tables
  /// otherwise.
  prore::Status WalkBody(const BodyNode& node, AbstractEnv* env,
                         bool* may_succeed, const Lookup<Value>& lookup);

  /// Parsed bodies of `id`, cached across fixpoint iterations.
  prore::Result<const std::vector<std::unique_ptr<BodyNode>>*> BodiesOf(
      const term::PredId& id);

  const term::TermStore* store_;
  const reader::Program* program_;
  BuiltinModes builtin_modes_;
  ModeTable library_modes_;
  std::unordered_map<term::PredId, std::vector<std::unique_ptr<BodyNode>>,
                     term::PredIdHash>
      bodies_;
};

/// Published groundness results, detached from the solver: canonical-key
/// ordered summaries plus the call patterns discovered per predicate.
struct GroundnessSummaries {
  std::map<std::string, GroundnessValue> by_key;
  std::map<std::string, CallKey> keys;

  const GroundnessValue* Find(const term::TermStore& store,
                              const term::PredId& id,
                              const Mode& pattern) const;

  /// Success mode valid for a call at least as bound as some analyzed
  /// pattern: the pointwise meet over every applicable summary, applied to
  /// the call mode. nullopt when no summary applies (or none can succeed).
  std::optional<Mode> SuccessModeFor(const term::TermStore& store,
                                     const term::PredId& id,
                                     const Mode& call_mode) const;

  /// Analyzed call patterns of `id`, in canonical order.
  std::vector<Mode> PatternsFor(const term::TermStore& store,
                                const term::PredId& id) const;
};

}  // namespace prore::analysis::absint

#endif  // PRORE_ANALYSIS_ABSINT_GROUNDNESS_H_
