#ifndef PRORE_ANALYSIS_CONTENT_HASH_H_
#define PRORE_ANALYSIS_CONTENT_HASH_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/callgraph.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::analysis {

/// 64-bit content hashes over the SCC condensation, the key of the
/// incremental analysis/transform cache (core/analysis_cache.h): a
/// predicate's hash covers its clauses (canonically rendered, so it is
/// independent of TermRef numbering), and a dependency group's hash covers
/// its members' clause hashes plus the hashes of its callee groups.
/// Editing one predicate therefore changes exactly the hashes of its own
/// group and of every group that (transitively) calls into it — the dirty
/// cone — while the callee-side groups keep their hashes and stay
/// cacheable.
///
/// Two whole-program inputs are deliberately folded into every group hash,
/// trading incrementality for soundness:
///  - the directive list and the full defined-predicate name set: legal-
///    mode declarations change analysis results anywhere, and the set of
///    program names feeds version-name collision avoidance
///    (ReorderOptions::reserved_preds);
///  - per group, the frozen predicates among its members and cone: the
///    cut-freezing property flows caller -> callee, so a caller edit can
///    change a callee group's output without touching its clauses.
struct ContentHashes {
  std::unordered_map<term::PredId, uint64_t, term::PredIdHash> pred_hash;
  /// Parallel to DependencyGroups::groups.
  std::vector<uint64_t> group_hash;
};

/// splitmix64-style mixing primitives, exposed for tests and for callers
/// that fold extra context (an options fingerprint) into a salt.
uint64_t HashMix(uint64_t seed, uint64_t value);
uint64_t HashBytes(uint64_t seed, std::string_view bytes);

/// Computes the per-predicate and per-group hashes for `program` under
/// `groups` (its SCC condensation). `frozen` is the whole-program
/// cut-frozen set (core/restrictions.h FrozenDescendants), may be null.
/// `salt` is folded into every hash — callers use it to fingerprint the
/// transform options, so cache entries produced under different options
/// never collide.
ContentHashes ComputeContentHashes(const term::TermStore& store,
                                   const reader::Program& program,
                                   const DependencyGroups& groups,
                                   const PredSet* frozen, uint64_t salt);

}  // namespace prore::analysis

#endif  // PRORE_ANALYSIS_CONTENT_HASH_H_
