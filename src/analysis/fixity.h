#ifndef PRORE_ANALYSIS_FIXITY_H_
#define PRORE_ANALYSIS_FIXITY_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/callgraph.h"
#include "common/result.h"
#include "reader/program.h"
#include "term/store.h"

namespace prore::analysis {

/// Results of the side-effect analysis (paper §IV-B, §IV-C).
struct FixityResult {
  /// Predicates with side-effects, directly or through any descendant:
  /// "predicates are responsible for the actions of their descendants".
  /// Goals calling these are immobile; clauses containing them are fixed
  /// within their predicate.
  PredSet fixed;

  /// Semifixed predicates: for each, a per-argument flag marking culprit
  /// positions (the §IV-C example: `a(X,Y,b) :- !.` makes position 3 a
  /// culprit — reordering must not change whether that argument is
  /// instantiated at call time).
  std::unordered_map<term::PredId, std::vector<bool>, term::PredIdHash>
      semifixed_args;

  bool IsFixed(const term::PredId& id) const { return fixed.count(id) > 0; }
  bool IsSemifixed(const term::PredId& id) const {
    return semifixed_args.count(id) > 0;
  }
  const std::vector<bool>* CulpritArgs(const term::PredId& id) const {
    auto it = semifixed_args.find(id);
    return it == semifixed_args.end() ? nullptr : &it->second;
  }
};

/// True if the named built-in has a side-effect that backtracking cannot
/// undo (I/O). These are the fixity seeds.
bool IsSideEffectBuiltin(std::string_view name, uint32_t arity);

/// Per-argument culprit flags for mode-sensitive built-ins (var/1,
/// nonvar/1, ==/2, \==/2, \=/2, the type tests): their outcome depends on
/// the instantiation state of the flagged arguments, so reordering must
/// preserve that state (§IV-C). Empty vector for mode-insensitive
/// built-ins.
std::vector<bool> SemifixedArgsOfBuiltin(std::string_view name,
                                         uint32_t arity);

/// Runs the fixity and semifixity analyses over a program.
prore::Result<FixityResult> AnalyzeFixity(const term::TermStore& store,
                                          const reader::Program& program,
                                          const CallGraph& graph);

class LegalityOracle;  // mode_inference.h
struct BodyNode;       // body.h

/// The variables whose instantiation state `node`'s outcome depends on:
/// culprit-position variables of mode-sensitive built-ins (var/1, \==/2,
/// ...) and of semifixed user predicates, and every variable of a negation
/// or set-predicate (§IV-C, §IV-D.5/6).
std::vector<term::TermRef> ModeSensitiveVars(const term::TermStore& store,
                                             const BodyNode& node,
                                             const FixityResult& fixity);

/// Second semifixity pass, run once mode inference is available: a
/// predicate whose clause uses a mode-sensitive goal on a variable that
/// (a) reaches the clause head and (b) is not already ground at that goal
/// under even the weakest input mode, is itself semifixed in the head
/// positions carrying that variable. Iterates with the caller-propagation
/// rule to a fixpoint. (This is what keeps `male(X) :- \+ female(X)` from
/// being called before its argument is bound.)
prore::Status RefineSemifixity(const term::TermStore& store,
                               const reader::Program& program,
                               const CallGraph& graph,
                               LegalityOracle* oracle, FixityResult* result);

}  // namespace prore::analysis

#endif  // PRORE_ANALYSIS_FIXITY_H_
