#include "analysis/callgraph.h"

#include <algorithm>

#include "analysis/body.h"
#include "engine/builtins.h"

namespace prore::analysis {

using term::PredId;
using term::TermRef;
using term::TermStore;

namespace {

/// Tarjan SCC over the user-predicate call graph.
class SccFinder {
 public:
  SccFinder(const std::vector<PredId>& preds,
            const std::unordered_map<PredId, std::vector<PredId>,
                                     term::PredIdHash>& edges)
      : preds_(preds), edges_(edges),
        defined_(preds.begin(), preds.end()) {}

  std::vector<std::vector<PredId>> Run() {
    for (const PredId& p : preds_) {
      if (index_.find(p) == index_.end()) Visit(p);
    }
    return sccs_;  // Tarjan emits SCCs callees-first (reverse topological).
  }

 private:
  void Visit(const PredId& v) {
    index_[v] = next_index_;
    lowlink_[v] = next_index_;
    ++next_index_;
    stack_.push_back(v);
    on_stack_.insert(v);
    auto it = edges_.find(v);
    if (it != edges_.end()) {
      for (const PredId& w : it->second) {
        if (defined_.count(w) == 0) continue;  // callee not in the program
        if (index_.find(w) == index_.end()) {
          Visit(w);
          lowlink_[v] = std::min(lowlink_[v], lowlink_[w]);
        } else if (on_stack_.count(w) > 0) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      }
    }
    if (lowlink_[v] == index_[v]) {
      std::vector<PredId> scc;
      while (true) {
        PredId w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      sccs_.push_back(std::move(scc));
    }
  }

  const std::vector<PredId>& preds_;
  const std::unordered_map<PredId, std::vector<PredId>, term::PredIdHash>&
      edges_;
  PredSet defined_;
  std::unordered_map<PredId, int, term::PredIdHash> index_;
  std::unordered_map<PredId, int, term::PredIdHash> lowlink_;
  std::vector<PredId> stack_;
  PredSet on_stack_;
  int next_index_ = 0;
  std::vector<std::vector<PredId>> sccs_;
};

}  // namespace

prore::Result<CallGraph> CallGraph::Build(const TermStore& store,
                                          const reader::Program& program) {
  CallGraph g;
  g.preds_ = program.pred_order();
  PredSet defined(g.preds_.begin(), g.preds_.end());

  for (const PredId& caller : g.preds_) {
    PredSet seen_user, seen_builtin;
    std::vector<PredId>& user_out = g.callees_[caller];
    std::vector<PredId>& builtin_out = g.builtin_callees_[caller];
    for (const reader::Clause& clause : program.ClausesOf(caller)) {
      PRORE_ASSIGN_OR_RETURN(auto body, ParseBody(store, clause.body));
      std::vector<TermRef> goals;
      CollectCalledGoals(store, *body, &goals);
      for (TermRef goal : goals) {
        PredId id = store.pred_id(store.Deref(goal));
        bool is_user = defined.count(id) > 0;
        if (!is_user &&
            engine::LookupBuiltin(store.symbols().Name(id.name), id.arity) !=
                nullptr) {
          if (seen_builtin.insert(id).second) builtin_out.push_back(id);
          continue;
        }
        // Library predicates and genuinely-unknown predicates are treated
        // as user callees; the engine's library is pure Prolog.
        if (seen_user.insert(id).second) user_out.push_back(id);
      }
    }
  }

  // Entry points: defined predicates never called by another program pred.
  PredSet called;
  for (const auto& [caller, callees] : g.callees_) {
    for (const PredId& c : callees) {
      if (!(c == caller)) called.insert(c);
    }
  }
  for (const PredId& p : g.preds_) {
    if (called.count(p) == 0) g.entries_.push_back(p);
  }

  // SCCs and recursion.
  SccFinder finder(g.preds_, g.callees_);
  g.sccs_ = finder.Run();
  for (const auto& scc : g.sccs_) {
    if (scc.size() > 1) {
      for (const PredId& p : scc) g.recursive_.insert(p);
    } else {
      const PredId& p = scc[0];
      auto it = g.callees_.find(p);
      if (it != g.callees_.end() &&
          std::find(it->second.begin(), it->second.end(), p) !=
              it->second.end()) {
        g.recursive_.insert(p);
      }
    }
  }
  return g;
}

std::vector<size_t> DependencyGroups::TransitiveDeps(size_t i) const {
  std::vector<bool> seen(groups.size(), false);
  std::vector<size_t> stack(deps[i].begin(), deps[i].end());
  std::vector<size_t> out;
  while (!stack.empty()) {
    size_t g = stack.back();
    stack.pop_back();
    if (seen[g]) continue;
    seen[g] = true;
    out.push_back(g);
    for (size_t d : deps[g]) {
      if (!seen[d]) stack.push_back(d);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

DependencyGroups ComputeDependencyGroups(const CallGraph& graph) {
  DependencyGroups dg;
  dg.groups = graph.SccsBottomUp();  // Tarjan order: callees before callers
  for (size_t i = 0; i < dg.groups.size(); ++i) {
    for (const PredId& p : dg.groups[i]) dg.group_of[p] = i;
  }
  dg.deps.resize(dg.groups.size());
  for (size_t i = 0; i < dg.groups.size(); ++i) {
    PredSet seen;
    for (const PredId& p : dg.groups[i]) {
      for (const PredId& callee : graph.Callees(p)) {
        auto it = dg.group_of.find(callee);
        // Library predicates and unknown callees have no group; recursive
        // edges stay inside the SCC and are not dependencies.
        if (it == dg.group_of.end() || it->second == i) continue;
        if (seen.insert(callee).second) dg.deps[i].push_back(it->second);
      }
    }
    std::sort(dg.deps[i].begin(), dg.deps[i].end());
    dg.deps[i].erase(std::unique(dg.deps[i].begin(), dg.deps[i].end()),
                     dg.deps[i].end());
  }
  return dg;
}

const std::vector<PredId>& CallGraph::Callees(const PredId& caller) const {
  static const auto& kEmpty = *new std::vector<PredId>();
  auto it = callees_.find(caller);
  return it == callees_.end() ? kEmpty : it->second;
}

const std::vector<PredId>& CallGraph::BuiltinCallees(
    const PredId& caller) const {
  static const auto& kEmpty = *new std::vector<PredId>();
  auto it = builtin_callees_.find(caller);
  return it == builtin_callees_.end() ? kEmpty : it->second;
}

}  // namespace prore::analysis
